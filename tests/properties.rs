//! Property-based tests (proptest) on the core data structures and
//! invariants of the workspace: Pareto dominance, hypervolume, the ACIM
//! specification constraints, the estimation model's monotonicities, the
//! genome encoding, geometry, and the SAR ADC transfer function.

use acim_arch::adc::{CdacBank, SarAdc};
use acim_arch::{AcimSpec, TimingModel};
use acim_cell::{half_perimeter_wire_length, Point, Rect};
use acim_dse::DesignEncoding;
use acim_model::{
    area_f2_per_bit, evaluate, evaluate_batch, snr_simplified_db, tops_per_watt, ModelInvariants,
    ModelParams, SpecBatch,
};
use acim_moga::{dominates, hypervolume_2d, ParetoArchive};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy for a randomly perturbed but valid [`ModelParams`]: every
/// physical constant of the s28 set scaled by a factor in `[0.5, 2)`, so
/// the kernel bit-identity property is exercised far from the calibrated
/// defaults.
fn perturbed_model_params() -> impl Strategy<Value = ModelParams> {
    let factor = || 0.5..2.0f64;
    (factor(), factor(), factor(), factor(), factor(), factor()).prop_map(
        |(snr_f, c_o_f, area_f, timing_f, energy_f, vdd_f)| {
            let mut p = ModelParams::s28_default();
            p.snr.k3 *= snr_f;
            p.snr.k4 *= snr_f;
            p.snr.c_o = p.snr.c_o * c_o_f;
            p.area.a_sram = p.area.a_sram * area_f;
            p.area.a_lc = p.area.a_lc * area_f;
            p.area.a_comp = p.area.a_comp * area_f;
            p.area.a_dff = p.area.a_dff * area_f;
            p.timing.t_compute = p.timing.t_compute * timing_f;
            p.timing.tau = p.timing.tau * timing_f;
            p.timing.t_conv_per_bit = p.timing.t_conv_per_bit * timing_f;
            p.energy.e_compute = p.energy.e_compute * energy_f;
            p.energy.e_control = p.energy.e_control * energy_f;
            p.energy.k1 = p.energy.k1 * energy_f;
            p.energy.k2 = p.energy.k2 * energy_f;
            p.energy.vdd *= vdd_f;
            p
        },
    )
}

/// Strategy for a valid (H, W, L, B) tuple of a power-of-two array.
fn valid_spec() -> impl Strategy<Value = AcimSpec> {
    (4u32..=10, 2u32..=8, 1u32..=5, 1u32..=8).prop_filter_map(
        "must satisfy the architectural constraints",
        |(log_h, log_w, log_l, bits)| {
            let h = 1usize << log_h;
            let w = 1usize << log_w;
            let l = 1usize << log_l;
            AcimSpec::from_dimensions(h, w, l, bits).ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- Pareto dominance -------------------------------------------------

    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(
        a in prop::collection::vec(-1e3..1e3f64, 4),
        b in prop::collection::vec(-1e3..1e3f64, 4),
    ) {
        prop_assert!(!dominates(&a, &a));
        prop_assert!(!(dominates(&a, &b) && dominates(&b, &a)));
    }

    #[test]
    fn archive_always_holds_mutually_non_dominated_points(
        points in prop::collection::vec(prop::collection::vec(0.0..100.0f64, 2), 1..40)
    ) {
        let mut archive = ParetoArchive::new();
        for (i, p) in points.iter().enumerate() {
            archive.insert(p.clone(), i);
        }
        let objs = archive.objectives();
        for a in &objs {
            for b in &objs {
                prop_assert!(!(a != b && dominates(a, b) && dominates(b, a)));
                if a != b {
                    prop_assert!(!dominates(a, b) || !dominates(b, a));
                }
            }
        }
        // Nothing in the archive is dominated by any original point.
        for p in &points {
            for kept in &objs {
                prop_assert!(!dominates(p, kept) || p == kept || objs.contains(p));
            }
        }
    }

    #[test]
    fn hypervolume_is_monotone_in_added_points(
        mut front in prop::collection::vec((0.1..5.0f64, 0.1..5.0f64), 1..12),
        extra in (0.1..5.0f64, 0.1..5.0f64),
    ) {
        let reference = [6.0, 6.0];
        let as_vecs = |pts: &[(f64, f64)]| pts.iter().map(|&(a, b)| vec![a, b]).collect::<Vec<_>>();
        let before = hypervolume_2d(&as_vecs(&front), &reference);
        front.push(extra);
        let after = hypervolume_2d(&as_vecs(&front), &reference);
        prop_assert!(after + 1e-12 >= before, "hypervolume shrank: {before} -> {after}");
    }

    // ---- Architecture specification ---------------------------------------

    #[test]
    fn every_accepted_spec_satisfies_equation_12(spec in valid_spec()) {
        prop_assert_eq!(spec.height() * spec.width(), spec.array_size());
        prop_assert!(spec.height() >= spec.local_array());
        prop_assert!(spec.capacitors_per_column() >= 1 << spec.adc_bits());
        prop_assert_eq!(
            spec.sar_group_sizes().iter().sum::<usize>(),
            1usize << spec.adc_bits()
        );
        prop_assert_eq!(spec.spare_capacitors(),
            spec.capacitors_per_column() - (1 << spec.adc_bits()));
    }

    #[test]
    fn throughput_scales_inversely_with_local_array(spec in valid_spec()) {
        let timing = TimingModel::s28_default();
        let base = timing.throughput_tops(&spec).unwrap();
        // Doubling L (when valid) halves the throughput at fixed array size.
        if let Ok(doubled) = AcimSpec::from_dimensions(
            spec.height(),
            spec.width(),
            spec.local_array() * 2,
            spec.adc_bits(),
        ) {
            let slower = timing.throughput_tops(&doubled).unwrap();
            prop_assert!((base / slower - 2.0).abs() < 1e-9);
        }
    }

    // ---- Estimation model ---------------------------------------------------

    #[test]
    fn model_outputs_are_finite_and_positive(spec in valid_spec()) {
        let params = ModelParams::s28_default();
        let area = area_f2_per_bit(&spec, &params).unwrap();
        let eff = tops_per_watt(&spec, &params).unwrap();
        let snr = snr_simplified_db(&spec, &params).unwrap();
        prop_assert!(area.is_finite() && area > 1500.0 && area < 50_000.0);
        prop_assert!(eff.is_finite() && eff > 1.0 && eff < 2_000.0);
        // The extreme corner (B_ADC = 1 with a 512-long dot product) sits just
        // below -10 dB, so the sanity band is slightly wider than that.
        prop_assert!(snr.is_finite() && snr > -15.0 && snr < 80.0);
    }

    #[test]
    fn kernel_paths_are_bit_identical_to_scalar_over_the_design_grid(
        params in perturbed_model_params()
    ) {
        // Every valid power-of-two (H, W, L, B_ADC) point of the discrete
        // design grid, evaluated three ways: the scalar facade, the
        // hoisted-invariants path and the struct-of-arrays batch kernel.
        // All five metrics must agree to the bit on every point — the
        // batched exploration is only allowed to be faster, never
        // different.
        let invariants = ModelInvariants::new(&params).unwrap();
        let mut batch = SpecBatch::new();
        let mut specs = Vec::new();
        for log_h in 4u32..=10 {
            for log_w in 2u32..=8 {
                for log_l in 1u32..=5 {
                    for bits in 1u32..=8 {
                        if let Ok(spec) = AcimSpec::from_dimensions(
                            1 << log_h, 1 << log_w, 1 << log_l, bits)
                        {
                            batch.push_spec(&spec);
                            specs.push(spec);
                        }
                    }
                }
            }
        }
        prop_assert!(specs.len() > 100, "grid must not degenerate");
        let mut batched = Vec::new();
        evaluate_batch(&params, &batch, &mut batched).unwrap();
        prop_assert_eq!(batched.len(), specs.len());
        for (spec, from_batch) in specs.iter().zip(&batched) {
            let scalar = evaluate(spec, &params).unwrap();
            let hoisted = invariants.evaluate_spec(spec);
            for (s, h, b) in [
                (scalar.snr_db, hoisted.snr_db, from_batch.snr_db),
                (scalar.throughput_tops, hoisted.throughput_tops, from_batch.throughput_tops),
                (scalar.energy_per_mac_fj, hoisted.energy_per_mac_fj,
                 from_batch.energy_per_mac_fj),
                (scalar.tops_per_watt, hoisted.tops_per_watt, from_batch.tops_per_watt),
                (scalar.area_f2_per_bit, hoisted.area_f2_per_bit, from_batch.area_f2_per_bit),
            ] {
                prop_assert_eq!(s.to_bits(), h.to_bits(), "invariants diverged on {}", spec);
                prop_assert_eq!(s.to_bits(), b.to_bits(), "batch diverged on {}", spec);
            }
        }
    }

    #[test]
    fn snr_gains_exactly_6db_per_adc_bit(spec in valid_spec()) {
        let params = ModelParams::s28_default();
        if let Ok(finer) = AcimSpec::from_dimensions(
            spec.height(), spec.width(), spec.local_array(), spec.adc_bits() + 1)
        {
            let base = snr_simplified_db(&spec, &params).unwrap();
            let finer_snr = snr_simplified_db(&finer, &params).unwrap();
            prop_assert!((finer_snr - base - 6.0).abs() < 1e-9);
        }
    }

    // ---- Genome encoding ----------------------------------------------------

    #[test]
    fn any_genome_decodes_into_the_catalogue(genes in prop::collection::vec(0.0..=1.0f64, 3)) {
        let encoding = DesignEncoding::new(16 * 1024, 16, 1024).unwrap();
        let candidate = encoding.decode(&genes);
        prop_assert!(encoding.heights().contains(&candidate.height));
        prop_assert!(encoding.local_sizes().contains(&candidate.local_array));
        prop_assert!(encoding.adc_bits().contains(&candidate.adc_bits));
        prop_assert_eq!(candidate.height * candidate.width, 16 * 1024);
        // Encode/decode round-trips to the same candidate.
        if let Some(encoded) = encoding.encode(&candidate) {
            prop_assert_eq!(encoding.decode(&encoded), candidate);
        }
    }

    // ---- Geometry ------------------------------------------------------------

    #[test]
    fn rect_union_contains_both_operands(
        (ax0, ay0, ax1, ay1) in (-1e4..1e4f64, -1e4..1e4f64, -1e4..1e4f64, -1e4..1e4f64),
        (bx0, by0, bx1, by1) in (-1e4..1e4f64, -1e4..1e4f64, -1e4..1e4f64, -1e4..1e4f64),
    ) {
        let a = Rect::new(ax0, ay0, ax1, ay1);
        let b = Rect::new(bx0, by0, bx1, by1);
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    }

    #[test]
    fn hpwl_is_translation_invariant(
        points in prop::collection::vec((-1e3..1e3f64, -1e3..1e3f64), 2..10),
        (dx, dy) in (-1e3..1e3f64, -1e3..1e3f64),
    ) {
        let original: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let shifted: Vec<Point> = original.iter().map(|p| p.translated(dx, dy)).collect();
        let a = half_perimeter_wire_length(&original);
        let b = half_perimeter_wire_length(&shifted);
        prop_assert!((a - b).abs() < 1e-6);
    }

    // ---- SAR ADC ---------------------------------------------------------------

    #[test]
    fn noiseless_sar_adc_is_monotonic(bits in 2u32..=6, steps in 10usize..40) {
        let spec = AcimSpec::from_dimensions(512, 32, 2, bits).unwrap();
        let adc = SarAdc::new(CdacBank::ideal(&spec, 1.2), bits, 0.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut last = 0u32;
        for i in 0..=steps {
            let v = i as f64 / steps as f64;
            let code = adc.convert(v, &mut rng);
            prop_assert!(code >= last, "code regressed at v={v}");
            prop_assert!(code <= adc.full_scale());
            last = code;
        }
    }
}
