//! Ablation: how good is the MOGA-based explorer compared to ground truth
//! and to a random-sampling baseline?
//!
//! The 16 kb design space is small (≈140 valid points, most of them mutually
//! non-dominated in the 4-objective space), so exhaustive enumeration is the
//! exact reference.  The measurements recorded in `EXPERIMENTS.md` show the
//! NSGA-II explorer reaching ≈99 % of the exhaustive hypervolume and
//! recovering ≈75 % of the exact Pareto points; random sampling with the
//! same budget is also competitive *for a single small array size*, which is
//! an honest caveat of the paper's algorithm choice — NSGA-II's advantage is
//! budget efficiency, not reachability, at this problem size.

use acim_dse::enumerate::exact_pareto_front;
use acim_dse::{enumerate_design_space, AcimDesignProblem, DesignSpaceExplorer, DseConfig};
use acim_model::ModelParams;
use acim_moga::{hypervolume_monte_carlo, random_search, Evaluation, Problem};

/// Reference point for hypervolume in the `[−SNR, −TOPS, E, A]` space:
/// comfortably worse than any feasible 16 kb design.
const REFERENCE: [f64; 4] = [0.0, 0.0, 60.0, 10_000.0];

fn exhaustive_hypervolume(params: &ModelParams) -> (f64, Vec<acim_dse::DesignPoint>) {
    let space = enumerate_design_space(16 * 1024, 16, 1024, params).expect("enumerates");
    let exact = exact_pareto_front(&space);
    let objs: Vec<Vec<f64>> = exact.iter().map(|p| p.objective_vector()).collect();
    (hypervolume_monte_carlo(&objs, &REFERENCE, 50_000, 1), exact)
}

#[test]
fn nsga2_recovers_most_of_the_exact_front() {
    let params = ModelParams::s28_default();
    let (hv_exact, exact) = exhaustive_hypervolume(&params);

    let explorer = DesignSpaceExplorer::new(DseConfig {
        array_size: 16 * 1024,
        population_size: 60,
        generations: 40,
        ..DseConfig::default()
    })
    .expect("explorer builds");
    let found = explorer.explore().expect("explores");

    let objs: Vec<Vec<f64>> = found
        .points()
        .iter()
        .map(|p| p.objective_vector())
        .collect();
    let hv = hypervolume_monte_carlo(&objs, &REFERENCE, 50_000, 1);
    assert!(
        hv >= 0.95 * hv_exact,
        "NSGA-II hypervolume {hv:.3e} is below 95% of the exhaustive {hv_exact:.3e}"
    );

    let recovered = exact
        .iter()
        .filter(|e| found.points().iter().any(|p| p.spec == e.spec))
        .count();
    assert!(
        recovered as f64 / exact.len() as f64 > 0.6,
        "NSGA-II recovered only {recovered}/{} exact Pareto points",
        exact.len()
    );
}

#[test]
fn nsga2_with_a_small_budget_stays_competitive_with_random_search() {
    let params = ModelParams::s28_default();
    let (hv_exact, _) = exhaustive_hypervolume(&params);

    // A deliberately tight budget (~2× the size of the discrete space).
    let explorer = DesignSpaceExplorer::new(DseConfig {
        array_size: 16 * 1024,
        population_size: 24,
        generations: 10,
        ..DseConfig::default()
    })
    .expect("explorer builds");
    let frontier = explorer.explore().expect("explores");
    let budget = frontier.engine.evaluations;

    let nsga_objs: Vec<Vec<f64>> = frontier
        .points()
        .iter()
        .map(|p| p.objective_vector())
        .collect();
    let hv_nsga = hypervolume_monte_carlo(&nsga_objs, &REFERENCE, 50_000, 1);

    let problem = AcimDesignProblem::new(16 * 1024, 16, 1024, params).expect("problem builds");
    let random = random_search(&problem, budget, 99);
    assert!(!random.is_empty(), "random search found nothing feasible");
    let hv_random = hypervolume_monte_carlo(&random.objectives(), &REFERENCE, 50_000, 1);

    // Both strategies must land in the same quality band on this small
    // space; NSGA-II must reach at least 80% of ground truth and must not
    // fall more than 10% behind random sampling.
    assert!(
        hv_nsga >= 0.80 * hv_exact,
        "NSGA-II at {budget} evaluations reached only {:.1}% of the exhaustive hypervolume",
        100.0 * hv_nsga / hv_exact
    );
    assert!(
        hv_nsga >= 0.90 * hv_random,
        "NSGA-II hypervolume {hv_nsga:.3e} fell more than 10% behind random search {hv_random:.3e}"
    );
}

/// A sanity check that the DSE problem wrapper is well-formed as a generic
/// MOGA problem (used by both NSGA-II and random search above).
#[test]
fn design_problem_reports_consistent_dimensions() {
    let problem = AcimDesignProblem::new(16 * 1024, 16, 1024, ModelParams::s28_default())
        .expect("problem builds");
    assert_eq!(problem.num_variables(), 3);
    assert_eq!(problem.num_objectives(), 4);
    let eval: Evaluation = problem.evaluate(&[0.5, 0.5, 0.2]);
    assert_eq!(eval.objectives.len(), 4);
}
