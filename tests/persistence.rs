//! Acceptance tests of the persistence tier: snapshot → restore round
//! trips are semantically lossless (bit-identical frontiers, real cache
//! reuse), merges are first-wins, and every corrupted or foreign snapshot
//! degrades to a typed error plus a clean cold start — never a panic,
//! never a partial merge.

use std::fs;
use std::path::PathBuf;

use acim_persist::{ArchiveRecord, PersistError, Snapshot};
use easyacim::prelude::*;
use easyacim::service::{ExplorationRequest, ExplorationService};

fn quick_chip_config() -> ChipFlowConfig {
    let mut config = ChipFlowConfig::for_network(Network::edge_cnn(1));
    config.dse.population_size = 16;
    config.dse.generations = 6;
    config.dse.grid_rows = vec![1, 2];
    config.dse.grid_cols = vec![1, 2];
    config.dse.buffer_kib = vec![8, 32];
    config.validate_best = false;
    config
}

fn quick_flow_config() -> FlowConfig {
    let mut config = FlowConfig::new(4 * 1024);
    config.dse.population_size = 24;
    config.dse.generations = 10;
    config.max_layouts = 1;
    config
}

fn assert_same_chip_frontier(a: &[ChipDesignPoint], b: &[ChipDesignPoint]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.chip, y.chip);
        assert_eq!(x.objective_vector(), y.objective_vector());
    }
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("easyacim_persistence_tests");
    fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

fn assert_cold(service: &ExplorationService) {
    assert!(service.archives().is_empty());
    assert!(service.spaces().is_empty());
    assert_eq!(service.cached_evaluations(), 0);
    assert_eq!(service.cached_macro_metrics(), 0);
}

#[test]
fn restored_service_is_bit_identical_to_the_warm_original() {
    let path = temp_path("round-trip.snap");
    let original = ExplorationService::new();
    let cold = original
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    let space = cold.session.space().to_string();

    let report = original.snapshot(&path).unwrap();
    assert_eq!(report.archives, 1);
    assert_eq!(report.genomes, cold.session.len());
    assert_eq!(report.evaluations, original.cached_evaluations());
    assert_eq!(report.macro_metrics, original.cached_macro_metrics());
    assert!(report.evaluations > 0);
    assert!(report.macro_metrics > 0);
    assert_eq!(report.bytes, fs::metadata(&path).unwrap().len());

    // A fresh process: restore, then warm-start from the restored archive.
    let restored = ExplorationService::new();
    let restore = restored.restore(&path).unwrap();
    assert_eq!(restore.archives, 1);
    assert_eq!(restore.evaluations, report.evaluations);
    assert_eq!(restore.macro_metrics, report.macro_metrics);
    assert_eq!(restore.skipped_evaluations, 0);
    assert_eq!(restore.bytes, report.bytes);
    assert_eq!(restored.cached_evaluations(), original.cached_evaluations());

    let archive = restored.archive(&space).expect("archive restored");
    assert_eq!(archive.space(), cold.session.space());

    // The same warm request on the original and the restored service:
    // identical seeds + identical caches = bit-identical frontiers.
    let warm_original = original
        .run(ExplorationRequest::chip_space(quick_chip_config()).warm_start(cold.session.clone()))
        .unwrap()
        .into_chip()
        .unwrap();
    let warm_restored = restored
        .run(ExplorationRequest::chip_space(quick_chip_config()).warm_start(archive))
        .unwrap()
        .into_chip()
        .unwrap();
    assert_same_chip_frontier(&warm_original.result.front, &warm_restored.result.front);
    assert!(
        warm_restored.result.engine.cache.hits > 0,
        "restored cache produced no hits"
    );
    assert_eq!(
        warm_restored.result.engine.cache.misses,
        warm_original.result.engine.cache.misses
    );

    // The restore counters surface through exposition.
    let text = easyacim::prometheus_text(&restored.telemetry());
    assert!(text.contains("service_restored_archives 1"));
    assert!(text.contains(&format!(
        "service_restored_evaluations {}",
        restore.evaluations
    )));
    assert!(text.contains(&format!(
        "service_restored_macro_metrics {}",
        restore.macro_metrics
    )));
    assert!(text.contains("service_restore_seconds"));

    fs::remove_file(&path).unwrap();
}

#[test]
fn restoring_into_a_live_service_is_first_wins() {
    let path = temp_path("first-wins.snap");
    let service = ExplorationService::new();
    service
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    let before = service.cached_evaluations();
    service.snapshot(&path).unwrap();

    // Restoring a service's own snapshot into itself merges nothing: every
    // entry is already live, and live entries win.
    let report = service.restore(&path).unwrap();
    assert_eq!(report.archives, 0);
    assert_eq!(report.skipped_archives, 1);
    assert_eq!(report.evaluations, 0);
    assert_eq!(report.skipped_evaluations, before);
    assert_eq!(report.macro_metrics, 0);
    assert!(report.skipped_macro_metrics > 0);
    assert_eq!(service.cached_evaluations(), before);

    fs::remove_file(&path).unwrap();
}

#[test]
fn corrupted_and_version_skewed_snapshots_reject_with_a_clean_cold_start() {
    let path = temp_path("donor.snap");
    let donor = ExplorationService::new();
    donor
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    donor.snapshot(&path).unwrap();
    let bytes = fs::read(&path).unwrap();
    fs::remove_file(&path).unwrap();

    let corrupted_path = temp_path("corrupted.snap");
    let restore_err = |corrupted: &[u8]| -> PersistError {
        fs::write(&corrupted_path, corrupted).unwrap();
        let victim = ExplorationService::new();
        let err = victim.restore(&corrupted_path).unwrap_err();
        // Rejection happens before any merge: the victim stays cold and
        // keeps working (a request still runs fine below).
        assert_cold(&victim);
        let text = easyacim::prometheus_text(&victim.telemetry());
        assert!(
            text.contains(&format!(
                "service_restore_rejected_total{{reason=\"{}\"}} 1",
                err.reason()
            )),
            "missing rejection counter for {err:?}"
        );
        err
    };

    // Truncation at every kind of boundary.
    for cut in [0, 7, 12, 20, bytes.len() / 2, bytes.len() - 1] {
        let err = restore_err(&bytes[..cut]);
        assert!(
            !matches!(err, PersistError::Io { .. }),
            "truncation at {cut} produced an Io error"
        );
    }
    // Flipped bytes in the magic, the header, and the payloads.
    for position in [0, 9, 17, bytes.len() / 2, bytes.len() - 1] {
        let mut corrupted = bytes.clone();
        corrupted[position] ^= 0x20;
        restore_err(&corrupted);
    }
    // A future format version is reported honestly, not as corruption.
    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&(acim_persist::FORMAT_VERSION + 1).to_le_bytes());
    assert!(matches!(
        restore_err(&future),
        PersistError::UnsupportedVersion { .. }
    ));
    // A missing file is a typed I/O error.
    fs::remove_file(&corrupted_path).unwrap();
    let victim = ExplorationService::new();
    assert!(matches!(
        victim.restore(&corrupted_path).unwrap_err(),
        PersistError::Io { op: "read", .. }
    ));
    assert_cold(&victim);

    // After all of that, the victim still serves requests from cold.
    let response = victim
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    assert!(!response.result.front.is_empty());
}

#[test]
fn foreign_signatures_are_rejected_before_any_merge() {
    let path = temp_path("foreign.snap");
    let mut snapshot = Snapshot::new();
    snapshot.archives.push(ArchiveRecord {
        space: "not-a-namespace".into(),
        genomes: vec![vec![0.5, 0.5]],
    });
    snapshot.write(&path).unwrap();

    let service = ExplorationService::new();
    let err = service.restore(&path).unwrap_err();
    assert!(matches!(err, PersistError::BadSignature { .. }));
    assert_eq!(err.reason(), "bad_signature");
    assert_cold(&service);

    // FlowError carries the typed persistence error for flow-level callers.
    let flow_err: easyacim::FlowError = err.into();
    assert!(flow_err.to_string().contains("persistence failed"));

    fs::remove_file(&path).unwrap();
}

#[test]
fn snapshot_after_three_jobs_captures_every_space() {
    let path = temp_path("multi-space.snap");
    let service = ExplorationService::new();

    // Three jobs over three distinct design spaces: two chip variants and
    // one macro flow.
    let chip_a = quick_chip_config();
    let mut chip_b = quick_chip_config();
    chip_b.dse.buffer_kib = vec![16, 64];
    let handles = [
        service
            .submit(ExplorationRequest::chip_space(chip_a))
            .unwrap(),
        service
            .submit(ExplorationRequest::chip_space(chip_b))
            .unwrap(),
        service
            .submit(ExplorationRequest::macro_space(quick_flow_config()))
            .unwrap(),
    ];
    let mut spaces: Vec<String> = handles.iter().map(|h| h.space().to_string()).collect();
    for handle in handles {
        handle.join().unwrap();
    }
    spaces.sort();
    spaces.dedup();
    assert_eq!(spaces.len(), 3, "expected three distinct spaces");

    let archives = service.archives();
    assert_eq!(archives.len(), 3);
    let archived: Vec<&str> = archives.iter().map(SessionArchive::space).collect();
    assert_eq!(
        archived,
        spaces.iter().map(String::as_str).collect::<Vec<_>>()
    );
    for space in &spaces {
        assert!(service.archive(space).is_some());
        assert!(!service.archive(space).unwrap().is_empty());
    }
    assert!(service.archive("chip/nonexistent").is_none());

    let report = service.snapshot(&path).unwrap();
    assert_eq!(report.archives, 3);
    assert_eq!(report.eval_caches, 3);

    // The restored registry holds exactly the same three archives.
    let restored = ExplorationService::new();
    restored.restore(&path).unwrap();
    assert_eq!(restored.archives().len(), 3);
    for (a, b) in service.archives().iter().zip(restored.archives().iter()) {
        assert_eq!(a.space(), b.space());
        assert_eq!(a.genomes(), b.genomes());
    }

    fs::remove_file(&path).unwrap();
}
