//! Integration test: the analytic estimation model (Equations 2–11) agrees
//! with the behavioural simulator it is calibrated against — the
//! reproduction's equivalent of validating the model against post-layout
//! simulation (Section 3.2.1).

use acim_arch::{measure_snr, AcimSpec, EnergyModelParams, NoiseConfig};
use acim_model::calibrate::{apply_snr_offset, calibrate_adc_energy, calibrate_snr_offset};
use acim_model::{snr_simplified_db, ModelParams};
use acim_tech::Technology;

#[test]
fn calibrated_snr_model_tracks_simulation_within_a_few_db() {
    let tech = Technology::s28();
    let specs: Vec<AcimSpec> = [
        (64usize, 16usize, 4usize, 3u32),
        (128, 16, 4, 4),
        (128, 16, 8, 3),
        (256, 16, 8, 5),
    ]
    .iter()
    .map(|&(h, w, l, b)| AcimSpec::from_dimensions(h, w, l, b).expect("valid"))
    .collect();

    let report = calibrate_snr_offset(&specs, &tech, 64, 7).expect("calibration runs");
    let mut params = ModelParams::s28_default();
    apply_snr_offset(&mut params, report.fitted[0]);

    // Each individual point must be predicted within a few dB once the
    // single offset is fitted — the structural terms do the real work.
    for (i, spec) in specs.iter().enumerate() {
        let predicted = snr_simplified_db(spec, &params).expect("model evaluates");
        let measured = measure_snr(spec, &tech, NoiseConfig::realistic(), 64, 7 + i as u64)
            .expect("simulation runs")
            .snr_db;
        assert!(
            (predicted - measured).abs() < 6.0,
            "{spec}: model {predicted:.1} dB vs simulation {measured:.1} dB"
        );
    }
    assert!(
        report.rms_residual < 5.0,
        "rms residual {:.2} dB",
        report.rms_residual
    );
}

#[test]
fn simulation_and_model_rank_designs_identically_on_snr() {
    // Even without calibration the *ordering* of designs by SNR must agree,
    // otherwise the DSE would optimise the wrong thing.
    let tech = Technology::s28();
    let params = ModelParams::s28_default();
    let low = AcimSpec::from_dimensions(256, 16, 2, 3).expect("valid"); // long dot product
    let high = AcimSpec::from_dimensions(256, 16, 8, 5).expect("valid"); // short, precise
    let model_low = snr_simplified_db(&low, &params).expect("evaluates");
    let model_high = snr_simplified_db(&high, &params).expect("evaluates");
    let sim_low = measure_snr(&low, &tech, NoiseConfig::realistic(), 64, 3)
        .expect("runs")
        .snr_db;
    let sim_high = measure_snr(&high, &tech, NoiseConfig::realistic(), 64, 4)
        .expect("runs")
        .snr_db;
    assert!(model_high > model_low);
    assert!(
        sim_high > sim_low,
        "simulation disagrees with the model's ranking: {sim_high:.1} vs {sim_low:.1} dB"
    );
}

#[test]
fn adc_energy_constants_are_recoverable_from_samples() {
    let truth = EnergyModelParams::s28_default();
    let samples: Vec<(u32, f64)> = (1..=8)
        .map(|b| (b, truth.adc_energy(b).expect("valid").value()))
        .collect();
    let fit = calibrate_adc_energy(&samples, truth.vdd).expect("fit runs");
    assert!((fit.fitted[0] - truth.k1.value()).abs() < 1.0);
    assert!((fit.fitted[1] - truth.k2.value()).abs() < 0.02);
}
