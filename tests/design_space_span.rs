//! Integration test for the paper's headline claim (Section 4 / Figure 10):
//! the generated design space spans roughly 50–750 TOPS/W in energy
//! efficiency and 1500–7500 F²/bit in area, and the trade-off trends of
//! Figure 9 hold.

use acim_dse::sweep::SweepParameter;
use acim_dse::{enumerate_design_space, sweep_by_parameter};
use acim_model::ModelParams;

#[test]
fn efficiency_and_area_spans_match_the_paper_shape() {
    let params = ModelParams::s28_default();
    let mut efficiency = Vec::new();
    let mut area = Vec::new();
    for array_size in [4 * 1024, 16 * 1024, 64 * 1024] {
        for point in enumerate_design_space(array_size, 16, 1024, &params).expect("enumerates") {
            efficiency.push(point.metrics.tops_per_watt);
            area.push(point.metrics.area_f2_per_bit);
        }
    }
    let min_eff = efficiency.iter().copied().fold(f64::INFINITY, f64::min);
    let max_eff = efficiency.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min_area = area.iter().copied().fold(f64::INFINITY, f64::min);
    let max_area = area.iter().copied().fold(f64::NEG_INFINITY, f64::max);

    // Paper: 50–750 TOPS/W and 1500–7500 F²/bit.  The reproduction must span
    // at least an order of magnitude in efficiency with comparable endpoints,
    // and the same area band.
    assert!(min_eff < 80.0, "least efficient design {min_eff:.0} TOPS/W");
    assert!(max_eff > 600.0, "most efficient design {max_eff:.0} TOPS/W");
    assert!(max_eff / min_eff > 8.0, "efficiency span too narrow");
    assert!(min_area < 2200.0, "densest design {min_area:.0} F2/bit");
    assert!(max_area > 4000.0, "largest design {max_area:.0} F2/bit");
    assert!(max_area < 12_000.0, "area blew past the paper's band");
}

#[test]
fn figure9_parameter_trends_hold_jointly() {
    let params = ModelParams::s28_default();
    // L trend: throughput and area both fall as L grows.
    let by_l = sweep_by_parameter(16 * 1024, SweepParameter::LocalArray, &params).expect("sweep");
    let mut last_throughput = f64::INFINITY;
    let mut last_area = f64::INFINITY;
    for series in &by_l {
        let throughput = series.max_throughput_tops();
        let area = series.min_area_f2_per_bit();
        assert!(
            throughput <= last_throughput + 1e-9,
            "throughput not monotone in L"
        );
        assert!(area <= last_area + 1e-9, "area not monotone in L");
        last_throughput = throughput;
        last_area = area;
    }
    // B trend: efficiency falls and SNR rises as B grows.
    let by_b = sweep_by_parameter(16 * 1024, SweepParameter::AdcBits, &params).expect("sweep");
    let mut last_eff = f64::INFINITY;
    let mut last_snr = f64::NEG_INFINITY;
    for series in &by_b {
        let eff = series.mean_tops_per_watt();
        let snr = series.mean_snr_db();
        assert!(eff <= last_eff + 1e-9, "efficiency not monotone in B_ADC");
        assert!(snr >= last_snr - 1e-9, "SNR not monotone in B_ADC");
        last_eff = eff;
        last_snr = snr;
    }
}
