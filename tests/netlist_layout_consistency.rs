//! Property-based cross-crate consistency: for any valid specification, the
//! template-based netlist generator and the template-based layout flow must
//! describe the same macro (same leaf-cell population), the column template
//! must be DRC-clean, and the SPICE writer must emit a balanced deck.

use acim_arch::AcimSpec;
use acim_cell::CellLibrary;
use acim_layout::{check_layout, ColumnTemplate, LayoutFlow};
use acim_netlist::{design_stats, write_spice, NetlistGenerator};
use acim_tech::Technology;
use proptest::prelude::*;

/// Small-but-varied valid specifications (kept small so the property test
/// stays fast: at most a few thousand bit cells).
fn small_spec() -> impl Strategy<Value = AcimSpec> {
    (4u32..=7, 2u32..=5, 1u32..=4, 1u32..=5).prop_filter_map(
        "must satisfy the architectural constraints",
        |(log_h, log_w, log_l, bits)| {
            let h = 1usize << log_h;
            let w = 1usize << log_w;
            let l = 1usize << log_l;
            AcimSpec::from_dimensions(h, w, l, bits).ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn netlist_and_layout_agree_for_any_valid_spec(spec in small_spec()) {
        let tech = Technology::s28();
        let library = CellLibrary::s28_default(&tech);

        // Netlist side.
        let design = NetlistGenerator::new(&library).generate(&spec).unwrap();
        let stats = design_stats(&design, &library).unwrap();
        prop_assert_eq!(stats.sram_cells, spec.array_size());
        prop_assert_eq!(stats.compute_cells, spec.capacitors_per_column() * spec.width());
        prop_assert_eq!(stats.comparators, spec.width());
        prop_assert_eq!(stats.sar_dffs, spec.width() * spec.adc_bits() as usize);
        prop_assert_eq!(stats.capacitors, stats.compute_cells);

        // Layout side.
        let macro_layout = LayoutFlow::new(&tech, &library).generate(&spec).unwrap();
        let count = |cell: &str| {
            macro_layout
                .layout
                .instances
                .iter()
                .filter(|i| i.cell == cell)
                .count()
        };
        prop_assert_eq!(count("SRAM8T"), stats.sram_cells);
        prop_assert_eq!(count("LC_CELL"), stats.compute_cells);
        prop_assert_eq!(count("COMP_SA"), stats.comparators);
        prop_assert_eq!(count("SAR_DFF"), stats.sar_dffs);
        prop_assert_eq!(count("BUF"), stats.buffers);

        // The measured density stays within 10% of the analytic model.
        let params = acim_model::ModelParams::s28_default();
        let model_area = acim_model::area_f2_per_bit(&spec, &params).unwrap();
        let layout_area = macro_layout.metrics.core_area_f2_per_bit;
        prop_assert!(
            (model_area - layout_area).abs() / model_area < 0.10,
            "model {} vs layout {} F2/bit", model_area, layout_area
        );

        // The repeated column tile is DRC-clean.
        let column = ColumnTemplate::build(&spec, &tech, &library).unwrap();
        let report = check_layout(&column.layout, &tech);
        prop_assert!(report.is_clean(), "column DRC violations: {:?}",
            report.violations.iter().take(3).collect::<Vec<_>>());

        // The SPICE deck is balanced and names the top module.
        let deck = write_spice(&design, &library).unwrap();
        prop_assert_eq!(deck.matches(".SUBCKT").count(), deck.matches(".ENDS").count());
        prop_assert!(deck.contains(".SUBCKT ACIM_TOP"));
    }
}
