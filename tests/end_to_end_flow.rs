//! Integration test: the complete EasyACIM flow (Figure 4) from array size
//! to generated layouts, spanning every crate of the workspace.

use easyacim::prelude::*;
use easyacim::FlowConfig;

fn quick_config(array_size: usize) -> FlowConfig {
    let mut config = FlowConfig::new(array_size);
    config.dse.population_size = 24;
    config.dse.generations = 10;
    config.max_layouts = 1;
    config
}

#[test]
fn flow_produces_consistent_netlist_and_layout() {
    let result = TopFlowController::new(quick_config(4 * 1024))
        .expect("controller builds")
        .run()
        .expect("flow runs");

    assert!(!result.frontier.is_empty());
    assert!(!result.designs.is_empty());
    let design = &result.designs[0];

    // The netlist and the layout describe the same macro.
    let spec = design.point.spec;
    assert_eq!(design.netlist_stats.sram_cells, spec.array_size());
    assert_eq!(
        design.netlist_stats.comparators,
        spec.width(),
        "one comparator per column"
    );
    let sram_instances = design
        .layout
        .layout
        .instances
        .iter()
        .filter(|i| i.cell == "SRAM8T")
        .count();
    assert_eq!(sram_instances, spec.array_size());

    // The layout-measured density agrees with the analytic model within 10%.
    let model_area = design.point.metrics.area_f2_per_bit;
    let layout_area = design.layout.metrics.core_area_f2_per_bit;
    let gap = (model_area - layout_area).abs() / model_area;
    assert!(
        gap < 0.10,
        "model {model_area:.0} vs layout {layout_area:.0} F2/bit ({:.1}% apart)",
        gap * 100.0
    );
}

#[test]
fn distillation_profiles_select_different_corners() {
    // The same frontier distilled for a transformer vs an SNN must not pick
    // identical design sets (the Figure 1 motivation, end to end).
    let mut config = quick_config(16 * 1024);
    config.dse.population_size = 40;
    config.dse.generations = 20;
    let controller = TopFlowController::new(config).expect("controller builds");
    let frontier = {
        let explorer = DesignSpaceExplorer::new(controller.config().dse.clone()).expect("explorer");
        explorer.explore().expect("explore").into_points()
    };

    let transformer = UserRequirements {
        min_snr_db: Some(ApplicationProfile::Transformer.min_snr_db()),
        ..UserRequirements::none()
    }
    .distill(&frontier);
    let snn = UserRequirements {
        min_tops_per_watt: Some(ApplicationProfile::Snn.min_tops_per_watt()),
        ..UserRequirements::none()
    }
    .distill(&frontier);

    assert!(
        !transformer.is_empty(),
        "transformer profile found no design"
    );
    assert!(!snn.is_empty(), "snn profile found no design");
    let min_bits_transformer = transformer.iter().map(|p| p.spec.adc_bits()).min().unwrap();
    let max_bits_snn = snn.iter().map(|p| p.spec.adc_bits()).max().unwrap();
    assert!(
        min_bits_transformer > 1,
        "accuracy profile should not accept 1-bit ADCs"
    );
    assert!(
        snn.iter().any(|p| p.spec.adc_bits() <= 3),
        "efficiency profile should include low-precision designs (max B seen: {max_bits_snn})"
    );
}
