//! Cross-crate integration tests of the chip-level subsystem: network
//! partitioning onto a macro grid, analytic evaluation, NSGA-II
//! co-exploration, behavioural validation, and the easyacim flow stage.

use acim_arch::AcimSpec;
use acim_chip::{evaluate_chip, simulate_network, ChipEvaluator, ChipSpec, MacroGrid, Network};
use acim_dse::{ChipDseConfig, ChipExplorer};
use easyacim::{chip_report, ChipFlow, ChipFlowConfig, FlowConfig, TopFlowController};

fn quick_dse(network: Network) -> ChipDseConfig {
    let mut config = ChipDseConfig::for_network(network);
    config.population_size = 24;
    config.generations = 10;
    config.grid_rows = vec![1, 2];
    config.grid_cols = vec![1, 2];
    config.buffer_kib = vec![8, 32];
    config
}

#[test]
fn cnn_maps_onto_macro_grid_end_to_end() {
    let spec = AcimSpec::from_dimensions(64, 16, 4, 4).unwrap();
    let chip = ChipSpec::new(MacroGrid::uniform(2, 2, spec).unwrap(), 32).unwrap();
    let network = Network::edge_cnn(2);

    // Analytic path.
    let metrics = evaluate_chip(&chip, &network).unwrap();
    assert_eq!(metrics.layers.len(), network.len());
    assert!(metrics.throughput_tops > 0.0);
    assert!(metrics.energy_per_inference_pj > 0.0);

    // Behavioural path: every layer runs on the grid with bounded error.
    let sim = simulate_network(&chip, &network, 17).unwrap();
    assert_eq!(sim.layers.len(), network.len());
    assert!(
        sim.max_relative_error() < 0.2,
        "error {}",
        sim.max_relative_error()
    );
    // The wide middle layers must actually use several macros.
    assert!(sim.layers.iter().any(|l| l.macros_used > 1));
    // Analytic and measured latency agree on the workload scale (same
    // partitioner, same cycle counts; timing models differ slightly).
    let ratio = metrics.latency_ns / sim.total_latency_ns;
    assert!((0.2..5.0).contains(&ratio), "latency ratio {ratio}");
}

#[test]
fn chip_exploration_is_deterministic_with_parallel_evaluation() {
    let config = quick_dse(Network::edge_cnn(1));
    let a = ChipExplorer::new(config.clone())
        .unwrap()
        .explore()
        .unwrap();
    let b = ChipExplorer::new(config).unwrap().explore().unwrap();
    assert_eq!(a.len(), b.len());
    assert_eq!(a.engine.evaluations, b.engine.evaluations);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.objective_vector(), y.objective_vector());
        assert_eq!(x.chip, y.chip);
    }
}

#[test]
fn different_seeds_explore_differently() {
    let base = quick_dse(Network::transformer_block());
    let mut reseeded = base.clone();
    reseeded.seed = base.seed ^ 0xDEAD;
    let a = ChipExplorer::new(base).unwrap().explore().unwrap();
    let b = ChipExplorer::new(reseeded).unwrap().explore().unwrap();
    // Either the fronts differ or (rarely) both converged to the same
    // set; the evaluation budget at least must match the configuration.
    assert_eq!(a.engine.evaluations, b.engine.evaluations);
}

#[test]
fn heterogeneous_grid_evaluates_and_simulates() {
    let fast = AcimSpec::from_dimensions(128, 32, 2, 3).unwrap();
    let dense = AcimSpec::from_dimensions(64, 64, 8, 3).unwrap();
    let chip = ChipSpec::new(MacroGrid::from_specs(1, 2, vec![fast, dense]).unwrap(), 32).unwrap();
    let network = Network::transformer_block();
    let metrics = evaluate_chip(&chip, &network).unwrap();
    assert!(metrics.accuracy_db.is_finite());
    let sim = simulate_network(&chip, &network, 5).unwrap();
    assert!(sim.max_relative_error() < 0.3);
}

#[test]
fn all_three_workload_families_run_on_a_chip() {
    let spec = AcimSpec::from_dimensions(64, 16, 4, 4).unwrap();
    let chip = ChipSpec::new(MacroGrid::uniform(2, 2, spec).unwrap(), 16).unwrap();
    let evaluator = ChipEvaluator::s28_default();
    for network in [
        Network::edge_cnn(1),
        Network::transformer_block(),
        Network::snn_pipeline(),
    ] {
        let metrics = evaluator.evaluate(&chip, &network).unwrap();
        assert!(metrics.latency_ns > 0.0, "{}", network.name);
        assert!(metrics.mean_utilization > 0.0, "{}", network.name);
    }
}

#[test]
fn chip_flow_stage_reports_front_and_validation() {
    let mut config = ChipFlowConfig::for_network(Network::edge_cnn(1));
    config.dse = quick_dse(Network::edge_cnn(1));
    let result = ChipFlow::new(config).run().unwrap();
    assert!(!result.front.is_empty());
    let report = chip_report(&result);
    assert!(report.contains("frontier chips"));
    assert!(report.contains("behavioural validation"));
    let validation = result.validation.expect("validation enabled by default");
    assert!(validation.max_relative_error() < 0.5);
}

#[test]
fn top_flow_controller_composes_macro_and_chip_stages() {
    let mut flow_config = FlowConfig::new(4 * 1024);
    flow_config.dse.population_size = 24;
    flow_config.dse.generations = 10;
    flow_config.max_layouts = 1;
    let mut chip_config = ChipFlowConfig::for_network(Network::edge_cnn(1));
    chip_config.dse = quick_dse(Network::edge_cnn(1));
    chip_config.validate_best = false;
    let result = TopFlowController::new(flow_config.with_chip_stage(chip_config))
        .unwrap()
        .run()
        .unwrap();
    assert!(
        !result.designs.is_empty(),
        "macro flow still produces layouts"
    );
    assert!(!result.chip.as_ref().unwrap().front.is_empty());
}
