//! Acceptance tests of the multi-tenant `ExplorationService` redesign:
//!
//! * service-run requests are **bit-identical** to the pre-redesign
//!   single-tenant entry points (`TopFlowController::run`,
//!   `ChipFlow::run`) — the shared cache is semantically lossless;
//! * consecutive requests over one design space show nonzero
//!   cross-request cache hits;
//! * warm-started runs are deterministic and their final hypervolume is
//!   no worse than the cold run they were seeded from;
//! * concurrent requests produce the same frontiers as the same requests
//!   run serially.

use acim_moga::hypervolume_monte_carlo;
use easyacim::prelude::*;
use easyacim::service::{ChipRequest, ExplorationRequest, ExplorationService, MacroRequest};

fn quick_flow_config() -> FlowConfig {
    let mut config = FlowConfig::new(4 * 1024);
    config.dse.population_size = 24;
    config.dse.generations = 10;
    config.max_layouts = 1;
    config
}

fn quick_chip_config() -> ChipFlowConfig {
    let mut config = ChipFlowConfig::for_network(Network::edge_cnn(1));
    config.dse.population_size = 16;
    config.dse.generations = 6;
    config.dse.grid_rows = vec![1, 2];
    config.dse.grid_cols = vec![1, 2];
    config.dse.buffer_kib = vec![8, 32];
    config.validate_best = false;
    config
}

fn assert_same_macro_frontier(a: &[DesignPoint], b: &[DesignPoint]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.spec, y.spec);
        assert_eq!(x.objective_vector(), y.objective_vector());
    }
}

fn assert_same_chip_frontier(a: &[ChipDesignPoint], b: &[ChipDesignPoint]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.chip, y.chip);
        assert_eq!(x.objective_vector(), y.objective_vector());
    }
}

#[test]
fn service_macro_request_is_bit_identical_to_top_flow_controller() {
    let direct = TopFlowController::new(quick_flow_config())
        .unwrap()
        .run()
        .unwrap();

    let service = ExplorationService::new();
    let response = service
        .run(ExplorationRequest::macro_flow(quick_flow_config()))
        .unwrap()
        .into_macro()
        .unwrap();

    assert_same_macro_frontier(&direct.frontier, &response.result.frontier);
    assert_same_macro_frontier(&direct.distilled, &response.result.distilled);
    assert_eq!(direct.designs.len(), response.result.designs.len());
    assert_eq!(
        direct.engine.evaluations,
        response.result.engine.evaluations
    );
    // The session archive re-encodes the frontier one genome per point.
    assert_eq!(response.session.len(), response.result.frontier.len());
    assert!(response.session.space().starts_with("macro/"));
    assert!(response.chip_session.is_none());
}

#[test]
fn service_chip_request_is_bit_identical_to_chip_flow() {
    let direct = ChipFlow::new(quick_chip_config()).run().unwrap();
    let service = ExplorationService::new();
    let response = service
        .run(ExplorationRequest::chip(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    assert_same_chip_frontier(&direct.front, &response.result.front);
    assert_eq!(
        direct.engine.evaluations,
        response.result.engine.evaluations
    );
}

#[test]
fn consecutive_requests_share_the_cache_across_requests() {
    let service = ExplorationService::new();
    let first = service
        .run(ExplorationRequest::chip(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    assert!(first.result.engine.cache.misses > 0);
    let entries = service.cached_evaluations();
    assert_eq!(entries, first.result.engine.cache.misses);

    // The second identical request replays the same trajectory: every
    // evaluation is answered by an entry the first request wrote.
    let second = service
        .run(ExplorationRequest::chip(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    assert_eq!(second.result.engine.cache.misses, 0);
    assert!(second.result.engine.cache.hits > 0);
    assert_eq!(
        second.result.engine.cache.hits,
        second.result.engine.evaluations
    );
    assert_eq!(service.cached_evaluations(), entries);
    assert_same_chip_frontier(&first.result.front, &second.result.front);
}

#[test]
fn warm_start_is_deterministic_and_no_worse_than_cold() {
    let service = ExplorationService::new();
    let cold = service
        .run(ExplorationRequest::chip(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();

    let warm_request =
        || ChipRequest::new(quick_chip_config()).with_warm_start(cold.session.clone());
    let warm_a = service
        .run(ExplorationRequest::Chip(warm_request()))
        .unwrap()
        .into_chip()
        .unwrap();
    let warm_b = service
        .run(ExplorationRequest::Chip(warm_request()))
        .unwrap()
        .into_chip()
        .unwrap();
    // Warm-started runs over an identical seeded space are
    // bit-deterministic.
    assert_same_chip_frontier(&warm_a.result.front, &warm_b.result.front);

    // Every cold frontier point is matched-or-dominated by the warm
    // frontier (the seeds were archived up front), which implies
    // hypervolume(warm) >= hypervolume(cold) exactly.
    let warm_front: Vec<Vec<f64>> = warm_a
        .result
        .front
        .iter()
        .map(ChipDesignPoint::objective_vector)
        .collect();
    let cold_front: Vec<Vec<f64>> = cold
        .result
        .front
        .iter()
        .map(ChipDesignPoint::objective_vector)
        .collect();
    for c in &cold_front {
        assert!(
            warm_front
                .iter()
                .any(|w| w == c || acim_moga::dominates(w, c)),
            "cold frontier point lost by the warm run"
        );
    }

    // The seeded Monte-Carlo indicator agrees (tiny tolerance for the
    // estimator's sampling-box difference between the two fronts).
    let mut reference = vec![f64::NEG_INFINITY; 4];
    for point in cold_front.iter().chain(&warm_front) {
        for (r, &v) in reference.iter_mut().zip(point) {
            *r = r.max(v);
        }
    }
    let reference: Vec<f64> = reference
        .into_iter()
        .map(|r| r + r.abs() * 0.1 + 1.0)
        .collect();
    let warm_hv = hypervolume_monte_carlo(&warm_front, &reference, 100_000, 97);
    let cold_hv = hypervolume_monte_carlo(&cold_front, &reference, 100_000, 97);
    assert!(
        warm_hv >= cold_hv * (1.0 - 1e-2),
        "warm hypervolume {warm_hv} fell below cold {cold_hv}"
    );
}

#[test]
fn concurrent_requests_match_the_same_requests_run_serially() {
    // Mixed workload: one macro flow plus two chip spaces (one space
    // submitted twice, so concurrent requests also race on one store).
    let chip_small = quick_chip_config();
    let mut chip_large = quick_chip_config();
    chip_large.dse.buffer_kib = vec![16, 64];

    let serial_service = ExplorationService::new();
    let serial_macro = serial_service
        .run(ExplorationRequest::macro_flow(quick_flow_config()))
        .unwrap()
        .into_macro()
        .unwrap();
    let serial_small = serial_service
        .run(ExplorationRequest::chip(chip_small.clone()))
        .unwrap()
        .into_chip()
        .unwrap();
    let serial_large = serial_service
        .run(ExplorationRequest::chip(chip_large.clone()))
        .unwrap()
        .into_chip()
        .unwrap();

    let concurrent = ExplorationService::new();
    let handles = vec![
        concurrent
            .submit(ExplorationRequest::macro_flow(quick_flow_config()))
            .unwrap(),
        concurrent
            .submit(ExplorationRequest::chip(chip_small.clone()))
            .unwrap(),
        concurrent
            .submit(ExplorationRequest::chip(chip_small))
            .unwrap(),
        concurrent
            .submit(ExplorationRequest::chip(chip_large))
            .unwrap(),
    ];
    let mut responses: Vec<ExplorationResponse> = handles
        .into_iter()
        .map(|handle| handle.join().unwrap())
        .collect();

    let concurrent_large = responses.pop().unwrap().into_chip().unwrap();
    let concurrent_small_b = responses.pop().unwrap().into_chip().unwrap();
    let concurrent_small_a = responses.pop().unwrap().into_chip().unwrap();
    let concurrent_macro = responses.pop().unwrap().into_macro().unwrap();

    assert_same_macro_frontier(
        &serial_macro.result.frontier,
        &concurrent_macro.result.frontier,
    );
    assert_same_chip_frontier(&serial_small.result.front, &concurrent_small_a.result.front);
    assert_same_chip_frontier(&serial_small.result.front, &concurrent_small_b.result.front);
    assert_same_chip_frontier(&serial_large.result.front, &concurrent_large.result.front);

    // Two spaces for the chips, one for the macro flow.
    assert_eq!(concurrent.spaces().len(), 3);
}

#[test]
fn warm_started_macro_flow_round_trips_through_the_service() {
    let service = ExplorationService::new();
    let cold = service
        .run(ExplorationRequest::macro_flow(quick_flow_config()))
        .unwrap()
        .into_macro()
        .unwrap();
    assert!(!cold.session.is_empty());

    let warm = service
        .run(ExplorationRequest::Macro(
            MacroRequest::new(quick_flow_config()).with_warm_start(cold.session.clone()),
        ))
        .unwrap()
        .into_macro()
        .unwrap();
    // Cross-request reuse: the warm flow sees hits immediately.
    assert!(warm.result.engine.cache.hits > 0);
    // No cold frontier point is lost.
    for c in &cold.result.frontier {
        let c = c.objective_vector();
        assert!(warm.result.frontier.iter().any(|w| {
            let w = w.objective_vector();
            w == c || acim_moga::dominates(&w, &c)
        }));
    }
}
