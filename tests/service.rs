//! Acceptance tests of the multi-tenant `ExplorationService` redesign:
//!
//! * service-run requests are **bit-identical** to the pre-redesign
//!   single-tenant entry points (`TopFlowController::run`,
//!   `ChipFlow::run`) — the shared cache is semantically lossless;
//! * consecutive requests over one design space show nonzero
//!   cross-request cache hits;
//! * warm-started runs are deterministic and their final hypervolume is
//!   no worse than the cold run they were seeded from;
//! * concurrent requests produce the same frontiers as the same requests
//!   run serially.

use acim_moga::hypervolume_monte_carlo;
use easyacim::prelude::*;
use easyacim::service::{ExplorationRequest, ExplorationService, ServiceConfig};

fn quick_flow_config() -> FlowConfig {
    let mut config = FlowConfig::new(4 * 1024);
    config.dse.population_size = 24;
    config.dse.generations = 10;
    config.max_layouts = 1;
    config
}

fn quick_chip_config() -> ChipFlowConfig {
    let mut config = ChipFlowConfig::for_network(Network::edge_cnn(1));
    config.dse.population_size = 16;
    config.dse.generations = 6;
    config.dse.grid_rows = vec![1, 2];
    config.dse.grid_cols = vec![1, 2];
    config.dse.buffer_kib = vec![8, 32];
    config.validate_best = false;
    config
}

fn assert_same_macro_frontier(a: &[DesignPoint], b: &[DesignPoint]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.spec, y.spec);
        assert_eq!(x.objective_vector(), y.objective_vector());
    }
}

fn assert_same_chip_frontier(a: &[ChipDesignPoint], b: &[ChipDesignPoint]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.chip, y.chip);
        assert_eq!(x.objective_vector(), y.objective_vector());
    }
}

#[test]
fn service_macro_request_is_bit_identical_to_top_flow_controller() {
    let direct = TopFlowController::new(quick_flow_config())
        .unwrap()
        .run()
        .unwrap();

    let service = ExplorationService::new();
    let response = service
        .run(ExplorationRequest::macro_space(quick_flow_config()))
        .unwrap()
        .into_macro()
        .unwrap();

    assert_same_macro_frontier(&direct.frontier, &response.result.frontier);
    assert_same_macro_frontier(&direct.distilled, &response.result.distilled);
    assert_eq!(direct.designs.len(), response.result.designs.len());
    assert_eq!(
        direct.engine.evaluations,
        response.result.engine.evaluations
    );
    // The session archive re-encodes the frontier one genome per point.
    assert_eq!(response.session.len(), response.result.frontier.len());
    assert!(response.session.space().starts_with("macro/"));
    assert!(response.chip_session.is_none());
}

#[test]
fn service_chip_request_is_bit_identical_to_chip_flow() {
    let direct = ChipFlow::new(quick_chip_config()).run().unwrap();
    let service = ExplorationService::new();
    let response = service
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    assert_same_chip_frontier(&direct.front, &response.result.front);
    assert_eq!(
        direct.engine.evaluations,
        response.result.engine.evaluations
    );
}

#[test]
fn consecutive_requests_share_the_cache_across_requests() {
    let service = ExplorationService::new();
    let first = service
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    assert!(first.result.engine.cache.misses > 0);
    let entries = service.cached_evaluations();
    assert_eq!(entries, first.result.engine.cache.misses);

    // The second identical request replays the same trajectory: every
    // evaluation is answered by an entry the first request wrote.
    let second = service
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    assert_eq!(second.result.engine.cache.misses, 0);
    assert!(second.result.engine.cache.hits > 0);
    assert_eq!(
        second.result.engine.cache.hits,
        second.result.engine.evaluations
    );
    assert_eq!(service.cached_evaluations(), entries);
    assert_same_chip_frontier(&first.result.front, &second.result.front);
}

#[test]
fn warm_start_is_deterministic_and_no_worse_than_cold() {
    let service = ExplorationService::new();
    let cold = service
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();

    let warm_request =
        || ExplorationRequest::chip_space(quick_chip_config()).warm_start(cold.session.clone());
    let warm_a = service.run(warm_request()).unwrap().into_chip().unwrap();
    let warm_b = service.run(warm_request()).unwrap().into_chip().unwrap();
    // Warm-started runs over an identical seeded space are
    // bit-deterministic.
    assert_same_chip_frontier(&warm_a.result.front, &warm_b.result.front);

    // Every cold frontier point is matched-or-dominated by the warm
    // frontier (the seeds were archived up front), which implies
    // hypervolume(warm) >= hypervolume(cold) exactly.
    let warm_front: Vec<Vec<f64>> = warm_a
        .result
        .front
        .iter()
        .map(ChipDesignPoint::objective_vector)
        .collect();
    let cold_front: Vec<Vec<f64>> = cold
        .result
        .front
        .iter()
        .map(ChipDesignPoint::objective_vector)
        .collect();
    for c in &cold_front {
        assert!(
            warm_front
                .iter()
                .any(|w| w == c || acim_moga::dominates(w, c)),
            "cold frontier point lost by the warm run"
        );
    }

    // The seeded Monte-Carlo indicator agrees (tiny tolerance for the
    // estimator's sampling-box difference between the two fronts).
    let mut reference = vec![f64::NEG_INFINITY; 4];
    for point in cold_front.iter().chain(&warm_front) {
        for (r, &v) in reference.iter_mut().zip(point) {
            *r = r.max(v);
        }
    }
    let reference: Vec<f64> = reference
        .into_iter()
        .map(|r| r + r.abs() * 0.1 + 1.0)
        .collect();
    let warm_hv = hypervolume_monte_carlo(&warm_front, &reference, 100_000, 97);
    let cold_hv = hypervolume_monte_carlo(&cold_front, &reference, 100_000, 97);
    assert!(
        warm_hv >= cold_hv * (1.0 - 1e-2),
        "warm hypervolume {warm_hv} fell below cold {cold_hv}"
    );
}

#[test]
fn concurrent_requests_match_the_same_requests_run_serially() {
    // Mixed workload: one macro flow plus two chip spaces (one space
    // submitted twice, so concurrent requests also race on one store).
    let chip_small = quick_chip_config();
    let mut chip_large = quick_chip_config();
    chip_large.dse.buffer_kib = vec![16, 64];

    let serial_service = ExplorationService::new();
    let serial_macro = serial_service
        .run(ExplorationRequest::macro_space(quick_flow_config()))
        .unwrap()
        .into_macro()
        .unwrap();
    let serial_small = serial_service
        .run(ExplorationRequest::chip_space(chip_small.clone()))
        .unwrap()
        .into_chip()
        .unwrap();
    let serial_large = serial_service
        .run(ExplorationRequest::chip_space(chip_large.clone()))
        .unwrap()
        .into_chip()
        .unwrap();

    let concurrent = ExplorationService::new();
    let handles = vec![
        concurrent
            .submit(ExplorationRequest::macro_space(quick_flow_config()))
            .unwrap(),
        concurrent
            .submit(ExplorationRequest::chip_space(chip_small.clone()))
            .unwrap(),
        concurrent
            .submit(ExplorationRequest::chip_space(chip_small))
            .unwrap(),
        concurrent
            .submit(ExplorationRequest::chip_space(chip_large))
            .unwrap(),
    ];
    let mut responses: Vec<ExplorationResponse> = handles
        .into_iter()
        .map(|handle| handle.join().unwrap())
        .collect();

    let concurrent_large = responses.pop().unwrap().into_chip().unwrap();
    let concurrent_small_b = responses.pop().unwrap().into_chip().unwrap();
    let concurrent_small_a = responses.pop().unwrap().into_chip().unwrap();
    let concurrent_macro = responses.pop().unwrap().into_macro().unwrap();

    assert_same_macro_frontier(
        &serial_macro.result.frontier,
        &concurrent_macro.result.frontier,
    );
    assert_same_chip_frontier(&serial_small.result.front, &concurrent_small_a.result.front);
    assert_same_chip_frontier(&serial_small.result.front, &concurrent_small_b.result.front);
    assert_same_chip_frontier(&serial_large.result.front, &concurrent_large.result.front);

    // Two spaces for the chips, one for the macro flow.
    assert_eq!(concurrent.spaces().len(), 3);
}

#[test]
fn warm_started_macro_flow_round_trips_through_the_service() {
    let service = ExplorationService::new();
    let cold = service
        .run(ExplorationRequest::macro_space(quick_flow_config()))
        .unwrap()
        .into_macro()
        .unwrap();
    assert!(!cold.session.is_empty());

    let warm = service
        .run(ExplorationRequest::macro_space(quick_flow_config()).warm_start(cold.session.clone()))
        .unwrap()
        .into_macro()
        .unwrap();
    // Cross-request reuse: the warm flow sees hits immediately.
    assert!(warm.result.engine.cache.hits > 0);
    // No cold frontier point is lost.
    for c in &cold.result.frontier {
        let c = c.objective_vector();
        assert!(warm.result.frontier.iter().any(|w| {
            let w = w.objective_vector();
            w == c || acim_moga::dominates(&w, &c)
        }));
    }
}

#[test]
fn macro_metric_cache_is_shared_across_mixed_macro_and_chip_sessions() {
    // The macro flow and the chip stage here run over the SAME
    // ModelParams, so the service hands both the same macro-metric
    // cache: per-macro DesignMetrics derived by the macro exploration
    // are hits for the chip exploration that follows.
    let service = ExplorationService::new();
    let macro_response = service
        .run(ExplorationRequest::macro_space(quick_flow_config()))
        .unwrap()
        .into_macro()
        .unwrap();
    let macro_stats = macro_response.result.engine.macro_cache;
    assert!(macro_stats.misses > 0, "macro session primes the cache");
    assert!(service.cached_macro_metrics() > 0);

    let chip_response = service
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    let chip_stats = chip_response.result.engine.macro_cache;
    assert!(
        chip_stats.hits > 0,
        "chip session must reuse macro-session metrics: {chip_stats}"
    );

    // Both sessions read one cache: the registry holds exactly one
    // macro-metric cache (one shared ModelParams).
    let params = quick_chip_config().dse.params;
    let cache = service
        .macro_metric_cache(&params)
        .expect("cache exists for the shared parameter set");
    assert_eq!(service.cached_macro_metrics(), cache.len());

    // A chip request on a FRESH service (no macro session first) derives
    // its macros itself — the mixed session above saved that work.
    let cold = ExplorationService::new();
    let cold_chip = cold
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    assert!(cold_chip.result.engine.macro_cache.misses > chip_stats.misses);
    assert_same_chip_frontier(&cold_chip.result.front, &chip_response.result.front);
}

#[test]
fn bounded_service_evicts_without_changing_frontiers() {
    let unbounded = ExplorationService::new();
    let reference = unbounded
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();

    // Tiny bounds so a quick run is forced to recycle entries.
    let bounded = ExplorationService::with_config(ServiceConfig::bounded(16, 2));
    assert_eq!(bounded.config().cache_capacity, Some(16));
    let constrained = bounded
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    assert!(
        bounded.total_evictions() > 0,
        "16-entry evaluation cache plus 2-macro metric cache must evict"
    );
    assert!(bounded.cached_evaluations() <= 16);
    assert!(bounded.cached_macro_metrics() <= 2);
    assert!(constrained.result.engine.cache.evictions > 0);
    // Eviction costs hits, never results.
    assert_same_chip_frontier(&reference.result.front, &constrained.result.front);

    // Warm-starting over the bounded caches still dominates-or-equals:
    // rerun warm on the same bounded service.
    let warm = bounded
        .run(
            ExplorationRequest::chip_space(quick_chip_config())
                .warm_start(constrained.session.clone()),
        )
        .unwrap()
        .into_chip()
        .unwrap();
    for point in &constrained.result.front {
        let c = point.objective_vector();
        assert!(
            warm.result.front.iter().any(|w| {
                let w = w.objective_vector();
                w == c || acim_moga::dominates(&w, &c)
            }),
            "seeded frontier point lost under bounded caches"
        );
    }
}

#[test]
fn panicking_tenant_leaves_the_service_usable() {
    // Regression: `CacheStore` used to `.expect()` its mutex guard, so a
    // tenant panicking while holding the lock poisoned the shared store
    // and crashed every later request over the same design space.
    let service = ExplorationService::new();
    let handle = service
        .submit(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap();
    let space = handle.space().to_string();
    let first = handle.join().unwrap().into_chip().unwrap();

    // A hostile tenant grabs the shared store of that space and panics
    // while holding its lock.
    let store = service.cache_store(&space).expect("space has a store");
    let poisoner = store.clone();
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        poisoner.get_or_insert_with(vec![i64::MIN], || panic!("tenant died mid-insert"));
    }));
    assert!(panicked.is_err());

    // Every other tenant is unaffected: the same request runs again over
    // the (recovered) shared store, replays as pure hits, and produces
    // the identical frontier.
    let second = service
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    assert_eq!(second.result.engine.cache.misses, 0);
    assert_same_chip_frontier(&first.result.front, &second.result.front);
    assert!(!store.is_empty());
}

#[test]
fn full_hit_replay_reports_finite_rates_and_clean_reports() {
    // A --quick replay answered entirely from the cache can spend less
    // than a timer tick evaluating; the rate accessors must degrade to
    // 0.0 rather than leak NaN/inf into reports.
    let service = ExplorationService::new();
    let _ = service
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap();
    let replay = service
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    let engine = &replay.result.engine;
    assert_eq!(engine.cache.misses, 0, "replay must be pure hits");
    assert!(engine.evaluations_per_second().is_finite());
    assert!(engine.mean_generation_seconds().is_finite());
    assert!(engine.cache.hit_rate().is_finite());
    assert!(engine.macro_cache.hit_rate().is_finite());
    // "pJ/inf" (energy per inference) is a legitimate unit label; a
    // leaked non-finite value formats as a standalone "inf"/"-inf"/"NaN".
    let report = easyacim::chip_report(&replay.result);
    assert!(
        !report.contains("NaN") && !report.contains(" inf") && !report.contains("-inf"),
        "report leaked a non-finite number:\n{report}"
    );
    // The always-rendered telemetry line and the macro-metric reuse line
    // survive the zero-duration replay with finite values too.
    assert!(report.contains("telemetry: generation p50"));
    assert!(report.contains("macro-metric reuse:"));
    // Same for the service-level telemetry section: a replay whose
    // request latency histogram holds near-zero observations must still
    // render finite quantiles everywhere.
    let section = easyacim::telemetry_section(&service.telemetry());
    assert!(section.starts_with("telemetry:\n"));
    assert!(section.contains("service_request_seconds"));
    assert!(section.contains("service_cache_hit_rate"));
    assert!(
        !section.contains("NaN") && !section.contains(" inf") && !section.contains("-inf"),
        "telemetry section leaked a non-finite number:\n{section}"
    );
}

#[test]
fn telemetry_is_observably_passive() {
    // The acceptance bar of the telemetry layer: recording spans,
    // histograms and gauges must never perturb exploration.  Identical
    // requests on a telemetry-enabled and a telemetry-disabled service
    // produce bit-identical frontiers, macro and chip alike.
    let enabled = ExplorationService::new();
    assert!(enabled.telemetry_handle().is_enabled());
    let disabled = ExplorationService::with_config(ServiceConfig::default().without_telemetry());
    assert!(!disabled.telemetry_handle().is_enabled());

    let on_macro = enabled
        .run(ExplorationRequest::macro_space(quick_flow_config()))
        .unwrap()
        .into_macro()
        .unwrap();
    let off_macro = disabled
        .run(ExplorationRequest::macro_space(quick_flow_config()))
        .unwrap()
        .into_macro()
        .unwrap();
    assert_same_macro_frontier(&on_macro.result.frontier, &off_macro.result.frontier);
    assert_same_macro_frontier(&on_macro.result.distilled, &off_macro.result.distilled);

    let on_chip = enabled
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    let off_chip = disabled
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    assert_same_chip_frontier(&on_chip.result.front, &off_chip.result.front);
    assert_eq!(
        on_chip.result.engine.evaluations,
        off_chip.result.engine.evaluations
    );

    // The instrumented service actually recorded; the disabled one is
    // empty in both exposition formats.
    let on = enabled.telemetry();
    assert!(on.counter("service_requests_total", &[("kind", "macro")]) == Some(1));
    assert!(on.counter("service_requests_total", &[("kind", "chip")]) == Some(1));
    assert!(!easyacim::prometheus_text(&on).is_empty());
    let off = disabled.telemetry();
    assert!(off.is_empty());
    assert!(easyacim::prometheus_text(&off).is_empty());
    assert!(easyacim::json_text(&off).contains("\"metrics\":[]"));
}

#[test]
fn cancelling_one_job_mid_run_leaves_survivors_bit_identical() {
    use easyacim::FlowError;

    // Control: the same request on a fresh, quiet service.
    let control_service = ExplorationService::new();
    let control = control_service
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();

    // Test: a long-budget job over the SAME design space (the space
    // signature excludes budget fields, so both jobs share one cache) is
    // cancelled mid-run while a surviving job runs concurrently.
    let service = ExplorationService::with_config(ServiceConfig::default().with_workers(2));
    let mut long_config = quick_chip_config();
    long_config.dse.generations = 50_000;
    let victim = service
        .submit(ExplorationRequest::chip_space(long_config).label("victim"))
        .unwrap();
    while victim.progress().completed == 0 {
        std::thread::yield_now();
    }
    let survivor = service
        .submit(ExplorationRequest::chip_space(quick_chip_config()).label("survivor"))
        .unwrap();
    victim.cancel();
    match victim.join() {
        Err(FlowError::Cancelled { completed, total }) => {
            assert!(completed >= 1 && completed < total);
        }
        other => panic!("expected Cancelled, got {other:?}"),
    }
    let survived = survivor.join().unwrap().into_chip().unwrap();
    // The cancelled tenant's cache writes are a clean prefix of an
    // uninterrupted run's, and cache entries are semantically lossless:
    // the survivor's frontier is bit-identical to the no-cancellation
    // control run, no matter how many of its evaluations were answered
    // by entries the victim wrote before stopping.
    assert_same_chip_frontier(&control.result.front, &survived.result.front);

    // The shared cache stays consistent after the cancellation: an
    // identical replay is answered entirely from it, bit-identically.
    let replay = service
        .run(ExplorationRequest::chip_space(quick_chip_config()))
        .unwrap()
        .into_chip()
        .unwrap();
    assert_eq!(replay.result.engine.cache.misses, 0);
    assert_same_chip_frontier(&control.result.front, &replay.result.front);
}
