//! Cross-crate tests of the batch evaluation engine: property tests that
//! batch evaluation is order-preserving and bit-identical to serial
//! evaluation for the macro and chip problems, equivalence of the batched
//! NSGA-II loop with a forced-serial evaluation path, and determinism of
//! seeded explorations under population-parallel (and cached) evaluation.

use acim_dse::{AcimDesignProblem, ChipDseConfig, ChipExplorer, DesignSpaceExplorer, DseConfig};
use acim_model::ModelParams;
use acim_moga::{CachedProblem, Evaluation, Nsga2, Nsga2Config, Problem};
use proptest::prelude::*;

fn macro_problem() -> AcimDesignProblem {
    AcimDesignProblem::new(16 * 1024, 16, 1024, ModelParams::s28_default()).unwrap()
}

fn chip_config(heterogeneous: bool) -> ChipDseConfig {
    use acim_chip::Network;
    ChipDseConfig {
        population_size: 24,
        generations: 8,
        grid_rows: vec![1, 2],
        grid_cols: vec![1, 2],
        buffer_kib: vec![8, 32],
        heterogeneous,
        ..ChipDseConfig::for_network(Network::edge_cnn(1))
    }
}

/// Forces the serial evaluation path: forwards `evaluate` only, so the
/// trait-default (serial map) batch implementation is used.  This is the
/// pre-refactor behaviour the parallel path must reproduce bit-for-bit.
struct ForcedSerial<P>(P);

impl<P: Problem> Problem for ForcedSerial<P> {
    fn num_variables(&self) -> usize {
        self.0.num_variables()
    }
    fn num_objectives(&self) -> usize {
        self.0.num_objectives()
    }
    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        self.0.evaluate(genes)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn macro_batch_is_order_preserving_and_bit_identical(
        genomes in prop::collection::vec(prop::collection::vec(0.0..1.0f64, 3), 1..40)
    ) {
        let problem = macro_problem();
        let batch = problem.evaluate_batch(&genomes);
        prop_assert_eq!(batch.len(), genomes.len());
        for (genes, eval) in genomes.iter().zip(&batch) {
            prop_assert_eq!(eval, &problem.evaluate(genes));
        }
    }

    #[test]
    fn uniform_chip_batch_is_order_preserving_and_bit_identical(
        genomes in prop::collection::vec(prop::collection::vec(0.0..1.0f64, 6), 1..24)
    ) {
        let problem = acim_dse::ChipDesignProblem::new(&chip_config(false)).unwrap();
        let batch = problem.evaluate_batch(&genomes);
        prop_assert_eq!(batch.len(), genomes.len());
        for (genes, eval) in genomes.iter().zip(&batch) {
            prop_assert_eq!(eval, &problem.evaluate(genes));
        }
    }

    #[test]
    fn heterogeneous_chip_batch_is_order_preserving_and_bit_identical(
        genomes in prop::collection::vec(prop::collection::vec(0.0..1.0f64, 15), 1..16)
    ) {
        let problem = acim_dse::ChipDesignProblem::new(&chip_config(true)).unwrap();
        prop_assert_eq!(problem.num_variables(), 15);
        let batch = problem.evaluate_batch(&genomes);
        prop_assert_eq!(batch.len(), genomes.len());
        for (genes, eval) in genomes.iter().zip(&batch) {
            prop_assert_eq!(eval, &problem.evaluate(genes));
        }
    }

    #[test]
    fn cached_batch_is_bit_identical_to_uncached(
        genomes in prop::collection::vec(prop::collection::vec(0.0..1.0f64, 3), 1..40)
    ) {
        let problem = macro_problem();
        let keyed = problem.clone();
        let cached = CachedProblem::with_key_fn(
            problem.clone(),
            move |genes| keyed.cache_key(genes),
        );
        // Evaluate the list twice: the second pass is all cache hits and
        // must still be bit-identical.
        let uncached = problem.evaluate_batch(&genomes);
        prop_assert_eq!(&cached.evaluate_batch(&genomes), &uncached);
        prop_assert_eq!(&cached.evaluate_batch(&genomes), &uncached);
        prop_assert!(cached.stats().hits >= genomes.len());
    }
}

#[test]
fn batched_nsga2_matches_forced_serial_path_on_the_macro_problem() {
    let config = Nsga2Config {
        population_size: 24,
        generations: 12,
        ..Default::default()
    };
    for seed in [7u64, 99, 0xACE5] {
        let parallel = Nsga2::new(macro_problem(), config.clone())
            .with_seed(seed)
            .run();
        let serial = Nsga2::new(ForcedSerial(macro_problem()), config.clone())
            .with_seed(seed)
            .run();
        assert_eq!(parallel.evaluations(), serial.evaluations());
        assert_eq!(parallel.pareto_objectives(), serial.pareto_objectives());
        for (a, b) in parallel.population.iter().zip(&serial.population) {
            assert_eq!(a.genes, b.genes);
            assert_eq!(a.objectives, b.objectives);
        }
    }
}

#[test]
fn batched_nsga2_matches_forced_serial_path_on_the_chip_problem() {
    let config = Nsga2Config {
        population_size: 16,
        generations: 6,
        ..Default::default()
    };
    let problem = acim_dse::ChipDesignProblem::new(&chip_config(false)).unwrap();
    let parallel = Nsga2::new(&problem, config.clone()).with_seed(41).run();
    let serial = Nsga2::new(ForcedSerial(&problem), config)
        .with_seed(41)
        .run();
    assert_eq!(parallel.pareto_objectives(), serial.pareto_objectives());
    for (a, b) in parallel.population.iter().zip(&serial.population) {
        assert_eq!(a.genes, b.genes);
        assert_eq!(a.objectives, b.objectives);
    }
}

#[test]
fn soa_batched_exploration_reproduces_the_scalar_path_front() {
    // A detached macro problem routes whole cohorts through the
    // struct-of-arrays batch kernel; attaching a macro-metric cache forces
    // every genome down the per-genome scalar route instead.  A seeded
    // exploration must produce a bit-identical Pareto front either way —
    // the SoA kernel is only allowed to be faster, never different.
    use acim_chip::MacroMetricsCache;
    let config = Nsga2Config {
        population_size: 24,
        generations: 10,
        ..Default::default()
    };
    for seed in [3u64, 0xF00D] {
        let soa = Nsga2::new(macro_problem(), config.clone())
            .with_seed(seed)
            .run();
        let scalar = Nsga2::new(
            macro_problem().with_macro_cache(MacroMetricsCache::new()),
            config.clone(),
        )
        .with_seed(seed)
        .run();
        assert_eq!(soa.pareto_objectives(), scalar.pareto_objectives());
        for (a, b) in soa.population.iter().zip(&scalar.population) {
            assert_eq!(a.genes, b.genes);
            assert_eq!(a.objectives, b.objectives);
        }
    }
}

#[test]
fn cached_nsga2_produces_the_same_front_as_uncached() {
    let config = Nsga2Config {
        population_size: 24,
        generations: 12,
        ..Default::default()
    };
    let problem = macro_problem();
    let keyed = problem.clone();
    let cached = CachedProblem::with_key_fn(&problem, move |genes| keyed.cache_key(genes));
    let plain_run = Nsga2::new(&problem, config.clone()).with_seed(5).run();
    let cached_run = Nsga2::new(&cached, config).with_seed(5).run();
    assert_eq!(
        plain_run.pareto_objectives(),
        cached_run.pareto_objectives()
    );
    let stats = cached.stats();
    assert_eq!(stats.total(), cached_run.evaluations());
    assert!(stats.hits > 0, "discrete space must re-sample designs");
}

#[test]
fn seeded_macro_exploration_archives_are_identical_across_runs() {
    let config = DseConfig {
        population_size: 32,
        generations: 15,
        ..Default::default()
    };
    let explorer = DesignSpaceExplorer::new(config).unwrap();
    let a = explorer.explore().unwrap();
    let b = explorer.explore().unwrap();
    assert_eq!(a.len(), b.len());
    assert_eq!(a.engine.evaluations, b.engine.evaluations);
    assert_eq!(a.engine.cache, b.engine.cache);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.spec, y.spec);
        assert_eq!(x.objective_vector(), y.objective_vector());
    }
}

#[test]
fn seeded_chip_exploration_archives_are_identical_across_runs() {
    for heterogeneous in [false, true] {
        let explorer = ChipExplorer::new(chip_config(heterogeneous)).unwrap();
        let a = explorer.explore().unwrap();
        let b = explorer.explore().unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.engine.evaluations, b.engine.evaluations);
        assert_eq!(a.engine.cache, b.engine.cache);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.chip, y.chip);
            assert_eq!(x.objective_vector(), y.objective_vector());
        }
    }
}

#[test]
fn heterogeneous_genome_space_contains_the_uniform_space() {
    // Every uniform chip is encodable in the heterogeneous genome and
    // decodes to the same design point.
    let uniform = acim_dse::ChipDesignProblem::new(&chip_config(false)).unwrap();
    let hetero = acim_dse::ChipDesignProblem::new(&chip_config(true)).unwrap();
    let candidate = acim_dse::encoding::Candidate {
        height: 128,
        width: 32,
        local_array: 4,
        adc_bits: 3,
    };
    let genes_u = uniform.encode(&candidate, 2, 2, 32).unwrap();
    let genes_h = hetero.encode(&candidate, 2, 2, 32).unwrap();
    let point_u = uniform.decode_point(&genes_u).unwrap();
    let point_h = hetero.decode_point(&genes_h).unwrap();
    assert_eq!(point_u.chip, point_h.chip);
    assert_eq!(point_u.objective_vector(), point_h.objective_vector());
}
