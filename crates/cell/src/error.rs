//! Error types of the cell-library crate.

use std::error::Error;
use std::fmt;

/// Errors produced while assembling leaf cells or querying the library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellError {
    /// A pin references a port that does not exist in the cell netlist.
    UnknownPinPort {
        /// Cell name.
        cell: String,
        /// Offending pin name.
        pin: String,
    },
    /// A pin access shape falls outside the cell boundary.
    PinOutsideBoundary {
        /// Cell name.
        cell: String,
        /// Offending pin name.
        pin: String,
    },
    /// A layout-template shape falls outside the cell boundary.
    ShapeOutsideBoundary {
        /// Cell name.
        cell: String,
    },
    /// The requested cell does not exist in the library.
    UnknownCell(String),
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::UnknownPinPort { cell, pin } => {
                write!(f, "pin `{pin}` of cell `{cell}` references an unknown port")
            }
            CellError::PinOutsideBoundary { cell, pin } => {
                write!(
                    f,
                    "pin `{pin}` of cell `{cell}` lies outside the cell boundary"
                )
            }
            CellError::ShapeOutsideBoundary { cell } => {
                write!(f, "cell `{cell}` has layout shapes outside its boundary")
            }
            CellError::UnknownCell(name) => write!(f, "unknown cell `{name}`"),
        }
    }
}

impl Error for CellError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offenders() {
        let e = CellError::UnknownPinPort {
            cell: "BUF".into(),
            pin: "Z".into(),
        };
        assert!(e.to_string().contains("BUF"));
        assert!(e.to_string().contains("Z"));
        assert!(CellError::UnknownCell("X".into()).to_string().contains("X"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CellError>();
    }
}
