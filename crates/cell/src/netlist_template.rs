//! Transistor-level netlist templates of the leaf cells.
//!
//! The customized cell library of the paper ships SPICE netlists for every
//! component (8T SRAM, sense amplifier, SAR logic, …).  The reproduction
//! carries the same information as a structured device list that the
//! SPICE writer in `acim-netlist` serialises.

use std::fmt;

/// The kind of a primitive device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// N-channel MOSFET (terminals: drain, gate, source, bulk).
    Nmos,
    /// P-channel MOSFET (terminals: drain, gate, source, bulk).
    Pmos,
    /// Metal-fringe capacitor (terminals: top, bottom).
    Capacitor,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            DeviceKind::Nmos => "nmos",
            DeviceKind::Pmos => "pmos",
            DeviceKind::Capacitor => "cap",
        };
        f.write_str(text)
    }
}

/// A primitive device instance inside a leaf cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Instance name, e.g. `"MN0"`.
    pub name: String,
    /// Device kind.
    pub kind: DeviceKind,
    /// Terminal-to-net connections, in the canonical terminal order of the
    /// device kind (D G S B for MOSFETs, TOP BOT for capacitors).
    pub terminals: Vec<String>,
    /// Size parameter: width multiple (MOSFET) or capacitance in fF
    /// (capacitor).
    pub size: f64,
}

impl Device {
    /// Creates a MOSFET device.
    pub fn mosfet(
        name: impl Into<String>,
        kind: DeviceKind,
        drain: &str,
        gate: &str,
        source: &str,
        bulk: &str,
        width_multiple: f64,
    ) -> Self {
        Self {
            name: name.into(),
            kind,
            terminals: vec![
                drain.to_string(),
                gate.to_string(),
                source.to_string(),
                bulk.to_string(),
            ],
            size: width_multiple,
        }
    }

    /// Creates a capacitor device.
    pub fn capacitor(name: impl Into<String>, top: &str, bottom: &str, cap_ff: f64) -> Self {
        Self {
            name: name.into(),
            kind: DeviceKind::Capacitor,
            terminals: vec![top.to_string(), bottom.to_string()],
            size: cap_ff,
        }
    }
}

/// The transistor-level netlist of one leaf cell.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellNetlist {
    /// Port (external net) names in declaration order.
    pub ports: Vec<String>,
    /// Primitive devices.
    pub devices: Vec<Device>,
}

impl CellNetlist {
    /// Creates an empty netlist with the given ports.
    pub fn new(ports: Vec<String>) -> Self {
        Self {
            ports,
            devices: Vec::new(),
        }
    }

    /// Adds a device.
    pub fn push(&mut self, device: Device) {
        self.devices.push(device);
    }

    /// Number of transistors (excluding capacitors).
    pub fn transistor_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| matches!(d.kind, DeviceKind::Nmos | DeviceKind::Pmos))
            .count()
    }

    /// Number of capacitors.
    pub fn capacitor_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.kind == DeviceKind::Capacitor)
            .count()
    }

    /// All internal nets (nets referenced by devices that are not ports and
    /// not the global supplies `VDD`/`VSS`).
    pub fn internal_nets(&self) -> Vec<String> {
        let mut nets: Vec<String> = self
            .devices
            .iter()
            .flat_map(|d| d.terminals.iter().cloned())
            .filter(|n| !self.ports.contains(n) && n != "VDD" && n != "VSS")
            .collect();
        nets.sort();
        nets.dedup();
        nets
    }
}

/// Builds the 8T SRAM bit-cell netlist: a cross-coupled 6T core plus the
/// decoupled 2T read port (RWL / RBL).
pub fn sram_8t_netlist() -> CellNetlist {
    let mut netlist = CellNetlist::new(
        ["BL", "BLB", "WL", "RWL", "RBL", "VDD", "VSS"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    // Storage inverters.
    netlist.push(Device::mosfet(
        "MPU0",
        DeviceKind::Pmos,
        "Q",
        "QB",
        "VDD",
        "VDD",
        1.0,
    ));
    netlist.push(Device::mosfet(
        "MPD0",
        DeviceKind::Nmos,
        "Q",
        "QB",
        "VSS",
        "VSS",
        1.0,
    ));
    netlist.push(Device::mosfet(
        "MPU1",
        DeviceKind::Pmos,
        "QB",
        "Q",
        "VDD",
        "VDD",
        1.0,
    ));
    netlist.push(Device::mosfet(
        "MPD1",
        DeviceKind::Nmos,
        "QB",
        "Q",
        "VSS",
        "VSS",
        1.0,
    ));
    // Write access transistors.
    netlist.push(Device::mosfet(
        "MWA0",
        DeviceKind::Nmos,
        "BL",
        "WL",
        "Q",
        "VSS",
        1.2,
    ));
    netlist.push(Device::mosfet(
        "MWA1",
        DeviceKind::Nmos,
        "BLB",
        "WL",
        "QB",
        "VSS",
        1.2,
    ));
    // Decoupled read port.
    netlist.push(Device::mosfet(
        "MRD0",
        DeviceKind::Nmos,
        "RDINT",
        "QB",
        "VSS",
        "VSS",
        1.5,
    ));
    netlist.push(Device::mosfet(
        "MRD1",
        DeviceKind::Nmos,
        "RBL",
        "RWL",
        "RDINT",
        "VSS",
        1.5,
    ));
    netlist
}

/// Builds the local-array-shared computing-cell netlist: the compute
/// capacitor `C_F`, its reset/precharge devices and the group-control
/// switches (P/N switching of the bottom plate).
pub fn compute_cell_netlist(cap_ff: f64) -> CellNetlist {
    let mut netlist = CellNetlist::new(
        ["RBL", "MOUT", "PCH", "RST", "P", "N", "VCM", "VDD", "VSS"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    netlist.push(Device::capacitor("CF", "MOUT", "CBOT", cap_ff));
    // Top-plate reset to VCM.
    netlist.push(Device::mosfet(
        "MRST",
        DeviceKind::Nmos,
        "MOUT",
        "RST",
        "VCM",
        "VSS",
        1.0,
    ));
    // Precharge of the read bit-line.
    netlist.push(Device::mosfet(
        "MPCH",
        DeviceKind::Pmos,
        "RBL",
        "PCH",
        "VDD",
        "VDD",
        2.0,
    ));
    // Bottom-plate switching for the SAR groups: P switch to VDD, N switch
    // to VSS, plus the redistribution switch onto the RBL.
    netlist.push(Device::mosfet(
        "MSWP",
        DeviceKind::Pmos,
        "CBOT",
        "P",
        "VDD",
        "VDD",
        2.0,
    ));
    netlist.push(Device::mosfet(
        "MSWN",
        DeviceKind::Nmos,
        "CBOT",
        "N",
        "VSS",
        "VSS",
        2.0,
    ));
    netlist.push(Device::mosfet(
        "MSHR",
        DeviceKind::Nmos,
        "CBOT",
        "RST",
        "RBL",
        "VSS",
        2.0,
    ));
    netlist
}

/// Builds the dynamic comparator / sense-amplifier netlist (StrongARM
/// style: clocked tail, cross-coupled pair, output latch).
pub fn comparator_netlist() -> CellNetlist {
    let mut netlist = CellNetlist::new(
        ["INP", "INN", "CLK", "COM", "COMB", "VDD", "VSS"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    netlist.push(Device::mosfet(
        "MTAIL",
        DeviceKind::Nmos,
        "TAIL",
        "CLK",
        "VSS",
        "VSS",
        4.0,
    ));
    netlist.push(Device::mosfet(
        "MINP",
        DeviceKind::Nmos,
        "X",
        "INP",
        "TAIL",
        "VSS",
        3.0,
    ));
    netlist.push(Device::mosfet(
        "MINN",
        DeviceKind::Nmos,
        "Y",
        "INN",
        "TAIL",
        "VSS",
        3.0,
    ));
    netlist.push(Device::mosfet(
        "MCCN0",
        DeviceKind::Nmos,
        "COM",
        "COMB",
        "X",
        "VSS",
        2.0,
    ));
    netlist.push(Device::mosfet(
        "MCCN1",
        DeviceKind::Nmos,
        "COMB",
        "COM",
        "Y",
        "VSS",
        2.0,
    ));
    netlist.push(Device::mosfet(
        "MCCP0",
        DeviceKind::Pmos,
        "COM",
        "COMB",
        "VDD",
        "VDD",
        2.0,
    ));
    netlist.push(Device::mosfet(
        "MCCP1",
        DeviceKind::Pmos,
        "COMB",
        "COM",
        "VDD",
        "VDD",
        2.0,
    ));
    netlist.push(Device::mosfet(
        "MRSP0",
        DeviceKind::Pmos,
        "COM",
        "CLK",
        "VDD",
        "VDD",
        1.0,
    ));
    netlist.push(Device::mosfet(
        "MRSP1",
        DeviceKind::Pmos,
        "COMB",
        "CLK",
        "VDD",
        "VDD",
        1.0,
    ));
    netlist
}

/// Builds the dynamic D flip-flop netlist of the SAR logic (true
/// single-phase-clock style).
pub fn dff_netlist() -> CellNetlist {
    let mut netlist = CellNetlist::new(
        ["D", "CLK", "Q", "QB", "VDD", "VSS"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    netlist.push(Device::mosfet(
        "MP0",
        DeviceKind::Pmos,
        "N1",
        "D",
        "VDD",
        "VDD",
        1.0,
    ));
    netlist.push(Device::mosfet(
        "MN0",
        DeviceKind::Nmos,
        "N1",
        "CLK",
        "N2",
        "VSS",
        1.0,
    ));
    netlist.push(Device::mosfet(
        "MN1",
        DeviceKind::Nmos,
        "N2",
        "D",
        "VSS",
        "VSS",
        1.0,
    ));
    netlist.push(Device::mosfet(
        "MP1",
        DeviceKind::Pmos,
        "N3",
        "CLK",
        "VDD",
        "VDD",
        1.0,
    ));
    netlist.push(Device::mosfet(
        "MN2",
        DeviceKind::Nmos,
        "N3",
        "N1",
        "VSS",
        "VSS",
        1.0,
    ));
    netlist.push(Device::mosfet(
        "MP2",
        DeviceKind::Pmos,
        "Q",
        "N3",
        "VDD",
        "VDD",
        1.5,
    ));
    netlist.push(Device::mosfet(
        "MN3",
        DeviceKind::Nmos,
        "Q",
        "N3",
        "VSS",
        "VSS",
        1.5,
    ));
    netlist.push(Device::mosfet(
        "MP3",
        DeviceKind::Pmos,
        "QB",
        "Q",
        "VDD",
        "VDD",
        1.0,
    ));
    netlist.push(Device::mosfet(
        "MN4",
        DeviceKind::Nmos,
        "QB",
        "Q",
        "VSS",
        "VSS",
        1.0,
    ));
    netlist
}

/// Builds the CMOS transmission-gate switch used to isolate redundant CDAC
/// capacitance for low-precision conversions (Section 3.1).
pub fn cmos_switch_netlist() -> CellNetlist {
    let mut netlist = CellNetlist::new(
        ["A", "B", "EN", "ENB", "VDD", "VSS"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    netlist.push(Device::mosfet(
        "MTGN",
        DeviceKind::Nmos,
        "A",
        "EN",
        "B",
        "VSS",
        3.0,
    ));
    netlist.push(Device::mosfet(
        "MTGP",
        DeviceKind::Pmos,
        "A",
        "ENB",
        "B",
        "VDD",
        3.0,
    ));
    netlist
}

/// Builds a simple inverting buffer netlist (used for the CIM input/output
/// buffers and clock drivers).
pub fn buffer_netlist() -> CellNetlist {
    let mut netlist = CellNetlist::new(
        ["A", "Y", "VDD", "VSS"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    netlist.push(Device::mosfet(
        "MP0",
        DeviceKind::Pmos,
        "MID",
        "A",
        "VDD",
        "VDD",
        2.0,
    ));
    netlist.push(Device::mosfet(
        "MN0",
        DeviceKind::Nmos,
        "MID",
        "A",
        "VSS",
        "VSS",
        1.0,
    ));
    netlist.push(Device::mosfet(
        "MP1",
        DeviceKind::Pmos,
        "Y",
        "MID",
        "VDD",
        "VDD",
        4.0,
    ));
    netlist.push(Device::mosfet(
        "MN1",
        DeviceKind::Nmos,
        "Y",
        "MID",
        "VSS",
        "VSS",
        2.0,
    ));
    netlist
}

/// Builds the per-column SAR control-logic netlist skeleton: `bits`
/// flip-flop stages are instantiated structurally by the netlist generator,
/// so the leaf template only carries the sequencing gates.
pub fn sar_logic_netlist() -> CellNetlist {
    let mut netlist = CellNetlist::new(
        ["CLK", "COM", "COMB", "START", "DONE", "VDD", "VSS"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    netlist.push(Device::mosfet(
        "MP0",
        DeviceKind::Pmos,
        "SEQ",
        "START",
        "VDD",
        "VDD",
        1.0,
    ));
    netlist.push(Device::mosfet(
        "MN0",
        DeviceKind::Nmos,
        "SEQ",
        "CLK",
        "SEQ1",
        "VSS",
        1.0,
    ));
    netlist.push(Device::mosfet(
        "MN1",
        DeviceKind::Nmos,
        "SEQ1",
        "COM",
        "VSS",
        "VSS",
        1.0,
    ));
    netlist.push(Device::mosfet(
        "MP1",
        DeviceKind::Pmos,
        "DONE",
        "SEQ",
        "VDD",
        "VDD",
        1.0,
    ));
    netlist.push(Device::mosfet(
        "MN2",
        DeviceKind::Nmos,
        "DONE",
        "SEQ",
        "VSS",
        "VSS",
        1.0,
    ));
    netlist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_cell_has_eight_transistors() {
        let n = sram_8t_netlist();
        assert_eq!(n.transistor_count(), 8);
        assert_eq!(n.capacitor_count(), 0);
        assert!(n.ports.contains(&"RWL".to_string()));
        assert!(n.ports.contains(&"RBL".to_string()));
        // Q/QB/RDINT are internal.
        let internals = n.internal_nets();
        assert!(internals.contains(&"Q".to_string()));
        assert!(internals.contains(&"QB".to_string()));
    }

    #[test]
    fn compute_cell_has_one_capacitor() {
        let n = compute_cell_netlist(1.2);
        assert_eq!(n.capacitor_count(), 1);
        assert!(n.transistor_count() >= 4);
        let cap = n
            .devices
            .iter()
            .find(|d| d.kind == DeviceKind::Capacitor)
            .unwrap();
        assert_eq!(cap.size, 1.2);
        assert_eq!(cap.terminals[0], "MOUT");
    }

    #[test]
    fn comparator_is_differential() {
        let n = comparator_netlist();
        assert!(n.ports.contains(&"INP".to_string()));
        assert!(n.ports.contains(&"INN".to_string()));
        assert!(n.ports.contains(&"COM".to_string()));
        assert!(n.ports.contains(&"COMB".to_string()));
        assert!(n.transistor_count() >= 9);
    }

    #[test]
    fn all_leaf_netlists_reference_only_ports_supplies_or_internals() {
        for netlist in [
            sram_8t_netlist(),
            compute_cell_netlist(1.2),
            comparator_netlist(),
            dff_netlist(),
            cmos_switch_netlist(),
            buffer_netlist(),
            sar_logic_netlist(),
        ] {
            let internals = netlist.internal_nets();
            for device in &netlist.devices {
                for terminal in &device.terminals {
                    let known = netlist.ports.contains(terminal)
                        || internals.contains(terminal)
                        || terminal == "VDD"
                        || terminal == "VSS";
                    assert!(known, "dangling net {terminal} in {}", device.name);
                }
            }
        }
    }

    #[test]
    fn device_constructors() {
        let m = Device::mosfet("MX", DeviceKind::Pmos, "d", "g", "s", "b", 2.5);
        assert_eq!(m.terminals.len(), 4);
        assert_eq!(m.size, 2.5);
        let c = Device::capacitor("C1", "t", "b", 0.6);
        assert_eq!(c.terminals, vec!["t", "b"]);
        assert_eq!(DeviceKind::Capacitor.to_string(), "cap");
    }
}
