//! Layout templates of the leaf cells.
//!
//! A template is the finished internal layout of a manually designed cell:
//! its boundary, the shapes it draws on each layer, its pin access shapes
//! and — for cells that sit on critical nets — the pre-defined routing
//! tracks the router must honour (the paper pre-defines the tracks of the
//! power nets and SAR-logic control nets, which is what makes layout
//! generation take only minutes).
//!
//! The template-based hierarchical placer and router (`acim-layout`) never
//! looks inside these shapes; it only abuts the boundaries and connects the
//! pins.

use crate::geom::Rect;

/// One drawn shape of a template.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutShape {
    /// Layer name (must exist in the technology layer map).
    pub layer: String,
    /// Shape in the cell's local coordinate frame (nanometres).
    pub rect: Rect,
}

impl LayoutShape {
    /// Creates a shape.
    pub fn new(layer: impl Into<String>, rect: Rect) -> Self {
        Self {
            layer: layer.into(),
            rect,
        }
    }
}

/// A pre-defined routing track associated with a cell or block template.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTrack {
    /// Net that must use this track (e.g. `"VDD"`, `"P<0>"`).
    pub net: String,
    /// Layer the track runs on.
    pub layer: String,
    /// Track geometry in the owning block's coordinate frame.
    pub rect: Rect,
}

impl RoutingTrack {
    /// Creates a routing track.
    pub fn new(net: impl Into<String>, layer: impl Into<String>, rect: Rect) -> Self {
        Self {
            net: net.into(),
            layer: layer.into(),
            rect,
        }
    }
}

/// The complete layout template of a leaf cell.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LayoutTemplate {
    /// Cell boundary (origin at (0, 0)).
    pub boundary: Rect,
    /// Drawn shapes.
    pub shapes: Vec<LayoutShape>,
    /// Pre-defined routing tracks owned by the cell.
    pub tracks: Vec<RoutingTrack>,
}

impl LayoutTemplate {
    /// Creates a template with the given boundary and no shapes.
    pub fn new(width_nm: f64, height_nm: f64) -> Self {
        Self {
            boundary: Rect::new(0.0, 0.0, width_nm, height_nm),
            shapes: Vec::new(),
            tracks: Vec::new(),
        }
    }

    /// Adds a drawn shape.
    pub fn add_shape(&mut self, layer: impl Into<String>, rect: Rect) {
        self.shapes.push(LayoutShape::new(layer, rect));
    }

    /// Adds a pre-defined routing track.
    pub fn add_track(&mut self, net: impl Into<String>, layer: impl Into<String>, rect: Rect) {
        self.tracks.push(RoutingTrack::new(net, layer, rect));
    }

    /// Cell width in nanometres.
    pub fn width(&self) -> f64 {
        self.boundary.width()
    }

    /// Cell height in nanometres.
    pub fn height(&self) -> f64 {
        self.boundary.height()
    }

    /// Returns `true` when every shape and track lies inside the boundary.
    pub fn shapes_within_boundary(&self) -> bool {
        self.shapes
            .iter()
            .map(|s| &s.rect)
            .chain(self.tracks.iter().map(|t| &t.rect))
            .all(|r| self.boundary.contains_rect(r))
    }

    /// Builds a generic filled template: boundary marker, horizontal VDD/VSS
    /// rails on M1 at the top and bottom edges, and an active-area block in
    /// the middle.  The specialised leaf-cell constructors in
    /// [`crate::library`] start from this and add their pins.
    pub fn standard(width_nm: f64, height_nm: f64, rail_width_nm: f64) -> Self {
        let mut template = Self::new(width_nm, height_nm);
        template.add_shape("MARKER", Rect::new(0.0, 0.0, width_nm, height_nm));
        // Power rails along the bottom and top edges.
        template.add_shape("M1", Rect::new(0.0, 0.0, width_nm, rail_width_nm));
        template.add_shape(
            "M1",
            Rect::new(0.0, height_nm - rail_width_nm, width_nm, height_nm),
        );
        template.add_track("VSS", "M1", Rect::new(0.0, 0.0, width_nm, rail_width_nm));
        template.add_track(
            "VDD",
            "M1",
            Rect::new(0.0, height_nm - rail_width_nm, width_nm, height_nm),
        );
        // Active region (diffusion) occupying the middle band.
        let margin = rail_width_nm * 1.5;
        template.add_shape(
            "OD",
            Rect::new(width_nm * 0.1, margin, width_nm * 0.9, height_nm - margin),
        );
        template
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_template_is_well_formed() {
        let t = LayoutTemplate::standard(2000.0, 632.0, 60.0);
        assert_eq!(t.width(), 2000.0);
        assert_eq!(t.height(), 632.0);
        assert!(t.shapes_within_boundary());
        assert!(t.shapes.iter().any(|s| s.layer == "M1"));
        assert!(t.tracks.iter().any(|tr| tr.net == "VDD"));
        assert!(t.tracks.iter().any(|tr| tr.net == "VSS"));
    }

    #[test]
    fn out_of_boundary_shape_is_detected() {
        let mut t = LayoutTemplate::new(100.0, 100.0);
        t.add_shape("M1", Rect::new(0.0, 0.0, 50.0, 50.0));
        assert!(t.shapes_within_boundary());
        t.add_shape("M2", Rect::new(50.0, 50.0, 150.0, 80.0));
        assert!(!t.shapes_within_boundary());
    }

    #[test]
    fn tracks_carry_net_names() {
        let mut t = LayoutTemplate::new(100.0, 100.0);
        t.add_track("P<0>", "M3", Rect::new(0.0, 40.0, 100.0, 50.0));
        assert_eq!(t.tracks[0].net, "P<0>");
        assert_eq!(t.tracks[0].layer, "M3");
    }
}
