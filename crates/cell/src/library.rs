//! The customized cell library.
//!
//! [`CellLibrary::s28_default`] builds all seven leaf cells of the
//! EasyACIM architecture with physical dimensions calibrated so that the
//! hierarchically assembled macro reproduces the paper's Figure 8 area and
//! dimension anchors (see `DESIGN.md`):
//!
//! | cell | width × height (µm) | amortised area (F²) |
//! |---|---|---|
//! | 8T SRAM          | 2.0 × 0.632 | `A_SRAM` ≈ 1612 |
//! | compute cell     | 2.0 × 1.98  | `A_LC` ≈ 5050 |
//! | comparator / SA  | 2.0 × 15.68 | `A_COMP` ≈ 40 000 |
//! | SAR DFF          | 2.0 × 0.912 | `A_DFF` ≈ 2326 |
//!
//! The columns of the macro abut these cells vertically, so the width of
//! every cell equals the column pitch (2.0 µm).

use std::collections::BTreeMap;

use acim_tech::Technology;

use crate::cell::{CellKind, LeafCell};
use crate::error::CellError;
use crate::geom::Rect;
use crate::layout_template::LayoutTemplate;
use crate::netlist_template::{
    buffer_netlist, cmos_switch_netlist, comparator_netlist, compute_cell_netlist, dff_netlist,
    sar_logic_netlist, sram_8t_netlist, CellNetlist,
};
use crate::pin::{Pin, PinDirection};

/// Column pitch of the macro in nanometres; every leaf cell is this wide so
/// columns abut cleanly.
pub const COLUMN_PITCH_NM: f64 = 2000.0;

/// The collection of leaf cells used by netlist generation and layout.
#[derive(Debug, Clone, Default)]
pub struct CellLibrary {
    cells: BTreeMap<CellKind, LeafCell>,
}

impl CellLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a cell.
    pub fn insert(&mut self, cell: LeafCell) {
        self.cells.insert(cell.kind(), cell);
    }

    /// Looks a cell up by kind.
    pub fn cell(&self, kind: CellKind) -> Option<&LeafCell> {
        self.cells.get(&kind)
    }

    /// Looks a cell up by kind, returning an error when it is missing.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::UnknownCell`] when the kind is not registered.
    pub fn require(&self, kind: CellKind) -> Result<&LeafCell, CellError> {
        self.cell(kind)
            .ok_or_else(|| CellError::UnknownCell(kind.cell_name().to_string()))
    }

    /// Looks a cell up by its canonical name.
    pub fn cell_by_name(&self, name: &str) -> Option<&LeafCell> {
        self.cells.values().find(|c| c.name() == name)
    }

    /// Number of registered cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` when the library is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over the registered cells.
    pub fn iter(&self) -> impl Iterator<Item = &LeafCell> {
        self.cells.values()
    }

    /// Builds the default S28 library with all seven leaf cells.
    ///
    /// # Panics
    ///
    /// Panics only if the built-in templates are internally inconsistent,
    /// which would be a bug in this crate.
    pub fn s28_default(tech: &Technology) -> Self {
        let mut library = Self::new();
        let rail = tech
            .rules()
            .layer_rule("M1")
            .map(|r| r.min_width.value())
            .unwrap_or(50.0);
        let cap_ff = tech.capacitor().unit_cap.value();

        library.insert(build_sram_cell(rail).expect("SRAM template is consistent"));
        library
            .insert(build_compute_cell(rail, cap_ff).expect("compute-cell template is consistent"));
        library.insert(build_comparator(rail).expect("comparator template is consistent"));
        library.insert(build_sar_dff(rail).expect("DFF template is consistent"));
        library.insert(build_sar_logic(rail).expect("SAR-logic template is consistent"));
        library.insert(build_cmos_switch(rail).expect("switch template is consistent"));
        library.insert(build_buffer(rail).expect("buffer template is consistent"));
        library
    }
}

/// Places a pin strip on the left or right edge at a fractional height.
fn edge_pin(
    name: &str,
    direction: PinDirection,
    layer: &str,
    width_nm: f64,
    height_nm: f64,
    fraction: f64,
    left: bool,
) -> Pin {
    let pin_h = 60.0;
    let pin_w = 120.0;
    let y = (height_nm - pin_h) * fraction;
    let x0 = if left { 0.0 } else { width_nm - pin_w };
    Pin::new(
        name,
        direction,
        layer,
        Rect::new(x0, y, x0 + pin_w, y + pin_h),
    )
}

fn supply_pins(width_nm: f64, height_nm: f64, rail: f64) -> Vec<Pin> {
    vec![
        Pin::new(
            "VSS",
            PinDirection::Ground,
            "M1",
            Rect::new(0.0, 0.0, width_nm, rail),
        ),
        Pin::new(
            "VDD",
            PinDirection::Power,
            "M1",
            Rect::new(0.0, height_nm - rail, width_nm, height_nm),
        ),
    ]
}

fn build_cell(
    kind: CellKind,
    netlist: CellNetlist,
    width_nm: f64,
    height_nm: f64,
    rail: f64,
    signal_pins: &[(&str, PinDirection, f64, bool)],
) -> Result<LeafCell, CellError> {
    let mut template = LayoutTemplate::standard(width_nm, height_nm, rail);
    let mut pins = supply_pins(width_nm, height_nm, rail);
    for &(name, direction, fraction, left) in signal_pins {
        let pin = edge_pin(name, direction, "M2", width_nm, height_nm, fraction, left);
        template.add_shape("M2", pin.shape());
        pins.push(pin);
    }
    LeafCell::new(kind, netlist, template, pins)
}

fn build_sram_cell(rail: f64) -> Result<LeafCell, CellError> {
    build_cell(
        CellKind::Sram8T,
        sram_8t_netlist(),
        COLUMN_PITCH_NM,
        632.0,
        rail,
        &[
            ("WL", PinDirection::Input, 0.75, true),
            ("BL", PinDirection::Inout, 0.5, true),
            ("BLB", PinDirection::Inout, 0.25, true),
            ("RWL", PinDirection::Input, 0.75, false),
            ("RBL", PinDirection::Inout, 0.4, false),
        ],
    )
}

fn build_compute_cell(rail: f64, cap_ff: f64) -> Result<LeafCell, CellError> {
    build_cell(
        CellKind::ComputeCell,
        compute_cell_netlist(cap_ff),
        COLUMN_PITCH_NM,
        1980.0,
        rail,
        &[
            ("RBL", PinDirection::Inout, 0.85, false),
            ("MOUT", PinDirection::Inout, 0.7, false),
            ("PCH", PinDirection::Input, 0.55, true),
            ("RST", PinDirection::Input, 0.4, true),
            ("P", PinDirection::Input, 0.3, true),
            ("N", PinDirection::Input, 0.2, true),
            ("VCM", PinDirection::Inout, 0.1, true),
        ],
    )
}

fn build_comparator(rail: f64) -> Result<LeafCell, CellError> {
    build_cell(
        CellKind::Comparator,
        comparator_netlist(),
        COLUMN_PITCH_NM,
        15_680.0,
        rail,
        &[
            ("INP", PinDirection::Input, 0.8, true),
            ("INN", PinDirection::Input, 0.7, true),
            ("CLK", PinDirection::Input, 0.5, true),
            ("COM", PinDirection::Output, 0.6, false),
            ("COMB", PinDirection::Output, 0.4, false),
        ],
    )
}

fn build_sar_dff(rail: f64) -> Result<LeafCell, CellError> {
    build_cell(
        CellKind::SarDff,
        dff_netlist(),
        COLUMN_PITCH_NM,
        912.0,
        rail,
        &[
            ("D", PinDirection::Input, 0.6, true),
            ("CLK", PinDirection::Input, 0.3, true),
            ("Q", PinDirection::Output, 0.6, false),
            ("QB", PinDirection::Output, 0.3, false),
        ],
    )
}

fn build_sar_logic(rail: f64) -> Result<LeafCell, CellError> {
    build_cell(
        CellKind::SarLogic,
        sar_logic_netlist(),
        COLUMN_PITCH_NM,
        2000.0,
        rail,
        &[
            ("CLK", PinDirection::Input, 0.8, true),
            ("COM", PinDirection::Input, 0.6, true),
            ("COMB", PinDirection::Input, 0.4, true),
            ("START", PinDirection::Input, 0.2, true),
            ("DONE", PinDirection::Output, 0.5, false),
        ],
    )
}

fn build_cmos_switch(rail: f64) -> Result<LeafCell, CellError> {
    build_cell(
        CellKind::CmosSwitch,
        cmos_switch_netlist(),
        COLUMN_PITCH_NM,
        500.0,
        rail,
        &[
            ("A", PinDirection::Inout, 0.6, true),
            ("B", PinDirection::Inout, 0.6, false),
            ("EN", PinDirection::Input, 0.3, true),
            ("ENB", PinDirection::Input, 0.3, false),
        ],
    )
}

fn build_buffer(rail: f64) -> Result<LeafCell, CellError> {
    build_cell(
        CellKind::Buffer,
        buffer_netlist(),
        COLUMN_PITCH_NM,
        600.0,
        rail,
        &[
            ("A", PinDirection::Input, 0.5, true),
            ("Y", PinDirection::Output, 0.5, false),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library() -> CellLibrary {
        CellLibrary::s28_default(&Technology::s28())
    }

    #[test]
    fn library_contains_all_seven_cells() {
        let lib = library();
        assert_eq!(lib.len(), 7);
        assert!(!lib.is_empty());
        for kind in CellKind::all() {
            assert!(lib.cell(kind).is_some(), "missing {kind}");
            assert!(lib.require(kind).is_ok());
        }
        assert!(lib.cell_by_name("SRAM8T").is_some());
        assert!(lib.cell_by_name("NOPE").is_none());
    }

    #[test]
    fn cell_dimensions_match_area_calibration() {
        // The amortised-area parameters of the estimation model follow
        // directly from width × height of these cells at F = 28 nm
        // (F² = 784 nm²); check the anchors hold.
        let lib = library();
        let f2 = 28.0f64 * 28.0;
        let area_f2 = |kind: CellKind| {
            let c = lib.cell(kind).unwrap();
            c.width_nm() * c.height_nm() / f2
        };
        assert!((area_f2(CellKind::Sram8T) - 1612.0).abs() < 10.0);
        assert!((area_f2(CellKind::ComputeCell) - 5050.0).abs() < 10.0);
        assert!((area_f2(CellKind::Comparator) - 40_000.0).abs() < 10.0);
        assert!((area_f2(CellKind::SarDff) - 2326.0).abs() < 10.0);
    }

    #[test]
    fn every_cell_shares_the_column_pitch() {
        let lib = library();
        for cell in lib.iter() {
            assert!(
                (cell.width_nm() - COLUMN_PITCH_NM).abs() < 1e-9,
                "{} width {}",
                cell.name(),
                cell.width_nm()
            );
        }
    }

    #[test]
    fn every_cell_has_supply_pins_and_valid_shapes() {
        let lib = library();
        for cell in lib.iter() {
            assert!(cell.pin("VDD").is_some(), "{} lacks VDD", cell.name());
            assert!(cell.pin("VSS").is_some(), "{} lacks VSS", cell.name());
            assert!(cell.layout().shapes_within_boundary());
            assert!(cell.netlist().transistor_count() >= 2);
        }
    }

    #[test]
    fn missing_cell_is_an_error() {
        let lib = CellLibrary::new();
        assert!(matches!(
            lib.require(CellKind::Sram8T),
            Err(CellError::UnknownCell(name)) if name == "SRAM8T"
        ));
    }

    #[test]
    fn compute_cell_capacitor_tracks_technology_value() {
        let tech = Technology::s28();
        let lib = CellLibrary::s28_default(&tech);
        let lc = lib.cell(CellKind::ComputeCell).unwrap();
        let cap = lc
            .netlist()
            .devices
            .iter()
            .find(|d| d.kind == crate::netlist_template::DeviceKind::Capacitor)
            .unwrap();
        assert!((cap.size - tech.capacitor().unit_cap.value()).abs() < 1e-12);
    }
}
