//! Rectilinear geometry primitives shared by the cell templates and the
//! placer/router.
//!
//! All coordinates are in nanometres on an integer-friendly `f64` grid.

use std::fmt;

/// A point in layout space (nanometres).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate in nanometres.
    pub x: f64,
    /// Y coordinate in nanometres.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to another point.
    pub fn manhattan_distance(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Translates the point by (dx, dy).
    pub fn translated(&self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// An axis-aligned rectangle (nanometres), defined by its lower-left and
/// upper-right corners.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corner coordinates, normalising the
    /// order.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Self {
            min: Point::new(x0.min(x1), y0.min(y1)),
            max: Point::new(x0.max(x1), y0.max(y1)),
        }
    }

    /// Creates a rectangle from its origin (lower-left) and size.
    pub fn from_size(origin: Point, width: f64, height: f64) -> Self {
        Self::new(origin.x, origin.y, origin.x + width, origin.y + height)
    }

    /// Width in nanometres.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height in nanometres.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in nm².
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Returns `true` when the rectangle overlaps `other` with positive
    /// area (touching edges do not count as overlap).
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.min.x < other.max.x
            && other.min.x < self.max.x
            && self.min.y < other.max.y
            && other.min.y < self.max.y
    }

    /// Returns `true` when `point` lies inside or on the boundary.
    pub fn contains_point(&self, point: &Point) -> bool {
        point.x >= self.min.x
            && point.x <= self.max.x
            && point.y >= self.min.y
            && point.y <= self.max.y
    }

    /// Returns `true` when `other` lies entirely inside (or on the boundary
    /// of) this rectangle.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min.x >= self.min.x
            && other.min.y >= self.min.y
            && other.max.x <= self.max.x
            && other.max.y <= self.max.y
    }

    /// The smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// The spacing between two non-overlapping rectangles (Euclidean
    /// distance between their closest edges); `0` when they overlap or
    /// touch.
    pub fn spacing_to(&self, other: &Rect) -> f64 {
        let dx = (other.min.x - self.max.x)
            .max(self.min.x - other.max.x)
            .max(0.0);
        let dy = (other.min.y - self.max.y)
            .max(self.min.y - other.max.y)
            .max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// The rectangle translated by (dx, dy).
    pub fn translated(&self, dx: f64, dy: f64) -> Rect {
        Rect {
            min: self.min.translated(dx, dy),
            max: self.max.translated(dx, dy),
        }
    }

    /// The rectangle expanded by `margin` on every side.
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect::new(
            self.min.x - margin,
            self.min.y - margin,
            self.max.x + margin,
            self.max.y + margin,
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} - {}]", self.min, self.max)
    }
}

/// Placement orientation of a cell instance (subset of the GDS/DEF
/// orientations sufficient for row-based layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Orientation {
    /// No transformation.
    #[default]
    R0,
    /// Mirrored about the X axis (flipped vertically), the usual orientation
    /// of odd rows in standard-cell layout.
    MX,
    /// Mirrored about the Y axis.
    MY,
    /// Rotated 180 degrees.
    R180,
}

impl Orientation {
    /// Applies the orientation to a rectangle defined in a cell's local
    /// frame of the given size, returning its footprint in the same frame
    /// (the origin stays at the lower-left of the cell bounding box).
    pub fn apply(&self, rect: &Rect, cell_width: f64, cell_height: f64) -> Rect {
        match self {
            Orientation::R0 => *rect,
            Orientation::MX => Rect::new(
                rect.min.x,
                cell_height - rect.max.y,
                rect.max.x,
                cell_height - rect.min.y,
            ),
            Orientation::MY => Rect::new(
                cell_width - rect.max.x,
                rect.min.y,
                cell_width - rect.min.x,
                rect.max.y,
            ),
            Orientation::R180 => Rect::new(
                cell_width - rect.max.x,
                cell_height - rect.max.y,
                cell_width - rect.min.x,
                cell_height - rect.min.y,
            ),
        }
    }
}

/// Half-perimeter wire length of a set of points — the standard placement
/// cost metric (Section 2.3 of the paper).
pub fn half_perimeter_wire_length(points: &[Point]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in points {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    (max_x - min_x) + (max_y - min_y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_normalises_corners() {
        let r = Rect::new(10.0, 20.0, 0.0, 5.0);
        assert_eq!(r.min, Point::new(0.0, 5.0));
        assert_eq!(r.max, Point::new(10.0, 20.0));
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 15.0);
        assert_eq!(r.area(), 150.0);
    }

    #[test]
    fn overlap_and_containment() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 5.0, 15.0, 15.0);
        let c = Rect::new(10.0, 0.0, 20.0, 10.0); // touches a
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c), "touching edges are not overlap");
        assert!(a.contains_point(&Point::new(10.0, 10.0)));
        assert!(a.contains_rect(&Rect::new(1.0, 1.0, 9.0, 9.0)));
        assert!(!a.contains_rect(&b));
    }

    #[test]
    fn union_and_spacing() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(20.0, 0.0, 30.0, 10.0);
        assert_eq!(a.union(&b), Rect::new(0.0, 0.0, 30.0, 10.0));
        assert_eq!(a.spacing_to(&b), 10.0);
        assert_eq!(a.spacing_to(&a), 0.0);
        // Diagonal spacing uses Euclidean distance between corners.
        let c = Rect::new(13.0, 14.0, 20.0, 20.0);
        assert!((a.spacing_to(&c) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn translation_and_expansion() {
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        assert_eq!(r.translated(1.0, 2.0), Rect::new(1.0, 2.0, 5.0, 6.0));
        assert_eq!(r.expanded(1.0), Rect::new(-1.0, -1.0, 5.0, 5.0));
        assert_eq!(r.center(), Point::new(2.0, 2.0));
    }

    #[test]
    fn orientations_preserve_size() {
        let r = Rect::new(1.0, 2.0, 3.0, 5.0);
        for o in [
            Orientation::R0,
            Orientation::MX,
            Orientation::MY,
            Orientation::R180,
        ] {
            let t = o.apply(&r, 10.0, 10.0);
            assert!((t.width() - r.width()).abs() < 1e-12);
            assert!((t.height() - r.height()).abs() < 1e-12);
            assert!(Rect::new(0.0, 0.0, 10.0, 10.0).contains_rect(&t));
        }
        // MX flips vertically.
        let mx = Orientation::MX.apply(&r, 10.0, 10.0);
        assert_eq!(mx.min.y, 5.0);
        assert_eq!(mx.max.y, 8.0);
    }

    #[test]
    fn hpwl_matches_bounding_box() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 5.0),
            Point::new(4.0, 20.0),
        ];
        assert_eq!(half_perimeter_wire_length(&points), 10.0 + 20.0);
        assert_eq!(half_perimeter_wire_length(&[Point::new(1.0, 1.0)]), 0.0);
        assert_eq!(half_perimeter_wire_length(&[]), 0.0);
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(
            Point::new(1.0, 2.0).manhattan_distance(&Point::new(4.0, -2.0)),
            7.0
        );
    }
}
