//! Leaf-cell definition.

use std::fmt;

use crate::error::CellError;
use crate::layout_template::LayoutTemplate;
use crate::netlist_template::CellNetlist;
use crate::pin::Pin;

/// The kinds of leaf cells the EasyACIM architecture is assembled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// 8T SRAM bit cell.
    Sram8T,
    /// Local-array-shared computing cell: compute capacitor `C_F`, reset /
    /// precharge devices and group-control switches.
    ComputeCell,
    /// Sense amplifier / dynamic comparator.
    Comparator,
    /// Dynamic D flip-flop of the SAR logic.
    SarDff,
    /// SAR sequencing logic.
    SarLogic,
    /// CMOS switch isolating redundant CDAC capacitance.
    CmosSwitch,
    /// Input/output buffer.
    Buffer,
}

impl CellKind {
    /// All leaf-cell kinds.
    pub fn all() -> [CellKind; 7] {
        [
            CellKind::Sram8T,
            CellKind::ComputeCell,
            CellKind::Comparator,
            CellKind::SarDff,
            CellKind::SarLogic,
            CellKind::CmosSwitch,
            CellKind::Buffer,
        ]
    }

    /// Canonical cell name used in netlists and layouts.
    pub fn cell_name(self) -> &'static str {
        match self {
            CellKind::Sram8T => "SRAM8T",
            CellKind::ComputeCell => "LC_CELL",
            CellKind::Comparator => "COMP_SA",
            CellKind::SarDff => "SAR_DFF",
            CellKind::SarLogic => "SAR_CTRL",
            CellKind::CmosSwitch => "CSW",
            CellKind::Buffer => "BUF",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.cell_name())
    }
}

/// A manually designed leaf cell: netlist, layout template and pins.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafCell {
    kind: CellKind,
    netlist: CellNetlist,
    layout: LayoutTemplate,
    pins: Vec<Pin>,
}

impl LeafCell {
    /// Assembles a leaf cell, validating that every pin name exists in the
    /// netlist ports and every pin shape lies inside the layout boundary.
    ///
    /// # Errors
    ///
    /// Returns [`CellError`] when a pin references an unknown port or falls
    /// outside the cell boundary, or when the layout template has shapes
    /// outside its boundary.
    pub fn new(
        kind: CellKind,
        netlist: CellNetlist,
        layout: LayoutTemplate,
        pins: Vec<Pin>,
    ) -> Result<Self, CellError> {
        if !layout.shapes_within_boundary() {
            return Err(CellError::ShapeOutsideBoundary {
                cell: kind.cell_name().to_string(),
            });
        }
        for pin in &pins {
            if !netlist.ports.iter().any(|p| p == pin.name()) {
                return Err(CellError::UnknownPinPort {
                    cell: kind.cell_name().to_string(),
                    pin: pin.name().to_string(),
                });
            }
            if !layout.boundary.contains_rect(&pin.shape()) {
                return Err(CellError::PinOutsideBoundary {
                    cell: kind.cell_name().to_string(),
                    pin: pin.name().to_string(),
                });
            }
        }
        Ok(Self {
            kind,
            netlist,
            layout,
            pins,
        })
    }

    /// The cell kind.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Canonical cell name.
    pub fn name(&self) -> &str {
        self.kind.cell_name()
    }

    /// Transistor-level netlist template.
    pub fn netlist(&self) -> &CellNetlist {
        &self.netlist
    }

    /// Layout template.
    pub fn layout(&self) -> &LayoutTemplate {
        &self.layout
    }

    /// Pins.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// Looks a pin up by name.
    pub fn pin(&self, name: &str) -> Option<&Pin> {
        self.pins.iter().find(|p| p.name() == name)
    }

    /// Cell width in nanometres.
    pub fn width_nm(&self) -> f64 {
        self.layout.width()
    }

    /// Cell height in nanometres.
    pub fn height_nm(&self) -> f64 {
        self.layout.height()
    }

    /// Cell area in µm².
    pub fn area_um2(&self) -> f64 {
        self.layout.boundary.area() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;
    use crate::netlist_template::buffer_netlist;
    use crate::pin::PinDirection;

    fn buffer_layout() -> LayoutTemplate {
        LayoutTemplate::standard(500.0, 600.0, 50.0)
    }

    fn buffer_pins() -> Vec<Pin> {
        vec![
            Pin::new(
                "A",
                PinDirection::Input,
                "M1",
                Rect::new(50.0, 250.0, 100.0, 300.0),
            ),
            Pin::new(
                "Y",
                PinDirection::Output,
                "M1",
                Rect::new(400.0, 250.0, 450.0, 300.0),
            ),
            Pin::new(
                "VDD",
                PinDirection::Power,
                "M1",
                Rect::new(0.0, 550.0, 500.0, 600.0),
            ),
            Pin::new(
                "VSS",
                PinDirection::Ground,
                "M1",
                Rect::new(0.0, 0.0, 500.0, 50.0),
            ),
        ]
    }

    #[test]
    fn valid_cell_assembles() {
        let cell = LeafCell::new(
            CellKind::Buffer,
            buffer_netlist(),
            buffer_layout(),
            buffer_pins(),
        )
        .unwrap();
        assert_eq!(cell.name(), "BUF");
        assert_eq!(cell.width_nm(), 500.0);
        assert!(cell.pin("A").is_some());
        assert!(cell.pin("MISSING").is_none());
        assert!((cell.area_um2() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn pin_with_unknown_port_is_rejected() {
        let mut pins = buffer_pins();
        pins.push(Pin::new(
            "NOT_A_PORT",
            PinDirection::Input,
            "M1",
            Rect::new(0.0, 0.0, 10.0, 10.0),
        ));
        let err =
            LeafCell::new(CellKind::Buffer, buffer_netlist(), buffer_layout(), pins).unwrap_err();
        assert!(matches!(err, CellError::UnknownPinPort { pin, .. } if pin == "NOT_A_PORT"));
    }

    #[test]
    fn pin_outside_boundary_is_rejected() {
        let mut pins = buffer_pins();
        pins.push(Pin::new(
            "A",
            PinDirection::Input,
            "M1",
            Rect::new(490.0, 0.0, 700.0, 50.0),
        ));
        let err =
            LeafCell::new(CellKind::Buffer, buffer_netlist(), buffer_layout(), pins).unwrap_err();
        assert!(matches!(err, CellError::PinOutsideBoundary { .. }));
    }

    #[test]
    fn cell_kinds_have_unique_names() {
        let names: std::collections::BTreeSet<&str> =
            CellKind::all().iter().map(|k| k.cell_name()).collect();
        assert_eq!(names.len(), CellKind::all().len());
        assert_eq!(CellKind::Sram8T.to_string(), "SRAM8T");
    }
}
