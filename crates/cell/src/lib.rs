//! # acim-cell
//!
//! The customized cell library of EasyACIM (one of the three inputs of the
//! flow in Figure 4).
//!
//! The paper's flow consumes a library of manually designed leaf cells —
//! the 8T SRAM bit cell, the local-array-shared computing cell (compute
//! capacitor plus group control), the sense amplifier / dynamic comparator,
//! the SAR-logic D flip-flop, the CMOS switch and the input/output buffers —
//! each with a transistor-level netlist and a finished layout that the
//! template-based placer and router treats as an opaque "Std" block.
//!
//! In this reproduction the cells are synthetic but complete: every leaf
//! cell carries
//!
//! * a transistor-level netlist template ([`netlist_template`]),
//! * a rectilinear layout template (boundary, per-layer shapes, pin shapes
//!   — [`layout_template`]),
//! * pin definitions ([`pin`]),
//! * physical dimensions calibrated so that the assembled macro reproduces
//!   the paper's Figure 8 area/dimension anchors (see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use acim_cell::{CellKind, CellLibrary};
//! use acim_tech::Technology;
//!
//! let library = CellLibrary::s28_default(&Technology::s28());
//! let sram = library.cell(CellKind::Sram8T).expect("8T cell exists");
//! assert!(sram.height_nm() > 0.0);
//! assert!(!sram.pins().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod error;
pub mod geom;
pub mod layout_template;
pub mod library;
pub mod netlist_template;
pub mod pin;

pub use cell::{CellKind, LeafCell};
pub use error::CellError;
pub use geom::{half_perimeter_wire_length, Orientation, Point, Rect};
pub use layout_template::{LayoutShape, LayoutTemplate, RoutingTrack};
pub use library::CellLibrary;
pub use netlist_template::{CellNetlist, Device, DeviceKind};
pub use pin::{Pin, PinDirection};
