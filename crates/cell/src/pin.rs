//! Cell pins.

use std::fmt;

use crate::geom::Rect;

/// Electrical direction of a pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinDirection {
    /// Signal input.
    Input,
    /// Signal output.
    Output,
    /// Bidirectional signal.
    Inout,
    /// Power supply (VDD).
    Power,
    /// Ground (VSS).
    Ground,
}

impl PinDirection {
    /// Returns `true` for supply pins (power or ground).
    pub fn is_supply(self) -> bool {
        matches!(self, PinDirection::Power | PinDirection::Ground)
    }
}

impl fmt::Display for PinDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            PinDirection::Input => "input",
            PinDirection::Output => "output",
            PinDirection::Inout => "inout",
            PinDirection::Power => "power",
            PinDirection::Ground => "ground",
        };
        f.write_str(text)
    }
}

/// A physical pin of a leaf cell: name, direction, the metal layer its
/// access shape sits on, and the shape itself (in the cell's local
/// coordinate frame, nanometres).
#[derive(Debug, Clone, PartialEq)]
pub struct Pin {
    name: String,
    direction: PinDirection,
    layer: String,
    shape: Rect,
}

impl Pin {
    /// Creates a pin.
    pub fn new(
        name: impl Into<String>,
        direction: PinDirection,
        layer: impl Into<String>,
        shape: Rect,
    ) -> Self {
        Self {
            name: name.into(),
            direction,
            layer: layer.into(),
            shape,
        }
    }

    /// Pin name, e.g. `"RWL"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Electrical direction.
    pub fn direction(&self) -> PinDirection {
        self.direction
    }

    /// Metal layer of the access shape.
    pub fn layer(&self) -> &str {
        &self.layer
    }

    /// Access shape in the cell's local frame.
    pub fn shape(&self) -> Rect {
        self.shape
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Point;

    #[test]
    fn pin_accessors() {
        let pin = Pin::new(
            "RBL",
            PinDirection::Inout,
            "M2",
            Rect::new(0.0, 0.0, 50.0, 100.0),
        );
        assert_eq!(pin.name(), "RBL");
        assert_eq!(pin.direction(), PinDirection::Inout);
        assert_eq!(pin.layer(), "M2");
        assert!(pin.shape().contains_point(&Point::new(25.0, 50.0)));
    }

    #[test]
    fn supply_predicate() {
        assert!(PinDirection::Power.is_supply());
        assert!(PinDirection::Ground.is_supply());
        assert!(!PinDirection::Input.is_supply());
    }

    #[test]
    fn direction_display() {
        assert_eq!(PinDirection::Output.to_string(), "output");
        assert_eq!(PinDirection::Ground.to_string(), "ground");
    }
}
