//! The typed snapshot payload: session archives, genome-level evaluation
//! caches, macro-metric caches — everything the exploration service
//! accumulates toward design reuse, as plain data.
//!
//! The records here are deliberately *plain* (strings, integer words,
//! `f64`s): this crate knows the wire shapes, the `easyacim` service owns
//! the conversion to and from its domain types.  That keeps the
//! persistence tier dependency-free and means the on-disk format cannot
//! silently change when a domain struct grows a field — growing a record
//! here is an explicit [`crate::FORMAT_VERSION`] bump.
//!
//! Floats travel as IEEE-754 bit patterns, so a snapshot → restore round
//! trip reproduces every genome and objective **bit-exactly** — the
//! property that lets a restored service replay a warm request to the
//! bit-identical frontier.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use crate::container::{self, Section};
use crate::error::PersistError;
use crate::wire::{Reader, Writer};

const SECTION_ARCHIVE: u32 = 1;
const SECTION_EVAL_CACHE: u32 = 2;
const SECTION_MACRO_CACHE: u32 = 3;

/// One warm-start session archive: the design-space signature and the
/// frontier re-encoded as a uniform-width genome matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArchiveRecord {
    /// The design-space signature the archive was recorded over
    /// (`macro/…` or `chip/…`).
    pub space: String,
    /// The archived frontier genomes; every row must share one width.
    pub genomes: Vec<Vec<f64>>,
}

/// One cached evaluation: the quantized genome key, the objective
/// vector, and the aggregate constraint violation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalEntry {
    /// The quantized genome the store keys on.
    pub key: Vec<i64>,
    /// The objective values, all minimised.
    pub objectives: Vec<f64>,
    /// The aggregate constraint violation (`0.0` = feasible; never
    /// negative or NaN — decoding enforces this).
    pub constraint_violation: f64,
}

/// The contents of one per-design-space evaluation cache.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EvalCacheRecord {
    /// The design-space signature the store belongs to.
    pub space: String,
    /// The cached entries.
    pub entries: Vec<EvalEntry>,
}

/// One cached macro derivation: the `SpecKey` packed as its four
/// dimension words, the five closed-form design metrics, and the macro
/// cycle time — the full `SpecKey → DesignMetrics + cycle time` codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacroEntry {
    /// The `(H, W, L, B_ADC)` dimension words of the macro key.
    pub key: [u32; 4],
    /// Estimated SNR in dB.
    pub snr_db: f64,
    /// Estimated throughput in TOPS.
    pub throughput_tops: f64,
    /// Estimated energy per 1-bit MAC in fJ.
    pub energy_per_mac_fj: f64,
    /// Energy efficiency in TOPS/W.
    pub tops_per_watt: f64,
    /// Estimated area per bit in F².
    pub area_f2_per_bit: f64,
    /// The macro's cycle time in ns.
    pub cycle_ns: f64,
}

/// The contents of one per-parameter-set macro-metric cache.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MacroCacheRecord {
    /// The model-parameter signature the cache is paired with
    /// (`params/…`).
    pub params: String,
    /// The cached per-macro derivations.
    pub entries: Vec<MacroEntry>,
}

/// Everything one service snapshot carries.  Section order is preserved
/// through a round trip, so a writer that sorts its registries gets
/// byte-deterministic files.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// One warm-start archive per design space.
    pub archives: Vec<ArchiveRecord>,
    /// One record per genome-level evaluation cache.
    pub eval_caches: Vec<EvalCacheRecord>,
    /// One record per macro-metric cache.
    pub macro_caches: Vec<MacroCacheRecord>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` when the snapshot carries nothing.
    pub fn is_empty(&self) -> bool {
        self.archives.is_empty() && self.eval_caches.is_empty() && self.macro_caches.is_empty()
    }

    /// Total archived genomes across every archive.
    pub fn genome_count(&self) -> usize {
        self.archives.iter().map(|a| a.genomes.len()).sum()
    }

    /// Total cached evaluations across every evaluation-cache record.
    pub fn evaluation_count(&self) -> usize {
        self.eval_caches.iter().map(|c| c.entries.len()).sum()
    }

    /// Total cached macro derivations across every macro-cache record.
    pub fn macro_metric_count(&self) -> usize {
        self.macro_caches.iter().map(|c| c.entries.len()).sum()
    }

    /// Serializes the snapshot into one self-verifying byte container.
    ///
    /// # Errors
    ///
    /// [`PersistError::InvalidRecord`] when a record is unencodable (a
    /// ragged genome matrix, or one too large for the wire's counters).
    pub fn to_bytes(&self) -> Result<Vec<u8>, PersistError> {
        let mut sections = Vec::new();
        for archive in &self.archives {
            sections.push(Section {
                kind: SECTION_ARCHIVE,
                payload: encode_archive(archive)?,
            });
        }
        for cache in &self.eval_caches {
            sections.push(Section {
                kind: SECTION_EVAL_CACHE,
                payload: encode_eval_cache(cache)?,
            });
        }
        for cache in &self.macro_caches {
            sections.push(Section {
                kind: SECTION_MACRO_CACHE,
                payload: encode_macro_cache(cache)?,
            });
        }
        Ok(container::encode(&sections))
    }

    /// Verifies and fully decodes a snapshot; on any failure nothing is
    /// returned — there is no partially decoded state to leak.
    ///
    /// # Errors
    ///
    /// One typed [`PersistError`] per defect class: truncation, wrong
    /// magic, future version, checksum mismatches, malformed sections.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut snapshot = Snapshot::new();
        for (index, (kind, payload)) in container::decode(bytes)?.into_iter().enumerate() {
            let corrupt = |detail: String| PersistError::SectionCorrupt { index, detail };
            match kind {
                SECTION_ARCHIVE => snapshot
                    .archives
                    .push(decode_archive(payload).map_err(corrupt)?),
                SECTION_EVAL_CACHE => snapshot
                    .eval_caches
                    .push(decode_eval_cache(payload).map_err(corrupt)?),
                SECTION_MACRO_CACHE => snapshot
                    .macro_caches
                    .push(decode_macro_cache(payload).map_err(corrupt)?),
                unknown => {
                    // Unknown kinds under the *current* version are
                    // corruption, not forward compatibility — new kinds
                    // come with a version bump (see the crate docs).
                    return Err(corrupt(format!("unknown section kind {unknown}")));
                }
            }
        }
        Ok(snapshot)
    }

    /// Writes the snapshot to `path` atomically: the bytes go to a
    /// sibling temporary file, are flushed to disk, and are renamed over
    /// `path` — a crash mid-write leaves either the old snapshot or none,
    /// never a torn one.  Returns the byte size written.
    ///
    /// # Errors
    ///
    /// [`PersistError::InvalidRecord`] for unencodable records,
    /// [`PersistError::Io`] for OS failures (the temporary file is
    /// removed on a failed rename).
    pub fn write(&self, path: impl AsRef<Path>) -> Result<u64, PersistError> {
        let path = path.as_ref();
        let bytes = self.to_bytes()?;
        let mut tmp_name = path
            .file_name()
            .ok_or_else(|| PersistError::Io {
                op: "write",
                path: path.display().to_string(),
                message: "path has no file name".into(),
            })?
            .to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let write_tmp = |bytes: &[u8]| -> std::io::Result<()> {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            // Durability before the rename: the new bytes must be on disk
            // before they can replace the old snapshot.
            file.sync_all()
        };
        write_tmp(&bytes).map_err(|err| PersistError::io("write", &tmp, &err))?;
        fs::rename(&tmp, path).map_err(|err| {
            let _ = fs::remove_file(&tmp);
            PersistError::io("rename", path, &err)
        })?;
        Ok(bytes.len() as u64)
    }

    /// Reads and fully verifies a snapshot file.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] for OS failures, otherwise exactly the
    /// [`Snapshot::from_bytes`] errors.
    pub fn read(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let path = path.as_ref();
        let bytes = fs::read(path).map_err(|err| PersistError::io("read", path, &err))?;
        Self::from_bytes(&bytes)
    }
}

fn checked_u32(len: usize, what: &str) -> Result<u32, PersistError> {
    u32::try_from(len).map_err(|_| PersistError::InvalidRecord {
        detail: format!("{what} count {len} exceeds the wire's u32 counter"),
    })
}

fn encode_archive(record: &ArchiveRecord) -> Result<Vec<u8>, PersistError> {
    let width = record.genomes.first().map_or(0, Vec::len);
    if let Some(ragged) = record.genomes.iter().find(|g| g.len() != width) {
        return Err(PersistError::InvalidRecord {
            detail: format!(
                "ragged genome matrix in `{}`: expected width {width}, found {}",
                record.space,
                ragged.len()
            ),
        });
    }
    let mut writer = Writer::new();
    writer.put_str(&record.space);
    writer.put_u32(checked_u32(record.genomes.len(), "genome")?);
    writer.put_u32(checked_u32(width, "genome width")?);
    for genome in &record.genomes {
        for &gene in genome {
            writer.put_f64(gene);
        }
    }
    Ok(writer.into_bytes())
}

fn decode_archive(payload: &[u8]) -> Result<ArchiveRecord, String> {
    let mut reader = Reader::new(payload);
    let space = reader.take_str()?;
    let count = reader.take_u32()? as usize;
    let width = reader.take_u32()? as usize;
    let mut genomes = Vec::new();
    for _ in 0..count {
        let mut genome = Vec::with_capacity(width.min(reader.remaining() / 8));
        for _ in 0..width {
            genome.push(reader.take_f64()?);
        }
        genomes.push(genome);
    }
    reader.finish()?;
    Ok(ArchiveRecord { space, genomes })
}

fn encode_eval_cache(record: &EvalCacheRecord) -> Result<Vec<u8>, PersistError> {
    let mut writer = Writer::new();
    writer.put_str(&record.space);
    writer.put_u32(checked_u32(record.entries.len(), "evaluation")?);
    for entry in &record.entries {
        writer.put_u32(checked_u32(entry.key.len(), "key word")?);
        for &word in &entry.key {
            writer.put_i64(word);
        }
        writer.put_u32(checked_u32(entry.objectives.len(), "objective")?);
        for &objective in &entry.objectives {
            writer.put_f64(objective);
        }
        writer.put_f64(entry.constraint_violation);
    }
    Ok(writer.into_bytes())
}

fn decode_eval_cache(payload: &[u8]) -> Result<EvalCacheRecord, String> {
    let mut reader = Reader::new(payload);
    let space = reader.take_str()?;
    let count = reader.take_u32()? as usize;
    let mut entries = Vec::new();
    for _ in 0..count {
        let key_len = reader.take_u32()? as usize;
        let mut key = Vec::with_capacity(key_len.min(reader.remaining() / 8));
        for _ in 0..key_len {
            key.push(reader.take_i64()?);
        }
        let obj_len = reader.take_u32()? as usize;
        let mut objectives = Vec::with_capacity(obj_len.min(reader.remaining() / 8));
        for _ in 0..obj_len {
            objectives.push(reader.take_f64()?);
        }
        let constraint_violation = reader.take_f64()?;
        // The Evaluation contract: violations are non-negative and never
        // NaN.  A hand-crafted file (valid CRCs, bad values) must not
        // plant a value the in-memory type forbids.
        if constraint_violation.is_nan() || constraint_violation < 0.0 {
            return Err(format!(
                "constraint violation {constraint_violation} is negative or NaN"
            ));
        }
        entries.push(EvalEntry {
            key,
            objectives,
            constraint_violation,
        });
    }
    reader.finish()?;
    Ok(EvalCacheRecord { space, entries })
}

fn encode_macro_cache(record: &MacroCacheRecord) -> Result<Vec<u8>, PersistError> {
    let mut writer = Writer::new();
    writer.put_str(&record.params);
    writer.put_u32(checked_u32(record.entries.len(), "macro metric")?);
    for entry in &record.entries {
        for &word in &entry.key {
            writer.put_u32(word);
        }
        for value in [
            entry.snr_db,
            entry.throughput_tops,
            entry.energy_per_mac_fj,
            entry.tops_per_watt,
            entry.area_f2_per_bit,
            entry.cycle_ns,
        ] {
            writer.put_f64(value);
        }
    }
    Ok(writer.into_bytes())
}

fn decode_macro_cache(payload: &[u8]) -> Result<MacroCacheRecord, String> {
    let mut reader = Reader::new(payload);
    let params = reader.take_str()?;
    let count = reader.take_u32()? as usize;
    let mut entries = Vec::new();
    for _ in 0..count {
        let mut key = [0u32; 4];
        for word in &mut key {
            *word = reader.take_u32()?;
        }
        entries.push(MacroEntry {
            key,
            snr_db: reader.take_f64()?,
            throughput_tops: reader.take_f64()?,
            energy_per_mac_fj: reader.take_f64()?,
            tops_per_watt: reader.take_f64()?,
            area_f2_per_bit: reader.take_f64()?,
            cycle_ns: reader.take_f64()?,
        });
    }
    reader.finish()?;
    Ok(MacroCacheRecord { params, entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_snapshot() -> Snapshot {
        Snapshot {
            archives: vec![ArchiveRecord {
                space: "chip/edge_cnn/…#0123456789abcdef".into(),
                genomes: vec![vec![0.25, -0.0, 1.0], vec![f64::MIN_POSITIVE, 0.5, 0.75]],
            }],
            eval_caches: vec![EvalCacheRecord {
                space: "chip/edge_cnn/…#0123456789abcdef".into(),
                entries: vec![
                    EvalEntry {
                        key: vec![1, -2, 3],
                        objectives: vec![-31.5, -2.25, 140.0, 950.0],
                        constraint_violation: 0.0,
                    },
                    EvalEntry {
                        key: vec![0, 0, 0],
                        objectives: vec![0.0],
                        constraint_violation: 2.5,
                    },
                ],
            }],
            macro_caches: vec![MacroCacheRecord {
                params: "params/#fedcba9876543210".into(),
                entries: vec![MacroEntry {
                    key: [128, 32, 4, 3],
                    snr_db: 31.4,
                    throughput_tops: 2.2,
                    energy_per_mac_fj: 140.0,
                    tops_per_watt: 7.1,
                    area_f2_per_bit: 950.0,
                    cycle_ns: 4.4,
                }],
            }],
        }
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let snapshot = sample_snapshot();
        let bytes = snapshot.to_bytes().unwrap();
        let decoded = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, snapshot);
        assert_eq!(decoded.genome_count(), 2);
        assert_eq!(decoded.evaluation_count(), 2);
        assert_eq!(decoded.macro_metric_count(), 1);
        assert!(!decoded.is_empty());
        assert!(Snapshot::new().is_empty());
        // Encoding is deterministic: same snapshot, same bytes.
        assert_eq!(snapshot.to_bytes().unwrap(), bytes);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let bytes = Snapshot::new().to_bytes().unwrap();
        assert_eq!(Snapshot::from_bytes(&bytes).unwrap(), Snapshot::new());
    }

    #[test]
    fn ragged_genomes_are_an_invalid_record_not_a_panic() {
        let snapshot = Snapshot {
            archives: vec![ArchiveRecord {
                space: "macro/x".into(),
                genomes: vec![vec![0.0, 1.0], vec![0.5]],
            }],
            ..Snapshot::new()
        };
        assert!(matches!(
            snapshot.to_bytes(),
            Err(PersistError::InvalidRecord { .. })
        ));
    }

    #[test]
    fn negative_or_nan_violation_is_rejected_at_decode() {
        for bad in [-1.0, f64::NAN] {
            let snapshot = Snapshot {
                eval_caches: vec![EvalCacheRecord {
                    space: "chip/x".into(),
                    entries: vec![EvalEntry {
                        key: vec![1],
                        objectives: vec![0.0],
                        constraint_violation: bad,
                    }],
                }],
                ..Snapshot::new()
            };
            // The writer is trusting; the reader is not.
            let bytes = snapshot.to_bytes().unwrap();
            assert!(matches!(
                Snapshot::from_bytes(&bytes),
                Err(PersistError::SectionCorrupt { .. })
            ));
        }
    }

    #[test]
    fn every_truncation_and_byte_flip_of_a_real_snapshot_fails_typed() {
        let bytes = sample_snapshot().to_bytes().unwrap();
        for len in 0..bytes.len() {
            Snapshot::from_bytes(&bytes[..len]).expect_err("truncation must fail");
        }
        for at in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[at] ^= 0x01;
            Snapshot::from_bytes(&corrupted).expect_err("flip must fail");
            let mut corrupted = bytes.clone();
            corrupted[at] ^= 0x80;
            Snapshot::from_bytes(&corrupted).expect_err("flip must fail");
        }
    }

    #[test]
    fn file_round_trip_is_atomic_and_exact() {
        let dir = std::env::temp_dir().join("acim_persist_unit");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.snap");
        let snapshot = sample_snapshot();
        let bytes = snapshot.write(&path).unwrap();
        assert_eq!(bytes, fs::metadata(&path).unwrap().len());
        assert_eq!(Snapshot::read(&path).unwrap(), snapshot);
        // The temporary never outlives a successful write.
        assert!(!dir.join("unit.snap.tmp").exists());
        // Overwriting an existing snapshot goes through the same rename.
        let empty = Snapshot::new();
        empty.write(&path).unwrap();
        assert_eq!(Snapshot::read(&path).unwrap(), empty);
        fs::remove_file(&path).unwrap();
        // A missing file is a typed I/O error.
        assert!(matches!(
            Snapshot::read(&path),
            Err(PersistError::Io { op: "read", .. })
        ));
        // An unwritable destination is a typed I/O error.
        assert!(matches!(
            snapshot.write(dir.join("missing-dir").join("x.snap")),
            Err(PersistError::Io { .. })
        ));
    }
}
