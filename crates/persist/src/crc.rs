//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
//! checksum guarding the container header and every section payload.
//!
//! Table-driven: the 256-entry table is computed in a `const` context, so
//! the hot path is one table lookup and one XOR per byte.  The corruption
//! tests flip every byte of real snapshots one at a time, so this routine
//! runs over megabytes per test — table-driven keeps that cheap.

const fn table_entry(index: u32) -> u32 {
    let mut crc = index;
    let mut bit = 0;
    while bit < 8 {
        crc = if crc & 1 != 0 {
            (crc >> 1) ^ 0xEDB8_8320
        } else {
            crc >> 1
        };
        bit += 1;
    }
    crc
}

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut index = 0;
    while index < 256 {
        table[index] = table_entry(index as u32);
        index += 1;
    }
    table
}

const TABLE: [u32; 256] = build_table();

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        let index = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[index];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_ieee_check_value() {
        // The canonical CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_and_sensitivity() {
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
        // Single-bit sensitivity: any one flipped bit changes the sum.
        let base = crc32(b"snapshot payload");
        let mut corrupted = b"snapshot payload".to_vec();
        for i in 0..corrupted.len() * 8 {
            corrupted[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&corrupted), base, "flip at bit {i} undetected");
            corrupted[i / 8] ^= 1 << (i % 8);
        }
    }
}
