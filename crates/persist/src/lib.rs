//! Durable snapshot container for the exploration service.
//!
//! The paper's agility pitch is *design reuse*: distilled Pareto points
//! and per-macro metrics feed later explorations.  Everything the
//! `easyacim::ExplorationService` accumulates toward that reuse — session
//! archives (warm-start genomes per design space), genome-level
//! evaluation caches, macro-metric caches — lives in process memory and
//! dies with it.  This crate is the wire format that lets a service write
//! all of it to one file and a restarted service read it back, so the
//! first request after a restart reaches warm-start speed.
//!
//! # Container layout (format version 1)
//!
//! ```text
//! offset        size  field
//! 0             8     magic "ACIMSNAP"
//! 8             4     format version (u32 LE)
//! 12            4     section count N (u32 LE)
//! 16            16·N  section table: per section
//!                       kind (u32 LE) · payload length (u64 LE) ·
//!                       payload CRC-32 (u32 LE)
//! 16 + 16·N     4     header CRC-32 (over all preceding bytes, u32 LE)
//! 20 + 16·N     …     payloads, concatenated in table order
//! ```
//!
//! Every multi-byte integer is little-endian; every `f64` travels as its
//! IEEE-754 bit pattern (`to_bits`/`from_bits`), so round trips are
//! bit-exact for every value including negative zero and NaN payloads.
//! The file length must equal the header plus the summed payload lengths
//! exactly — trailing bytes are as fatal as missing ones.
//!
//! # Robustness contract
//!
//! [`Snapshot::from_bytes`] never panics and never returns partially
//! decoded data: the magic, version, header checksum, total length, and
//! every per-section checksum are verified before any payload is decoded,
//! and any failure surfaces as one typed [`PersistError`].  A flipped
//! byte anywhere in the file is caught by a checksum (or an even earlier
//! structural check); a truncated file is caught by a length check; a
//! future format version is refused before the header layout is trusted.
//! Consumers therefore get exactly two outcomes: the full snapshot, or a
//! typed error and nothing — the "clean cold start" the service's
//! `restore` builds on.
//!
//! # Versioning policy
//!
//! [`FORMAT_VERSION`] bumps on **any** layout change, including new
//! section kinds — readers reject unknown versions (and unknown section
//! kinds, defensively) rather than guessing.  A newer reader may add
//! back-compat decoding for older versions; a writer only ever emits the
//! current one.
#![forbid(unsafe_code)]

mod container;
mod crc;
mod error;
mod snapshot;
mod wire;

pub use container::FORMAT_VERSION;
pub use crc::crc32;
pub use error::PersistError;
pub use snapshot::{
    ArchiveRecord, EvalCacheRecord, EvalEntry, MacroCacheRecord, MacroEntry, Snapshot,
};
