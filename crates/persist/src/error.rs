//! The one typed error surface of the persistence tier.
//!
//! Every way a snapshot can fail to load — I/O, truncation, corruption,
//! version skew, a signature that does not belong to this service — maps
//! to exactly one [`PersistError`] variant, and [`PersistError::reason`]
//! folds the variants onto the short stable labels the service's
//! `service_restore_rejected_total{reason}` counter uses.  Decoding never
//! panics: the corruption tests flip and truncate real snapshots
//! byte-by-byte and require a typed error every time.

use std::error::Error;
use std::fmt;
use std::path::Path;

/// Errors produced while writing, reading, or decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An operating-system error while reading or writing the file.
    Io {
        /// The failed operation (`"read"`, `"write"`, `"rename"`, …).
        op: &'static str,
        /// The path involved.
        path: String,
        /// The OS error message.
        message: String,
    },
    /// The file ends before the structure it promises.
    Truncated {
        /// Bytes the structure requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The file does not start with the `ACIMSNAP` magic.
    BadMagic {
        /// The first eight bytes found instead.
        found: [u8; 8],
    },
    /// The file was written by a future (or unknown) format version.
    UnsupportedVersion {
        /// The version recorded in the file.
        found: u32,
        /// The newest version this reader understands.
        supported: u32,
    },
    /// The header CRC does not match: the section table cannot be
    /// trusted.
    HeaderChecksum,
    /// The header is structurally implausible (absurd section count,
    /// overflowing lengths, trailing bytes past the declared payloads).
    HeaderCorrupt {
        /// What exactly is implausible.
        detail: String,
    },
    /// A section payload's CRC does not match the table entry.
    SectionChecksum {
        /// Index of the section in the table.
        index: usize,
        /// The section kind recorded in the table.
        kind: u32,
    },
    /// A section passed its CRC but does not decode as its kind claims
    /// (unknown kind, ragged matrix, out-of-contract value, leftovers).
    SectionCorrupt {
        /// Index of the section in the table.
        index: usize,
        /// What exactly failed to decode.
        detail: String,
    },
    /// An in-memory record cannot be encoded (e.g. a ragged genome
    /// matrix) — a caller bug surfaced as an error, never a panic.
    InvalidRecord {
        /// What exactly is unencodable.
        detail: String,
    },
    /// A decoded record carries a signature that cannot belong to the
    /// registry it targets (wrong namespace prefix).
    BadSignature {
        /// The signature namespace the registry accepts.
        expected: &'static str,
        /// The signature found in the snapshot.
        found: String,
    },
}

impl PersistError {
    /// Wraps an OS error with the operation and path it interrupted.
    pub fn io(op: &'static str, path: &Path, err: &std::io::Error) -> Self {
        PersistError::Io {
            op,
            path: path.display().to_string(),
            message: err.to_string(),
        }
    }

    /// A short, stable, low-cardinality label for the rejection-counter
    /// telemetry (`service_restore_rejected_total{reason=…}`).
    pub fn reason(&self) -> &'static str {
        match self {
            PersistError::Io { .. } => "io",
            PersistError::Truncated { .. } => "truncated",
            PersistError::BadMagic { .. } => "bad_magic",
            PersistError::UnsupportedVersion { .. } => "unsupported_version",
            PersistError::HeaderChecksum => "header_checksum",
            PersistError::HeaderCorrupt { .. } => "header_corrupt",
            PersistError::SectionChecksum { .. } => "section_checksum",
            PersistError::SectionCorrupt { .. } => "section_corrupt",
            PersistError::InvalidRecord { .. } => "invalid_record",
            PersistError::BadSignature { .. } => "bad_signature",
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { op, path, message } => {
                write!(f, "snapshot {op} failed on `{path}`: {message}")
            }
            PersistError::Truncated { expected, actual } => {
                write!(
                    f,
                    "snapshot truncated: need {expected} bytes, have {actual}"
                )
            }
            PersistError::BadMagic { found } => {
                write!(f, "not a snapshot: magic bytes {found:?}")
            }
            PersistError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot format version {found} is newer than the \
                     supported version {supported}"
                )
            }
            PersistError::HeaderChecksum => {
                write!(f, "snapshot header checksum mismatch")
            }
            PersistError::HeaderCorrupt { detail } => {
                write!(f, "snapshot header corrupt: {detail}")
            }
            PersistError::SectionChecksum { index, kind } => {
                write!(
                    f,
                    "snapshot section {index} (kind {kind}) checksum mismatch"
                )
            }
            PersistError::SectionCorrupt { index, detail } => {
                write!(f, "snapshot section {index} corrupt: {detail}")
            }
            PersistError::InvalidRecord { detail } => {
                write!(f, "record cannot be encoded: {detail}")
            }
            PersistError::BadSignature { expected, found } => {
                write!(
                    f,
                    "snapshot signature `{found}` does not belong to the \
                     {expected} registry"
                )
            }
        }
    }
}

impl Error for PersistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_are_distinct_and_displays_are_descriptive() {
        let errors = [
            PersistError::Io {
                op: "read",
                path: "x".into(),
                message: "gone".into(),
            },
            PersistError::Truncated {
                expected: 10,
                actual: 3,
            },
            PersistError::BadMagic { found: [0; 8] },
            PersistError::UnsupportedVersion {
                found: 7,
                supported: 1,
            },
            PersistError::HeaderChecksum,
            PersistError::HeaderCorrupt { detail: "d".into() },
            PersistError::SectionChecksum { index: 0, kind: 1 },
            PersistError::SectionCorrupt {
                index: 2,
                detail: "d".into(),
            },
            PersistError::InvalidRecord { detail: "d".into() },
            PersistError::BadSignature {
                expected: "macro/chip",
                found: "bogus".into(),
            },
        ];
        let mut reasons: Vec<&str> = errors.iter().map(PersistError::reason).collect();
        reasons.sort_unstable();
        reasons.dedup();
        assert_eq!(
            reasons.len(),
            errors.len(),
            "reason labels must be distinct"
        );
        for error in &errors {
            assert!(!error.to_string().is_empty());
        }
        assert!(PersistError::UnsupportedVersion {
            found: 7,
            supported: 1
        }
        .to_string()
        .contains("version 7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PersistError>();
    }
}
