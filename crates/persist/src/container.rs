//! The outer container: magic, version, checksummed section table,
//! checksummed payloads.
//!
//! Verification is strictly outside-in — magic, version, header
//! checksum, exact total length, then one CRC per payload — so nothing
//! is ever decoded from bytes the checksums have not vouched for, and a
//! flipped byte *anywhere* in the file surfaces as a typed error before
//! any section codec runs.  The version check deliberately precedes the
//! header checksum: a future format may well change the header layout
//! itself, and [`crate::PersistError::UnsupportedVersion`] is the honest
//! diagnosis then, not a checksum mismatch.

use crate::crc::crc32;
use crate::error::PersistError;

pub(crate) const MAGIC: [u8; 8] = *b"ACIMSNAP";

/// The newest container layout this crate reads and the only one it
/// writes.  Bumps on any layout change, including new section kinds.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed prefix before the section table: magic + version + count.
const FIXED_PREFIX: usize = 16;
/// Bytes per section-table entry: kind (4) + length (8) + CRC (4).
const TABLE_ENTRY: usize = 16;
/// Hard sanity bound on the section count — a registry holds a handful
/// of spaces, not millions; anything larger is a corrupt header.
const MAX_SECTIONS: u32 = 1 << 20;

/// One encoded section: its kind tag and payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Section {
    pub(crate) kind: u32,
    pub(crate) payload: Vec<u8>,
}

/// Serializes sections into one self-verifying byte container.
pub(crate) fn encode(sections: &[Section]) -> Vec<u8> {
    let payload_len: usize = sections.iter().map(|s| s.payload.len()).sum();
    let header_len = FIXED_PREFIX + TABLE_ENTRY * sections.len() + 4;
    let mut bytes = Vec::with_capacity(header_len + payload_len);
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for section in sections {
        bytes.extend_from_slice(&section.kind.to_le_bytes());
        bytes.extend_from_slice(&(section.payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&crc32(&section.payload).to_le_bytes());
    }
    let header_crc = crc32(&bytes);
    bytes.extend_from_slice(&header_crc.to_le_bytes());
    for section in sections {
        bytes.extend_from_slice(&section.payload);
    }
    bytes
}

/// Verifies the container outside-in and returns `(kind, payload)` per
/// section.  Payload slices borrow from `bytes`; their CRCs have already
/// matched when this returns.
///
/// # Errors
///
/// Every structural defect maps to one typed [`PersistError`] — see the
/// module docs for the verification order.
pub(crate) fn decode(bytes: &[u8]) -> Result<Vec<(u32, &[u8])>, PersistError> {
    if bytes.len() < FIXED_PREFIX {
        return Err(PersistError::Truncated {
            expected: FIXED_PREFIX as u64,
            actual: bytes.len() as u64,
        });
    }
    if bytes[..8] != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&bytes[..8]);
        return Err(PersistError::BadMagic { found });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if count > MAX_SECTIONS {
        return Err(PersistError::HeaderCorrupt {
            detail: format!("implausible section count {count}"),
        });
    }
    let header_len = FIXED_PREFIX + TABLE_ENTRY * count as usize + 4;
    if bytes.len() < header_len {
        return Err(PersistError::Truncated {
            expected: header_len as u64,
            actual: bytes.len() as u64,
        });
    }
    let stored_crc = u32::from_le_bytes(
        bytes[header_len - 4..header_len]
            .try_into()
            .expect("4 bytes"),
    );
    if crc32(&bytes[..header_len - 4]) != stored_crc {
        return Err(PersistError::HeaderChecksum);
    }

    // The table is now trusted: compute the exact total length.
    let mut table = Vec::with_capacity(count as usize);
    let mut total = header_len as u64;
    for index in 0..count as usize {
        let at = FIXED_PREFIX + TABLE_ENTRY * index;
        let kind = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        let len = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
        let crc = u32::from_le_bytes(bytes[at + 12..at + 16].try_into().expect("4 bytes"));
        total = total
            .checked_add(len)
            .ok_or_else(|| PersistError::HeaderCorrupt {
                detail: "section lengths overflow".into(),
            })?;
        table.push((kind, len, crc));
    }
    if (bytes.len() as u64) < total {
        return Err(PersistError::Truncated {
            expected: total,
            actual: bytes.len() as u64,
        });
    }
    if (bytes.len() as u64) > total {
        return Err(PersistError::HeaderCorrupt {
            detail: format!(
                "{} trailing bytes past the declared payloads",
                bytes.len() as u64 - total
            ),
        });
    }

    let mut sections = Vec::with_capacity(table.len());
    let mut offset = header_len;
    for (index, (kind, len, crc)) in table.into_iter().enumerate() {
        // `len` fits in usize: the sum fit in the file length above.
        let payload = &bytes[offset..offset + len as usize];
        if crc32(payload) != crc {
            return Err(PersistError::SectionChecksum { index, kind });
        }
        sections.push((kind, payload));
        offset += len as usize;
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        encode(&[
            Section {
                kind: 1,
                payload: b"alpha".to_vec(),
            },
            Section {
                kind: 3,
                payload: vec![0, 255, 7, 7],
            },
        ])
    }

    #[test]
    fn round_trips_sections_in_order() {
        let bytes = sample();
        let sections = decode(&bytes).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0], (1, b"alpha".as_slice()));
        assert_eq!(sections[1], (3, [0, 255, 7, 7].as_slice()));
        // An empty container is valid too.
        assert!(decode(&encode(&[])).unwrap().is_empty());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample();
        for len in 0..bytes.len() {
            let err = decode(&bytes[..len]).expect_err("truncation must fail");
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. }
                        | PersistError::BadMagic { .. }
                        | PersistError::HeaderChecksum
                ),
                "prefix of {len} bytes: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_a_typed_error() {
        let bytes = sample();
        for at in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[at] ^= 0x40;
            decode(&corrupted).expect_err("a flipped byte must never decode");
        }
    }

    #[test]
    fn wrong_magic_future_version_and_trailing_bytes() {
        let mut wrong_magic = sample();
        wrong_magic[0] = b'X';
        assert!(matches!(
            decode(&wrong_magic),
            Err(PersistError::BadMagic { .. })
        ));

        let mut future = sample();
        future[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert_eq!(
            decode(&future).unwrap_err(),
            PersistError::UnsupportedVersion {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION
            }
        );

        let mut trailing = sample();
        trailing.push(0);
        assert!(matches!(
            decode(&trailing),
            Err(PersistError::HeaderCorrupt { .. })
        ));
    }
}
