//! Little-endian wire primitives: an appending writer and a
//! bounds-checked cursor reader.
//!
//! The reader only ever runs on payloads whose CRC already matched, so a
//! decode failure here means a *logically* malformed section (or a
//! hand-crafted file with a freshly computed checksum) — it reports a
//! detail string the container layer wraps into
//! [`crate::PersistError::SectionCorrupt`].  Readers never trust a
//! length prefix further than the bytes actually remaining, so a
//! CRC-valid allocation bomb cannot reserve more memory than the file
//! provides.

/// An appending little-endian byte writer.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    pub(crate) fn put_i64(&mut self, value: i64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Bit-exact `f64`: the IEEE-754 pattern, so `-0.0` and NaN payloads
    /// survive the round trip unchanged.
    pub(crate) fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }

    /// A `u32` byte-length prefix followed by the UTF-8 bytes.
    pub(crate) fn put_str(&mut self, value: &str) {
        // Signatures are short; a >4 GiB string cannot be a signature and
        // would already be unencodable — saturate instead of panicking.
        self.put_u32(u32::try_from(value.len()).unwrap_or(u32::MAX));
        self.buf.extend_from_slice(value.as_bytes());
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked little-endian cursor over one section payload.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], String> {
        if self.remaining() < len {
            return Err(format!(
                "payload underrun: need {len} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ));
        }
        let slice = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    pub(crate) fn take_u32(&mut self) -> Result<u32, String> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64, String> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    pub(crate) fn take_i64(&mut self) -> Result<i64, String> {
        let bytes = self.take(8)?;
        Ok(i64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    pub(crate) fn take_f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    pub(crate) fn take_str(&mut self) -> Result<String, String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| format!("string at offset {} is not UTF-8", self.pos - len))
    }

    /// Asserts the payload is fully consumed — leftovers mean the section
    /// lies about its own shape.
    pub(crate) fn finish(self) -> Result<(), String> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(format!(
                "{} unread bytes after the declared contents",
                self.remaining()
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut writer = Writer::new();
        writer.put_u32(0xDEAD_BEEF);
        writer.put_u64(u64::MAX - 1);
        writer.put_i64(-42);
        writer.put_f64(-0.0);
        writer.put_f64(f64::from_bits(0x7FF8_0000_0000_1234)); // NaN payload
        writer.put_str("params/#abc");
        let bytes = writer.into_bytes();

        let mut reader = Reader::new(&bytes);
        assert_eq!(reader.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(reader.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(reader.take_i64().unwrap(), -42);
        assert_eq!(reader.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(
            reader.take_f64().unwrap().to_bits(),
            0x7FF8_0000_0000_1234,
            "NaN payload must survive bit-exactly"
        );
        assert_eq!(reader.take_str().unwrap(), "params/#abc");
        reader.finish().unwrap();
    }

    #[test]
    fn underruns_and_leftovers_are_errors() {
        let mut reader = Reader::new(&[1, 2, 3]);
        assert!(reader.take_u32().is_err(), "underrun must not panic");
        let reader = Reader::new(&[0; 8]);
        assert!(reader.finish().is_err(), "leftovers are an error");
        // A length prefix larger than the payload is an underrun, not an
        // allocation.
        let mut bomb = Writer::new();
        bomb.put_u32(u32::MAX);
        let bytes = bomb.into_bytes();
        assert!(Reader::new(&bytes).take_str().is_err());
    }
}
