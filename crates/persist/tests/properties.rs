//! Property-based tests of the snapshot container: randomly generated
//! snapshots — arbitrary `f64` bit patterns included — round-trip
//! byte-identically, and randomly corrupted encodings (truncation at any
//! boundary, any single-byte flip) always come back as a typed
//! [`PersistError`], never a panic and never silently-wrong data.

use acim_persist::{
    ArchiveRecord, EvalCacheRecord, EvalEntry, MacroCacheRecord, MacroEntry, PersistError, Snapshot,
};
use proptest::prelude::*;

/// Any `f64` bit pattern at all: NaNs with payloads, infinities,
/// subnormals, negative zero.  The container stores bits, so every one of
/// these must survive a round trip untouched.
fn any_bits_f64() -> impl Strategy<Value = f64> {
    (0u64..=u64::MAX).prop_map(f64::from_bits)
}

/// Finite non-negative `f64`s — the only constraint violations the
/// decoder accepts.
fn violation() -> impl Strategy<Value = f64> {
    0.0..1e12f64
}

fn signature(prefix: &'static str) -> impl Strategy<Value = String> {
    prop::collection::vec(97u8..=122, 1..12).prop_map(move |tail| {
        let tail: String = tail.into_iter().map(char::from).collect();
        format!("{prefix}{tail}")
    })
}

fn archive() -> impl Strategy<Value = ArchiveRecord> {
    // One genome width per archive (the matrix must be rectangular): a
    // flat cell pool is carved into `rows` genomes of `width` values.
    (
        signature("chip/"),
        0usize..5,
        1usize..5,
        prop::collection::vec(any_bits_f64(), 16),
    )
        .prop_map(|(space, rows, width, pool)| ArchiveRecord {
            space,
            genomes: (0..rows)
                .map(|row| (0..width).map(|col| pool[row * 4 + col]).collect())
                .collect(),
        })
}

fn eval_cache() -> impl Strategy<Value = EvalCacheRecord> {
    (
        signature("macro/"),
        prop::collection::vec(
            (
                prop::collection::vec(0u32..=u32::MAX, 1..6),
                prop::collection::vec(any_bits_f64(), 1..5),
                violation(),
            )
                .prop_map(|(key, objectives, constraint_violation)| EvalEntry {
                    // Centre on zero so negative genome keys are exercised.
                    key: key
                        .into_iter()
                        .map(|word| i64::from(word) - i64::from(u32::MAX / 2))
                        .collect(),
                    objectives,
                    constraint_violation,
                }),
            0..8,
        ),
    )
        .prop_map(|(space, entries)| EvalCacheRecord { space, entries })
}

fn macro_cache() -> impl Strategy<Value = MacroCacheRecord> {
    (
        signature("params/"),
        prop::collection::vec(
            (
                (1u32..1024, 1u32..1024, 1u32..16, 1u32..9),
                prop::collection::vec(any_bits_f64(), 6),
            )
                .prop_map(|((h, w, l, b), values)| MacroEntry {
                    key: [h, w, l, b],
                    snr_db: values[0],
                    throughput_tops: values[1],
                    energy_per_mac_fj: values[2],
                    tops_per_watt: values[3],
                    area_f2_per_bit: values[4],
                    cycle_ns: values[5],
                }),
            0..8,
        ),
    )
        .prop_map(|(params, entries)| MacroCacheRecord { params, entries })
}

fn snapshot() -> impl Strategy<Value = Snapshot> {
    (
        prop::collection::vec(archive(), 0..4),
        prop::collection::vec(eval_cache(), 0..4),
        prop::collection::vec(macro_cache(), 0..3),
    )
        .prop_map(|(archives, eval_caches, macro_caches)| {
            let mut snapshot = Snapshot::new();
            snapshot.archives = archives;
            snapshot.eval_caches = eval_caches;
            snapshot.macro_caches = macro_caches;
            snapshot
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Byte-identity is the strongest round-trip check available: it is
    // immune to the `NaN != NaN` blind spot a record-level `PartialEq`
    // comparison would have.
    #[test]
    fn round_trip_is_byte_identical(snapshot in snapshot()) {
        let bytes = snapshot.to_bytes().unwrap();
        let decoded = Snapshot::from_bytes(&bytes).unwrap();
        prop_assert_eq!(decoded.to_bytes().unwrap(), bytes);
        prop_assert_eq!(decoded.genome_count(), snapshot.genome_count());
        prop_assert_eq!(decoded.evaluation_count(), snapshot.evaluation_count());
        prop_assert_eq!(decoded.macro_metric_count(), snapshot.macro_metric_count());
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error(
        snapshot in snapshot(),
        cut_fraction in 0.0..1.0f64,
    ) {
        let bytes = snapshot.to_bytes().unwrap();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assert!(cut < bytes.len());
        let err = Snapshot::from_bytes(&bytes[..cut]).unwrap_err();
        prop_assert!(!err.reason().is_empty());
    }

    #[test]
    fn any_single_byte_flip_is_a_typed_error(
        snapshot in snapshot(),
        position_fraction in 0.0..1.0f64,
        mask in 1u8..=255,
    ) {
        let mut bytes = snapshot.to_bytes().unwrap();
        let position = ((bytes.len() as f64) * position_fraction) as usize;
        prop_assert!(position < bytes.len());
        bytes[position] ^= mask;
        let err = Snapshot::from_bytes(&bytes).unwrap_err();
        // CRC-32 detects every burst error up to 32 bits, so a one-byte
        // corruption can never decode silently.
        prop_assert!(
            !matches!(err, PersistError::Io { .. }),
            "in-memory decode produced an Io error: {err:?}"
        );
    }
}
