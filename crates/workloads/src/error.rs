//! Error type of the workloads crate.

use std::error::Error;
use std::fmt;

use acim_arch::ArchError;

/// Errors produced while building or mapping workloads.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// Two operands have incompatible shapes.
    ShapeMismatch {
        /// Description of the operation.
        operation: String,
        /// Left-hand shape.
        left: (usize, usize),
        /// Right-hand shape.
        right: (usize, usize),
    },
    /// A workload parameter was invalid.
    InvalidParameter {
        /// Parameter name.
        name: String,
        /// Why it was rejected.
        reason: String,
    },
    /// An error bubbled up from the architecture crate.
    Arch(ArchError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::ShapeMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "shape mismatch in {operation}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            WorkloadError::InvalidParameter { name, reason } => {
                write!(f, "invalid workload parameter `{name}`: {reason}")
            }
            WorkloadError::Arch(err) => write!(f, "architecture error: {err}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Arch(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ArchError> for WorkloadError {
    fn from(err: ArchError) -> Self {
        WorkloadError::Arch(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = WorkloadError::ShapeMismatch {
            operation: "matmul".into(),
            left: (3, 4),
            right: (5, 6),
        };
        assert!(e.to_string().contains("3x4"));
        let e: WorkloadError = ArchError::invalid_spec("x", "y").into();
        assert!(e.to_string().contains("architecture error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WorkloadError>();
    }
}
