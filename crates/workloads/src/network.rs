//! Whole-network workloads: ordered layer graphs built from the
//! single-MVM workload generators of this crate.
//!
//! [`crate::mapping`] maps **one** matrix-vector product onto **one**
//! macro.  Real applications are sequences of such MVMs — a CNN's
//! stacked convolutions, a transformer block's Q/K/V projections, an SNN's
//! synaptic layers — and their layers have very different shapes and
//! accuracy appetites.  [`Network`] captures that: an ordered list of
//! [`NetworkLayer`]s, each of which can report its MVM shape analytically
//! (for the fast chip estimation model) or lower itself to a concrete
//! [`BinaryMvm`] (for behavioural validation).
//!
//! Multi-tenant mixes of networks live one module over, in
//! [`crate::mix`]; the chip layer (`acim-chip`) schedules both onto macro
//! grids.

use std::fmt;

use crate::cnn::CnnLayer;
use crate::quantize::BinaryMvm;
use crate::snn::SnnLayer;
use crate::transformer::{AttentionProjection, ProjectionKind};
use crate::WorkloadError;

/// The workload family a layer belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerKind {
    /// A convolution layer lowered by im2col.
    Cnn(CnnLayer),
    /// One head of an attention projection.
    Attention(AttentionProjection),
    /// One timestep of a spiking layer at a given firing rate.
    Snn {
        /// The layer.
        layer: SnnLayer,
        /// Input spike rate in `[0, 1]`.
        rate: f64,
    },
}

/// One layer of a network: a named MVM workload.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkLayer {
    /// Human-readable layer name (unique within its network by
    /// convention).
    pub name: String,
    /// The underlying workload.
    pub kind: LayerKind,
}

impl NetworkLayer {
    /// The MVM shape of the layer: `(outputs, dot_length)` — weight-matrix
    /// rows and columns after lowering.
    pub fn shape(&self) -> (usize, usize) {
        match &self.kind {
            LayerKind::Cnn(layer) => (layer.out_channels, layer.dot_length()),
            LayerKind::Attention(proj) => (proj.head_dim(), proj.d_model),
            LayerKind::Snn { layer, .. } => (layer.neurons, layer.inputs),
        }
    }

    /// Number of weight bits the layer must keep resident (1-bit weights).
    pub fn weight_bits(&self) -> usize {
        let (rows, cols) = self.shape();
        rows * cols
    }

    /// Lowers the layer to a concrete binarised MVM.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] when the layer shape is degenerate.
    pub fn to_workload(&self, seed: u64) -> Result<BinaryMvm, WorkloadError> {
        match &self.kind {
            LayerKind::Cnn(layer) => layer.to_workload(seed),
            LayerKind::Attention(proj) => proj.to_workload(seed),
            LayerKind::Snn { layer, rate } => layer.to_workload(*rate, seed),
        }
    }
}

/// An ordered multi-layer network: layer `i + 1` consumes the outputs of
/// layer `i`, so layers execute sequentially while the tiles *within* a
/// layer spread across the macro grid in parallel.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    /// Network name (used in reports).
    pub name: String,
    /// The layers in execution order.
    pub layers: Vec<NetworkLayer>,
}

impl Network {
    /// Creates a network from named layers.
    pub fn new(name: impl Into<String>, layers: Vec<NetworkLayer>) -> Self {
        Self {
            name: name.into(),
            layers,
        }
    }

    /// A multi-layer edge CNN: a stem convolution, `depth` mobile-class
    /// 3×3 blocks, and a small head — the image-identification application
    /// of the paper's Figure 1 scaled past a single macro.
    pub fn edge_cnn(depth: usize) -> Self {
        let mut layers = vec![NetworkLayer {
            name: "stem".into(),
            kind: LayerKind::Cnn(CnnLayer::small(5)),
        }];
        for i in 0..depth {
            layers.push(NetworkLayer {
                name: format!("block{i}"),
                kind: LayerKind::Cnn(CnnLayer::mobile()),
            });
        }
        layers.push(NetworkLayer {
            name: "head".into(),
            kind: LayerKind::Cnn(CnnLayer::small(1)),
        });
        Self::new(format!("edge_cnn_d{depth}"), layers)
    }

    /// One attention block of an edge transformer: the Q, K and V
    /// projections of every head.
    pub fn transformer_block() -> Self {
        let layers = [
            ProjectionKind::Query,
            ProjectionKind::Key,
            ProjectionKind::Value,
        ]
        .into_iter()
        .map(|kind| NetworkLayer {
            name: format!("{kind:?}").to_lowercase(),
            kind: LayerKind::Attention(AttentionProjection::edge(kind)),
        })
        .collect();
        Self::new("transformer_block", layers)
    }

    /// A two-layer always-on SNN sensing pipeline.
    pub fn snn_pipeline() -> Self {
        let sensing = SnnLayer::small();
        let classifier = SnnLayer {
            inputs: sensing.neurons,
            neurons: 10,
            threshold: 4.0,
            leak: 0.8,
        };
        Self::new(
            "snn_pipeline",
            vec![
                NetworkLayer {
                    name: "sensing".into(),
                    kind: LayerKind::Snn {
                        layer: sensing,
                        rate: 0.3,
                    },
                },
                NetworkLayer {
                    name: "classifier".into(),
                    kind: LayerKind::Snn {
                        layer: classifier,
                        rate: 0.2,
                    },
                },
            ],
        )
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total MAC operations per inference (sum of `rows · cols` over
    /// layers).
    pub fn total_macs(&self) -> usize {
        self.layers.iter().map(NetworkLayer::weight_bits).sum()
    }

    /// Total 1-bit weight footprint of the network in bits.
    pub fn total_weight_bits(&self) -> usize {
        self.total_macs()
    }

    /// The largest single-layer weight footprint in bits — the working set
    /// the global buffer has to sustain.
    pub fn max_layer_weight_bits(&self) -> usize {
        self.layers
            .iter()
            .map(NetworkLayer::weight_bits)
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {:.1} kMAC/inference)",
            self.name,
            self.len(),
            self.total_macs() as f64 / 1000.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_cnn_builds_stem_blocks_head() {
        let net = Network::edge_cnn(3);
        assert_eq!(net.len(), 5);
        assert_eq!(net.layers[0].name, "stem");
        assert_eq!(net.layers[4].name, "head");
        assert_eq!(net.layers[1].shape(), (64, 32 * 9));
        assert!(net.total_macs() > 0);
        assert!(net.to_string().contains("5 layers"));
    }

    #[test]
    fn transformer_block_has_qkv() {
        let net = Network::transformer_block();
        assert_eq!(net.len(), 3);
        for layer in &net.layers {
            assert_eq!(layer.shape(), (32, 128));
        }
        assert_eq!(net.max_layer_weight_bits(), 32 * 128);
    }

    #[test]
    fn snn_pipeline_chains_layer_shapes() {
        let net = Network::snn_pipeline();
        assert_eq!(net.len(), 2);
        let (sense_out, _) = net.layers[0].shape();
        let (_, classify_in) = net.layers[1].shape();
        assert_eq!(sense_out, classify_in);
    }

    #[test]
    fn layers_lower_to_concrete_workloads() {
        for net in [
            Network::edge_cnn(1),
            Network::transformer_block(),
            Network::snn_pipeline(),
        ] {
            for layer in &net.layers {
                let mvm = layer.to_workload(7).unwrap();
                assert_eq!((mvm.rows(), mvm.cols()), layer.shape(), "{}", layer.name);
            }
        }
    }

    #[test]
    fn empty_network_reports_zero_footprint() {
        let net = Network::new("empty", vec![]);
        assert!(net.is_empty());
        assert_eq!(net.max_layer_weight_bits(), 0);
    }
}
