//! CNN layer workload (the image-identification application of Figure 1).
//!
//! A convolution layer is lowered to a matrix-vector product per output
//! pixel by im2col: the weight matrix has one row per output channel and
//! `C_in · K · K` columns.  The synthetic layer uses a deterministic,
//! seed-driven pseudo-random filler so workloads are reproducible without a
//! dataset.

use crate::error::WorkloadError;
use crate::quantize::{binarize_mvm, BinaryMvm};
use crate::tensor::Matrix;

/// A synthetic convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CnnLayer {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
}

impl CnnLayer {
    /// A small edge-CNN layer (e.g. a keyword-spotting or MNIST-class
    /// network): 8 → 16 channels, K×K kernel.
    pub fn small(kernel: usize) -> Self {
        Self {
            in_channels: 8,
            out_channels: 16,
            kernel,
        }
    }

    /// A mobile-class layer: 32 → 64 channels, 3×3 kernel.
    pub fn mobile() -> Self {
        Self {
            in_channels: 32,
            out_channels: 64,
            kernel: 3,
        }
    }

    /// The im2col dot-product length (`C_in · K · K`).
    pub fn dot_length(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Lowers the layer into a binarised MVM with a deterministic synthetic
    /// patch, using `seed` to vary weights and activations.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] when the layer shape is degenerate.
    pub fn to_workload(&self, seed: u64) -> Result<BinaryMvm, WorkloadError> {
        if self.kernel == 0 || self.in_channels == 0 || self.out_channels == 0 {
            return Err(WorkloadError::InvalidParameter {
                name: "cnn layer".into(),
                reason: "all dimensions must be positive".into(),
            });
        }
        let cols = self.dot_length();
        let weights = Matrix::from_fn(self.out_channels, cols, |r, c| {
            pseudo_random(seed ^ 0xC0FFEE, r * cols + c) - 0.5
        })?;
        let activations: Vec<f64> = (0..cols)
            .map(|i| pseudo_random(seed ^ 0xFEED, i).max(0.0)) // post-ReLU style
            .collect();
        binarize_mvm(
            &format!(
                "cnn_{}x{}x{}",
                self.out_channels, self.in_channels, self.kernel
            ),
            &weights,
            &activations,
        )
    }
}

/// Deterministic pseudo-random value in `[0, 1)` derived from a seed and an
/// index (splitmix64-style hash), so workloads need no RNG state.
pub(crate) fn pseudo_random(seed: u64, index: usize) -> f64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_length_matches_im2col() {
        assert_eq!(CnnLayer::small(3).dot_length(), 8 * 9);
        assert_eq!(CnnLayer::mobile().dot_length(), 32 * 9);
    }

    #[test]
    fn workload_shapes_follow_the_layer() {
        let layer = CnnLayer::small(5);
        let mvm = layer.to_workload(1).unwrap();
        assert_eq!(mvm.rows(), 16);
        assert_eq!(mvm.cols(), 8 * 25);
        assert!(mvm.label.contains("cnn"));
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let layer = CnnLayer::mobile();
        assert_eq!(layer.to_workload(5).unwrap(), layer.to_workload(5).unwrap());
        assert_ne!(layer.to_workload(5).unwrap(), layer.to_workload(6).unwrap());
    }

    #[test]
    fn degenerate_layers_are_rejected() {
        let layer = CnnLayer {
            in_channels: 0,
            out_channels: 4,
            kernel: 3,
        };
        assert!(layer.to_workload(1).is_err());
    }

    #[test]
    fn pseudo_random_is_in_unit_interval_and_varies() {
        let values: Vec<f64> = (0..100).map(|i| pseudo_random(42, i)).collect();
        assert!(values.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((mean - 0.5).abs() < 0.15, "mean {mean} far from 0.5");
    }
}
