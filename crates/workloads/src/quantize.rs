//! Quantisation to the macro's 1b × 1b compute precision.
//!
//! The paper's evaluation uses 1-bit × 1-bit computation; multi-bit layers
//! are executed as bit-serial passes.  This module binarises real-valued
//! activations and weights around their medians, producing the
//! [`BinaryMvm`] form the macro mapper consumes, and records the
//! quantisation scales so outputs can be de-quantised for accuracy
//! measurement.

use crate::error::WorkloadError;
use crate::tensor::Matrix;

/// A binarised matrix-vector multiplication: `weights · activations` with
/// every operand in {0, 1}.
#[derive(Debug, Clone, PartialEq)]
pub struct BinaryMvm {
    /// Binary weight matrix, `rows × cols`.
    pub weights: Vec<Vec<bool>>,
    /// Binary activation vector of length `cols`.
    pub activations: Vec<bool>,
    /// The real-valued reference output (pre-quantisation), used to measure
    /// the end-to-end error introduced by quantisation plus the macro.
    pub reference: Vec<f64>,
    /// Name of the originating workload.
    pub label: String,
}

impl BinaryMvm {
    /// Number of output rows.
    pub fn rows(&self) -> usize {
        self.weights.len()
    }

    /// Dot-product length (columns).
    pub fn cols(&self) -> usize {
        self.activations.len()
    }

    /// The exact binary dot products (the ideal digital result the macro is
    /// trying to compute).
    pub fn ideal_binary_outputs(&self) -> Vec<u32> {
        self.weights
            .iter()
            .map(|row| {
                row.iter()
                    .zip(&self.activations)
                    .filter(|(w, x)| **w && **x)
                    .count() as u32
            })
            .collect()
    }
}

/// Binarises a weight matrix around its per-row median (1 when above).
pub fn binarize_weights(weights: &Matrix) -> Vec<Vec<bool>> {
    (0..weights.rows())
        .map(|r| {
            let mut row: Vec<f64> = (0..weights.cols()).map(|c| weights.get(r, c)).collect();
            let mut sorted = row.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("weights must not be NaN"));
            let median = sorted[sorted.len() / 2];
            row.drain(..).map(|v| v > median).collect()
        })
        .collect()
}

/// Binarises an activation vector around its median (1 when above).
pub fn binarize_activations(activations: &[f64]) -> Vec<bool> {
    if activations.is_empty() {
        return Vec::new();
    }
    let mut sorted = activations.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("activations must not be NaN"));
    let median = sorted[sorted.len() / 2];
    activations.iter().map(|&v| v > median).collect()
}

/// Builds a [`BinaryMvm`] from real-valued operands.
///
/// # Errors
///
/// Returns [`WorkloadError::ShapeMismatch`] when the activation length does
/// not match the weight matrix.
pub fn binarize_mvm(
    label: &str,
    weights: &Matrix,
    activations: &[f64],
) -> Result<BinaryMvm, WorkloadError> {
    if activations.len() != weights.cols() {
        return Err(WorkloadError::ShapeMismatch {
            operation: "binarize_mvm".into(),
            left: (weights.rows(), weights.cols()),
            right: (activations.len(), 1),
        });
    }
    let reference = weights.matvec(activations)?;
    Ok(BinaryMvm {
        weights: binarize_weights(weights),
        activations: binarize_activations(activations),
        reference,
        label: label.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binarisation_splits_around_the_median() {
        let acts = vec![0.1, 0.9, 0.5, 0.2, 0.8, 0.7];
        let bits = binarize_activations(&acts);
        let ones = bits.iter().filter(|&&b| b).count();
        assert!(
            (2..=4).contains(&ones),
            "roughly half should be ones, got {ones}"
        );
        assert!(bits[1] && bits[4], "largest values must binarise to 1");
        assert!(!bits[0], "smallest value must binarise to 0");
        assert!(binarize_activations(&[]).is_empty());
    }

    #[test]
    fn weight_binarisation_is_per_row() {
        let w = Matrix::from_fn(2, 4, |r, c| if r == 0 { c as f64 } else { -(c as f64) }).unwrap();
        let bits = binarize_weights(&w);
        assert_eq!(bits.len(), 2);
        assert!(bits[0][3], "largest in row 0 is 1");
        assert!(!bits[1][3], "most negative in row 1 is 0");
    }

    #[test]
    fn binary_mvm_construction_and_ideal_outputs() {
        let w = Matrix::from_fn(3, 8, |r, c| ((r + c) % 3) as f64).unwrap();
        let x: Vec<f64> = (0..8).map(|i| (i % 2) as f64).collect();
        let mvm = binarize_mvm("test", &w, &x).unwrap();
        assert_eq!(mvm.rows(), 3);
        assert_eq!(mvm.cols(), 8);
        assert_eq!(mvm.reference.len(), 3);
        let outputs = mvm.ideal_binary_outputs();
        assert_eq!(outputs.len(), 3);
        for (row, out) in outputs.iter().enumerate() {
            let manual = mvm.weights[row]
                .iter()
                .zip(&mvm.activations)
                .filter(|(w, x)| **w && **x)
                .count() as u32;
            assert_eq!(*out, manual);
        }
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let w = Matrix::zeros(2, 4).unwrap();
        assert!(binarize_mvm("bad", &w, &[1.0, 2.0]).is_err());
    }
}
