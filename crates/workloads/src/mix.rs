//! Multi-tenant workload mixes: named networks sharing one accelerator.
//!
//! A deployed CIM chip rarely serves one network.  Figure 1 of the paper
//! motivates the synthesizable macro with three very different edge
//! applications — and a chip sized for the CNN alone loses once
//! transformer and SNN traffic time-share the same grid.  A
//! [`WorkloadMix`] captures that deployment: a named set of [`Tenant`]s,
//! each a [`Network`] with an arrival *weight* (its relative request
//! rate) and a per-tenant activation quantization ([`TenantQuant`]).
//!
//! The chip layer (`acim-chip`) co-schedules a mix's layer streams onto
//! one macro grid with the least-finish-time partitioner and scores
//! latency / throughput / energy *per tenant*; `acim-dse` aggregates
//! those into mix-level objectives.  A mix with a single binary-activation
//! tenant is, by construction, exactly the single-network path.

use std::fmt;

use crate::network::Network;
use crate::WorkloadError;

/// Per-tenant activation quantization.
///
/// The chip model is bit-serial over activations: a tenant running
/// `activation_bits`-bit activations issues every tile that many times, so
/// its cycles (and the schedule pressure it puts on shared macros) scale
/// linearly.  `activation_bits == 1` is the binary default and changes
/// nothing relative to the single-network model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuant {
    /// Activation bit-width of the tenant, `>= 1`.
    pub activation_bits: u32,
}

impl TenantQuant {
    /// Binary (1-bit) activations — the default and the single-network
    /// behaviour.
    pub fn binary() -> Self {
        Self { activation_bits: 1 }
    }

    /// `bits`-bit bit-serial activations.
    pub fn bits(activation_bits: u32) -> Self {
        Self { activation_bits }
    }
}

impl Default for TenantQuant {
    fn default() -> Self {
        Self::binary()
    }
}

/// One tenant of a [`WorkloadMix`]: a network plus its traffic share.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// The tenant's network.  Its name identifies the tenant in reports
    /// and telemetry, so names must be unique within a mix.
    pub network: Network,
    /// Relative arrival weight (request rate share), finite and `> 0`.
    /// Weights are relative: `{2.0, 1.0}` and `{4.0, 2.0}` are the same
    /// mix.
    pub weight: f64,
    /// Activation quantization of the tenant.
    pub quant: TenantQuant,
}

impl Tenant {
    /// A binary-activation tenant with the given arrival weight.
    pub fn new(network: Network, weight: f64) -> Self {
        Self {
            network,
            weight,
            quant: TenantQuant::binary(),
        }
    }

    /// The tenant's name (its network's name).
    pub fn name(&self) -> &str {
        &self.network.name
    }
}

/// A named set of networks co-scheduled on one chip.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    /// Mix name, used in reports and design-space signatures.
    pub name: String,
    /// The tenants, in declaration order.  Order is a scheduling input
    /// (within a round, tenants place their tiles in this order) but never
    /// changes any tenant's compute or energy accounting.
    pub tenants: Vec<Tenant>,
}

impl WorkloadMix {
    /// An empty mix to grow with [`WorkloadMix::with_tenant`].
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tenants: Vec::new(),
        }
    }

    /// The degenerate mix: one binary-activation tenant with weight 1.
    /// Scheduling and scoring a single mix is bit-identical to the
    /// single-network path.
    pub fn single(network: Network) -> Self {
        Self {
            name: network.name.clone(),
            tenants: vec![Tenant::new(network, 1.0)],
        }
    }

    /// Adds a binary-activation tenant.
    #[must_use]
    pub fn with_tenant(mut self, network: Network, weight: f64) -> Self {
        self.tenants.push(Tenant::new(network, weight));
        self
    }

    /// Adds a tenant with `activation_bits`-bit bit-serial activations.
    #[must_use]
    pub fn with_quantized_tenant(
        mut self,
        network: Network,
        weight: f64,
        activation_bits: u32,
    ) -> Self {
        self.tenants.push(Tenant {
            network,
            weight,
            quant: TenantQuant::bits(activation_bits),
        });
        self
    }

    /// The paper's Figure 1 deployment: an edge CNN, a transformer block
    /// and an always-on SNN pipeline sharing one chip.  The SNN fires most
    /// often (it is the always-on sensing path), the CNN serves the bulk
    /// of recognition traffic, and the transformer is the occasional
    /// heavyweight.
    pub fn edge_mix() -> Self {
        Self::new("edge_mix")
            .with_tenant(Network::edge_cnn(1), 2.0)
            .with_tenant(Network::transformer_block(), 1.0)
            .with_tenant(Network::snn_pipeline(), 4.0)
    }

    /// The tenants in declaration order.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Returns `true` when the mix has no tenants.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Returns `true` for the degenerate single-tenant mix.
    pub fn is_single(&self) -> bool {
        self.tenants.len() == 1
    }

    /// Sum of tenant weights.
    pub fn total_weight(&self) -> f64 {
        self.tenants.iter().map(|t| t.weight).sum()
    }

    /// Number of scheduling rounds: the depth of the deepest tenant.
    /// Round `r` co-schedules layer `r` of every tenant that has one.
    pub fn rounds(&self) -> usize {
        self.tenants
            .iter()
            .map(|t| t.network.len())
            .max()
            .unwrap_or(0)
    }

    /// Total MAC operations across one inference of every tenant.
    pub fn total_macs(&self) -> usize {
        self.tenants.iter().map(|t| t.network.total_macs()).sum()
    }

    /// Validates the mix: at least one tenant, every tenant non-empty with
    /// a finite positive weight, `activation_bits >= 1`, and unique names.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] naming the offending
    /// tenant.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.tenants.is_empty() {
            return Err(WorkloadError::InvalidParameter {
                name: "mix.tenants".into(),
                reason: format!("mix `{}` has no tenants", self.name),
            });
        }
        for (index, tenant) in self.tenants.iter().enumerate() {
            if tenant.network.is_empty() {
                return Err(WorkloadError::InvalidParameter {
                    name: format!("mix.tenants[{index}].network"),
                    reason: format!("tenant `{}` has no layers", tenant.name()),
                });
            }
            if !tenant.weight.is_finite() || tenant.weight <= 0.0 {
                return Err(WorkloadError::InvalidParameter {
                    name: format!("mix.tenants[{index}].weight"),
                    reason: format!(
                        "tenant `{}` weight {} must be finite and > 0",
                        tenant.name(),
                        tenant.weight
                    ),
                });
            }
            if tenant.quant.activation_bits == 0 {
                return Err(WorkloadError::InvalidParameter {
                    name: format!("mix.tenants[{index}].quant"),
                    reason: format!("tenant `{}` activation_bits must be >= 1", tenant.name()),
                });
            }
            if self.tenants[..index]
                .iter()
                .any(|t| t.name() == tenant.name())
            {
                return Err(WorkloadError::InvalidParameter {
                    name: format!("mix.tenants[{index}]"),
                    reason: format!(
                        "duplicate tenant name `{}` — tenant names must be unique within a mix",
                        tenant.name()
                    ),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for WorkloadMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} tenants, {} rounds, {:.1} kMAC/mix-inference)",
            self.name,
            self.len(),
            self.rounds(),
            self.total_macs() as f64 / 1000.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_mix_wraps_one_tenant() {
        let mix = WorkloadMix::single(Network::edge_cnn(1));
        assert!(mix.is_single());
        assert_eq!(mix.name, "edge_cnn_d1");
        assert_eq!(mix.tenants()[0].weight, 1.0);
        assert_eq!(mix.tenants()[0].quant, TenantQuant::binary());
        assert_eq!(mix.rounds(), 3);
        mix.validate().unwrap();
    }

    #[test]
    fn edge_mix_spans_three_families() {
        let mix = WorkloadMix::edge_mix();
        assert_eq!(mix.len(), 3);
        assert_eq!(mix.rounds(), 3);
        assert_eq!(mix.total_weight(), 7.0);
        assert_eq!(
            mix.total_macs(),
            mix.tenants()
                .iter()
                .map(|t| t.network.total_macs())
                .sum::<usize>()
        );
        assert!(mix.to_string().contains("3 tenants"));
        mix.validate().unwrap();
    }

    #[test]
    fn quantized_tenant_carries_bits() {
        let mix =
            WorkloadMix::new("quant").with_quantized_tenant(Network::transformer_block(), 1.0, 4);
        assert_eq!(mix.tenants()[0].quant.activation_bits, 4);
        mix.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_mixes() {
        assert!(WorkloadMix::new("empty").validate().is_err());
        assert!(WorkloadMix::new("no-layers")
            .with_tenant(Network::new("hollow", vec![]), 1.0)
            .validate()
            .is_err());
        assert!(WorkloadMix::new("bad-weight")
            .with_tenant(Network::edge_cnn(1), 0.0)
            .validate()
            .is_err());
        assert!(WorkloadMix::new("bad-weight-nan")
            .with_tenant(Network::edge_cnn(1), f64::NAN)
            .validate()
            .is_err());
        assert!(WorkloadMix::new("bad-quant")
            .with_quantized_tenant(Network::edge_cnn(1), 1.0, 0)
            .validate()
            .is_err());
        assert!(WorkloadMix::new("dup")
            .with_tenant(Network::edge_cnn(1), 1.0)
            .with_tenant(Network::edge_cnn(1), 2.0)
            .validate()
            .is_err());
    }

    #[test]
    fn rounds_is_deepest_tenant() {
        let mix = WorkloadMix::new("depths")
            .with_tenant(Network::edge_cnn(4), 1.0)
            .with_tenant(Network::snn_pipeline(), 1.0);
        assert_eq!(mix.rounds(), 6);
    }
}
