//! Minimal dense matrix type used by the workloads.

use crate::error::WorkloadError;

/// A row-major dense `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] when either dimension is
    /// zero.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self, WorkloadError> {
        if rows == 0 || cols == 0 {
            return Err(WorkloadError::InvalidParameter {
                name: "matrix shape".into(),
                reason: format!("{rows}x{cols} has a zero dimension"),
            });
        }
        Ok(Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        })
    }

    /// Creates a matrix from a generator `f(row, col)`.
    ///
    /// # Errors
    ///
    /// See [`Matrix::zeros`].
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(
        rows: usize,
        cols: usize,
        mut f: F,
    ) -> Result<Self, WorkloadError> {
        let mut m = Self::zeros(rows, cols)?;
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        Ok(m)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of range"
        );
        self.data[row * self.cols + col]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of range"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ShapeMismatch`] when `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, WorkloadError> {
        if x.len() != self.cols {
            return Err(WorkloadError::ShapeMismatch {
                operation: "matvec".into(),
                left: (self.rows, self.cols),
                right: (x.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * x[c]).sum())
            .collect())
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3).unwrap();
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(Matrix::zeros(0, 3).is_err());
    }

    #[test]
    fn from_fn_fills_elements() {
        let m = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f64).unwrap();
        assert_eq!(m.get(2, 2), 8.0);
        assert!((m.norm() - (0..9).map(|v| (v * v) as f64).sum::<f64>().sqrt()).abs() < 1e-12);
    }

    #[test]
    fn matvec_matches_manual_computation() {
        let m = Matrix::from_fn(2, 3, |r, c| (r + c) as f64).unwrap();
        let y = m.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(y, vec![0.0 + 2.0 + 6.0, 1.0 + 4.0 + 9.0]);
        assert!(m.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_access_panics() {
        let m = Matrix::zeros(2, 2).unwrap();
        let _ = m.get(2, 0);
    }
}
