//! Mapping an MVM workload onto the behavioural ACIM macro.
//!
//! A workload's weight matrix rarely matches the macro shape exactly, so the
//! mapper tiles it: output rows map to columns of the macro (one column
//! computes one output), and the dot-product dimension is split into chunks
//! of `H / L` elements, one chunk per MAC cycle, accumulated digitally.
//! The report carries cycle counts, energy, and the error of the macro's
//! digitised outputs against the exact binary dot products — the quantity
//! that decides whether a candidate design meets an application's accuracy
//! requirement.

use acim_arch::{AcimMacro, AcimSpec, NoiseConfig};
use acim_tech::Technology;

use crate::error::WorkloadError;
use crate::quantize::BinaryMvm;

/// Result of running a workload on the macro.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingReport {
    /// Workload label.
    pub workload: String,
    /// Number of macro MAC+conversion cycles used.
    pub cycles: u64,
    /// Number of column-tiles the outputs were split into.
    pub output_tiles: usize,
    /// Mean absolute error of the macro outputs against the exact binary dot
    /// products, normalised to the dot-product length (0 = perfect).
    pub relative_error: f64,
    /// Total energy in femtojoules charged by the macro's energy model.
    pub energy_fj: f64,
    /// Estimated latency in nanoseconds (cycles × cycle time).
    pub latency_ns: f64,
}

/// Programs one output tile — workload rows `row_base .. row_base +
/// rows_in_tile`, one row per macro column — onto `macro_sim`, runs one
/// MAC+conversion cycle per dot-product chunk, and returns the de-quantised
/// partial-sum accumulators together with the cycles spent.
///
/// The tile layout is the contract shared by [`MacroMapper`] and the
/// chip-level behavioural simulator: the chunk's weights occupy row offset 0
/// of each local array, zero-padded when the dot-product length does not
/// divide the chunk size.
///
/// # Errors
///
/// Returns [`WorkloadError`] when the macro simulation rejects a tile.
pub fn run_output_tile(
    macro_sim: &mut AcimMacro,
    spec: &AcimSpec,
    workload: &BinaryMvm,
    row_base: usize,
    rows_in_tile: usize,
) -> Result<(Vec<f64>, u64), WorkloadError> {
    let chunk = spec.dot_product_length();
    let full_scale = f64::from((1u32 << spec.adc_bits()) - 1);
    let chunks = workload.cols().div_ceil(chunk);
    let mut accumulated = vec![0.0f64; rows_in_tile];
    let mut cycles = 0u64;

    for chunk_index in 0..chunks {
        let col_base = chunk_index * chunk;
        let cols_in_chunk = (workload.cols() - col_base).min(chunk);

        // Program the tile: macro column c holds workload row
        // (row_base + c); the chunk's weights go into row offset 0 of
        // each local array, padding with zeros.
        macro_sim.program_with(|macro_row, macro_col| {
            let local = macro_row / spec.local_array();
            let offset = macro_row % spec.local_array();
            if offset != 0 || macro_col >= rows_in_tile || local >= cols_in_chunk {
                return false;
            }
            workload.weights[row_base + macro_col][col_base + local]
        });
        let mut activations = vec![false; chunk];
        for (i, slot) in activations.iter_mut().enumerate().take(cols_in_chunk) {
            *slot = workload.activations[col_base + i];
        }

        let codes = macro_sim.mac_and_convert(&activations, 0)?;
        cycles += 1;
        for (c, acc) in accumulated.iter_mut().enumerate() {
            // De-quantise the ADC code back to a partial dot product.
            *acc += f64::from(codes[c]) / full_scale * chunk as f64;
        }
    }
    Ok((accumulated, cycles))
}

/// Maps workloads onto one macro specification.
#[derive(Debug)]
pub struct MacroMapper {
    spec: AcimSpec,
    tech: Technology,
    noise: NoiseConfig,
}

impl MacroMapper {
    /// Creates a mapper for a specification with realistic noise.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid specs; returns [`WorkloadError`] for
    /// interface uniformity with future mappers.
    pub fn new(spec: &AcimSpec) -> Result<Self, WorkloadError> {
        Ok(Self {
            spec: *spec,
            tech: Technology::s28(),
            noise: NoiseConfig::realistic(),
        })
    }

    /// Uses a noiseless macro (isolates pure quantisation effects).
    pub fn noiseless(mut self) -> Self {
        self.noise = NoiseConfig::noiseless();
        self
    }

    /// Runs a binary MVM on the macro and reports accuracy/cost.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] when the workload is empty or the macro
    /// simulation rejects the generated tiles.
    pub fn run(&self, workload: &BinaryMvm, seed: u64) -> Result<MappingReport, WorkloadError> {
        if workload.rows() == 0 || workload.cols() == 0 {
            return Err(WorkloadError::InvalidParameter {
                name: "workload".into(),
                reason: "workload must have at least one row and column".into(),
            });
        }
        let width = self.spec.width();
        let ideal = workload.ideal_binary_outputs();

        let mut macro_sim = AcimMacro::new(&self.spec, &self.tech, self.noise, seed)?;
        let mut total_error = 0.0f64;
        let mut cycles = 0u64;
        let output_tiles = workload.rows().div_ceil(width);

        for tile in 0..output_tiles {
            let row_base = tile * width;
            let rows_in_tile = (workload.rows() - row_base).min(width);
            let (accumulated, tile_cycles) =
                run_output_tile(&mut macro_sim, &self.spec, workload, row_base, rows_in_tile)?;
            cycles += tile_cycles;

            for (c, acc) in accumulated.iter().enumerate() {
                let exact = f64::from(ideal[row_base + c]);
                total_error += (acc - exact).abs();
            }
        }

        let relative_error = total_error / workload.rows() as f64 / workload.cols() as f64;
        let energy_fj = macro_sim.stats().energy.total().value();
        let cycle_ns = macro_sim.timing().cycle_time(self.spec.adc_bits()).value() / 1000.0;
        Ok(MappingReport {
            workload: workload.label.clone(),
            cycles,
            output_tiles,
            relative_error,
            energy_fj,
            latency_ns: cycles as f64 * cycle_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnn::CnnLayer;
    use crate::transformer::{AttentionProjection, ProjectionKind};

    fn spec(h: usize, w: usize, l: usize, b: u32) -> AcimSpec {
        AcimSpec::from_dimensions(h, w, l, b).unwrap()
    }

    #[test]
    fn cnn_workload_maps_and_reports_cost() {
        let workload = CnnLayer::small(3).to_workload(1).unwrap();
        let mapper = MacroMapper::new(&spec(64, 16, 4, 4)).unwrap();
        let report = mapper.run(&workload, 9).unwrap();
        assert_eq!(report.output_tiles, 1, "16 outputs fit in 16 columns");
        // 72-long dot product in chunks of 16 → 5 cycles.
        assert_eq!(report.cycles, 5);
        assert!(report.energy_fj > 0.0);
        assert!(report.latency_ns > 0.0);
        assert!(
            report.relative_error < 0.2,
            "error {}",
            report.relative_error
        );
    }

    #[test]
    fn wide_workload_needs_multiple_tiles() {
        let workload = AttentionProjection::edge(ProjectionKind::Query)
            .to_workload(2)
            .unwrap();
        let mapper = MacroMapper::new(&spec(64, 16, 4, 4)).unwrap();
        let report = mapper.run(&workload, 3).unwrap();
        assert_eq!(report.output_tiles, 2, "32 outputs over 16 columns");
        assert!(report.cycles >= 16);
    }

    #[test]
    fn higher_adc_precision_reduces_error() {
        let workload = CnnLayer::mobile().to_workload(4).unwrap();
        let low = MacroMapper::new(&spec(128, 32, 4, 2))
            .unwrap()
            .noiseless()
            .run(&workload, 5)
            .unwrap();
        let high = MacroMapper::new(&spec(128, 32, 4, 5))
            .unwrap()
            .noiseless()
            .run(&workload, 5)
            .unwrap();
        assert!(
            high.relative_error < low.relative_error,
            "B=5 error {} should beat B=2 error {}",
            high.relative_error,
            low.relative_error
        );
    }

    /// Builds a dense all-ones MVM of an arbitrary shape, so tiling edge
    /// cases can be exercised with exact expected outputs.
    fn ones_mvm(rows: usize, cols: usize) -> BinaryMvm {
        BinaryMvm {
            weights: vec![vec![true; cols]; rows],
            activations: vec![true; cols],
            reference: vec![cols as f64; rows],
            label: format!("ones_{rows}x{cols}"),
        }
    }

    #[test]
    fn rows_not_dividing_width_pad_the_last_tile() {
        // 18 outputs on a width-16 macro: one full tile + a 2-row tail.
        let mapper = MacroMapper::new(&spec(64, 16, 4, 4)).unwrap().noiseless();
        let report = mapper.run(&ones_mvm(18, 16), 3).unwrap();
        assert_eq!(report.output_tiles, 2);
        // Dot length equals the chunk, so each tile costs one cycle.
        assert_eq!(report.cycles, 2);
        // All-ones operands saturate the ADC: outputs are exact.
        assert!(
            report.relative_error < 1e-9,
            "error {}",
            report.relative_error
        );
    }

    #[test]
    fn dot_length_not_dividing_chunk_pads_the_last_chunk() {
        // 50-long dot products in chunks of 16: 3 full chunks + a 2-wide
        // tail chunk that must be zero-padded, not dropped.
        let mapper = MacroMapper::new(&spec(64, 16, 4, 4)).unwrap().noiseless();
        let report = mapper.run(&ones_mvm(16, 50), 3).unwrap();
        assert_eq!(report.output_tiles, 1);
        assert_eq!(report.cycles, 4);
        // The tail chunk contributes 2/16 of full scale; dequantisation is
        // still within one LSB per chunk of the exact 50.
        assert!(
            report.relative_error < 4.0 * (16.0 / 15.0) / 50.0,
            "error {}",
            report.relative_error
        );
    }

    #[test]
    fn neither_dimension_divides_evenly() {
        // 19 outputs x 37-long dot products on a 16-wide, 16-chunk macro:
        // ragged in both directions at once.
        let mapper = MacroMapper::new(&spec(64, 16, 4, 4)).unwrap().noiseless();
        let report = mapper.run(&ones_mvm(19, 37), 5).unwrap();
        assert_eq!(report.output_tiles, 2);
        assert_eq!(report.cycles, 2 * 3);
        assert!(report.latency_ns > 0.0);
        assert!(report.energy_fj > 0.0);
    }

    #[test]
    fn single_tile_single_chunk_degenerate_case() {
        // A 1x1 workload occupies one column of one tile for one cycle —
        // the smallest mappable MVM.
        let mapper = MacroMapper::new(&spec(64, 16, 4, 4)).unwrap().noiseless();
        let report = mapper.run(&ones_mvm(1, 1), 3).unwrap();
        assert_eq!(report.output_tiles, 1);
        assert_eq!(report.cycles, 1);
        // One active cell out of a 16-long chunk: the dequantised output
        // must round-trip to 1 within one code step.
        assert!(
            report.relative_error <= 16.0 / 15.0,
            "error {}",
            report.relative_error
        );
    }

    #[test]
    fn empty_workload_rejected() {
        let mapper = MacroMapper::new(&spec(64, 16, 4, 3)).unwrap();
        let empty = BinaryMvm {
            weights: vec![],
            activations: vec![],
            reference: vec![],
            label: "empty".into(),
        };
        assert!(mapper.run(&empty, 1).is_err());
    }
}
