//! Application requirement profiles.
//!
//! Figure 1's point is that each application family needs a different
//! operating point.  These profiles quantify that: each carries the minimum
//! SNR, the throughput floor and the efficiency floor a design must meet to
//! serve the application, and converts itself into the
//! `acim_dse`-style user-requirement bounds used at distillation time
//! (the conversion itself lives in the caller to avoid a dependency cycle;
//! this type only holds the numbers).

use crate::cnn::CnnLayer;
use crate::error::WorkloadError;
use crate::quantize::BinaryMvm;
use crate::snn::SnnLayer;
use crate::transformer::{AttentionProjection, ProjectionKind};

/// An application family and its requirements on the ACIM macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ApplicationProfile {
    /// Transformer / LLM inference: accuracy-critical.
    Transformer,
    /// CNN vision inference: balanced.
    Cnn,
    /// Spiking neural network: efficiency-critical, noise-tolerant.
    Snn,
}

impl ApplicationProfile {
    /// All profiles.
    pub fn all() -> [ApplicationProfile; 3] {
        [
            ApplicationProfile::Transformer,
            ApplicationProfile::Cnn,
            ApplicationProfile::Snn,
        ]
    }

    /// Minimum acceptable SNR in dB.
    pub fn min_snr_db(&self) -> f64 {
        match self {
            ApplicationProfile::Transformer => 28.0,
            ApplicationProfile::Cnn => 18.0,
            ApplicationProfile::Snn => 10.0,
        }
    }

    /// Minimum acceptable throughput in TOPS.
    pub fn min_throughput_tops(&self) -> f64 {
        match self {
            ApplicationProfile::Transformer => 0.5,
            ApplicationProfile::Cnn => 1.0,
            ApplicationProfile::Snn => 0.1,
        }
    }

    /// Minimum acceptable energy efficiency in TOPS/W.
    pub fn min_tops_per_watt(&self) -> f64 {
        match self {
            ApplicationProfile::Transformer => 50.0,
            ApplicationProfile::Cnn => 150.0,
            ApplicationProfile::Snn => 400.0,
        }
    }

    /// Maximum tolerated relative error of the mapped MVM outputs.
    pub fn max_relative_error(&self) -> f64 {
        match self {
            ApplicationProfile::Transformer => 0.02,
            ApplicationProfile::Cnn => 0.05,
            ApplicationProfile::Snn => 0.15,
        }
    }

    /// A representative workload of the profile.
    ///
    /// # Errors
    ///
    /// Propagates workload-construction errors.
    pub fn representative_workload(&self, seed: u64) -> Result<BinaryMvm, WorkloadError> {
        match self {
            ApplicationProfile::Transformer => {
                AttentionProjection::edge(ProjectionKind::Query).to_workload(seed)
            }
            ApplicationProfile::Cnn => CnnLayer::mobile().to_workload(seed),
            ApplicationProfile::Snn => SnnLayer::small().to_workload(0.25, seed),
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ApplicationProfile::Transformer => "transformer",
            ApplicationProfile::Cnn => "cnn",
            ApplicationProfile::Snn => "snn",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_order_their_requirements_as_the_paper_motivates() {
        // Transformers demand the most SNR; SNNs demand the most efficiency.
        let t = ApplicationProfile::Transformer;
        let c = ApplicationProfile::Cnn;
        let s = ApplicationProfile::Snn;
        assert!(t.min_snr_db() > c.min_snr_db());
        assert!(c.min_snr_db() > s.min_snr_db());
        assert!(s.min_tops_per_watt() > c.min_tops_per_watt());
        assert!(c.min_tops_per_watt() > t.min_tops_per_watt());
        assert!(t.max_relative_error() < s.max_relative_error());
    }

    #[test]
    fn representative_workloads_exist_for_every_profile() {
        for profile in ApplicationProfile::all() {
            let workload = profile.representative_workload(11).unwrap();
            assert!(workload.rows() > 0);
            assert!(workload.cols() > 0);
            assert!(!profile.name().is_empty());
        }
    }
}
