//! # acim-workloads
//!
//! Application workloads for the EasyACIM reproduction.
//!
//! Figure 1 of the paper motivates the synthesizable architecture with the
//! mismatch between a fixed ACIM macro and the very different accuracy /
//! throughput / energy requirements of edge applications — transformers,
//! CNNs and SNNs.  This crate provides exactly those three workload
//! families, a binary quantiser, and the machinery to map their
//! matrix-vector products onto the behavioural macro of `acim-arch`:
//!
//! * [`tensor`] — a minimal dense matrix type,
//! * [`quantize`] — binarisation / bit-slicing of activations and weights,
//! * [`cnn`], [`transformer`], [`snn`] — synthetic layer workloads that
//!   generate realistic MVM shapes,
//! * [`network`] — ordered multi-layer networks built from those
//!   generators (consumed by the chip layer in `acim-chip`),
//! * [`mix`] — multi-tenant [`WorkloadMix`]es: named networks with
//!   arrival weights and per-tenant quantization, co-scheduled on one
//!   chip,
//! * [`mapping`] — tiling of an arbitrary MVM onto the (H, W, L, B_ADC)
//!   macro, cycle/energy accounting and accuracy measurement,
//! * [`requirements`] — per-application requirement profiles used by the
//!   user-distillation step of the design-space explorer.
//!
//! # Example
//!
//! ```
//! use acim_workloads::{cnn::CnnLayer, mapping::MacroMapper};
//! use acim_arch::AcimSpec;
//!
//! # fn main() -> Result<(), acim_workloads::WorkloadError> {
//! let layer = CnnLayer::small(7);
//! let workload = layer.to_workload(3)?;
//! let spec = AcimSpec::from_dimensions(64, 16, 4, 3)?;
//! let report = MacroMapper::new(&spec)?.run(&workload, 5)?;
//! assert!(report.relative_error >= 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnn;
pub mod error;
pub mod mapping;
pub mod mix;
pub mod network;
pub mod quantize;
pub mod requirements;
pub mod snn;
pub mod tensor;
pub mod transformer;

pub use cnn::CnnLayer;
pub use error::WorkloadError;
pub use mapping::{run_output_tile, MacroMapper, MappingReport};
pub use mix::{Tenant, TenantQuant, WorkloadMix};
pub use network::{LayerKind, Network, NetworkLayer};
pub use quantize::{binarize_activations, binarize_weights, BinaryMvm};
pub use requirements::ApplicationProfile;
pub use snn::SnnLayer;
pub use tensor::Matrix;
pub use transformer::AttentionProjection;
