//! Spiking-neural-network workload (the SNN application of Figure 1).
//!
//! SNN inference multiplies a binary spike vector by a synaptic weight
//! matrix and integrates the result into leaky membrane potentials; spikes
//! are emitted when a potential crosses the threshold.  Because the inputs
//! are already binary and the accumulation tolerates noise, SNNs sit at the
//! low-SNR / high-efficiency end of the requirement spectrum — the opposite
//! corner from transformers.

use crate::cnn::pseudo_random;
use crate::error::WorkloadError;
use crate::quantize::{binarize_weights, BinaryMvm};
use crate::tensor::Matrix;

/// A synthetic leaky-integrate-and-fire SNN layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnnLayer {
    /// Number of pre-synaptic neurons (inputs).
    pub inputs: usize,
    /// Number of post-synaptic neurons (outputs).
    pub neurons: usize,
    /// Firing threshold of the membrane potential.
    pub threshold: f64,
    /// Leak factor per timestep (0 = no memory, 1 = perfect integrator).
    pub leak: f64,
}

impl SnnLayer {
    /// A small always-on sensing layer: 64 inputs → 32 neurons.
    pub fn small() -> Self {
        Self {
            inputs: 64,
            neurons: 32,
            threshold: 8.0,
            leak: 0.9,
        }
    }

    /// Lowers one timestep of the layer into a binarised MVM: spikes with
    /// the given firing `rate` against binarised synaptic weights.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] when the shape or rate is
    /// invalid.
    pub fn to_workload(&self, rate: f64, seed: u64) -> Result<BinaryMvm, WorkloadError> {
        if self.inputs == 0 || self.neurons == 0 {
            return Err(WorkloadError::InvalidParameter {
                name: "snn layer".into(),
                reason: "inputs and neurons must be positive".into(),
            });
        }
        if !(0.0..=1.0).contains(&rate) {
            return Err(WorkloadError::InvalidParameter {
                name: "spike rate".into(),
                reason: format!("{rate} is outside [0, 1]"),
            });
        }
        let weights = Matrix::from_fn(self.neurons, self.inputs, |r, c| {
            pseudo_random(seed ^ 0x5A5A, r * self.inputs + c) - 0.5
        })?;
        let spikes: Vec<bool> = (0..self.inputs)
            .map(|i| pseudo_random(seed ^ 0x517E, i) < rate)
            .collect();
        let activations: Vec<f64> = spikes.iter().map(|&s| f64::from(u8::from(s))).collect();
        let reference = weights.matvec(&activations)?;
        Ok(BinaryMvm {
            weights: binarize_weights(&weights),
            activations: spikes,
            reference,
            label: format!("snn_{}x{}_rate{:.2}", self.neurons, self.inputs, rate),
        })
    }

    /// Runs `steps` timesteps of leaky integration over the binary dot
    /// products and returns the emitted spike counts per neuron — a tiny
    /// end-to-end SNN simulation used by the application-mapping example.
    pub fn integrate(&self, dot_products: &[Vec<u32>]) -> Vec<u32> {
        let mut potentials = vec![0.0f64; self.neurons];
        let mut spikes = vec![0u32; self.neurons];
        for step in dot_products {
            for (neuron, potential) in potentials.iter_mut().enumerate() {
                *potential = *potential * self.leak + f64::from(*step.get(neuron).unwrap_or(&0));
                if *potential >= self.threshold {
                    spikes[neuron] += 1;
                    *potential = 0.0;
                }
            }
        }
        spikes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_shape_and_spike_rate() {
        let layer = SnnLayer::small();
        let mvm = layer.to_workload(0.3, 7).unwrap();
        assert_eq!(mvm.rows(), 32);
        assert_eq!(mvm.cols(), 64);
        let ones = mvm.activations.iter().filter(|&&b| b).count();
        assert!(
            ones > 5 && ones < 35,
            "spike count {ones} implausible for rate 0.3"
        );
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(SnnLayer::small().to_workload(1.5, 1).is_err());
        let bad = SnnLayer {
            inputs: 0,
            ..SnnLayer::small()
        };
        assert!(bad.to_workload(0.5, 1).is_err());
    }

    #[test]
    fn integration_fires_with_strong_input_and_not_without() {
        let layer = SnnLayer {
            inputs: 16,
            neurons: 4,
            threshold: 10.0,
            leak: 1.0,
        };
        let strong = vec![vec![6u32; 4]; 5];
        let weak = vec![vec![0u32; 4]; 5];
        let strong_spikes = layer.integrate(&strong);
        let weak_spikes = layer.integrate(&weak);
        assert!(strong_spikes.iter().all(|&s| s >= 2));
        assert!(weak_spikes.iter().all(|&s| s == 0));
    }

    #[test]
    fn leak_reduces_firing() {
        let integrator = SnnLayer {
            inputs: 16,
            neurons: 2,
            threshold: 12.0,
            leak: 1.0,
        };
        let leaky = SnnLayer {
            leak: 0.2,
            ..integrator
        };
        let input = vec![vec![3u32; 2]; 12];
        assert!(
            integrator.integrate(&input).iter().sum::<u32>()
                > leaky.integrate(&input).iter().sum::<u32>()
        );
    }
}
