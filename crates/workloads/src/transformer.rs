//! Transformer attention-projection workload (the LLM application of
//! Figure 1).
//!
//! The dominant MVMs of a transformer block are the Q/K/V projections:
//! `d_model × d_model` weight matrices applied to every token.  Transformers
//! are the accuracy-hungry application of the paper's motivation — they need
//! higher SNR than a CNN to avoid degrading attention scores.

use crate::cnn::pseudo_random;
use crate::error::WorkloadError;
use crate::quantize::{binarize_mvm, BinaryMvm};
use crate::tensor::Matrix;

/// Which projection of the attention block is being exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProjectionKind {
    /// Query projection.
    Query,
    /// Key projection.
    Key,
    /// Value projection.
    Value,
}

/// A synthetic attention projection workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttentionProjection {
    /// Model (embedding) dimension `d_model`.
    pub d_model: usize,
    /// Number of heads (the projection is evaluated per head slice).
    pub heads: usize,
    /// Which projection.
    pub kind: ProjectionKind,
}

impl AttentionProjection {
    /// A tiny edge transformer (d_model = 128, 4 heads).
    pub fn edge(kind: ProjectionKind) -> Self {
        Self {
            d_model: 128,
            heads: 4,
            kind,
        }
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.d_model / self.heads.max(1)
    }

    /// Lowers one head's projection into a binarised MVM for a synthetic
    /// token embedding.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] when the shape is degenerate.
    pub fn to_workload(&self, seed: u64) -> Result<BinaryMvm, WorkloadError> {
        if self.d_model == 0 || self.heads == 0 || !self.d_model.is_multiple_of(self.heads) {
            return Err(WorkloadError::InvalidParameter {
                name: "attention projection".into(),
                reason: "d_model must be a positive multiple of the head count".into(),
            });
        }
        let rows = self.head_dim();
        let cols = self.d_model;
        let kind_salt = match self.kind {
            ProjectionKind::Query => 0x51,
            ProjectionKind::Key => 0x4B,
            ProjectionKind::Value => 0x56,
        };
        let weights = Matrix::from_fn(rows, cols, |r, c| {
            pseudo_random(seed ^ kind_salt, r * cols + c) - 0.5
        })?;
        // Token embeddings are roughly zero-mean.
        let activations: Vec<f64> = (0..cols)
            .map(|i| pseudo_random(seed ^ 0x70CE, i) - 0.5)
            .collect();
        let label = format!(
            "attention_{:?}_{}d_{}h",
            self.kind, self.d_model, self.heads
        );
        binarize_mvm(&label, &weights, &activations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_dim_and_shapes() {
        let proj = AttentionProjection::edge(ProjectionKind::Query);
        assert_eq!(proj.head_dim(), 32);
        let mvm = proj.to_workload(3).unwrap();
        assert_eq!(mvm.rows(), 32);
        assert_eq!(mvm.cols(), 128);
        assert!(mvm.label.contains("Query"));
    }

    #[test]
    fn different_projections_differ() {
        let q = AttentionProjection::edge(ProjectionKind::Query)
            .to_workload(3)
            .unwrap();
        let k = AttentionProjection::edge(ProjectionKind::Key)
            .to_workload(3)
            .unwrap();
        assert_ne!(q.weights, k.weights);
    }

    #[test]
    fn invalid_head_split_rejected() {
        let proj = AttentionProjection {
            d_model: 100,
            heads: 3,
            kind: ProjectionKind::Value,
        };
        assert!(proj.to_workload(1).is_err());
    }
}
