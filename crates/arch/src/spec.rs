//! The ACIM design specification (H, W, L, B_ADC) and its architectural
//! constraints.

use std::fmt;

use crate::error::ArchError;

/// Bounds on the local-array size used by the paper's design-space
/// exploration ("L is limited to between 2 and 32 to avoid extreme
/// results").
pub const MIN_LOCAL_ARRAY: usize = 2;
/// Upper bound of the local-array size (see [`MIN_LOCAL_ARRAY`]).
pub const MAX_LOCAL_ARRAY: usize = 32;
/// Maximum ADC precision explored by the paper ("B_ADC is set within 8
/// bits").
pub const MAX_ADC_BITS: u32 = 8;

/// A complete ACIM design specification: the four parameters explored by the
/// MOGA-based design-space explorer (Section 3.2), validated against the
/// constraints of Equation 12.
///
/// * `H` — array height (cells per column),
/// * `W` — array width (columns),
/// * `L` — local-array size (8T cells sharing one compute capacitor),
/// * `B_ADC` — SAR ADC precision in bits.
///
/// # Example
///
/// ```
/// use acim_arch::AcimSpec;
///
/// # fn main() -> Result<(), acim_arch::ArchError> {
/// let spec = AcimSpec::new(16 * 1024, 128, 128, 8, 3)?;
/// assert_eq!(spec.dot_product_length(), 16);
/// assert_eq!(spec.capacitors_per_column(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AcimSpec {
    array_size: usize,
    height: usize,
    width: usize,
    local_array: usize,
    adc_bits: u32,
}

impl AcimSpec {
    /// Creates and validates a specification.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidSpec`] when any of the constraints of
    /// Equation 12 (or the practical bounds of the paper's exploration) is
    /// violated:
    ///
    /// * `H · W = array_size`,
    /// * `H ≥ L` and `H` divisible by `L`,
    /// * `H / L ≥ 2^B_ADC` (enough capacitors to form the CDAC),
    /// * `2 ≤ L ≤ 32`, `1 ≤ B_ADC ≤ 8`, and all dimensions positive.
    pub fn new(
        array_size: usize,
        height: usize,
        width: usize,
        local_array: usize,
        adc_bits: u32,
    ) -> Result<Self, ArchError> {
        if height == 0 || width == 0 || array_size == 0 {
            return Err(ArchError::invalid_spec(
                "positive dimensions",
                format!("H={height}, W={width}, array_size={array_size}"),
            ));
        }
        if height * width != array_size {
            return Err(ArchError::invalid_spec(
                "H*W=ArraySize",
                format!("{height}*{width} != {array_size}"),
            ));
        }
        if !(MIN_LOCAL_ARRAY..=MAX_LOCAL_ARRAY).contains(&local_array) {
            return Err(ArchError::invalid_spec(
                "L in [2, 32]",
                format!("L={local_array}"),
            ));
        }
        if height < local_array {
            return Err(ArchError::invalid_spec(
                "H-L>=0",
                format!("H={height} < L={local_array}"),
            ));
        }
        if !height.is_multiple_of(local_array) {
            return Err(ArchError::invalid_spec(
                "L divides H",
                format!("H={height} is not a multiple of L={local_array}"),
            ));
        }
        if adc_bits == 0 || adc_bits > MAX_ADC_BITS {
            return Err(ArchError::invalid_spec(
                "B_ADC in [1, 8]",
                format!("B_ADC={adc_bits}"),
            ));
        }
        let caps_per_column = height / local_array;
        if caps_per_column < (1usize << adc_bits) {
            return Err(ArchError::invalid_spec(
                "H/L - 2^B_ADC >= 0",
                format!("H/L={caps_per_column} < 2^B_ADC={}", 1usize << adc_bits),
            ));
        }
        Ok(Self {
            array_size,
            height,
            width,
            local_array,
            adc_bits,
        })
    }

    /// Creates a specification directly from (H, W, L, B) with the array
    /// size implied by `H · W`.
    ///
    /// # Errors
    ///
    /// Same as [`AcimSpec::new`].
    pub fn from_dimensions(
        height: usize,
        width: usize,
        local_array: usize,
        adc_bits: u32,
    ) -> Result<Self, ArchError> {
        Self::new(height * width, height, width, local_array, adc_bits)
    }

    /// Total number of bit cells (`H · W`), the user-defined array size.
    pub fn array_size(&self) -> usize {
        self.array_size
    }

    /// Array height `H` (bit cells per column).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Array width `W` (number of columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Local-array size `L` (cells sharing one compute capacitor).
    pub fn local_array(&self) -> usize {
        self.local_array
    }

    /// ADC precision `B_ADC` in bits.
    pub fn adc_bits(&self) -> u32 {
        self.adc_bits
    }

    /// Number of compute capacitors per column (`H / L`), which is also the
    /// dot-product length `N` processed in a single MAC cycle.
    pub fn capacitors_per_column(&self) -> usize {
        self.height / self.local_array
    }

    /// Dot-product length per MAC cycle (alias of
    /// [`capacitors_per_column`](Self::capacitors_per_column), named after
    /// the `N` of the paper's estimation model).
    pub fn dot_product_length(&self) -> usize {
        self.capacitors_per_column()
    }

    /// Number of MAC operations completed per conversion cycle across the
    /// whole macro: `(H / L) · W`.
    pub fn macs_per_cycle(&self) -> usize {
        self.capacitors_per_column() * self.width
    }

    /// Number of cycles needed to consume all `H` rows (`L` cycles, one per
    /// row offset inside the local arrays).
    pub fn cycles_per_full_matrix(&self) -> usize {
        self.local_array
    }

    /// CDAC SAR-group sizes in unit capacitors, following the paper's
    /// 1 : 1 : 2 : 4 : … : 2^(B−1) ratio.  The sum is `2^B_ADC`, which is
    /// guaranteed to fit in the available `H / L` capacitors.
    pub fn sar_group_sizes(&self) -> Vec<usize> {
        let b = self.adc_bits as usize;
        let mut sizes = Vec::with_capacity(b + 1);
        sizes.push(1);
        for k in 0..b.saturating_sub(1) {
            sizes.push(1usize << k);
        }
        if b >= 1 {
            sizes.push(1usize << (b - 1));
        }
        // The construction above yields [1, 1, 2, 4, ..., 2^(b-1)] with b+1
        // entries whose sum is 2^b; the first "dummy" group keeps the ratio
        // of the paper's CDAC (a 1× LSB group plus b binary-weighted groups).
        sizes
    }

    /// Number of spare compute capacitors per column not needed by the CDAC
    /// (`H/L − 2^B_ADC`); these are isolated by the CMOS switch during
    /// conversion to save energy (Section 3.1).
    pub fn spare_capacitors(&self) -> usize {
        self.capacitors_per_column() - (1usize << self.adc_bits)
    }

    /// Returns all valid (H, W) factorisations of `array_size` with `H` a
    /// power of two between `min_height` and `max_height` — the candidate
    /// set enumerated by the design-space explorer.
    pub fn factorizations(
        array_size: usize,
        min_height: usize,
        max_height: usize,
    ) -> Vec<(usize, usize)> {
        let mut result = Vec::new();
        let mut h = 1usize;
        while h <= max_height {
            if h >= min_height && array_size.is_multiple_of(h) {
                result.push((h, array_size / h));
            }
            h *= 2;
            if h == 0 {
                break;
            }
        }
        result
    }
}

impl fmt::Display for AcimSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ACIM[{}x{} L={} B={}b]",
            self.height, self.width, self.local_array, self.adc_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_specs_are_valid() {
        // The three layouts of Figure 8: 16 kb, B_ADC = 3.
        let a = AcimSpec::new(16 * 1024, 128, 128, 2, 3).expect("fig 8(a)");
        let b = AcimSpec::new(16 * 1024, 128, 128, 8, 3).expect("fig 8(b)");
        let c = AcimSpec::new(16 * 1024, 64, 256, 8, 3).expect("fig 8(c)");
        assert_eq!(a.dot_product_length(), 64);
        assert_eq!(b.dot_product_length(), 16);
        assert_eq!(c.dot_product_length(), 8);
        assert_eq!(a.macs_per_cycle(), 8192);
        assert_eq!(b.macs_per_cycle(), 2048);
        assert_eq!(c.macs_per_cycle(), 2048);
    }

    #[test]
    fn array_size_mismatch_rejected() {
        let err = AcimSpec::new(16 * 1024, 128, 100, 8, 3).unwrap_err();
        assert!(
            matches!(err, ArchError::InvalidSpec { constraint, .. } if constraint.contains("ArraySize"))
        );
    }

    #[test]
    fn local_array_bounds_enforced() {
        assert!(AcimSpec::from_dimensions(128, 128, 1, 3).is_err());
        assert!(AcimSpec::from_dimensions(128, 128, 64, 3).is_err());
        assert!(AcimSpec::from_dimensions(128, 128, 32, 2).is_ok());
    }

    #[test]
    fn adc_capacity_constraint_enforced() {
        // H/L = 16 but 2^5 = 32 > 16 → invalid.
        let err = AcimSpec::from_dimensions(128, 128, 8, 5).unwrap_err();
        assert!(
            matches!(err, ArchError::InvalidSpec { constraint, .. } if constraint.contains("2^B_ADC"))
        );
        // H/L = 16 and 2^4 = 16 → exactly enough.
        assert!(AcimSpec::from_dimensions(128, 128, 8, 4).is_ok());
    }

    #[test]
    fn h_must_be_multiple_of_l() {
        assert!(AcimSpec::from_dimensions(100, 164, 8, 2).is_err());
    }

    #[test]
    fn adc_bits_bounds() {
        assert!(AcimSpec::from_dimensions(512, 32, 2, 0).is_err());
        assert!(AcimSpec::from_dimensions(512, 32, 2, 9).is_err());
        assert!(AcimSpec::from_dimensions(512, 32, 2, 8).is_ok());
    }

    #[test]
    fn sar_group_sizes_follow_binary_ratio() {
        let spec = AcimSpec::from_dimensions(128, 128, 8, 4).unwrap();
        let sizes = spec.sar_group_sizes();
        assert_eq!(sizes, vec![1, 1, 2, 4, 8]);
        assert_eq!(sizes.iter().sum::<usize>(), 16);
        assert_eq!(sizes.iter().sum::<usize>(), 1 << spec.adc_bits());
    }

    #[test]
    fn sar_group_sizes_one_bit() {
        let spec = AcimSpec::from_dimensions(64, 64, 32, 1).unwrap();
        let sizes = spec.sar_group_sizes();
        assert_eq!(sizes, vec![1, 1]);
        assert_eq!(sizes.iter().sum::<usize>(), 2);
    }

    #[test]
    fn spare_capacitors_counted() {
        let spec = AcimSpec::from_dimensions(128, 128, 2, 3).unwrap();
        assert_eq!(spec.capacitors_per_column(), 64);
        assert_eq!(spec.spare_capacitors(), 64 - 8);
    }

    #[test]
    fn factorizations_enumerate_powers_of_two() {
        let f = AcimSpec::factorizations(16 * 1024, 16, 1024);
        assert!(f.contains(&(128, 128)));
        assert!(f.contains(&(64, 256)));
        assert!(f.contains(&(1024, 16)));
        for (h, w) in &f {
            assert_eq!(h * w, 16 * 1024);
            assert!(h.is_power_of_two());
        }
    }

    #[test]
    fn display_format() {
        let spec = AcimSpec::from_dimensions(128, 128, 8, 3).unwrap();
        assert_eq!(spec.to_string(), "ACIM[128x128 L=8 B=3b]");
    }

    #[test]
    fn accessors_roundtrip() {
        let spec = AcimSpec::new(32 * 1024, 256, 128, 4, 5).unwrap();
        assert_eq!(spec.array_size(), 32 * 1024);
        assert_eq!(spec.height(), 256);
        assert_eq!(spec.width(), 128);
        assert_eq!(spec.local_array(), 4);
        assert_eq!(spec.adc_bits(), 5);
        assert_eq!(spec.cycles_per_full_matrix(), 4);
    }
}
