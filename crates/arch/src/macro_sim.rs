//! Behavioural simulation of the full ACIM macro.
//!
//! [`AcimMacro`] instantiates `W` columns of `H / L` local arrays, the
//! shared compute capacitors, and one SAR ADC per column (reusing the
//! capacitors as the CDAC).  It runs MAC + conversion cycles with the noise
//! sources of the paper's Equation 5 — capacitor mismatch, kT/C thermal
//! noise, comparator noise/offset — so that the analytic estimation model
//! can be calibrated against "measured" behaviour, playing the role of the
//! post-layout simulation the paper uses.

use acim_tech::{Femtojoule, Technology};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adc::{CdacBank, SarAdc};
use crate::compute_model::{gaussian, ComputeModel, ComputeModelKind, PvtCondition};
use crate::energy::{EnergyBreakdown, EnergyModelParams};
use crate::error::ArchError;
use crate::local_array::LocalArray;
use crate::spec::AcimSpec;
use crate::timing::TimingModel;

/// Which noise sources the simulator injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Sample static capacitor mismatch (`σ_C = κ·√C`).
    pub capacitor_mismatch: bool,
    /// Inject kT/C thermal noise on every redistribution.
    pub thermal_noise: bool,
    /// Inject comparator noise and offset in the SAR ADC.
    pub comparator_noise: bool,
    /// PVT corner applied to the compute model.
    pub pvt: PvtCondition,
}

impl NoiseConfig {
    /// All noise sources enabled at the nominal PVT corner (the realistic
    /// configuration).
    pub fn realistic() -> Self {
        Self {
            capacitor_mismatch: true,
            thermal_noise: true,
            comparator_noise: true,
            pvt: PvtCondition::nominal(),
        }
    }

    /// All noise sources disabled (ideal macro; only quantisation remains).
    pub fn noiseless() -> Self {
        Self {
            capacitor_mismatch: false,
            thermal_noise: false,
            comparator_noise: false,
            pvt: PvtCondition::nominal(),
        }
    }
}

impl Default for NoiseConfig {
    fn default() -> Self {
        Self::realistic()
    }
}

/// Aggregate statistics of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MacroStats {
    /// Number of MAC-and-convert cycles executed.
    pub cycles: u64,
    /// Number of individual MAC operations executed.
    pub macs: u64,
    /// Energy breakdown accumulated across all cycles.
    pub energy: EnergyBreakdown,
}

/// Behavioural model of one complete ACIM macro.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct AcimMacro {
    spec: AcimSpec,
    /// `width` columns × `H / L` local arrays per column.
    columns: Vec<Vec<LocalArray>>,
    /// Per-column analog accumulator.
    compute: Vec<ComputeModel>,
    /// Per-column SAR ADC.
    adcs: Vec<SarAdc>,
    timing: TimingModel,
    energy_params: EnergyModelParams,
    noise: NoiseConfig,
    /// Thermal-noise sigma expressed as a fraction of full scale.
    thermal_sigma_rel: f64,
    rng: StdRng,
    stats: MacroStats,
}

impl AcimMacro {
    /// Builds a macro for a specification using the QR compute model (the
    /// EasyACIM architecture choice).
    ///
    /// # Errors
    ///
    /// Propagates [`ArchError`] from sub-component construction.
    pub fn new(
        spec: &AcimSpec,
        tech: &Technology,
        noise: NoiseConfig,
        seed: u64,
    ) -> Result<Self, ArchError> {
        Self::with_compute_model(
            spec,
            tech,
            ComputeModelKind::ChargeRedistribution,
            noise,
            seed,
        )
    }

    /// Builds a macro with an explicit compute-model kind (used by the
    /// QR/QS/IS robustness ablation).
    ///
    /// # Errors
    ///
    /// Propagates [`ArchError`] from sub-component construction.
    pub fn with_compute_model(
        spec: &AcimSpec,
        tech: &Technology,
        kind: ComputeModelKind,
        noise: NoiseConfig,
        seed: u64,
    ) -> Result<Self, ArchError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = spec.capacitors_per_column();
        let cap_model = tech.capacitor();
        let mismatch_rel = cap_model.relative_sigma(1);
        let vdd = tech.vdd().value();
        let comparator = tech.comparator();

        let mut columns = Vec::with_capacity(spec.width());
        let mut compute = Vec::with_capacity(spec.width());
        let mut adcs = Vec::with_capacity(spec.width());
        for _ in 0..spec.width() {
            let column: Result<Vec<LocalArray>, ArchError> = (0..n)
                .map(|_| LocalArray::new(spec.local_array()))
                .collect();
            columns.push(column?);

            let model = if noise.capacitor_mismatch {
                ComputeModel::with_mismatch(kind, n, mismatch_rel, &mut rng)
            } else {
                ComputeModel::ideal(kind, n)
            };
            compute.push(model);

            let cdac = if noise.capacitor_mismatch {
                CdacBank::with_mismatch(spec, cap_model.unit_cap.value(), cap_model.kappa, &mut rng)
            } else {
                CdacBank::ideal(spec, cap_model.unit_cap.value())
            };
            let (cmp_noise, cmp_offset) = if noise.comparator_noise {
                (
                    comparator.noise_sigma_v / vdd,
                    gaussian(&mut rng) * comparator.offset_sigma_v / vdd,
                )
            } else {
                (0.0, 0.0)
            };
            adcs.push(SarAdc::new(cdac, spec.adc_bits(), cmp_noise, cmp_offset)?);
        }

        // kT/C noise of the total column capacitance, referred to full scale.
        let total_caps = n as u32;
        let thermal_sigma_rel =
            cap_model.thermal_noise_sigma_v(total_caps, tech.temperature().value()) / vdd;

        Ok(Self {
            spec: *spec,
            columns,
            compute,
            adcs,
            timing: TimingModel::s28_default(),
            energy_params: EnergyModelParams::s28_default(),
            noise,
            thermal_sigma_rel,
            rng,
            stats: MacroStats::default(),
        })
    }

    /// The specification the macro was built from.
    pub fn spec(&self) -> &AcimSpec {
        &self.spec
    }

    /// The timing model used for throughput estimates.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Replaces the timing model.
    pub fn set_timing(&mut self, timing: TimingModel) {
        self.timing = timing;
    }

    /// Replaces the energy-model parameters.
    pub fn set_energy_params(&mut self, params: EnergyModelParams) {
        self.energy_params = params;
    }

    /// Simulation statistics accumulated so far.
    pub fn stats(&self) -> &MacroStats {
        &self.stats
    }

    /// Programs one weight bit.  `row` is the global row index in `[0, H)`,
    /// `col` the column index in `[0, W)`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::DimensionMismatch`] when an index is out of
    /// range.
    pub fn program_bit(&mut self, row: usize, col: usize, value: bool) -> Result<(), ArchError> {
        if row >= self.spec.height() {
            return Err(ArchError::DimensionMismatch {
                what: "weight row".into(),
                expected: self.spec.height(),
                actual: row,
            });
        }
        if col >= self.spec.width() {
            return Err(ArchError::DimensionMismatch {
                what: "weight column".into(),
                expected: self.spec.width(),
                actual: col,
            });
        }
        let local = row / self.spec.local_array();
        let offset = row % self.spec.local_array();
        self.columns[col][local].write(offset, value)
    }

    /// Reads back a programmed weight bit.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::DimensionMismatch`] when an index is out of
    /// range.
    pub fn read_bit(&self, row: usize, col: usize) -> Result<bool, ArchError> {
        if row >= self.spec.height() || col >= self.spec.width() {
            return Err(ArchError::DimensionMismatch {
                what: "weight index".into(),
                expected: self.spec.height().max(self.spec.width()),
                actual: row.max(col),
            });
        }
        let local = row / self.spec.local_array();
        let offset = row % self.spec.local_array();
        self.columns[col][local].read(offset)
    }

    /// Programs the whole array from a closure `f(row, col) -> bit`.
    pub fn program_with<F: FnMut(usize, usize) -> bool>(&mut self, mut f: F) {
        for col in 0..self.spec.width() {
            for row in 0..self.spec.height() {
                let local = row / self.spec.local_array();
                let offset = row % self.spec.local_array();
                let value = f(row, col);
                self.columns[col][local]
                    .write(offset, value)
                    .expect("indices generated from the spec are in range");
            }
        }
    }

    /// Runs one MAC + ADC conversion cycle.
    ///
    /// `activations` has one bit per local array (length `H / L`): the
    /// activation broadcast to row offset `row_offset` of every local array.
    /// Returns the `W` digital column outputs.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::DimensionMismatch`] when the activation length or
    /// row offset is wrong.
    pub fn mac_and_convert(
        &mut self,
        activations: &[bool],
        row_offset: usize,
    ) -> Result<Vec<u32>, ArchError> {
        let n = self.spec.capacitors_per_column();
        if activations.len() != n {
            return Err(ArchError::DimensionMismatch {
                what: "activation vector".into(),
                expected: n,
                actual: activations.len(),
            });
        }
        if row_offset >= self.spec.local_array() {
            return Err(ArchError::DimensionMismatch {
                what: "row offset".into(),
                expected: self.spec.local_array(),
                actual: row_offset,
            });
        }

        let mut outputs = Vec::with_capacity(self.spec.width());
        let mut cycle_energy = EnergyBreakdown::new();
        for col in 0..self.spec.width() {
            // MAC state: every local array produces its 1-bit product.
            let products: Vec<bool> = self.columns[col]
                .iter()
                .zip(activations)
                .map(|(array, &x)| {
                    array
                        .mac(row_offset, x)
                        .expect("row offset validated above")
                })
                .collect();

            // Charge redistribution: normalised analog accumulation.
            let mut v = self.compute[col].accumulate(&products, self.noise.pvt);
            if self.noise.thermal_noise {
                v += gaussian(&mut self.rng) * self.thermal_sigma_rel;
            }
            let v = v.clamp(0.0, 1.0);

            // SAR conversion.
            let code = self.adcs[col].convert(v, &mut self.rng);
            outputs.push(code);

            // Energy accounting.
            let macs = n as u64;
            cycle_energy.compute += self.energy_params.e_compute * macs as f64;
            cycle_energy.control += self.energy_params.e_control * macs as f64;
            cycle_energy.adc += self
                .energy_params
                .adc_energy(self.spec.adc_bits())
                .unwrap_or(Femtojoule::new(0.0));
            cycle_energy.mac_count += macs;
        }
        self.stats.cycles += 1;
        self.stats.macs += cycle_energy.mac_count;
        self.stats.energy.merge(&cycle_energy);
        Ok(outputs)
    }

    /// The ideal (infinite-precision, noiseless) dot product of the current
    /// cycle for every column: the number of `(weight AND activation)` ones
    /// among the `H / L` selected rows.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::DimensionMismatch`] on dimension errors, as in
    /// [`AcimMacro::mac_and_convert`].
    pub fn ideal_dot_products(
        &self,
        activations: &[bool],
        row_offset: usize,
    ) -> Result<Vec<u32>, ArchError> {
        let n = self.spec.capacitors_per_column();
        if activations.len() != n {
            return Err(ArchError::DimensionMismatch {
                what: "activation vector".into(),
                expected: n,
                actual: activations.len(),
            });
        }
        if row_offset >= self.spec.local_array() {
            return Err(ArchError::DimensionMismatch {
                what: "row offset".into(),
                expected: self.spec.local_array(),
                actual: row_offset,
            });
        }
        let mut result = Vec::with_capacity(self.spec.width());
        for col in 0..self.spec.width() {
            let sum = self.columns[col]
                .iter()
                .zip(activations)
                .filter(|(array, &x)| array.mac(row_offset, x).unwrap_or(false))
                .count();
            result.push(sum as u32);
        }
        Ok(result)
    }

    /// Average measured energy per MAC so far, if any cycles have run.
    pub fn measured_energy_per_mac(&self) -> Option<Femtojoule> {
        self.stats.energy.per_mac()
    }

    /// Estimated throughput of this macro in TOPS (from the timing model,
    /// not from wall-clock simulation).
    ///
    /// # Errors
    ///
    /// Propagates [`ArchError`] from the timing model.
    pub fn throughput_tops(&self) -> Result<f64, ArchError> {
        self.timing.throughput_tops(&self.spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> AcimSpec {
        // 1 kb array: 64 x 16, L = 4, B = 3 → H/L = 16 caps.
        AcimSpec::from_dimensions(64, 16, 4, 3).unwrap()
    }

    fn build(noise: NoiseConfig) -> AcimMacro {
        AcimMacro::new(&small_spec(), &Technology::s28(), noise, 42).unwrap()
    }

    #[test]
    fn program_and_read_back() {
        let mut m = build(NoiseConfig::noiseless());
        m.program_bit(5, 3, true).unwrap();
        assert!(m.read_bit(5, 3).unwrap());
        assert!(!m.read_bit(6, 3).unwrap());
        assert!(m.program_bit(64, 0, true).is_err());
        assert!(m.program_bit(0, 16, true).is_err());
        assert!(m.read_bit(64, 0).is_err());
    }

    #[test]
    fn noiseless_macro_reproduces_ideal_dot_product() {
        let mut m = build(NoiseConfig::noiseless());
        // Program all-ones weights so the dot product equals popcount(x).
        m.program_with(|_, _| true);
        let n = m.spec().dot_product_length();
        let activations: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let expected_ones = activations.iter().filter(|&&b| b).count() as u32;

        let outputs = m.mac_and_convert(&activations, 0).unwrap();
        let ideal = m.ideal_dot_products(&activations, 0).unwrap();
        let full_scale = (1u32 << m.spec().adc_bits()) - 1;
        for (code, ideal_sum) in outputs.iter().zip(&ideal) {
            assert_eq!(*ideal_sum, expected_ones);
            // The code is the quantised fraction ideal_sum / N.
            let expected_code =
                (f64::from(*ideal_sum) / n as f64 * f64::from(full_scale)).round() as i64;
            assert!(
                (i64::from(*code) - expected_code).abs() <= 1,
                "code {code} vs expected {expected_code}"
            );
        }
    }

    #[test]
    fn zero_weights_give_zero_output() {
        let mut m = build(NoiseConfig::noiseless());
        m.program_with(|_, _| false);
        let activations = vec![true; m.spec().dot_product_length()];
        let outputs = m.mac_and_convert(&activations, 0).unwrap();
        assert!(outputs.iter().all(|&c| c == 0));
    }

    #[test]
    fn dimension_errors_are_reported() {
        let mut m = build(NoiseConfig::noiseless());
        let too_short = vec![true; 3];
        assert!(m.mac_and_convert(&too_short, 0).is_err());
        let ok_len = vec![true; m.spec().dot_product_length()];
        assert!(m.mac_and_convert(&ok_len, 99).is_err());
        assert!(m.ideal_dot_products(&too_short, 0).is_err());
    }

    #[test]
    fn noisy_macro_stays_close_to_ideal() {
        let mut m = build(NoiseConfig::realistic());
        m.program_with(|row, col| (row * 7 + col * 3) % 3 == 0);
        let n = m.spec().dot_product_length();
        let activations: Vec<bool> = (0..n).map(|i| i % 3 != 1).collect();
        let outputs = m.mac_and_convert(&activations, 1).unwrap();
        let ideal = m.ideal_dot_products(&activations, 1).unwrap();
        let full_scale = f64::from((1u32 << m.spec().adc_bits()) - 1);
        for (code, ideal_sum) in outputs.iter().zip(&ideal) {
            let expected = f64::from(*ideal_sum) / n as f64 * full_scale;
            assert!(
                (f64::from(*code) - expected).abs() <= 2.0,
                "noisy code {code} too far from ideal {expected}"
            );
        }
    }

    #[test]
    fn energy_and_stats_accumulate() {
        let mut m = build(NoiseConfig::noiseless());
        m.program_with(|_, _| true);
        let activations = vec![true; m.spec().dot_product_length()];
        assert!(m.measured_energy_per_mac().is_none());
        for offset in 0..m.spec().local_array() {
            m.mac_and_convert(&activations, offset).unwrap();
        }
        let stats = m.stats();
        assert_eq!(stats.cycles, 4);
        assert_eq!(
            stats.macs,
            (m.spec().macs_per_cycle() * m.spec().local_array()) as u64
        );
        let per_mac = m.measured_energy_per_mac().unwrap();
        // Should match the analytic per-MAC energy (same parameters).
        let analytic = EnergyModelParams::s28_default()
            .energy_per_mac(m.spec())
            .unwrap();
        assert!(
            (per_mac.value() - analytic.value()).abs() / analytic.value() < 1e-9,
            "measured {per_mac} vs analytic {analytic}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let mut m = AcimMacro::new(
                &small_spec(),
                &Technology::s28(),
                NoiseConfig::realistic(),
                seed,
            )
            .unwrap();
            m.program_with(|row, col| (row + col) % 2 == 0);
            let activations: Vec<bool> = (0..m.spec().dot_product_length())
                .map(|i| i % 2 == 1)
                .collect();
            m.mac_and_convert(&activations, 2).unwrap()
        };
        assert_eq!(run(7), run(7));
        // Different seed almost surely differs somewhere (mismatch pattern).
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn throughput_matches_timing_model() {
        let m = build(NoiseConfig::noiseless());
        let direct = TimingModel::s28_default()
            .throughput_tops(m.spec())
            .unwrap();
        assert_eq!(m.throughput_tops().unwrap(), direct);
    }
}
