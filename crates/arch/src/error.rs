//! Error types of the architecture crate.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or simulating an ACIM macro.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchError {
    /// A design specification violated one of the architectural constraints
    /// of Equation 12 (H·W = ArraySize, H ≥ L, H/L ≥ 2^B_ADC, …).
    InvalidSpec {
        /// The constraint that was violated.
        constraint: String,
        /// Human-readable details.
        details: String,
    },
    /// An input vector or index had the wrong dimensions for the macro.
    DimensionMismatch {
        /// What was being indexed or supplied.
        what: String,
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// A simulation parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: String,
        /// Why the value was rejected.
        reason: String,
    },
}

impl ArchError {
    /// Convenience constructor for specification-constraint violations.
    pub fn invalid_spec(constraint: impl Into<String>, details: impl Into<String>) -> Self {
        ArchError::InvalidSpec {
            constraint: constraint.into(),
            details: details.into(),
        }
    }
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidSpec {
                constraint,
                details,
            } => write!(f, "invalid ACIM specification ({constraint}): {details}"),
            ArchError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch for {what}: expected {expected}, got {actual}"
            ),
            ArchError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ArchError::invalid_spec("H*W=ArraySize", "128*100 != 16384");
        assert!(e.to_string().contains("H*W=ArraySize"));
        let e = ArchError::DimensionMismatch {
            what: "input vector".into(),
            expected: 16,
            actual: 8,
        };
        assert!(e.to_string().contains("expected 16"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }
}
