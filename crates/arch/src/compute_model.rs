//! In-memory compute models: charge summing (QS), current summing (IS) and
//! charge redistribution (QR) — Figure 2 of the paper.
//!
//! EasyACIM selects QR for its synthesizable architecture because the
//! charge-domain models are insensitive to process-voltage-temperature (PVT)
//! variation and QR's bottom-plate redistribution extends naturally to
//! different applications.  This module provides behavioural implementations
//! of all three so the choice can be reproduced quantitatively: the
//! `compute_model` ablation benchmark sweeps PVT and mismatch and shows QR/QS
//! retaining accuracy where IS degrades.

use rand::Rng;

/// Which analog accumulation mechanism a column uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ComputeModelKind {
    /// Charge summing: each product switches a unit capacitor onto a shared
    /// output node; PVT-insensitive but hard to reconfigure.
    ChargeSumming,
    /// Current summing: each product gates a unit current source; dense but
    /// PVT-sensitive (current mirrors vary with voltage and temperature).
    CurrentSumming,
    /// Charge redistribution (the EasyACIM choice): products set capacitor
    /// top plates, then the bottom plates are shorted and the charge
    /// redistributes; PVT-insensitive and flexible.
    #[default]
    ChargeRedistribution,
}

impl ComputeModelKind {
    /// All three compute models, in the order of Figure 2.
    pub fn all() -> [ComputeModelKind; 3] {
        [
            ComputeModelKind::ChargeSumming,
            ComputeModelKind::CurrentSumming,
            ComputeModelKind::ChargeRedistribution,
        ]
    }

    /// Returns `true` for the charge-domain models (QS, QR).
    pub fn is_charge_domain(self) -> bool {
        !matches!(self, ComputeModelKind::CurrentSumming)
    }

    /// Short name used in reports ("QS", "IS", "QR").
    pub fn short_name(self) -> &'static str {
        match self {
            ComputeModelKind::ChargeSumming => "QS",
            ComputeModelKind::CurrentSumming => "IS",
            ComputeModelKind::ChargeRedistribution => "QR",
        }
    }
}

/// Operating-condition knobs for the PVT-sensitivity study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PvtCondition {
    /// Supply-voltage deviation from nominal, as a fraction (e.g. `0.05` =
    /// +5 %).
    pub supply_deviation: f64,
    /// Temperature deviation from nominal, in Kelvin.
    pub temperature_delta_k: f64,
}

impl PvtCondition {
    /// Nominal corner: no deviation.
    pub fn nominal() -> Self {
        Self {
            supply_deviation: 0.0,
            temperature_delta_k: 0.0,
        }
    }
}

impl Default for PvtCondition {
    fn default() -> Self {
        Self::nominal()
    }
}

/// A behavioural analog accumulator for one column.
///
/// Inputs are the 1-bit products `b_i ∈ {0, 1}` produced by the local
/// arrays (one per compute capacitor / current branch); the output is the
/// normalised accumulation value in `[0, 1]` — the fraction of the supply
/// that the read bit-line settles to — before any ADC quantisation.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeModel {
    kind: ComputeModelKind,
    /// Per-element static mismatch factors (capacitor or current-source
    /// mismatch), multiplicative around 1.0.
    element_mismatch: Vec<f64>,
    /// PVT sensitivity coefficient of the element value (per unit of supply
    /// deviation); only significant for the current-domain model.
    pvt_sensitivity: f64,
}

impl ComputeModel {
    /// Creates a compute model with `n` ideal (mismatch-free) elements.
    pub fn ideal(kind: ComputeModelKind, n: usize) -> Self {
        Self {
            kind,
            element_mismatch: vec![1.0; n],
            pvt_sensitivity: Self::default_pvt_sensitivity(kind),
        }
    }

    /// Creates a compute model with Gaussian element mismatch of relative
    /// standard deviation `sigma_rel`, sampled from `rng`.
    pub fn with_mismatch<R: Rng + ?Sized>(
        kind: ComputeModelKind,
        n: usize,
        sigma_rel: f64,
        rng: &mut R,
    ) -> Self {
        let element_mismatch = (0..n).map(|_| 1.0 + gaussian(rng) * sigma_rel).collect();
        Self {
            kind,
            element_mismatch,
            pvt_sensitivity: Self::default_pvt_sensitivity(kind),
        }
    }

    fn default_pvt_sensitivity(kind: ComputeModelKind) -> f64 {
        match kind {
            // Charge-domain models depend on capacitor ratios, which track
            // across PVT: small residual sensitivity.
            ComputeModelKind::ChargeSumming | ComputeModelKind::ChargeRedistribution => 0.02,
            // Current sources vary strongly with supply and temperature.
            ComputeModelKind::CurrentSumming => 0.8,
        }
    }

    /// The model kind.
    pub fn kind(&self) -> ComputeModelKind {
        self.kind
    }

    /// Number of accumulation elements.
    pub fn len(&self) -> usize {
        self.element_mismatch.len()
    }

    /// Returns `true` when the model has no elements.
    pub fn is_empty(&self) -> bool {
        self.element_mismatch.is_empty()
    }

    /// Accumulates the 1-bit products into a normalised analog value in
    /// `[0, 1]` under the given PVT condition.
    ///
    /// For the charge-domain models the result is the mismatch-weighted mean
    /// of the product bits (charge conservation); for the current-domain
    /// model each element additionally scales with the supply/temperature
    /// deviation, modelling current-source variation.
    ///
    /// # Panics
    ///
    /// Panics if `products.len()` differs from the number of elements.
    pub fn accumulate(&self, products: &[bool], pvt: PvtCondition) -> f64 {
        assert_eq!(
            products.len(),
            self.element_mismatch.len(),
            "product vector must match element count"
        );
        if products.is_empty() {
            return 0.0;
        }
        let pvt_factor =
            1.0 + self.pvt_sensitivity * (pvt.supply_deviation + pvt.temperature_delta_k / 300.0);
        let mut weighted_sum = 0.0;
        let mut weight_total = 0.0;
        for (bit, mismatch) in products.iter().zip(&self.element_mismatch) {
            let element = match self.kind {
                // Capacitor values cancel to first order in the denominator
                // (redistribution divides by the total capacitance).
                ComputeModelKind::ChargeRedistribution | ComputeModelKind::ChargeSumming => {
                    *mismatch
                }
                ComputeModelKind::CurrentSumming => *mismatch * pvt_factor,
            };
            weight_total += match self.kind {
                // QR/QS normalise by the (mismatched) total capacitance.
                ComputeModelKind::ChargeRedistribution | ComputeModelKind::ChargeSumming => element,
                // IS normalises by the *nominal* full-scale current, so PVT
                // drift shows up directly in the output.
                ComputeModelKind::CurrentSumming => 1.0,
            };
            if *bit {
                weighted_sum += element;
            }
        }
        (weighted_sum / weight_total).clamp(0.0, 2.0)
    }

    /// Ideal (noise- and mismatch-free) accumulation: the fraction of ones.
    pub fn ideal_accumulate(products: &[bool]) -> f64 {
        if products.is_empty() {
            return 0.0;
        }
        products.iter().filter(|&&b| b).count() as f64 / products.len() as f64
    }
}

/// Standard-normal sample via Box–Muller (avoids an extra dependency on
/// `rand_distr`).
pub(crate) fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_accumulation_is_fraction_of_ones() {
        let products = vec![true, false, true, true];
        assert!((ComputeModel::ideal_accumulate(&products) - 0.75).abs() < 1e-12);
        assert_eq!(ComputeModel::ideal_accumulate(&[]), 0.0);
    }

    #[test]
    fn ideal_models_agree_with_ideal_accumulation() {
        let products = vec![true, false, true, false, false, true, true, false];
        for kind in ComputeModelKind::all() {
            let model = ComputeModel::ideal(kind, products.len());
            let out = model.accumulate(&products, PvtCondition::nominal());
            assert!(
                (out - 0.5).abs() < 1e-12,
                "{kind:?} gave {out} for 4/8 ones"
            );
        }
    }

    #[test]
    fn current_summing_is_pvt_sensitive_charge_models_are_not() {
        let products = vec![true; 16];
        let corner = PvtCondition {
            supply_deviation: 0.1,
            temperature_delta_k: 50.0,
        };
        let qr = ComputeModel::ideal(ComputeModelKind::ChargeRedistribution, 16)
            .accumulate(&products, corner);
        let is =
            ComputeModel::ideal(ComputeModelKind::CurrentSumming, 16).accumulate(&products, corner);
        let qr_err = (qr - 1.0).abs();
        let is_err = (is - 1.0).abs();
        assert!(
            is_err > 5.0 * qr_err,
            "IS error {is_err} should dwarf QR error {qr_err}"
        );
    }

    #[test]
    fn mismatch_perturbs_but_preserves_mean_roughly() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 64;
        let products: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let model =
            ComputeModel::with_mismatch(ComputeModelKind::ChargeRedistribution, n, 0.02, &mut rng);
        let out = model.accumulate(&products, PvtCondition::nominal());
        assert!((out - 0.5).abs() < 0.05, "mismatch shifted output to {out}");
        assert_ne!(out, 0.5, "2% mismatch should move the output slightly");
    }

    #[test]
    fn short_names_and_charge_domain_predicate() {
        assert_eq!(ComputeModelKind::ChargeRedistribution.short_name(), "QR");
        assert_eq!(ComputeModelKind::CurrentSumming.short_name(), "IS");
        assert_eq!(ComputeModelKind::ChargeSumming.short_name(), "QS");
        assert!(ComputeModelKind::ChargeRedistribution.is_charge_domain());
        assert!(!ComputeModelKind::CurrentSumming.is_charge_domain());
    }

    #[test]
    #[should_panic(expected = "must match element count")]
    fn accumulate_rejects_wrong_length() {
        let model = ComputeModel::ideal(ComputeModelKind::ChargeRedistribution, 4);
        let _ = model.accumulate(&[true, false], PvtCondition::nominal());
    }

    #[test]
    fn gaussian_has_roughly_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }
}
