//! The local compute array: `L` 8T cells sharing one compute capacitor and
//! its control circuit (Section 3.1).
//!
//! Giving every bit cell its own capacitor would dominate macro area, so the
//! architecture amortises one metal-fringe capacitor `C_F`, one group
//! control circuit and one slice of SAR switching logic over `L` cells.
//! Only one of the `L` rows is selected per MAC cycle, so the choice of `L`
//! trades area (fewer capacitors) against throughput (more cycles to cover
//! all `H` rows).

use crate::error::ArchError;
use crate::sram::SramCell;

/// Behavioural model of one local array.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalArray {
    cells: Vec<SramCell>,
}

impl LocalArray {
    /// Creates a local array of `size` cells, all storing `0`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] when `size` is zero.
    pub fn new(size: usize) -> Result<Self, ArchError> {
        if size == 0 {
            return Err(ArchError::InvalidParameter {
                name: "local array size".into(),
                reason: "must be at least 1".into(),
            });
        }
        Ok(Self {
            cells: vec![SramCell::new(); size],
        })
    }

    /// Number of cells in the local array (`L`).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` when the local array has no cells (never the case for
    /// arrays built through [`LocalArray::new`]).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Writes the weight bit of the cell at `row` (0-based inside the local
    /// array).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::DimensionMismatch`] when `row` is out of range.
    pub fn write(&mut self, row: usize, value: bool) -> Result<(), ArchError> {
        let len = self.cells.len();
        self.cells
            .get_mut(row)
            .map(|c| c.write(value))
            .ok_or(ArchError::DimensionMismatch {
                what: "local array row".into(),
                expected: len,
                actual: row,
            })
    }

    /// Reads the stored bit of the cell at `row`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::DimensionMismatch`] when `row` is out of range.
    pub fn read(&self, row: usize) -> Result<bool, ArchError> {
        self.cells
            .get(row)
            .map(SramCell::read)
            .ok_or(ArchError::DimensionMismatch {
                what: "local array row".into(),
                expected: self.cells.len(),
                actual: row,
            })
    }

    /// One MAC micro-operation: selects row `row` and returns the 1-bit
    /// product of its stored weight and the broadcast `activation`.  The
    /// result is the digital value that drives the top plate of the shared
    /// compute capacitor to `V_DD` (true) or `V_SS` (false).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::DimensionMismatch`] when `row` is out of range.
    pub fn mac(&self, row: usize, activation: bool) -> Result<bool, ArchError> {
        self.cells
            .get(row)
            .and_then(|c| c.compute(true, activation))
            .ok_or(ArchError::DimensionMismatch {
                what: "local array row".into(),
                expected: self.cells.len(),
                actual: row,
            })
    }

    /// Counts the stored ones (used by tests and netlist statistics).
    pub fn popcount(&self) -> usize {
        self.cells.iter().filter(|c| c.read()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_size() {
        assert!(LocalArray::new(0).is_err());
        assert_eq!(LocalArray::new(8).unwrap().len(), 8);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut array = LocalArray::new(4).unwrap();
        array.write(2, true).unwrap();
        assert!(array.read(2).unwrap());
        assert!(!array.read(0).unwrap());
        assert_eq!(array.popcount(), 1);
    }

    #[test]
    fn out_of_range_access_is_an_error() {
        let mut array = LocalArray::new(4).unwrap();
        assert!(array.write(4, true).is_err());
        assert!(array.read(17).is_err());
        assert!(array.mac(4, true).is_err());
    }

    #[test]
    fn mac_computes_binary_product_of_selected_row() {
        let mut array = LocalArray::new(4).unwrap();
        array.write(1, true).unwrap();
        // Selected row holds 1: product follows the activation.
        assert!(array.mac(1, true).unwrap());
        assert!(!array.mac(1, false).unwrap());
        // Selected row holds 0: product is always 0.
        assert!(!array.mac(0, true).unwrap());
    }

    #[test]
    fn is_empty_is_false_for_valid_arrays() {
        assert!(!LocalArray::new(2).unwrap().is_empty());
    }
}
