//! Monte-Carlo SNR measurement.
//!
//! The analytic SNR model (Equations 2–6 and 11 of the paper) predicts the
//! signal-to-noise ratio of the macro's digitised dot products.  This module
//! *measures* that SNR by simulation: it programs random weights, drives
//! random activations, compares the digital outputs against the ideal dot
//! products and reports `10·log10(σ²_signal / σ²_error)`.  The measurement
//! stands in for the post-layout simulation the paper uses to validate its
//! estimation model.

use acim_tech::Technology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ArchError;
use crate::macro_sim::{AcimMacro, NoiseConfig};
use crate::spec::AcimSpec;

/// Result of a Monte-Carlo SNR measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnrMeasurement {
    /// Measured SNR in dB.
    pub snr_db: f64,
    /// Signal variance (ideal dot products, in normalised full-scale units).
    pub signal_variance: f64,
    /// Error variance (digital output minus ideal, same units).
    pub error_variance: f64,
    /// Number of (cycle, column) samples that contributed.
    pub samples: usize,
}

/// Measures the output SNR of a specification by Monte-Carlo simulation.
///
/// `cycles` MAC + conversion cycles are simulated on a macro with random
/// dense weights and random activations of density ~0.5.  The per-column
/// digital outputs are compared with the ideal dot products, both normalised
/// to full scale, and the ratio of variances is reported in dB.
///
/// The macro width is clamped to at most 32 columns to keep the measurement
/// fast — SNR is a per-column property, so simulating every column of a wide
/// array adds samples but no new information.
///
/// # Errors
///
/// Propagates [`ArchError`] from macro construction, and returns
/// [`ArchError::InvalidParameter`] when `cycles` is zero.
pub fn measure_snr(
    spec: &AcimSpec,
    tech: &Technology,
    noise: NoiseConfig,
    cycles: usize,
    seed: u64,
) -> Result<SnrMeasurement, ArchError> {
    if cycles == 0 {
        return Err(ArchError::InvalidParameter {
            name: "cycles".into(),
            reason: "at least one cycle is required".into(),
        });
    }
    // Narrow the macro for speed; per-column behaviour is what matters.
    let sim_width = spec.width().min(32);
    let sim_spec = AcimSpec::new(
        spec.height() * sim_width,
        spec.height(),
        sim_width,
        spec.local_array(),
        spec.adc_bits(),
    )?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let mut macro_sim = AcimMacro::new(&sim_spec, tech, noise, seed)?;
    macro_sim.program_with(|_, _| rng.gen::<bool>());

    let n = sim_spec.dot_product_length();
    let full_scale = f64::from((1u32 << sim_spec.adc_bits()) - 1);

    let mut ideal_values = Vec::with_capacity(cycles * sim_width);
    let mut errors = Vec::with_capacity(cycles * sim_width);
    for cycle in 0..cycles {
        let activations: Vec<bool> = (0..n).map(|_| rng.gen::<bool>()).collect();
        let row_offset = cycle % sim_spec.local_array();
        let outputs = macro_sim.mac_and_convert(&activations, row_offset)?;
        let ideal = macro_sim.ideal_dot_products(&activations, row_offset)?;
        for (code, ideal_sum) in outputs.iter().zip(&ideal) {
            // Normalise both to the [0, 1] full-scale range.
            let measured = f64::from(*code) / full_scale;
            let reference = f64::from(*ideal_sum) / n as f64;
            ideal_values.push(reference);
            errors.push(measured - reference);
        }
    }

    let signal_variance = variance(&ideal_values);
    let error_variance = variance(&errors).max(1e-18);
    let snr_db = 10.0 * (signal_variance / error_variance).log10();
    Ok(SnrMeasurement {
        snr_db,
        signal_variance,
        error_variance,
        samples: ideal_values.len(),
    })
}

fn variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(h: usize, w: usize, l: usize, b: u32) -> AcimSpec {
        AcimSpec::from_dimensions(h, w, l, b).unwrap()
    }

    #[test]
    fn zero_cycles_is_an_error() {
        let s = spec(64, 16, 4, 3);
        assert!(measure_snr(&s, &Technology::s28(), NoiseConfig::noiseless(), 0, 1).is_err());
    }

    #[test]
    fn higher_adc_precision_improves_snr() {
        let tech = Technology::s28();
        let low =
            measure_snr(&spec(128, 16, 4, 3), &tech, NoiseConfig::noiseless(), 64, 3).unwrap();
        let high =
            measure_snr(&spec(128, 16, 4, 5), &tech, NoiseConfig::noiseless(), 64, 3).unwrap();
        assert!(
            high.snr_db > low.snr_db + 6.0,
            "B=5 ({:.1} dB) should beat B=3 ({:.1} dB) by >6 dB",
            high.snr_db,
            low.snr_db
        );
    }

    #[test]
    fn noise_degrades_snr() {
        let tech = Technology::s28();
        let s = spec(128, 16, 4, 5);
        let clean = measure_snr(&s, &tech, NoiseConfig::noiseless(), 64, 5).unwrap();
        let noisy = measure_snr(&s, &tech, NoiseConfig::realistic(), 64, 5).unwrap();
        assert!(
            noisy.snr_db <= clean.snr_db + 0.5,
            "noisy {:.1} dB should not beat noiseless {:.1} dB",
            noisy.snr_db,
            clean.snr_db
        );
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let tech = Technology::s28();
        let s = spec(64, 16, 4, 3);
        let a = measure_snr(&s, &tech, NoiseConfig::realistic(), 32, 9).unwrap();
        let b = measure_snr(&s, &tech, NoiseConfig::realistic(), 32, 9).unwrap();
        assert_eq!(a.snr_db, b.snr_db);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn sample_count_matches_cycles_times_width() {
        let tech = Technology::s28();
        let s = spec(64, 16, 4, 3);
        let m = measure_snr(&s, &tech, NoiseConfig::noiseless(), 10, 2).unwrap();
        assert_eq!(m.samples, 10 * 16);
    }

    #[test]
    fn snr_is_in_a_plausible_band() {
        let tech = Technology::s28();
        let m = measure_snr(
            &spec(128, 16, 8, 4),
            &tech,
            NoiseConfig::realistic(),
            64,
            11,
        )
        .unwrap();
        assert!(
            m.snr_db > 5.0 && m.snr_db < 60.0,
            "implausible SNR {:.1} dB",
            m.snr_db
        );
    }

    #[test]
    fn variance_helper() {
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[2.0, 2.0, 2.0]), 0.0);
        assert!((variance(&[1.0, -1.0]) - 1.0).abs() < 1e-12);
    }
}
