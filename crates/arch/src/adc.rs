//! SAR ADC with compute-capacitor reuse.
//!
//! The defining trick of the synthesizable architecture (borrowed from the
//! bit-flexible macro of reference \[4\] of the paper) is that the per-column
//! compute capacitors `C_F` are *reused* as the CDAC of the column's SAR
//! ADC: the `H / L` capacitors are partitioned into SAR groups with the
//! binary ratio 1 : 1 : 2 : … : 2^(B−1), and the SAR logic switches whole
//! groups during the successive-approximation search.  This removes the
//! dedicated CDAC and its area from the design.

use rand::Rng;

use crate::compute_model::gaussian;
use crate::error::ArchError;
use crate::spec::AcimSpec;

/// The CDAC formed by partitioning a column's compute capacitors into SAR
/// groups.
#[derive(Debug, Clone, PartialEq)]
pub struct CdacBank {
    /// Nominal unit capacitance (fF) of one compute capacitor.
    unit_cap_ff: f64,
    /// Per-group capacitance in fF, including sampled mismatch.
    group_caps_ff: Vec<f64>,
    /// Nominal per-group sizes in unit capacitors.
    group_units: Vec<usize>,
}

impl CdacBank {
    /// Builds an ideal (mismatch-free) CDAC for a specification.
    pub fn ideal(spec: &AcimSpec, unit_cap_ff: f64) -> Self {
        let group_units = spec.sar_group_sizes();
        let group_caps_ff = group_units
            .iter()
            .map(|&u| unit_cap_ff * u as f64)
            .collect();
        Self {
            unit_cap_ff,
            group_caps_ff,
            group_units,
        }
    }

    /// Builds a CDAC whose unit capacitors carry Gaussian mismatch
    /// `σ_C = κ·√C` (κ in 1/√fF), sampled from `rng`.
    pub fn with_mismatch<R: Rng + ?Sized>(
        spec: &AcimSpec,
        unit_cap_ff: f64,
        kappa: f64,
        rng: &mut R,
    ) -> Self {
        let group_units = spec.sar_group_sizes();
        let group_caps_ff = group_units
            .iter()
            .map(|&u| {
                // Each group is u unit caps in parallel; mismatch adds in
                // quadrature so the group sigma is κ·√(u·C).
                let nominal = unit_cap_ff * u as f64;
                let sigma = kappa * nominal.sqrt();
                (nominal + gaussian(rng) * sigma).max(unit_cap_ff * 0.01)
            })
            .collect();
        Self {
            unit_cap_ff,
            group_caps_ff,
            group_units,
        }
    }

    /// Number of SAR groups (B_ADC + 1, including the LSB dummy group).
    pub fn num_groups(&self) -> usize {
        self.group_caps_ff.len()
    }

    /// Nominal group sizes in unit capacitors.
    pub fn group_units(&self) -> &[usize] {
        &self.group_units
    }

    /// Total CDAC capacitance in fF (with mismatch).
    pub fn total_cap_ff(&self) -> f64 {
        self.group_caps_ff.iter().sum()
    }

    /// Nominal total capacitance in fF.
    pub fn nominal_total_cap_ff(&self) -> f64 {
        self.unit_cap_ff * self.group_units.iter().sum::<usize>() as f64
    }

    /// The voltage step (as a fraction of full scale) contributed by
    /// switching group `index`, given the actual (mismatched) capacitor
    /// values: `C_group / C_total`.
    pub fn group_weight(&self, index: usize) -> f64 {
        self.group_caps_ff[index] / self.total_cap_ff()
    }
}

/// Behavioural SAR ADC operating on a [`CdacBank`].
#[derive(Debug, Clone, PartialEq)]
pub struct SarAdc {
    cdac: CdacBank,
    bits: u32,
    /// Comparator input-referred noise, as a fraction of full scale.
    comparator_noise: f64,
    /// Comparator offset, as a fraction of full scale.
    comparator_offset: f64,
}

impl SarAdc {
    /// Creates a SAR ADC.
    ///
    /// `comparator_noise` and `comparator_offset` are expressed as fractions
    /// of the full-scale range (i.e. already referred to the normalised
    /// `[0, 1]` input).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] when `bits` is zero or larger
    /// than 16, or when a noise parameter is negative.
    pub fn new(
        cdac: CdacBank,
        bits: u32,
        comparator_noise: f64,
        comparator_offset: f64,
    ) -> Result<Self, ArchError> {
        if bits == 0 || bits > 16 {
            return Err(ArchError::InvalidParameter {
                name: "adc bits".into(),
                reason: format!("{bits} is outside [1, 16]"),
            });
        }
        if comparator_noise < 0.0 || comparator_offset.is_nan() {
            return Err(ArchError::InvalidParameter {
                name: "comparator noise".into(),
                reason: "must be non-negative".into(),
            });
        }
        Ok(Self {
            cdac,
            bits,
            comparator_noise,
            comparator_offset,
        })
    }

    /// ADC resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The underlying CDAC.
    pub fn cdac(&self) -> &CdacBank {
        &self.cdac
    }

    /// Converts a normalised analog value `v ∈ [0, 1]` to a `bits`-bit code
    /// using successive approximation with the (possibly mismatched) CDAC
    /// group weights and per-decision comparator noise drawn from `rng`.
    pub fn convert<R: Rng + ?Sized>(&self, v: f64, rng: &mut R) -> u32 {
        // The SAR search: threshold starts at mid-scale and each decision
        // adds or removes the weight of the next binary group.  Group 0 is
        // the LSB dummy; groups 1..=B carry the binary weights from MSB to
        // LSB when traversed in reverse.
        let mut code = 0u32;
        let mut threshold = 0.0;
        let effective = (v + self.comparator_offset).clamp(0.0, 1.0);
        // Binary-weighted groups, MSB first: the largest group is the last
        // entry of the CDAC bank.
        let num_groups = self.cdac.num_groups();
        for bit in (0..self.bits).rev() {
            // Group index carrying weight 2^bit: groups are ordered
            // [dummy, 2^0, 2^1, ..., 2^(B-1)].
            let group_index = (bit as usize + 1).min(num_groups - 1);
            let weight = self.cdac.group_weight(group_index);
            let trial = threshold + weight;
            let noise = if self.comparator_noise > 0.0 {
                gaussian(rng) * self.comparator_noise
            } else {
                0.0
            };
            if effective + noise >= trial {
                code |= 1 << bit;
                threshold = trial;
            }
        }
        code
    }

    /// Ideal quantisation of a normalised value to `bits` bits (mid-tread,
    /// used as the reference when measuring quantisation-limited SNR).
    pub fn ideal_convert(&self, v: f64) -> u32 {
        let levels = (1u32 << self.bits) - 1;
        (v.clamp(0.0, 1.0) * f64::from(levels)).round() as u32
    }

    /// Full-scale code (`2^bits − 1`).
    pub fn full_scale(&self) -> u32 {
        (1u32 << self.bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> AcimSpec {
        AcimSpec::from_dimensions(128, 128, 8, 4).unwrap()
    }

    fn ideal_adc(bits: u32) -> SarAdc {
        let spec = AcimSpec::from_dimensions(512, 32, 2, bits).unwrap();
        SarAdc::new(CdacBank::ideal(&spec, 1.2), bits, 0.0, 0.0).unwrap()
    }

    #[test]
    fn cdac_group_structure_matches_spec() {
        let s = spec();
        let cdac = CdacBank::ideal(&s, 1.2);
        assert_eq!(cdac.group_units(), s.sar_group_sizes().as_slice());
        assert_eq!(cdac.num_groups(), 5);
        assert!((cdac.total_cap_ff() - 1.2 * 16.0).abs() < 1e-9);
        assert_eq!(cdac.total_cap_ff(), cdac.nominal_total_cap_ff());
    }

    #[test]
    fn cdac_mismatch_perturbs_but_stays_positive() {
        let s = spec();
        let mut rng = StdRng::seed_from_u64(3);
        let cdac = CdacBank::with_mismatch(&s, 1.2, 0.02, &mut rng);
        assert_ne!(cdac.total_cap_ff(), cdac.nominal_total_cap_ff());
        let rel_err =
            (cdac.total_cap_ff() - cdac.nominal_total_cap_ff()).abs() / cdac.nominal_total_cap_ff();
        assert!(rel_err < 0.2, "mismatch too large: {rel_err}");
        for i in 0..cdac.num_groups() {
            assert!(cdac.group_weight(i) > 0.0);
        }
    }

    #[test]
    fn ideal_conversion_is_monotonic_and_hits_extremes() {
        let adc = ideal_adc(4);
        let mut rng = StdRng::seed_from_u64(1);
        let mut last = 0;
        for step in 0..=100 {
            let v = f64::from(step) / 100.0;
            let code = adc.convert(v, &mut rng);
            assert!(code >= last, "non-monotonic at v={v}: {code} < {last}");
            last = code;
        }
        assert_eq!(adc.convert(0.0, &mut rng), 0);
        assert_eq!(adc.convert(1.0, &mut rng), adc.full_scale());
    }

    #[test]
    fn noiseless_sar_matches_ideal_quantiser_within_one_lsb() {
        let adc = ideal_adc(6);
        let mut rng = StdRng::seed_from_u64(2);
        for step in 0..200 {
            let v = f64::from(step) / 199.0;
            let sar = adc.convert(v, &mut rng) as i64;
            let ideal = adc.ideal_convert(v) as i64;
            assert!(
                (sar - ideal).abs() <= 1,
                "v={v}: sar {sar} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn comparator_noise_disturbs_codes_near_thresholds() {
        let s = spec();
        let noisy = SarAdc::new(CdacBank::ideal(&s, 1.2), 4, 0.05, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        // A value exactly between two codes: with large noise the decision
        // should flip at least once in many trials.
        let v = 0.5 + 1.0 / 64.0;
        let codes: Vec<u32> = (0..200).map(|_| noisy.convert(v, &mut rng)).collect();
        let distinct: std::collections::BTreeSet<u32> = codes.iter().copied().collect();
        assert!(distinct.len() > 1, "noise should produce code dispersion");
    }

    #[test]
    fn offset_shifts_the_transfer_curve() {
        let s = spec();
        let shifted = SarAdc::new(CdacBank::ideal(&s, 1.2), 4, 0.0, 0.10).unwrap();
        let straight = SarAdc::new(CdacBank::ideal(&s, 1.2), 4, 0.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(shifted.convert(0.40, &mut rng) > straight.convert(0.40, &mut rng));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let s = spec();
        assert!(SarAdc::new(CdacBank::ideal(&s, 1.2), 0, 0.0, 0.0).is_err());
        assert!(SarAdc::new(CdacBank::ideal(&s, 1.2), 32, 0.0, 0.0).is_err());
        assert!(SarAdc::new(CdacBank::ideal(&s, 1.2), 4, -0.1, 0.0).is_err());
    }

    #[test]
    fn full_scale_matches_bits() {
        assert_eq!(ideal_adc(3).full_scale(), 7);
        assert_eq!(ideal_adc(8).full_scale(), 255);
    }
}
