//! Operating states and timing model (Figure 5 / Equation 7).
//!
//! A conversion cycle of the macro is:
//!
//! 1. **Reset** — both plates of every compute capacitor are reset to
//!    `V_CM`,
//! 2. **Compute (MAC)** — RWL rises, RST falls, and the selected row of
//!    every local array drives its capacitor top plate to the 1-bit product,
//! 3. **Sample / charge redistribution** — the top plates are reset to
//!    `V_CM` and the bottom-plate charge redistributes onto the RBL,
//!    producing the accumulation voltage `V_x`,
//! 4. **B_ADC comparison rounds** — the SAR logic performs the successive
//!    approximation, one bit per round.
//!
//! The cycle time is `t_com + t_set + t_conv`, with `t_set ≥ 0.69·τ·B_ADC`
//! (settling of the redistribution network) and
//! `t_conv = t_conv_per_bit · B_ADC`, and the macro throughput follows
//! Equation 7: `T = (H / L) · W / (t_com + t_set + t_conv)`.

use acim_tech::Picosecond;

use crate::error::ArchError;
use crate::spec::AcimSpec;

/// The operating state of the macro within one conversion cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatingState {
    /// Both capacitor plates are driven to `V_CM`.
    Reset,
    /// The MAC state: products drive the capacitor top plates.
    Compute,
    /// Bottom-plate charge redistribution produces `V_x` on the RBL.
    Sample,
    /// One SAR comparison round; the payload is the bit index being decided
    /// (MSB = `B_ADC − 1`).
    Compare(u32),
    /// The digital result is latched and ready.
    Done,
}

impl OperatingState {
    /// Returns the state sequence of one full conversion cycle for an ADC of
    /// `bits` bits.
    pub fn cycle(bits: u32) -> Vec<OperatingState> {
        let mut states = vec![
            OperatingState::Reset,
            OperatingState::Compute,
            OperatingState::Sample,
        ];
        for bit in (0..bits).rev() {
            states.push(OperatingState::Compare(bit));
        }
        states.push(OperatingState::Done);
        states
    }
}

/// Timing parameters of the macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// MAC (compute) time `t_com`.
    pub t_compute: Picosecond,
    /// Redistribution time constant `τ` of the RBL network.
    pub tau: Picosecond,
    /// Per-bit SAR conversion time `t_conv/bit`.
    pub t_conv_per_bit: Picosecond,
}

impl TimingModel {
    /// Default timing of the synthetic S28 technology, calibrated so that a
    /// 16 kb macro with `B_ADC = 3`, `L = 2`, `H = 128` reaches ≈3.28 TOPS
    /// (Figure 8(a) of the paper).
    pub fn s28_default() -> Self {
        Self {
            t_compute: Picosecond::new(1000.0),
            tau: Picosecond::new(480.0),
            t_conv_per_bit: Picosecond::new(1000.0),
        }
    }

    /// Settling time `t_set = 0.69·τ·B_ADC` (the paper's lower bound, used
    /// as the design value).
    pub fn t_set(&self, adc_bits: u32) -> Picosecond {
        Picosecond::new(0.69 * self.tau.value() * f64::from(adc_bits))
    }

    /// Total SAR conversion time `t_conv = t_conv/bit · B_ADC`.
    pub fn t_conv(&self, adc_bits: u32) -> Picosecond {
        Picosecond::new(self.t_conv_per_bit.value() * f64::from(adc_bits))
    }

    /// Full conversion-cycle time `t_com + t_set + t_conv`.
    pub fn cycle_time(&self, adc_bits: u32) -> Picosecond {
        self.t_compute + self.t_set(adc_bits) + self.t_conv(adc_bits)
    }

    /// Macro throughput in operations per second for a specification
    /// (Equation 7).  One MAC counts as two operations (multiply +
    /// accumulate), the usual TOPS convention.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] when any timing parameter is
    /// non-positive.
    pub fn throughput_ops(&self, spec: &AcimSpec) -> Result<f64, ArchError> {
        if self.t_compute.value() <= 0.0
            || self.tau.value() <= 0.0
            || self.t_conv_per_bit.value() <= 0.0
        {
            return Err(ArchError::InvalidParameter {
                name: "timing".into(),
                reason: "all timing parameters must be positive".into(),
            });
        }
        let cycle_s = self.cycle_time(spec.adc_bits()).value() * 1e-12;
        let macs_per_cycle = spec.macs_per_cycle() as f64;
        Ok(2.0 * macs_per_cycle / cycle_s)
    }

    /// Macro throughput in TOPS.
    ///
    /// # Errors
    ///
    /// See [`TimingModel::throughput_ops`].
    pub fn throughput_tops(&self, spec: &AcimSpec) -> Result<f64, ArchError> {
        Ok(self.throughput_ops(spec)? / 1e12)
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self::s28_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_sequence_has_expected_structure() {
        let states = OperatingState::cycle(3);
        assert_eq!(states.len(), 3 + 3 + 1);
        assert_eq!(states[0], OperatingState::Reset);
        assert_eq!(states[1], OperatingState::Compute);
        assert_eq!(states[2], OperatingState::Sample);
        assert_eq!(states[3], OperatingState::Compare(2));
        assert_eq!(states[5], OperatingState::Compare(0));
        assert_eq!(*states.last().unwrap(), OperatingState::Done);
    }

    #[test]
    fn t_set_scales_with_bits_and_tau() {
        let t = TimingModel::s28_default();
        let b3 = t.t_set(3).value();
        let b6 = t.t_set(6).value();
        assert!((b6 / b3 - 2.0).abs() < 1e-12);
        assert!((b3 - 0.69 * 480.0 * 3.0).abs() < 1e-9);
    }

    #[test]
    fn figure8a_throughput_is_about_3_28_tops() {
        let spec = AcimSpec::from_dimensions(128, 128, 2, 3).unwrap();
        let tops = TimingModel::s28_default().throughput_tops(&spec).unwrap();
        assert!(
            (tops - 3.277).abs() < 0.15,
            "expected ≈3.277 TOPS, got {tops}"
        );
    }

    #[test]
    fn figure8b_throughput_is_about_0_81_tops() {
        let spec = AcimSpec::from_dimensions(128, 128, 8, 3).unwrap();
        let tops = TimingModel::s28_default().throughput_tops(&spec).unwrap();
        assert!(
            (tops - 0.813).abs() < 0.05,
            "expected ≈0.813 TOPS, got {tops}"
        );
    }

    #[test]
    fn throughput_ratio_between_l2_and_l8_is_4x() {
        let t = TimingModel::s28_default();
        let l2 = AcimSpec::from_dimensions(128, 128, 2, 3).unwrap();
        let l8 = AcimSpec::from_dimensions(128, 128, 8, 3).unwrap();
        let ratio = t.throughput_tops(&l2).unwrap() / t.throughput_tops(&l8).unwrap();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn higher_adc_precision_slows_the_cycle() {
        let t = TimingModel::s28_default();
        assert!(t.cycle_time(8).value() > t.cycle_time(3).value());
    }

    #[test]
    fn invalid_timing_rejected() {
        let bad = TimingModel {
            t_compute: Picosecond::new(0.0),
            ..TimingModel::s28_default()
        };
        let spec = AcimSpec::from_dimensions(128, 128, 2, 3).unwrap();
        assert!(bad.throughput_ops(&spec).is_err());
    }
}
