//! Energy accounting (Equations 8 and 9).
//!
//! The average energy of one 1-bit MAC is
//!
//! ```text
//! E = E_compute + E_control + E_ADC / (H / L)
//! ```
//!
//! because one ADC conversion serves the `H / L` MACs of a column.  The ADC
//! energy follows Murmann's empirical mixed-signal formula (Equation 9):
//!
//! ```text
//! E_ADC = k1 · (B_ADC + log2 V_DD) + k2 · 4^B_ADC · V_DD²
//! ```
//!
//! where the linear term captures the SAR logic/clocking and the exponential
//! term the comparator-noise-limited and CDAC contribution.

use acim_tech::Femtojoule;

use crate::error::ArchError;
use crate::spec::AcimSpec;

/// Parameters of the energy model.  `k1` and `k2` are the empirical
/// coefficients of Equation 9 that the paper obtains from post-layout
/// simulation; in this reproduction they are calibrated against the
/// behavioural simulator (see `acim-model::calibrate`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModelParams {
    /// Energy of the capacitor compute operation itself, per MAC (fJ).
    pub e_compute: Femtojoule,
    /// Energy of the word-line / control toggling, per MAC (fJ).
    pub e_control: Femtojoule,
    /// Linear ADC coefficient `k1` (fJ per bit).
    pub k1: Femtojoule,
    /// Exponential ADC coefficient `k2` (fJ per 4^B·V²).
    pub k2: Femtojoule,
    /// Supply voltage in volts.
    pub vdd: f64,
}

impl EnergyModelParams {
    /// Default parameters of the synthetic S28 technology (see `DESIGN.md`
    /// for the calibration rationale).
    pub fn s28_default() -> Self {
        Self {
            e_compute: Femtojoule::new(1.5),
            e_control: Femtojoule::new(1.1),
            k1: Femtojoule::new(30.0),
            k2: Femtojoule::new(0.17),
            vdd: 0.9,
        }
    }

    /// ADC conversion energy (Equation 9) for a given precision.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] when `vdd` is not positive or
    /// `adc_bits` is zero.
    pub fn adc_energy(&self, adc_bits: u32) -> Result<Femtojoule, ArchError> {
        if self.vdd <= 0.0 {
            return Err(ArchError::InvalidParameter {
                name: "vdd".into(),
                reason: "supply voltage must be positive".into(),
            });
        }
        if adc_bits == 0 {
            return Err(ArchError::InvalidParameter {
                name: "adc_bits".into(),
                reason: "ADC precision must be at least 1 bit".into(),
            });
        }
        let linear = self.k1.value() * (f64::from(adc_bits) + self.vdd.log2());
        let exponential = self.k2.value() * 4f64.powi(adc_bits as i32) * self.vdd * self.vdd;
        Ok(Femtojoule::new(linear.max(0.0) + exponential))
    }

    /// Average per-MAC energy (Equation 8) for a specification.
    ///
    /// # Errors
    ///
    /// See [`EnergyModelParams::adc_energy`].
    pub fn energy_per_mac(&self, spec: &AcimSpec) -> Result<Femtojoule, ArchError> {
        let adc = self.adc_energy(spec.adc_bits())?;
        let shared = spec.capacitors_per_column() as f64;
        Ok(self.e_compute + self.e_control + adc / shared)
    }

    /// Energy efficiency in TOPS/W for a specification (2 ops per MAC).
    ///
    /// # Errors
    ///
    /// See [`EnergyModelParams::adc_energy`].
    pub fn tops_per_watt(&self, spec: &AcimSpec) -> Result<f64, ArchError> {
        let per_mac_fj = self.energy_per_mac(spec)?.value();
        // 2 ops per MAC; 1 fJ per op ↔ 1000 TOPS/W.
        Ok(2.0 / per_mac_fj * 1000.0)
    }
}

impl Default for EnergyModelParams {
    fn default() -> Self {
        Self::s28_default()
    }
}

/// Cumulative energy breakdown recorded by the behavioural simulator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Energy spent charging/discharging compute capacitors.
    pub compute: Femtojoule,
    /// Energy spent on word-line / control toggling.
    pub control: Femtojoule,
    /// Energy spent by the SAR ADCs (CDAC switching + comparators).
    pub adc: Femtojoule,
    /// Number of MAC operations accumulated.
    pub mac_count: u64,
}

impl EnergyBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total energy.
    pub fn total(&self) -> Femtojoule {
        self.compute + self.control + self.adc
    }

    /// Average energy per MAC, if any MACs were recorded.
    pub fn per_mac(&self) -> Option<Femtojoule> {
        if self.mac_count == 0 {
            None
        } else {
            Some(self.total() / self.mac_count as f64)
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.compute += other.compute;
        self.control += other.control;
        self.adc += other.adc;
        self.mac_count += other.mac_count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_energy_grows_fast_with_precision() {
        let p = EnergyModelParams::s28_default();
        let e3 = p.adc_energy(3).unwrap().value();
        let e6 = p.adc_energy(6).unwrap().value();
        let e8 = p.adc_energy(8).unwrap().value();
        assert!(e6 > e3);
        assert!(e8 > 4.0 * e6, "4^B term should dominate at high precision");
    }

    #[test]
    fn per_mac_energy_amortises_adc_over_column() {
        let p = EnergyModelParams::s28_default();
        // Same B, larger H/L → smaller per-MAC energy.
        let small = AcimSpec::from_dimensions(64, 256, 8, 3).unwrap(); // H/L = 8
        let large = AcimSpec::from_dimensions(512, 32, 2, 3).unwrap(); // H/L = 256
        assert!(p.energy_per_mac(&large).unwrap() < p.energy_per_mac(&small).unwrap());
    }

    #[test]
    fn efficiency_spans_the_papers_range() {
        let p = EnergyModelParams::s28_default();
        // Low-precision, heavily amortised design → very efficient.
        let efficient = AcimSpec::from_dimensions(512, 32, 2, 2).unwrap();
        // High-precision design with the minimum column sharing → inefficient.
        let costly = AcimSpec::from_dimensions(512, 32, 2, 8).unwrap();
        let best = p.tops_per_watt(&efficient).unwrap();
        let worst = p.tops_per_watt(&costly).unwrap();
        assert!(best > 500.0, "best efficiency {best} TOPS/W");
        assert!(worst < 100.0, "worst efficiency {worst} TOPS/W");
        assert!(best < 1200.0, "efficiency implausibly high: {best}");
        assert!(worst > 10.0, "efficiency implausibly low: {worst}");
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut p = EnergyModelParams::s28_default();
        p.vdd = 0.0;
        assert!(p.adc_energy(3).is_err());
        let p = EnergyModelParams::s28_default();
        assert!(p.adc_energy(0).is_err());
    }

    #[test]
    fn breakdown_accumulates_and_averages() {
        let mut b = EnergyBreakdown::new();
        assert!(b.per_mac().is_none());
        b.compute = Femtojoule::new(10.0);
        b.control = Femtojoule::new(5.0);
        b.adc = Femtojoule::new(85.0);
        b.mac_count = 10;
        assert!((b.total().value() - 100.0).abs() < 1e-12);
        assert!((b.per_mac().unwrap().value() - 10.0).abs() < 1e-12);

        let mut other = EnergyBreakdown::new();
        other.compute = Femtojoule::new(10.0);
        other.mac_count = 10;
        b.merge(&other);
        assert_eq!(b.mac_count, 20);
        assert!((b.total().value() - 110.0).abs() < 1e-12);
    }
}
