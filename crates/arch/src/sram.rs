//! 8T SRAM bit-cell model.
//!
//! The storage element of the synthesizable architecture is a standard 8T
//! cell: a 6T storage core plus a decoupled 2T read port (read word-line
//! RWL, read bit-line RBL).  For the behavioural simulator only the logical
//! behaviour matters: the cell stores one weight bit and, when its RWL is
//! asserted, contributes the AND of the stored bit and the read-port input
//! to the local compute node.

use std::fmt;

/// Behavioural model of one 8T SRAM bit cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SramCell {
    value: bool,
}

impl SramCell {
    /// Creates a cell storing `0`.
    pub fn new() -> Self {
        Self { value: false }
    }

    /// Creates a cell storing the given bit.
    pub fn with_value(value: bool) -> Self {
        Self { value }
    }

    /// Writes a bit through the (6T) write port.
    pub fn write(&mut self, value: bool) {
        self.value = value;
    }

    /// Reads the stored bit (digital read through the write port, used when
    /// the macro is operated as a plain SRAM).
    pub fn read(&self) -> bool {
        self.value
    }

    /// Compute-mode read: returns the 1-bit product of the stored weight and
    /// the broadcast activation when the row is selected, `None` when the
    /// row is not selected (the read port is off and the cell does not
    /// disturb the local compute node).
    pub fn compute(&self, row_selected: bool, activation: bool) -> Option<bool> {
        if row_selected {
            Some(self.value && activation)
        } else {
            None
        }
    }
}

impl fmt::Display for SramCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", u8::from(self.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cell_stores_zero() {
        assert!(!SramCell::new().read());
        assert_eq!(SramCell::default(), SramCell::new());
    }

    #[test]
    fn write_then_read() {
        let mut cell = SramCell::new();
        cell.write(true);
        assert!(cell.read());
        cell.write(false);
        assert!(!cell.read());
    }

    #[test]
    fn compute_is_logical_and_when_selected() {
        let one = SramCell::with_value(true);
        let zero = SramCell::with_value(false);
        assert_eq!(one.compute(true, true), Some(true));
        assert_eq!(one.compute(true, false), Some(false));
        assert_eq!(zero.compute(true, true), Some(false));
        assert_eq!(zero.compute(true, false), Some(false));
    }

    #[test]
    fn unselected_row_does_not_contribute() {
        let cell = SramCell::with_value(true);
        assert_eq!(cell.compute(false, true), None);
    }

    #[test]
    fn display_prints_bit() {
        assert_eq!(SramCell::with_value(true).to_string(), "1");
        assert_eq!(SramCell::with_value(false).to_string(), "0");
    }
}
