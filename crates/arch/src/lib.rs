//! # acim-arch
//!
//! The synthesizable ACIM architecture of EasyACIM (Section 3.1, Figures 5
//! and 6 of the paper) and a behavioural, charge-domain simulator of it.
//!
//! The architecture is a W-column SRAM compute array.  Each column holds
//! `H` 8T SRAM cells grouped into local arrays of `L` cells; every local
//! array shares one metal-fringe compute capacitor `C_F` and its control
//! circuit.  The `H / L` compute capacitors of a column double as the CDAC
//! of a SAR ADC: they are partitioned into `B_ADC` SAR groups with the
//! binary ratio 1 : 1 : 2 : … : 2^(B_ADC − 1), which is why the architecture
//! requires `H / L ≥ 2^B_ADC`.
//!
//! Two operating states are modelled, following the paper's timing diagram:
//!
//! 1. **MAC state** — the selected row of every local array computes the
//!    1-bit product of its stored weight and the broadcast activation; the
//!    product drives the top plate of the local compute capacitor to either
//!    `V_DD` or `V_SS`.
//! 2. **ADC conversion state** — the capacitor charge redistributes on the
//!    read bit-line (bottom-plate charge redistribution), producing the
//!    analog accumulation voltage `V_x`, which the SAR logic digitises in
//!    `B_ADC` comparison rounds using the same capacitors as the CDAC.
//!
//! The simulator injects the noise sources of the paper's Equation 5 —
//! capacitor mismatch, kT/C thermal noise and comparator noise — so the
//! analytic estimation model in `acim-model` can be calibrated and
//! cross-checked against "measured" (Monte-Carlo) SNR.
//!
//! # Example
//!
//! ```
//! use acim_arch::{AcimSpec, AcimMacro, NoiseConfig};
//! use acim_tech::Technology;
//!
//! # fn main() -> Result<(), acim_arch::ArchError> {
//! let spec = AcimSpec::new(16 * 1024, 128, 128, 8, 3)?;
//! let tech = Technology::s28();
//! let mut macro_sim = AcimMacro::new(&spec, &tech, NoiseConfig::noiseless(), 1)?;
//! // Program a checkerboard weight pattern and run one MAC + ADC cycle.
//! macro_sim.program_with(|row, col| (row + col) % 2 == 0);
//! let ones = vec![true; spec.dot_product_length()];
//! let outputs = macro_sim.mac_and_convert(&ones, 0)?;
//! assert_eq!(outputs.len(), spec.width());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adc;
pub mod compute_model;
pub mod energy;
pub mod error;
pub mod local_array;
pub mod macro_sim;
pub mod snr;
pub mod spec;
pub mod sram;
pub mod timing;

pub use adc::{CdacBank, SarAdc};
pub use compute_model::{ComputeModel, ComputeModelKind};
pub use energy::{EnergyBreakdown, EnergyModelParams};
pub use error::ArchError;
pub use local_array::LocalArray;
pub use macro_sim::{AcimMacro, MacroStats, NoiseConfig};
pub use snr::{measure_snr, SnrMeasurement};
pub use spec::AcimSpec;
pub use sram::SramCell;
pub use timing::{OperatingState, TimingModel};
