//! Macro assembly: the top level of the template-based hierarchical flow.
//!
//! `W` copies of the column template are abutted into the core, the
//! input-buffer column and output-buffer rows are placed as peripheries,
//! the shared word-lines and control nets are dropped on pre-defined
//! horizontal tracks, a power grid is added on the top metals, and the
//! column outputs are stitched down to the output buffers.  The result is a
//! flat [`Layout`] plus the [`LayoutMetrics`] reported by the Figure 8
//! reproduction.

use acim_arch::AcimSpec;
use acim_cell::{CellKind, CellLibrary, Orientation, Point, Rect};
use acim_tech::Technology;

use crate::column::ColumnTemplate;
use crate::db::{Layout, LayoutPin, PlacedInstance, Wire};
use crate::error::LayoutError;
use crate::metrics::LayoutMetrics;

/// The generated macro layout and its metrics.
#[derive(Debug, Clone)]
pub struct MacroLayout {
    /// The assembled layout.
    pub layout: Layout,
    /// Extracted metrics (dimensions, density, wire length).
    pub metrics: LayoutMetrics,
    /// The column template the macro was assembled from.
    pub column: ColumnTemplate,
}

/// The template-based hierarchical layout flow.
#[derive(Debug, Clone)]
pub struct LayoutFlow<'a> {
    tech: &'a Technology,
    library: &'a CellLibrary,
}

impl<'a> LayoutFlow<'a> {
    /// Creates a flow bound to a technology and cell library.
    pub fn new(tech: &'a Technology, library: &'a CellLibrary) -> Self {
        Self { tech, library }
    }

    /// Generates the full macro layout for a specification.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] when a leaf cell is missing or any net cannot
    /// be routed.
    pub fn generate(&self, spec: &AcimSpec) -> Result<MacroLayout, LayoutError> {
        let column = ColumnTemplate::build(spec, self.tech, self.library)?;
        let buffer = self.library.require(CellKind::Buffer)?;

        let column_width = column.layout.width();
        let column_height = column.layout.height();
        let bits = spec.adc_bits() as usize;

        // Periphery geometry: input buffers in a left strip, output buffers
        // in a bottom strip of `bits` rows.
        let left_strip = buffer.width_nm();
        let bottom_strip = buffer.height_nm() * bits as f64;
        let core_origin = Point::new(left_strip, bottom_strip);
        let core_width = column_width * spec.width() as f64;
        let total_width = left_strip + core_width;
        let total_height = bottom_strip + column_height;

        let mut layout = Layout::new(
            format!(
                "ACIM_{}x{}_l{}_b{}",
                spec.height(),
                spec.width(),
                spec.local_array(),
                spec.adc_bits()
            ),
            total_width,
            total_height,
        );

        // --- Core: abutted column instances ---------------------------------
        for col in 0..spec.width() {
            let dx = core_origin.x + col as f64 * column_width;
            layout.merge_translated(&column.layout, dx, core_origin.y, &format!("COL_{col}/"));
        }

        // --- Input buffers (one per read word-line) -------------------------
        for row in 0..spec.height() {
            let y = core_origin.y + column.rwl_pin_y[row] - buffer.height_nm() / 2.0;
            layout.instances.push(PlacedInstance {
                name: format!("XIBUF_{row}"),
                cell: buffer.name().to_string(),
                origin: Point::new(0.0, y.max(0.0)),
                orientation: Orientation::R0,
                width: buffer.width_nm(),
                height: buffer.height_nm(),
            });
        }

        // --- Output buffers (one per column output bit) ---------------------
        for col in 0..spec.width() {
            for bit in 0..bits {
                layout.instances.push(PlacedInstance {
                    name: format!("XOBUF_{col}_{bit}"),
                    cell: buffer.name().to_string(),
                    origin: Point::new(
                        core_origin.x + col as f64 * column_width,
                        bit as f64 * buffer.height_nm(),
                    ),
                    orientation: Orientation::R0,
                    width: buffer.width_nm(),
                    height: buffer.height_nm(),
                });
            }
        }

        // --- Pre-defined horizontal tracks -----------------------------------
        let m3_width = self
            .tech
            .rules()
            .layer_rule("M3")
            .map(|r| r.min_width.value())
            .unwrap_or(56.0);
        // Read word-lines: from the input buffer output across the full core.
        for row in 0..spec.height() {
            let y = core_origin.y + column.rwl_pin_y[row];
            layout.wires.push(Wire {
                net: format!("RWL_{row}"),
                layer: "M3".into(),
                rect: Rect::new(
                    left_strip * 0.5,
                    y - m3_width / 2.0,
                    total_width,
                    y + m3_width / 2.0,
                ),
            });
        }
        // Control nets distributed along the bottom of the core on M5.
        let m5_width = self
            .tech
            .rules()
            .layer_rule("M5")
            .map(|r| r.min_width.value())
            .unwrap_or(90.0);
        for (i, net) in ["CLK", "PCH", "RST", "START"].iter().enumerate() {
            let y = core_origin.y + (i as f64 + 1.0) * 4.0 * m5_width;
            layout.wires.push(Wire {
                net: (*net).to_string(),
                layer: "M5".into(),
                rect: Rect::new(0.0, y - m5_width / 2.0, total_width, y + m5_width / 2.0),
            });
        }
        // Column outputs stitched down to the output buffers on M4.
        let m4_width = self
            .tech
            .rules()
            .layer_rule("M4")
            .map(|r| r.min_width.value())
            .unwrap_or(56.0);
        for col in 0..spec.width() {
            let base_x = core_origin.x + col as f64 * column_width;
            for bit in 0..bits {
                if let Some(pin) = column.layout.pin(&format!("DOUT_{bit}")) {
                    let x = base_x + pin.rect.center().x;
                    let y_top = core_origin.y + pin.rect.center().y;
                    let y_bottom = bit as f64 * buffer.height_nm() + buffer.height_nm() / 2.0;
                    layout.wires.push(Wire {
                        net: format!("OUT_{col}_{bit}"),
                        layer: "M4".into(),
                        rect: Rect::new(x - m4_width / 2.0, y_bottom, x + m4_width / 2.0, y_top),
                    });
                }
            }
        }
        // Power grid: vertical M6 stripes every eight columns plus top and
        // bottom M5 rails.
        let m6_width = self
            .tech
            .rules()
            .layer_rule("M6")
            .map(|r| r.min_width.value())
            .unwrap_or(400.0);
        let stripe_step = 8usize;
        for (index, col) in (0..spec.width()).step_by(stripe_step).enumerate() {
            let x = core_origin.x + col as f64 * column_width + column_width / 2.0;
            let net = if index % 2 == 0 { "VDD" } else { "VSS" };
            layout.wires.push(Wire {
                net: net.to_string(),
                layer: "M6".into(),
                rect: Rect::new(x - m6_width / 2.0, 0.0, x + m6_width / 2.0, total_height),
            });
        }
        for (net, y) in [("VSS", 0.0), ("VDD", total_height - 2.0 * m5_width)] {
            layout.wires.push(Wire {
                net: net.to_string(),
                layer: "M5".into(),
                rect: Rect::new(0.0, y, total_width, y + 2.0 * m5_width),
            });
        }

        // --- Exported macro pins ---------------------------------------------
        for row in 0..spec.height() {
            let y = core_origin.y + column.rwl_pin_y[row];
            layout.pins.push(LayoutPin {
                net: format!("IN_{row}"),
                layer: "M3".into(),
                rect: Rect::new(0.0, y - 60.0, 120.0, y + 60.0),
            });
        }
        for net in ["CLK", "PCH", "RST", "START", "VDD", "VSS"] {
            layout.pins.push(LayoutPin {
                net: net.to_string(),
                layer: "M5".into(),
                rect: Rect::new(0.0, 0.0, 200.0, 200.0),
            });
        }

        let core_region = Rect::new(
            core_origin.x,
            core_origin.y,
            core_origin.x + core_width,
            core_origin.y + column_height,
        );
        let metrics = LayoutMetrics::compute(
            spec,
            self.tech,
            core_region,
            layout.boundary,
            layout.total_wirelength(),
            layout.vias.len(),
            layout.instances.len(),
        );
        Ok(MacroLayout {
            layout,
            metrics,
            column,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate(h: usize, w: usize, l: usize, b: u32) -> MacroLayout {
        let tech = Technology::s28();
        let library = CellLibrary::s28_default(&tech);
        let spec = AcimSpec::from_dimensions(h, w, l, b).unwrap();
        LayoutFlow::new(&tech, &library).generate(&spec).unwrap()
    }

    #[test]
    fn small_macro_assembles_with_expected_instance_count() {
        let m = generate(32, 8, 4, 3);
        // 8 columns × (32 SRAM + 8 LC + 6 periphery) + 32 input buffers +
        // 8·3 output buffers.
        let per_column = 32 + 8 + 3 + 1 + 1 + 1;
        assert_eq!(m.layout.instances.len(), 8 * per_column + 32 + 24);
        assert_eq!(m.metrics.instance_count, m.layout.instances.len());
    }

    #[test]
    fn figure8b_dimensions_reproduce_within_tolerance() {
        // Paper: 128×128, L = 8, B = 3 → 256 µm × 131 µm, 2610 F²/bit.
        let m = generate(128, 128, 8, 3);
        assert!(
            (m.metrics.core_width_um - 256.0).abs() / 256.0 < 0.02,
            "core width {:.1} µm",
            m.metrics.core_width_um
        );
        assert!(
            (m.metrics.core_height_um - 131.0).abs() / 131.0 < 0.05,
            "core height {:.1} µm",
            m.metrics.core_height_um
        );
        assert!(
            (m.metrics.core_area_f2_per_bit - 2610.0).abs() / 2610.0 < 0.07,
            "density {:.0} F²/bit",
            m.metrics.core_area_f2_per_bit
        );
    }

    #[test]
    fn figure8a_and_8c_shapes_hold() {
        // (a) L = 2 costs area relative to (b); (c) 64×256 is wide and flat.
        let a = generate(128, 128, 2, 3);
        let b = generate(128, 128, 8, 3);
        let c = generate(64, 256, 8, 3);
        assert!(a.metrics.core_area_f2_per_bit > b.metrics.core_area_f2_per_bit);
        assert!(c.metrics.core_width_um > 2.0 * b.metrics.core_width_um * 0.95);
        assert!(c.metrics.core_height_um < b.metrics.core_height_um);
        assert!(
            (a.metrics.core_height_um - 226.0).abs() / 226.0 < 0.05,
            "fig 8(a) core height {:.1} µm",
            a.metrics.core_height_um
        );
    }

    #[test]
    fn every_rwl_track_crosses_every_column() {
        let m = generate(32, 8, 4, 3);
        let rwl_wires: Vec<_> = m
            .layout
            .wires
            .iter()
            .filter(|w| w.net.starts_with("RWL_") && w.layer == "M3")
            .collect();
        assert_eq!(rwl_wires.len(), 32);
        for wire in rwl_wires {
            assert!(wire.rect.max.x >= m.layout.boundary.max.x - 1.0);
        }
    }

    #[test]
    fn output_stitches_exist_for_every_column_bit() {
        let m = generate(32, 8, 4, 3);
        for col in 0..8 {
            for bit in 0..3 {
                assert!(
                    m.layout
                        .wires
                        .iter()
                        .any(|w| w.net == format!("OUT_{col}_{bit}")),
                    "missing OUT_{col}_{bit}"
                );
            }
        }
    }

    #[test]
    fn macro_exports_interface_pins() {
        let m = generate(32, 8, 4, 3);
        assert!(m.layout.pin("IN_0").is_some());
        assert!(m.layout.pin("IN_31").is_some());
        assert!(m.layout.pin("CLK").is_some());
        assert!(m.layout.pin("VDD").is_some());
    }

    #[test]
    fn power_grid_present_on_top_metals() {
        let m = generate(32, 8, 4, 3);
        assert!(m
            .layout
            .wires
            .iter()
            .any(|w| w.layer == "M6" && w.net == "VDD"));
        assert!(m
            .layout
            .wires
            .iter()
            .any(|w| w.layer == "M5" && w.net == "VSS"));
    }
}
