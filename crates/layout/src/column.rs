//! The column template (Hierarchy 1–2 of Figure 7).
//!
//! A column of the macro stacks, bottom to top:
//!
//! 1. the SAR sequencing logic,
//! 2. the `B_ADC` SAR flip-flops,
//! 3. the CMOS isolation switch,
//! 4. the comparator / sense amplifier,
//! 5. `H / L` local arrays, each one compute cell followed by its `L` SRAM
//!    cells.
//!
//! The stacking is deterministic (template-based): the cells abut at the
//! shared column pitch.  The read bit-line and the analog reference use
//! pre-defined vertical tracks, and the remaining intra-column nets
//! (comparator outputs, clock, SAR controls) are routed by the grid-based
//! maze router inside the peripheral region only — the local arrays are
//! never opened, exactly as the paper's template strategy prescribes.

use acim_arch::AcimSpec;
use acim_cell::{CellKind, CellLibrary, Orientation, Point, Rect};
use acim_tech::Technology;

use crate::db::{Layout, LayoutPin, PlacedInstance, Wire};
use crate::error::LayoutError;
use crate::grid::RoutingGrid;
use crate::router::{MazeRouter, RouteRequest};

/// The generated column template plus the metadata the macro assembly needs.
#[derive(Debug, Clone)]
pub struct ColumnTemplate {
    /// The column layout block.
    pub layout: Layout,
    /// Height of the peripheral region at the bottom of the column (SAR
    /// logic, flip-flops, switch, comparator), in nanometres.
    pub periphery_height: f64,
    /// Y centre of every read word-line pin, indexed by global row.
    pub rwl_pin_y: Vec<f64>,
}

impl ColumnTemplate {
    /// Builds the column template for a specification.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError`] when a leaf cell is missing or an
    /// intra-column net cannot be routed.
    pub fn build(
        spec: &AcimSpec,
        tech: &Technology,
        library: &CellLibrary,
    ) -> Result<Self, LayoutError> {
        let sram = library.require(CellKind::Sram8T)?;
        let compute = library.require(CellKind::ComputeCell)?;
        let comparator = library.require(CellKind::Comparator)?;
        let dff = library.require(CellKind::SarDff)?;
        let sar_logic = library.require(CellKind::SarLogic)?;
        let switch = library.require(CellKind::CmosSwitch)?;

        let width = sram.width_nm();
        let bits = spec.adc_bits() as usize;
        let locals = spec.capacitors_per_column();

        // --- Deterministic stacking ---------------------------------------
        let mut instances = Vec::new();
        let mut cursor = 0.0f64;
        let place = |name: String, cell_name: &str, w: f64, h: f64, y: &mut f64| {
            let inst = PlacedInstance {
                name,
                cell: cell_name.to_string(),
                origin: Point::new(0.0, *y),
                orientation: Orientation::R0,
                width: w,
                height: h,
            };
            *y += h;
            inst
        };

        instances.push(place(
            "XSARCTRL".into(),
            sar_logic.name(),
            width,
            sar_logic.height_nm(),
            &mut cursor,
        ));
        let mut dff_origins = Vec::with_capacity(bits);
        for bit in 0..bits {
            dff_origins.push(cursor);
            instances.push(place(
                format!("XDFF_{bit}"),
                dff.name(),
                width,
                dff.height_nm(),
                &mut cursor,
            ));
        }
        let switch_origin = cursor;
        instances.push(place(
            "XSW".into(),
            switch.name(),
            width,
            switch.height_nm(),
            &mut cursor,
        ));
        let comparator_origin = cursor;
        instances.push(place(
            "XCOMP".into(),
            comparator.name(),
            width,
            comparator.height_nm(),
            &mut cursor,
        ));
        let periphery_height = cursor;

        let mut rwl_pin_y = Vec::with_capacity(spec.height());
        let mut compute_cell_tops = Vec::with_capacity(locals);
        for j in 0..locals {
            compute_cell_tops.push(cursor + compute.height_nm() / 2.0);
            instances.push(place(
                format!("XLA_{j}/XLC"),
                compute.name(),
                width,
                compute.height_nm(),
                &mut cursor,
            ));
            for i in 0..spec.local_array() {
                rwl_pin_y.push(cursor + sram.height_nm() / 2.0);
                instances.push(place(
                    format!("XLA_{j}/XSRAM_{i}"),
                    sram.name(),
                    width,
                    sram.height_nm(),
                    &mut cursor,
                ));
            }
        }
        let height = cursor;

        let mut layout = Layout::new(
            format!(
                "COLUMN_{}x1_l{}_b{}",
                spec.height(),
                spec.local_array(),
                spec.adc_bits()
            ),
            width,
            height,
        );
        layout.instances = instances;

        // --- Pre-defined tracks --------------------------------------------
        // Read bit-line: vertical M2 track near the right edge spanning from
        // the switch up to the topmost compute cell, plus the comparator
        // input stub.
        let m2_width = tech
            .rules()
            .layer_rule("M2")
            .map(|r| r.min_width.value())
            .unwrap_or(50.0);
        // Keep the pre-defined tracks clear of the pin columns at both cell
        // edges (pins occupy roughly the outer 150 nm on each side).
        let rbl_x = width * 0.75;
        let rbl_top = compute_cell_tops.last().copied().unwrap_or(height);
        layout.wires.push(Wire {
            net: "RBL".into(),
            layer: "M2".into(),
            rect: Rect::new(rbl_x, switch_origin, rbl_x + m2_width, rbl_top),
        });
        // Analog reference VCM: vertical M2 track near the left edge.
        let vcm_x = width * 0.2;
        layout.wires.push(Wire {
            net: "VCM".into(),
            layer: "M2".into(),
            rect: Rect::new(vcm_x, 0.0, vcm_x + m2_width, rbl_top),
        });
        // Power: vertical M4 stripes.
        let m4_width = tech
            .rules()
            .layer_rule("M4")
            .map(|r| r.min_width.value())
            .unwrap_or(56.0);
        layout.wires.push(Wire {
            net: "VDD".into(),
            layer: "M4".into(),
            rect: Rect::new(width * 0.35, 0.0, width * 0.35 + m4_width * 2.0, height),
        });
        layout.wires.push(Wire {
            net: "VSS".into(),
            layer: "M4".into(),
            rect: Rect::new(width * 0.6, 0.0, width * 0.6 + m4_width * 2.0, height),
        });

        // --- Maze routing of the peripheral nets ---------------------------
        // Route COM/COMB (comparator to DFFs and SAR logic) and the CLK
        // distribution inside the peripheral region on M2/M3/M4.
        // Inset the routing region by half a wire width plus margin so that
        // boundary-node wires stay strictly inside the column block.
        let m3_width = tech
            .rules()
            .layer_rule("M3")
            .map(|r| r.min_width.value())
            .unwrap_or(56.0);
        let inset = m3_width;
        let region = Rect::new(inset, inset, width - inset, periphery_height - inset);
        // The pitch must leave at least the minimum spacing between wires of
        // different nets on adjacent tracks of the widest routing layer.
        let pitch = 120.0;
        let mut grid = RoutingGrid::new(region, pitch, 3)?;
        // Keep the pre-defined tracks (plus a spacing halo) clear of the maze
        // router so routed wires on neighbouring grid tracks cannot violate
        // the M2 spacing rule against them.
        let halo = m2_width + pitch / 2.0;
        grid.block_rect(
            0,
            &Rect::new(vcm_x, 0.0, vcm_x + m2_width, periphery_height).expanded(halo),
        );
        grid.block_rect(
            0,
            &Rect::new(rbl_x, switch_origin, rbl_x + m2_width, periphery_height).expanded(halo),
        );
        let mut router = MazeRouter::new(
            grid,
            vec!["M2".into(), "M3".into(), "M4".into()],
            vec![false, true, false],
            vec![m2_width, m3_width, m3_width],
        )?;

        let pin_at = |cell: &acim_cell::LeafCell, pin: &str, origin_y: f64| -> Point {
            let shape = cell
                .pin(pin)
                .map(|p| p.shape())
                .unwrap_or_else(|| Rect::new(0.0, 0.0, 100.0, 100.0));
            let center = shape.center();
            Point::new(center.x, center.y + origin_y)
        };

        let mut requests = Vec::new();
        // COM: comparator output to every DFF data input and the SAR logic.
        let mut com_terminals = vec![(0usize, pin_at(comparator, "COM", comparator_origin))];
        for (bit, &y) in dff_origins.iter().enumerate() {
            let _ = bit;
            com_terminals.push((0usize, pin_at(dff, "D", y)));
        }
        com_terminals.push((0usize, pin_at(sar_logic, "COM", 0.0)));
        requests.push(RouteRequest {
            net: "COM".into(),
            net_id: 1,
            terminals: com_terminals,
        });
        // COMB: comparator complement output to the SAR logic.
        requests.push(RouteRequest {
            net: "COMB".into(),
            net_id: 2,
            terminals: vec![
                (0usize, pin_at(comparator, "COMB", comparator_origin)),
                (0usize, pin_at(sar_logic, "COMB", 0.0)),
            ],
        });
        // CLK: bottom-edge pin to the comparator, every DFF and the SAR
        // logic.
        let clk_entry = Point::new(width * 0.5, 0.0);
        let mut clk_terminals = vec![
            (1usize, clk_entry),
            (0usize, pin_at(comparator, "CLK", comparator_origin)),
            (0usize, pin_at(sar_logic, "CLK", 0.0)),
        ];
        for &y in &dff_origins {
            clk_terminals.push((0usize, pin_at(dff, "CLK", y)));
        }
        requests.push(RouteRequest {
            net: "CLK".into(),
            net_id: 3,
            terminals: clk_terminals,
        });
        // Switch enable from the SAR logic DONE output.
        requests.push(RouteRequest {
            net: "SW_EN".into(),
            net_id: 4,
            terminals: vec![
                (0usize, pin_at(sar_logic, "DONE", 0.0)),
                (0usize, pin_at(switch, "EN", switch_origin)),
            ],
        });

        router.reserve_terminals(&requests);
        for request in &requests {
            let (wires, vias) = router.route(request)?;
            layout.wires.extend(wires);
            layout.vias.extend(vias);
        }

        // --- Exported pins --------------------------------------------------
        for (row, &y) in rwl_pin_y.iter().enumerate() {
            layout.pins.push(LayoutPin {
                net: format!("RWL_{row}"),
                layer: "M3".into(),
                rect: Rect::new(0.0, y - 30.0, 120.0, y + 30.0),
            });
        }
        for (bit, &y) in dff_origins.iter().enumerate() {
            let q = pin_at(dff, "Q", y);
            layout.pins.push(LayoutPin {
                net: format!("DOUT_{bit}"),
                layer: "M2".into(),
                rect: Rect::new(q.x - 60.0, q.y - 30.0, q.x + 60.0, q.y + 30.0),
            });
        }
        for (net, x_frac) in [("CLK", 0.5), ("PCH", 0.3), ("RST", 0.4), ("START", 0.6)] {
            layout.pins.push(LayoutPin {
                net: net.to_string(),
                layer: "M3".into(),
                rect: Rect::new(width * x_frac - 60.0, 0.0, width * x_frac + 60.0, 60.0),
            });
        }
        for (net, x) in [("VDD", width * 0.35), ("VSS", width * 0.6)] {
            layout.pins.push(LayoutPin {
                net: net.to_string(),
                layer: "M4".into(),
                rect: Rect::new(x, 0.0, x + m4_width * 2.0, 120.0),
            });
        }

        Ok(Self {
            layout,
            periphery_height,
            rwl_pin_y,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template(h: usize, w: usize, l: usize, b: u32) -> ColumnTemplate {
        let tech = Technology::s28();
        let library = CellLibrary::s28_default(&tech);
        let spec = AcimSpec::from_dimensions(h, w, l, b).unwrap();
        ColumnTemplate::build(&spec, &tech, &library).unwrap()
    }

    #[test]
    fn column_contains_every_expected_instance() {
        let t = template(32, 8, 4, 3);
        let count = |cell: &str| t.layout.instances.iter().filter(|i| i.cell == cell).count();
        assert_eq!(count("SRAM8T"), 32);
        assert_eq!(count("LC_CELL"), 8);
        assert_eq!(count("COMP_SA"), 1);
        assert_eq!(count("SAR_DFF"), 3);
        assert_eq!(count("SAR_CTRL"), 1);
        assert_eq!(count("CSW"), 1);
    }

    #[test]
    fn instances_abut_without_overlap() {
        let t = template(32, 8, 4, 3);
        let rects: Vec<Rect> = t.layout.instances.iter().map(|i| i.boundary()).collect();
        for (i, a) in rects.iter().enumerate() {
            for b in rects.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "instances overlap: {a} vs {b}");
            }
        }
        // Total stacked height accounts for every cell.
        let total: f64 = rects.iter().map(Rect::height).sum();
        assert!((total - t.layout.height()).abs() < 1e-6);
    }

    #[test]
    fn column_height_matches_the_area_model_within_a_few_percent() {
        // Figure 8(b): 128 rows, L = 8, B = 3 → column height ≈ 131 µm.
        let t = template(128, 128, 8, 3);
        let height_um = t.layout.height() / 1000.0;
        assert!(
            (height_um - 131.0).abs() / 131.0 < 0.05,
            "column height {height_um:.1} µm vs paper's ≈131 µm"
        );
        assert!((t.layout.width() / 1000.0 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rwl_pins_cover_every_row_in_order() {
        let t = template(32, 8, 4, 3);
        assert_eq!(t.rwl_pin_y.len(), 32);
        for pair in t.rwl_pin_y.windows(2) {
            assert!(pair[1] > pair[0], "RWL pin ordering broken");
        }
        assert!(t.layout.pin("RWL_0").is_some());
        assert!(t.layout.pin("RWL_31").is_some());
        assert!(t.layout.pin("DOUT_2").is_some());
        assert!(t.layout.pin("CLK").is_some());
    }

    #[test]
    fn critical_nets_have_predefined_tracks_and_routes() {
        let t = template(32, 8, 4, 3);
        let nets: std::collections::BTreeSet<&str> =
            t.layout.wires.iter().map(|w| w.net.as_str()).collect();
        for net in ["RBL", "VCM", "VDD", "VSS", "COM", "CLK"] {
            assert!(nets.contains(net), "missing routed net {net}");
        }
        // The RBL track spans the compute region.
        let rbl = t.layout.wires.iter().find(|w| w.net == "RBL").unwrap();
        assert!(rbl.rect.height() > t.periphery_height);
    }

    #[test]
    fn periphery_is_below_the_array() {
        let t = template(32, 8, 4, 3);
        for inst in &t.layout.instances {
            if inst.cell == "SRAM8T" || inst.cell == "LC_CELL" {
                assert!(inst.origin.y >= t.periphery_height - 1e-9);
            } else {
                assert!(inst.origin.y < t.periphery_height);
            }
        }
    }
}
