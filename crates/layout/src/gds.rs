//! Text GDS-like and DEF-like writers.
//!
//! The reproduction has no binary GDSII dependency; instead the layout can
//! be dumped in two human-readable exchange formats:
//!
//! * a GDS-like text stream (`STRUCT` / `SREF` / `RECT` records keyed by the
//!   technology's GDS layer numbers),
//! * a DEF-like file (`COMPONENTS` / `SPECIALNETS` sections) that follows
//!   the usual LEF/DEF structure closely enough to be diffed and inspected.

use std::fmt::Write as _;

use acim_tech::Technology;

use crate::db::Layout;

/// Writes a GDS-like text representation of the layout.
pub fn write_gds_text(layout: &Layout, tech: &Technology) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "HEADER 600");
    let _ = writeln!(out, "BGNLIB EASYACIM");
    let _ = writeln!(out, "LIBNAME {}", layout.name);
    let _ = writeln!(out, "UNITS 0.001 1e-09");
    let _ = writeln!(out, "BGNSTR {}", layout.name);
    let _ = writeln!(
        out,
        "BOUNDARY_BOX {:.0} {:.0} {:.0} {:.0}",
        layout.boundary.min.x, layout.boundary.min.y, layout.boundary.max.x, layout.boundary.max.y
    );
    for instance in &layout.instances {
        let _ = writeln!(
            out,
            "SREF {} {} {:.0} {:.0} {:?}",
            instance.cell,
            instance.name,
            instance.origin.x,
            instance.origin.y,
            instance.orientation
        );
    }
    for wire in &layout.wires {
        let (gds_layer, datatype) = tech
            .layers()
            .by_name(&wire.layer)
            .map(|l| (l.gds_layer(), l.gds_datatype()))
            .unwrap_or((0, 0));
        let _ = writeln!(
            out,
            "RECT {gds_layer} {datatype} {:.0} {:.0} {:.0} {:.0} NET {}",
            wire.rect.min.x, wire.rect.min.y, wire.rect.max.x, wire.rect.max.y, wire.net
        );
    }
    for via in &layout.vias {
        let _ = writeln!(
            out,
            "VIA {} {} {:.0} {:.0} NET {}",
            via.from_layer, via.to_layer, via.at.x, via.at.y, via.net
        );
    }
    let _ = writeln!(out, "ENDSTR");
    let _ = writeln!(out, "ENDLIB");
    out
}

/// Writes a DEF-like representation of the layout.
pub fn write_def(layout: &Layout) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "VERSION 5.8 ;");
    let _ = writeln!(out, "DESIGN {} ;", layout.name);
    let _ = writeln!(out, "UNITS DISTANCE MICRONS 1000 ;");
    let _ = writeln!(
        out,
        "DIEAREA ( {:.0} {:.0} ) ( {:.0} {:.0} ) ;",
        layout.boundary.min.x, layout.boundary.min.y, layout.boundary.max.x, layout.boundary.max.y
    );

    let _ = writeln!(out, "COMPONENTS {} ;", layout.instances.len());
    for instance in &layout.instances {
        let _ = writeln!(
            out,
            "- {} {} + PLACED ( {:.0} {:.0} ) {:?} ;",
            instance.name,
            instance.cell,
            instance.origin.x,
            instance.origin.y,
            instance.orientation
        );
    }
    let _ = writeln!(out, "END COMPONENTS");

    let _ = writeln!(out, "PINS {} ;", layout.pins.len());
    for pin in &layout.pins {
        let _ = writeln!(
            out,
            "- {} + NET {} + LAYER {} ( {:.0} {:.0} ) ( {:.0} {:.0} ) ;",
            pin.net,
            pin.net,
            pin.layer,
            pin.rect.min.x,
            pin.rect.min.y,
            pin.rect.max.x,
            pin.rect.max.y
        );
    }
    let _ = writeln!(out, "END PINS");

    let _ = writeln!(out, "SPECIALNETS {} ;", layout.wires.len());
    for wire in &layout.wires {
        let _ = writeln!(
            out,
            "- {} + ROUTED {} ( {:.0} {:.0} ) ( {:.0} {:.0} ) ;",
            wire.net,
            wire.layer,
            wire.rect.min.x,
            wire.rect.min.y,
            wire.rect.max.x,
            wire.rect.max.y
        );
    }
    let _ = writeln!(out, "END SPECIALNETS");
    let _ = writeln!(out, "END DESIGN");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{LayoutPin, PlacedInstance, Wire};
    use acim_cell::{Orientation, Point, Rect};

    fn sample() -> Layout {
        let mut layout = Layout::new("SAMPLE", 4000.0, 4000.0);
        layout.instances.push(PlacedInstance {
            name: "X0".into(),
            cell: "SRAM8T".into(),
            origin: Point::new(0.0, 0.0),
            orientation: Orientation::R0,
            width: 2000.0,
            height: 632.0,
        });
        layout.wires.push(Wire {
            net: "RBL".into(),
            layer: "M2".into(),
            rect: Rect::new(100.0, 0.0, 150.0, 4000.0),
        });
        layout.pins.push(LayoutPin {
            net: "CLK".into(),
            layer: "M3".into(),
            rect: Rect::new(0.0, 0.0, 100.0, 100.0),
        });
        layout
    }

    #[test]
    fn gds_text_contains_structures_and_nets() {
        let text = write_gds_text(&sample(), &Technology::s28());
        assert!(text.contains("BGNSTR SAMPLE"));
        assert!(text.contains("SREF SRAM8T X0"));
        assert!(text.contains("NET RBL"));
        assert!(text.contains("ENDLIB"));
        // The M2 wire uses the GDS layer number from the layer map (32).
        assert!(text.lines().any(|l| l.starts_with("RECT 32 ")));
    }

    #[test]
    fn def_sections_are_well_formed() {
        let text = write_def(&sample());
        assert!(text.contains("DESIGN SAMPLE ;"));
        assert!(text.contains("COMPONENTS 1 ;"));
        assert!(text.contains("END COMPONENTS"));
        assert!(text.contains("PINS 1 ;"));
        assert!(text.contains("SPECIALNETS 1 ;"));
        assert!(text.trim_end().ends_with("END DESIGN"));
    }

    #[test]
    fn component_count_matches_instances() {
        let mut layout = sample();
        for i in 0..5 {
            layout.instances.push(PlacedInstance {
                name: format!("X{}", i + 1),
                cell: "BUF".into(),
                origin: Point::new(0.0, 632.0 * (i + 1) as f64),
                orientation: Orientation::R0,
                width: 2000.0,
                height: 600.0,
            });
        }
        let text = write_def(&layout);
        assert!(text.contains("COMPONENTS 6 ;"));
        assert_eq!(text.matches("+ PLACED").count(), 6);
    }
}
