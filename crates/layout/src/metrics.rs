//! Layout metric extraction.
//!
//! Figure 8 of the paper characterises each generated layout by its physical
//! dimensions (µm) and its bit density (F²/bit).  The metrics distinguish
//! the *core* (the W abutted columns, which is what the paper's area model
//! and Figure 8 annotations describe) from the *total* macro including the
//! input/output buffer peripheries.

use acim_arch::AcimSpec;
use acim_cell::Rect;
use acim_tech::Technology;

/// Physical metrics of a generated macro layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutMetrics {
    /// Core (column array) width in µm.
    pub core_width_um: f64,
    /// Core height in µm.
    pub core_height_um: f64,
    /// Core area in µm².
    pub core_area_um2: f64,
    /// Core density in F² per bit cell.
    pub core_area_f2_per_bit: f64,
    /// Total macro width in µm (including buffer peripheries).
    pub total_width_um: f64,
    /// Total macro height in µm.
    pub total_height_um: f64,
    /// Total macro area in µm².
    pub total_area_um2: f64,
    /// Total routed wire length in µm.
    pub wirelength_um: f64,
    /// Number of vias.
    pub via_count: usize,
    /// Number of placed leaf-cell instances.
    pub instance_count: usize,
}

impl LayoutMetrics {
    /// Computes the metrics from the core region, the full boundary and the
    /// routing content of a macro layout.
    pub fn compute(
        spec: &AcimSpec,
        tech: &Technology,
        core_region: Rect,
        total_boundary: Rect,
        wirelength_nm: f64,
        via_count: usize,
        instance_count: usize,
    ) -> Self {
        let f_um = tech.feature_size_nm() / 1000.0;
        let core_width_um = core_region.width() / 1000.0;
        let core_height_um = core_region.height() / 1000.0;
        let core_area_um2 = core_width_um * core_height_um;
        let core_area_f2_per_bit = core_area_um2 / (f_um * f_um) / spec.array_size() as f64;
        Self {
            core_width_um,
            core_height_um,
            core_area_um2,
            core_area_f2_per_bit,
            total_width_um: total_boundary.width() / 1000.0,
            total_height_um: total_boundary.height() / 1000.0,
            total_area_um2: total_boundary.width() * total_boundary.height() / 1e6,
            wirelength_um: wirelength_nm / 1000.0,
            via_count,
            instance_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8b_style_numbers() {
        // A 256 µm × 131 µm core for a 16 kb array is ≈2610 F²/bit at 28 nm.
        let spec = AcimSpec::from_dimensions(128, 128, 8, 3).unwrap();
        let tech = Technology::s28();
        let core = Rect::new(0.0, 0.0, 256_000.0, 131_000.0);
        let total = Rect::new(0.0, 0.0, 260_000.0, 133_000.0);
        let m = LayoutMetrics::compute(&spec, &tech, core, total, 5_000_000.0, 1234, 20_000);
        assert!((m.core_width_um - 256.0).abs() < 1e-9);
        assert!((m.core_height_um - 131.0).abs() < 1e-9);
        assert!((m.core_area_f2_per_bit - 2610.0).abs() < 10.0);
        assert!(m.total_area_um2 > m.core_area_um2);
        assert!((m.wirelength_um - 5000.0).abs() < 1e-9);
        assert_eq!(m.via_count, 1234);
        assert_eq!(m.instance_count, 20_000);
    }

    #[test]
    fn density_scales_inversely_with_array_size() {
        let tech = Technology::s28();
        let core = Rect::new(0.0, 0.0, 100_000.0, 100_000.0);
        let small = AcimSpec::from_dimensions(64, 64, 4, 3).unwrap();
        let large = AcimSpec::from_dimensions(128, 128, 4, 3).unwrap();
        let m_small = LayoutMetrics::compute(&small, &tech, core, core, 0.0, 0, 0);
        let m_large = LayoutMetrics::compute(&large, &tech, core, core, 0.0, 0, 0);
        assert!((m_small.core_area_f2_per_bit / m_large.core_area_f2_per_bit - 4.0).abs() < 1e-9);
    }
}
