//! The 3-D routing grid (Figure 3 of the paper: "3D-Grid-Based Routing").
//!
//! The routing region is discretised into a uniform grid of `pitch`-sized
//! cells on every routing layer.  Each grid cell is either free, blocked by
//! an obstacle (cell geometry, pre-defined track of another net) or owned by
//! a net.  The maze router searches this grid; moves within a layer follow
//! that layer's preferred direction at unit cost (non-preferred moves cost
//! more), and layer changes (vias) cost extra.

use acim_cell::{Point, Rect};

use crate::error::LayoutError;

/// Occupancy state of one grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridCell {
    /// Free for routing.
    Free,
    /// Permanently blocked (cell geometry or keep-out).
    Obstacle,
    /// Occupied by the net with this identifier.
    Net(u32),
}

/// A discrete grid node: (layer, column, row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridNode {
    /// Routing-layer index (0-based; 0 is the lowest routing layer in use).
    pub layer: usize,
    /// Column index (x).
    pub col: usize,
    /// Row index (y).
    pub row: usize,
}

/// The 3-D occupancy grid.
#[derive(Debug, Clone)]
pub struct RoutingGrid {
    origin: Point,
    pitch: f64,
    cols: usize,
    rows: usize,
    layers: usize,
    cells: Vec<GridCell>,
}

impl RoutingGrid {
    /// Creates a grid covering `region` with the given pitch and number of
    /// routing layers.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidParameter`] when the pitch is not
    /// positive, the region is degenerate, the layer count is zero, or the
    /// grid would be unreasonably large (> 50 million nodes).
    pub fn new(region: Rect, pitch: f64, layers: usize) -> Result<Self, LayoutError> {
        if pitch <= 0.0 {
            return Err(LayoutError::InvalidParameter {
                name: "pitch".into(),
                reason: "must be positive".into(),
            });
        }
        if layers == 0 {
            return Err(LayoutError::InvalidParameter {
                name: "layers".into(),
                reason: "at least one routing layer is required".into(),
            });
        }
        if region.width() <= 0.0 || region.height() <= 0.0 {
            return Err(LayoutError::InvalidParameter {
                name: "region".into(),
                reason: "must have positive width and height".into(),
            });
        }
        // The last node must not fall outside the region, so the node count
        // is floor(extent / pitch) + 1.
        let cols = (region.width() / pitch).floor() as usize + 1;
        let rows = (region.height() / pitch).floor() as usize + 1;
        let total = cols
            .checked_mul(rows)
            .and_then(|v| v.checked_mul(layers))
            .unwrap_or(usize::MAX);
        if total > 50_000_000 {
            return Err(LayoutError::InvalidParameter {
                name: "grid size".into(),
                reason: format!("{cols}x{rows}x{layers} nodes exceed the 50M limit"),
            });
        }
        Ok(Self {
            origin: region.min,
            pitch,
            cols,
            rows,
            layers,
            cells: vec![GridCell::Free; total],
        })
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of routing layers.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// Grid pitch in nanometres.
    pub fn pitch(&self) -> f64 {
        self.pitch
    }

    fn index(&self, node: GridNode) -> usize {
        (node.layer * self.rows + node.row) * self.cols + node.col
    }

    /// Occupancy of a node.
    pub fn cell(&self, node: GridNode) -> GridCell {
        self.cells[self.index(node)]
    }

    /// Sets the occupancy of a node.
    pub fn set_cell(&mut self, node: GridNode, value: GridCell) {
        let index = self.index(node);
        self.cells[index] = value;
    }

    /// Returns `true` when the node is inside the grid.
    pub fn contains(&self, node: GridNode) -> bool {
        node.layer < self.layers && node.col < self.cols && node.row < self.rows
    }

    /// Snaps a physical point to the nearest grid (col, row).
    pub fn snap(&self, point: Point) -> (usize, usize) {
        let col = ((point.x - self.origin.x) / self.pitch).round().max(0.0) as usize;
        let row = ((point.y - self.origin.y) / self.pitch).round().max(0.0) as usize;
        (col.min(self.cols - 1), row.min(self.rows - 1))
    }

    /// Physical centre of a grid node.
    pub fn position(&self, node: GridNode) -> Point {
        Point::new(
            self.origin.x + node.col as f64 * self.pitch,
            self.origin.y + node.row as f64 * self.pitch,
        )
    }

    /// Marks every node covered by `rect` on `layer` as an obstacle.
    pub fn block_rect(&mut self, layer: usize, rect: &Rect) {
        if layer >= self.layers {
            return;
        }
        let (c0, r0) = self.snap(rect.min);
        let (c1, r1) = self.snap(rect.max);
        for row in r0..=r1 {
            for col in c0..=c1 {
                self.set_cell(GridNode { layer, col, row }, GridCell::Obstacle);
            }
        }
    }

    /// Marks every node covered by `rect` on `layer` as owned by `net`.
    pub fn claim_rect(&mut self, layer: usize, rect: &Rect, net: u32) {
        if layer >= self.layers {
            return;
        }
        let (c0, r0) = self.snap(rect.min);
        let (c1, r1) = self.snap(rect.max);
        for row in r0..=r1 {
            for col in c0..=c1 {
                self.set_cell(GridNode { layer, col, row }, GridCell::Net(net));
            }
        }
    }

    /// Returns `true` when the node can be used by `net` (free or already
    /// owned by the same net).
    pub fn usable_by(&self, node: GridNode, net: u32) -> bool {
        match self.cell(node) {
            GridCell::Free => true,
            GridCell::Net(owner) => owner == net,
            GridCell::Obstacle => false,
        }
    }

    /// Fraction of nodes that are not free (used by congestion reports).
    pub fn occupancy_ratio(&self) -> f64 {
        let used = self
            .cells
            .iter()
            .filter(|c| !matches!(c, GridCell::Free))
            .count();
        used as f64 / self.cells.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> RoutingGrid {
        RoutingGrid::new(Rect::new(0.0, 0.0, 1000.0, 500.0), 100.0, 3).unwrap()
    }

    #[test]
    fn dimensions_follow_region_and_pitch() {
        let g = grid();
        assert_eq!(g.cols(), 11);
        assert_eq!(g.rows(), 6);
        assert_eq!(g.layers(), 3);
        assert_eq!(g.pitch(), 100.0);
        assert_eq!(g.occupancy_ratio(), 0.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(RoutingGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 0.0, 2).is_err());
        assert!(RoutingGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0, 0).is_err());
        assert!(RoutingGrid::new(Rect::new(0.0, 0.0, 0.0, 100.0), 10.0, 2).is_err());
        // A grid that would need billions of nodes is rejected.
        assert!(RoutingGrid::new(Rect::new(0.0, 0.0, 1e9, 1e9), 1.0, 6).is_err());
    }

    #[test]
    fn snap_and_position_roundtrip() {
        let g = grid();
        let (col, row) = g.snap(Point::new(512.0, 249.0));
        assert_eq!((col, row), (5, 2));
        let p = g.position(GridNode { layer: 0, col, row });
        assert_eq!(p, Point::new(500.0, 200.0));
        // Points outside the region clamp to the boundary nodes.
        assert_eq!(g.snap(Point::new(5000.0, 5000.0)), (10, 5));
    }

    #[test]
    fn blocking_and_claiming() {
        let mut g = grid();
        g.block_rect(0, &Rect::new(0.0, 0.0, 300.0, 100.0));
        assert_eq!(
            g.cell(GridNode {
                layer: 0,
                col: 1,
                row: 0
            }),
            GridCell::Obstacle
        );
        assert_eq!(
            g.cell(GridNode {
                layer: 1,
                col: 1,
                row: 0
            }),
            GridCell::Free
        );

        g.claim_rect(1, &Rect::new(400.0, 200.0, 600.0, 200.0), 7);
        let node = GridNode {
            layer: 1,
            col: 5,
            row: 2,
        };
        assert_eq!(g.cell(node), GridCell::Net(7));
        assert!(g.usable_by(node, 7));
        assert!(!g.usable_by(node, 8));
        assert!(!g.usable_by(
            GridNode {
                layer: 0,
                col: 1,
                row: 0
            },
            7
        ));
        assert!(g.occupancy_ratio() > 0.0);
    }

    #[test]
    fn out_of_range_layers_are_ignored_by_blocking() {
        let mut g = grid();
        g.block_rect(9, &Rect::new(0.0, 0.0, 100.0, 100.0));
        assert_eq!(g.occupancy_ratio(), 0.0);
    }
}
