//! Simulated-annealing block placer.
//!
//! The template-based flow places the regular array core deterministically
//! (columns of abutted cells), but peripheral blocks — SAR logic, switches,
//! buffers at the macro boundary — are placed by the classic grid-based
//! method of Section 2.3: minimise half-perimeter wire length subject to
//! no-overlap, alignment and symmetry constraints.  This module implements
//! that placer in a problem-agnostic way; the flow uses it for the
//! periphery, and the ablation benchmarks exercise it directly.

use acim_cell::{half_perimeter_wire_length, Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::LayoutError;

/// One block to place.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementItem {
    /// Block name.
    pub name: String,
    /// Block width in nanometres.
    pub width: f64,
    /// Block height in nanometres.
    pub height: f64,
}

/// A net connecting placed blocks (by index into the item list); the HPWL of
/// all nets is the placement cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementNet {
    /// Net name (reporting only).
    pub name: String,
    /// Indices of the connected items.
    pub items: Vec<usize>,
}

/// Pairwise constraints honoured by the placer.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementConstraint {
    /// The two items must share the same x centre (vertical alignment).
    AlignVertical(usize, usize),
    /// The two items must share the same y centre (horizontal alignment).
    AlignHorizontal(usize, usize),
    /// The two items must be mirror images about the region's vertical
    /// centre line (the symmetry constraint of analog placement).
    SymmetricAboutVerticalAxis(usize, usize),
}

/// Placer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacerConfig {
    /// Placement region (blocks must stay inside).
    pub region: Rect,
    /// Placement grid pitch (origins snap to it).
    pub grid_pitch: f64,
    /// Annealing iterations.
    pub iterations: usize,
    /// Initial temperature (in cost units).
    pub initial_temperature: f64,
    /// RNG seed.
    pub seed: u64,
    /// Penalty weight for overlaps and constraint violations.
    pub penalty_weight: f64,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self {
            region: Rect::new(0.0, 0.0, 50_000.0, 50_000.0),
            grid_pitch: 100.0,
            iterations: 4000,
            initial_temperature: 1e5,
            seed: 1,
            penalty_weight: 10.0,
        }
    }
}

/// Result of a placement run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementResult {
    /// Origin of every item (same order as the input items).
    pub origins: Vec<Point>,
    /// Final HPWL cost (without penalties).
    pub hpwl: f64,
    /// Final number of overlapping block pairs (0 for a legal placement).
    pub overlaps: usize,
    /// Final total constraint violation (0.0 when all constraints hold).
    pub constraint_violation: f64,
}

/// The simulated-annealing placer.
#[derive(Debug, Clone)]
pub struct AnnealingPlacer {
    config: PlacerConfig,
}

impl AnnealingPlacer {
    /// Creates a placer.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidParameter`] when the configuration is
    /// degenerate.
    pub fn new(config: PlacerConfig) -> Result<Self, LayoutError> {
        if config.grid_pitch <= 0.0 || config.iterations == 0 || config.initial_temperature <= 0.0 {
            return Err(LayoutError::InvalidParameter {
                name: "placer config".into(),
                reason: "grid pitch, iterations and temperature must be positive".into(),
            });
        }
        Ok(Self { config })
    }

    /// Places the items, minimising HPWL subject to the constraints.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::PlacementOverflow`] when the total block area
    /// exceeds the region area (no legal placement can exist).
    pub fn place(
        &self,
        items: &[PlacementItem],
        nets: &[PlacementNet],
        constraints: &[PlacementConstraint],
    ) -> Result<PlacementResult, LayoutError> {
        let region = self.config.region;
        let total_area: f64 = items.iter().map(|i| i.width * i.height).sum();
        if total_area > region.area() {
            return Err(LayoutError::PlacementOverflow {
                context: format!(
                    "{} blocks of total area {total_area} nm^2 in region of {} nm^2",
                    items.len(),
                    region.area()
                ),
            });
        }
        if items.is_empty() {
            return Ok(PlacementResult {
                origins: Vec::new(),
                hpwl: 0.0,
                overlaps: 0,
                constraint_violation: 0.0,
            });
        }

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        // Initial placement: items in a row-major raster (legal-ish start).
        let mut origins = self.raster_start(items);
        let mut cost = self.cost(items, nets, constraints, &origins);
        let mut best = origins.clone();
        let mut best_cost = cost;

        let mut temperature = self.config.initial_temperature;
        let cooling = 0.995f64;
        for _ in 0..self.config.iterations {
            let index = rng.gen_range(0..items.len());
            // Move: either a random jump within the region or a swap with
            // another item.  Remember everything needed to undo it exactly.
            let (other, old_index_origin, old_other_origin) = if rng.gen::<f64>() < 0.7 {
                let old = origins[index];
                origins[index] = self.random_origin(&mut rng, &items[index]);
                (index, old, old)
            } else {
                let other = rng.gen_range(0..items.len());
                let snapshot = (origins[index], origins[other]);
                origins.swap(index, other);
                (other, snapshot.0, snapshot.1)
            };
            let new_cost = self.cost(items, nets, constraints, &origins);
            let accept =
                new_cost <= cost || rng.gen::<f64>() < ((cost - new_cost) / temperature).exp();
            if accept {
                cost = new_cost;
                if cost < best_cost {
                    best_cost = cost;
                    best = origins.clone();
                }
            } else {
                origins[index] = old_index_origin;
                origins[other] = old_other_origin;
            }
            temperature = (temperature * cooling).max(1.0);
        }

        let origins = best;
        let hpwl = self.hpwl(items, nets, &origins);
        let overlaps = self.count_overlaps(items, &origins);
        let constraint_violation = self.constraint_violation(items, constraints, &origins);
        Ok(PlacementResult {
            origins,
            hpwl,
            overlaps,
            constraint_violation,
        })
    }

    fn raster_start(&self, items: &[PlacementItem]) -> Vec<Point> {
        let region = self.config.region;
        let mut origins = Vec::with_capacity(items.len());
        let mut x = region.min.x;
        let mut y = region.min.y;
        let mut row_height = 0.0f64;
        for item in items {
            if x + item.width > region.max.x {
                x = region.min.x;
                y += row_height + self.config.grid_pitch;
                row_height = 0.0;
            }
            origins.push(Point::new(x, y.min(region.max.y - item.height)));
            x += item.width + self.config.grid_pitch;
            row_height = row_height.max(item.height);
        }
        origins
    }

    fn random_origin<R: Rng + ?Sized>(&self, rng: &mut R, item: &PlacementItem) -> Point {
        let region = self.config.region;
        let max_x = (region.max.x - item.width).max(region.min.x);
        let max_y = (region.max.y - item.height).max(region.min.y);
        let snap = |v: f64| (v / self.config.grid_pitch).round() * self.config.grid_pitch;
        Point::new(
            snap(rng.gen_range(region.min.x..=max_x)),
            snap(rng.gen_range(region.min.y..=max_y)),
        )
    }

    fn hpwl(&self, items: &[PlacementItem], nets: &[PlacementNet], origins: &[Point]) -> f64 {
        nets.iter()
            .map(|net| {
                let centers: Vec<Point> = net
                    .items
                    .iter()
                    .map(|&i| {
                        Point::new(
                            origins[i].x + items[i].width / 2.0,
                            origins[i].y + items[i].height / 2.0,
                        )
                    })
                    .collect();
                half_perimeter_wire_length(&centers)
            })
            .sum()
    }

    fn count_overlaps(&self, items: &[PlacementItem], origins: &[Point]) -> usize {
        let rects: Vec<Rect> = items
            .iter()
            .zip(origins)
            .map(|(item, origin)| Rect::from_size(*origin, item.width, item.height))
            .collect();
        let mut overlaps = 0;
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                if rects[i].overlaps(&rects[j]) {
                    overlaps += 1;
                }
            }
        }
        overlaps
    }

    fn constraint_violation(
        &self,
        items: &[PlacementItem],
        constraints: &[PlacementConstraint],
        origins: &[Point],
    ) -> f64 {
        let center = |i: usize| -> Point {
            Point::new(
                origins[i].x + items[i].width / 2.0,
                origins[i].y + items[i].height / 2.0,
            )
        };
        let axis = (self.config.region.min.x + self.config.region.max.x) / 2.0;
        constraints
            .iter()
            .map(|c| match c {
                PlacementConstraint::AlignVertical(a, b) => (center(*a).x - center(*b).x).abs(),
                PlacementConstraint::AlignHorizontal(a, b) => (center(*a).y - center(*b).y).abs(),
                PlacementConstraint::SymmetricAboutVerticalAxis(a, b) => {
                    let mirrored = 2.0 * axis - center(*b).x;
                    (center(*a).x - mirrored).abs() + (center(*a).y - center(*b).y).abs()
                }
            })
            .sum()
    }

    fn cost(
        &self,
        items: &[PlacementItem],
        nets: &[PlacementNet],
        constraints: &[PlacementConstraint],
        origins: &[Point],
    ) -> f64 {
        let hpwl = self.hpwl(items, nets, origins);
        let overlap_area: f64 = {
            let rects: Vec<Rect> = items
                .iter()
                .zip(origins)
                .map(|(item, origin)| Rect::from_size(*origin, item.width, item.height))
                .collect();
            let mut area = 0.0;
            for i in 0..rects.len() {
                for j in (i + 1)..rects.len() {
                    if rects[i].overlaps(&rects[j]) {
                        let w = (rects[i].max.x.min(rects[j].max.x)
                            - rects[i].min.x.max(rects[j].min.x))
                        .max(0.0);
                        let h = (rects[i].max.y.min(rects[j].max.y)
                            - rects[i].min.y.max(rects[j].min.y))
                        .max(0.0);
                        area += w * h;
                    }
                }
            }
            area
        };
        let violation = self.constraint_violation(items, constraints, origins);
        hpwl + self.config.penalty_weight * (overlap_area.sqrt() * 10.0 + violation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: usize) -> Vec<PlacementItem> {
        (0..n)
            .map(|i| PlacementItem {
                name: format!("B{i}"),
                width: 2000.0,
                height: 1000.0,
            })
            .collect()
    }

    fn chain_nets(n: usize) -> Vec<PlacementNet> {
        (0..n - 1)
            .map(|i| PlacementNet {
                name: format!("n{i}"),
                items: vec![i, i + 1],
            })
            .collect()
    }

    fn config(width: f64, height: f64, seed: u64) -> PlacerConfig {
        PlacerConfig {
            region: Rect::new(0.0, 0.0, width, height),
            iterations: 3000,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn placement_is_legal_and_inside_region() {
        let placer = AnnealingPlacer::new(config(20_000.0, 10_000.0, 3)).unwrap();
        let items = items(6);
        let result = placer.place(&items, &chain_nets(6), &[]).unwrap();
        assert_eq!(result.origins.len(), 6);
        assert_eq!(result.overlaps, 0, "final placement must not overlap");
        for (item, origin) in items.iter().zip(&result.origins) {
            let rect = Rect::from_size(*origin, item.width, item.height);
            assert!(
                Rect::new(0.0, 0.0, 20_000.0, 10_000.0).contains_rect(&rect),
                "{} escaped the region",
                item.name
            );
        }
    }

    #[test]
    fn annealing_beats_a_random_spread_on_hpwl() {
        // A chain of blocks: the optimal layout is a compact line.  The
        // annealed HPWL should be far below the region diameter times nets.
        let placer = AnnealingPlacer::new(config(40_000.0, 20_000.0, 7)).unwrap();
        let items = items(8);
        let nets = chain_nets(8);
        let result = placer.place(&items, &nets, &[]).unwrap();
        let worst_case = (40_000.0 + 20_000.0) * nets.len() as f64;
        assert!(
            result.hpwl < worst_case / 3.0,
            "hpwl {} not much better than worst case {}",
            result.hpwl,
            worst_case
        );
    }

    #[test]
    fn alignment_constraints_are_honoured() {
        let placer = AnnealingPlacer::new(PlacerConfig {
            region: Rect::new(0.0, 0.0, 30_000.0, 30_000.0),
            iterations: 8000,
            seed: 11,
            penalty_weight: 100.0,
            ..Default::default()
        })
        .unwrap();
        let items = items(4);
        let nets = chain_nets(4);
        let constraints = vec![PlacementConstraint::AlignVertical(0, 1)];
        let result = placer.place(&items, &nets, &constraints).unwrap();
        assert!(
            result.constraint_violation < 500.0,
            "alignment violated by {} nm",
            result.constraint_violation
        );
    }

    #[test]
    fn overflowing_region_is_rejected() {
        let placer = AnnealingPlacer::new(config(3000.0, 1500.0, 1)).unwrap();
        let err = placer.place(&items(10), &[], &[]).unwrap_err();
        assert!(matches!(err, LayoutError::PlacementOverflow { .. }));
    }

    #[test]
    fn empty_input_is_fine() {
        let placer = AnnealingPlacer::new(config(1000.0, 1000.0, 1)).unwrap();
        let result = placer.place(&[], &[], &[]).unwrap();
        assert!(result.origins.is_empty());
        assert_eq!(result.hpwl, 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let placer = AnnealingPlacer::new(config(20_000.0, 10_000.0, 5)).unwrap();
        let a = placer.place(&items(5), &chain_nets(5), &[]).unwrap();
        let b = placer.place(&items(5), &chain_nets(5), &[]).unwrap();
        assert_eq!(a.origins, b.origins);
    }

    #[test]
    fn invalid_config_rejected() {
        let c = PlacerConfig {
            grid_pitch: 0.0,
            ..Default::default()
        };
        assert!(AnnealingPlacer::new(c).is_err());
    }
}
