//! The layout database: placed instances, wires, vias and exported pins.

use acim_cell::{Orientation, Point, Rect};

/// A placed leaf-cell (or block) instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedInstance {
    /// Instance name (hierarchical, e.g. `"COL_3/XLA_0/XSRAM_2"`).
    pub name: String,
    /// Name of the placed cell or block template.
    pub cell: String,
    /// Lower-left placement origin in nanometres.
    pub origin: Point,
    /// Placement orientation.
    pub orientation: Orientation,
    /// Cell width in nanometres (in the cell's own frame).
    pub width: f64,
    /// Cell height in nanometres.
    pub height: f64,
}

impl PlacedInstance {
    /// The axis-aligned footprint of the placed instance.
    pub fn boundary(&self) -> Rect {
        // The orientations used here (R0/MX/MY/R180) never swap width and
        // height, so the footprint is origin + size.
        Rect::from_size(self.origin, self.width, self.height)
    }
}

/// A routed wire segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Wire {
    /// Net name.
    pub net: String,
    /// Metal layer name.
    pub layer: String,
    /// Wire geometry in nanometres.
    pub rect: Rect,
}

/// A via between two adjacent metal layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Via {
    /// Net name.
    pub net: String,
    /// Lower metal layer name.
    pub from_layer: String,
    /// Upper metal layer name.
    pub to_layer: String,
    /// Via centre.
    pub at: Point,
}

/// A pin exported by a layout block (used when the block is itself placed at
/// the next hierarchy level).
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutPin {
    /// Net / pin name.
    pub net: String,
    /// Metal layer of the access shape.
    pub layer: String,
    /// Access shape.
    pub rect: Rect,
}

/// A layout block: boundary, placed instances, routed wires/vias and
/// exported pins.  Used both for intermediate blocks (the column template)
/// and the final macro.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Layout {
    /// Block name.
    pub name: String,
    /// Block boundary (origin at (0, 0)).
    pub boundary: Rect,
    /// Placed instances.
    pub instances: Vec<PlacedInstance>,
    /// Routed wires.
    pub wires: Vec<Wire>,
    /// Vias.
    pub vias: Vec<Via>,
    /// Exported pins.
    pub pins: Vec<LayoutPin>,
}

impl Layout {
    /// Creates an empty layout with the given boundary.
    pub fn new(name: impl Into<String>, width_nm: f64, height_nm: f64) -> Self {
        Self {
            name: name.into(),
            boundary: Rect::new(0.0, 0.0, width_nm, height_nm),
            ..Self::default()
        }
    }

    /// Width in nanometres.
    pub fn width(&self) -> f64 {
        self.boundary.width()
    }

    /// Height in nanometres.
    pub fn height(&self) -> f64 {
        self.boundary.height()
    }

    /// Total routed wire length in nanometres (sum of the long dimension of
    /// every wire segment).
    pub fn total_wirelength(&self) -> f64 {
        self.wires
            .iter()
            .map(|w| w.rect.width().max(w.rect.height()))
            .sum()
    }

    /// Merges another layout into this one, translating it by (dx, dy) and
    /// prefixing its instance names with `prefix`.
    pub fn merge_translated(&mut self, other: &Layout, dx: f64, dy: f64, prefix: &str) {
        for instance in &other.instances {
            self.instances.push(PlacedInstance {
                name: format!("{prefix}{}", instance.name),
                cell: instance.cell.clone(),
                origin: instance.origin.translated(dx, dy),
                orientation: instance.orientation,
                width: instance.width,
                height: instance.height,
            });
        }
        for wire in &other.wires {
            self.wires.push(Wire {
                net: format!("{prefix}{}", wire.net),
                layer: wire.layer.clone(),
                rect: wire.rect.translated(dx, dy),
            });
        }
        for via in &other.vias {
            self.vias.push(Via {
                net: format!("{prefix}{}", via.net),
                from_layer: via.from_layer.clone(),
                to_layer: via.to_layer.clone(),
                at: via.at.translated(dx, dy),
            });
        }
        self.boundary = self.boundary.union(&other.boundary.translated(dx, dy));
    }

    /// Finds an exported pin by net name.
    pub fn pin(&self, net: &str) -> Option<&LayoutPin> {
        self.pins.iter().find(|p| p.net == net)
    }

    /// Bounding box of everything actually drawn (instances and wires),
    /// which can be smaller than the declared boundary.
    pub fn drawn_bounding_box(&self) -> Option<Rect> {
        let mut boxes = self
            .instances
            .iter()
            .map(PlacedInstance::boundary)
            .chain(self.wires.iter().map(|w| w.rect));
        let first = boxes.next()?;
        Some(boxes.fold(first, |acc, r| acc.union(&r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(name: &str, x: f64, y: f64) -> PlacedInstance {
        PlacedInstance {
            name: name.into(),
            cell: "SRAM8T".into(),
            origin: Point::new(x, y),
            orientation: Orientation::R0,
            width: 2000.0,
            height: 632.0,
        }
    }

    #[test]
    fn instance_boundary() {
        let inst = instance("X0", 100.0, 200.0);
        let b = inst.boundary();
        assert_eq!(b.min, Point::new(100.0, 200.0));
        assert_eq!(b.max, Point::new(2100.0, 832.0));
    }

    #[test]
    fn wirelength_sums_long_dimensions() {
        let mut layout = Layout::new("test", 10_000.0, 10_000.0);
        layout.wires.push(Wire {
            net: "A".into(),
            layer: "M2".into(),
            rect: Rect::new(0.0, 0.0, 50.0, 1000.0),
        });
        layout.wires.push(Wire {
            net: "B".into(),
            layer: "M3".into(),
            rect: Rect::new(0.0, 0.0, 2000.0, 56.0),
        });
        assert_eq!(layout.total_wirelength(), 3000.0);
    }

    #[test]
    fn merge_translates_and_prefixes() {
        let mut column = Layout::new("COLUMN", 2000.0, 5000.0);
        column.instances.push(instance("XSRAM_0", 0.0, 0.0));
        column.wires.push(Wire {
            net: "RBL".into(),
            layer: "M2".into(),
            rect: Rect::new(1900.0, 0.0, 1950.0, 5000.0),
        });

        let mut top = Layout::new("TOP", 4000.0, 5000.0);
        top.merge_translated(&column, 2000.0, 0.0, "COL_1/");
        assert_eq!(top.instances.len(), 1);
        assert_eq!(top.instances[0].name, "COL_1/XSRAM_0");
        assert_eq!(top.instances[0].origin, Point::new(2000.0, 0.0));
        assert_eq!(top.wires[0].net, "COL_1/RBL");
        assert_eq!(top.wires[0].rect.min.x, 3900.0);
        // Boundary grows to cover the merged content.
        assert!(top.boundary.max.x >= 4000.0);
    }

    #[test]
    fn drawn_bounding_box_covers_content() {
        let mut layout = Layout::new("test", 100_000.0, 100_000.0);
        assert!(layout.drawn_bounding_box().is_none());
        layout.instances.push(instance("X0", 0.0, 0.0));
        layout.instances.push(instance("X1", 0.0, 632.0));
        let bbox = layout.drawn_bounding_box().unwrap();
        assert_eq!(bbox.max.y, 1264.0);
        assert_eq!(bbox.max.x, 2000.0);
    }

    #[test]
    fn pin_lookup() {
        let mut layout = Layout::new("test", 1000.0, 1000.0);
        layout.pins.push(LayoutPin {
            net: "CLK".into(),
            layer: "M3".into(),
            rect: Rect::new(0.0, 0.0, 100.0, 100.0),
        });
        assert!(layout.pin("CLK").is_some());
        assert!(layout.pin("MISSING").is_none());
    }
}
