//! Grid-based maze router.
//!
//! A Dijkstra search over the 3-D routing grid (Figure 3 of the paper).
//! Moves along a layer's preferred direction cost 1, non-preferred moves
//! cost more, and layer changes (vias) cost more still, which steers routes
//! onto alternating horizontal/vertical layers the way real detailed
//! routers do.  Multi-terminal nets are routed by sequentially connecting
//! each terminal to the tree built so far; failed nets are retried after
//! rip-up of their own previous segments (simple rip-up and re-route).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use acim_cell::{Point, Rect};

use crate::db::{Via, Wire};
use crate::error::LayoutError;
use crate::grid::{GridCell, GridNode, RoutingGrid};

/// A net to route: name, numeric id and its terminals.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteRequest {
    /// Net name (used for the produced wires).
    pub net: String,
    /// Unique numeric net id (used for grid ownership).
    pub net_id: u32,
    /// Terminals: (routing-layer index, physical location).
    pub terminals: Vec<(usize, Point)>,
}

/// Statistics of a routing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Nets successfully routed.
    pub routed_nets: usize,
    /// Total grid segments used.
    pub segments: usize,
    /// Total vias inserted.
    pub vias: usize,
    /// Nets that needed a rip-up retry.
    pub retried_nets: usize,
}

/// Cost of a move against the layer's preferred direction.
const NON_PREFERRED_COST: u32 = 4;
/// Cost of a layer change.
const VIA_COST: u32 = 8;

/// The maze router, owning a routing grid plus layer metadata.
#[derive(Debug, Clone)]
pub struct MazeRouter {
    grid: RoutingGrid,
    /// Physical layer names, indexed by routing-layer index.
    layer_names: Vec<String>,
    /// `true` when the layer's preferred direction is horizontal.
    horizontal: Vec<bool>,
    /// Drawn wire width per routing layer, in nanometres.
    wire_widths: Vec<f64>,
    stats: RouterStats,
}

impl MazeRouter {
    /// Creates a router over `grid`.
    ///
    /// `layer_names[i]` is the technology layer name of routing layer `i`;
    /// `horizontal[i]` is its preferred direction; `wire_widths[i]` is the
    /// drawn width of wires produced on that layer, in nanometres.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::InvalidParameter`] when the metadata lengths
    /// do not match the grid's layer count or a width is not positive.
    pub fn new(
        grid: RoutingGrid,
        layer_names: Vec<String>,
        horizontal: Vec<bool>,
        wire_widths: Vec<f64>,
    ) -> Result<Self, LayoutError> {
        if layer_names.len() != grid.layers()
            || horizontal.len() != grid.layers()
            || wire_widths.len() != grid.layers()
        {
            return Err(LayoutError::InvalidParameter {
                name: "layer metadata".into(),
                reason: format!(
                    "expected {} entries, got {} names / {} directions / {} widths",
                    grid.layers(),
                    layer_names.len(),
                    horizontal.len(),
                    wire_widths.len()
                ),
            });
        }
        if wire_widths.iter().any(|w| *w <= 0.0) {
            return Err(LayoutError::InvalidParameter {
                name: "wire width".into(),
                reason: "every layer width must be positive".into(),
            });
        }
        Ok(Self {
            grid,
            layer_names,
            horizontal,
            wire_widths,
            stats: RouterStats::default(),
        })
    }

    /// Immutable access to the grid (for congestion reporting).
    pub fn grid(&self) -> &RoutingGrid {
        &self.grid
    }

    /// Mutable access to the grid (for blocking obstacles before routing).
    pub fn grid_mut(&mut self) -> &mut RoutingGrid {
        &mut self.grid
    }

    /// Routing statistics accumulated so far.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Reserves the terminal nodes of every request for its own net, so that
    /// no other net can later route straight over a pin it does not own.
    /// Call this once with all requests before routing them.
    pub fn reserve_terminals(&mut self, requests: &[RouteRequest]) {
        for request in requests {
            for terminal in &request.terminals {
                let node = self.terminal_node(terminal);
                if self.grid.cell(node) == GridCell::Free {
                    self.grid.set_cell(node, GridCell::Net(request.net_id));
                }
            }
        }
    }

    /// Routes one net, producing wires and vias.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::Unroutable`] when no path exists even after a
    /// rip-up retry of this net's own segments.
    pub fn route(&mut self, request: &RouteRequest) -> Result<(Vec<Wire>, Vec<Via>), LayoutError> {
        if request.terminals.len() < 2 {
            // A single-terminal net needs no wiring.
            return Ok((Vec::new(), Vec::new()));
        }
        match self.route_attempt(request) {
            Ok(result) => {
                self.stats.routed_nets += 1;
                Ok(result)
            }
            Err(_) => {
                // Rip up this net's own claims and retry once.
                self.rip_up(request.net_id);
                self.stats.retried_nets += 1;
                let result = self.route_attempt(request)?;
                self.stats.routed_nets += 1;
                Ok(result)
            }
        }
    }

    fn rip_up(&mut self, net_id: u32) {
        for layer in 0..self.grid.layers() {
            for row in 0..self.grid.rows() {
                for col in 0..self.grid.cols() {
                    let node = GridNode { layer, col, row };
                    if self.grid.cell(node) == GridCell::Net(net_id) {
                        self.grid.set_cell(node, GridCell::Free);
                    }
                }
            }
        }
    }

    fn route_attempt(
        &mut self,
        request: &RouteRequest,
    ) -> Result<(Vec<Wire>, Vec<Via>), LayoutError> {
        let mut tree: Vec<GridNode> = Vec::new();
        // Each terminal produces its own contiguous path from the existing
        // tree; geometry is emitted per path so no phantom segment is drawn
        // between unrelated path endpoints.
        let mut paths: Vec<Vec<GridNode>> = Vec::new();

        // Seed the tree with the first terminal.
        let mut terminals = request.terminals.iter();
        let first = terminals.next().expect("at least two terminals");
        let seed = self.terminal_node(first);
        self.grid.set_cell(seed, GridCell::Net(request.net_id));
        tree.push(seed);

        for terminal in terminals {
            let target = self.terminal_node(terminal);
            let path = self.search(&tree, target, request.net_id).ok_or_else(|| {
                LayoutError::Unroutable {
                    net: request.net.clone(),
                    context: "maze routing".into(),
                }
            })?;
            for &node in &path {
                self.grid.set_cell(node, GridCell::Net(request.net_id));
                tree.push(node);
            }
            paths.push(path);
        }

        let mut wires = Vec::new();
        let mut vias = Vec::new();
        for path in &paths {
            let (w, v) = self.emit_geometry(&request.net, path);
            wires.extend(w);
            vias.extend(v);
        }
        Ok((wires, vias))
    }

    fn terminal_node(&self, terminal: &(usize, Point)) -> GridNode {
        let (layer, point) = terminal;
        let (col, row) = self.grid.snap(*point);
        GridNode {
            layer: (*layer).min(self.grid.layers() - 1),
            col,
            row,
        }
    }

    /// Dijkstra from the existing tree to `target`.
    fn search(&self, tree: &[GridNode], target: GridNode, net_id: u32) -> Option<Vec<GridNode>> {
        let cols = self.grid.cols();
        let rows = self.grid.rows();
        let layers = self.grid.layers();
        let size = cols * rows * layers;
        let index = |n: GridNode| -> usize { (n.layer * rows + n.row) * cols + n.col };

        let mut dist = vec![u32::MAX; size];
        let mut previous = vec![u32::MAX; size];
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();

        for &node in tree {
            let i = index(node);
            dist[i] = 0;
            heap.push(Reverse((0, i as u32)));
        }
        let target_index = index(target);
        if !self.grid.usable_by(target, net_id) {
            return None;
        }

        while let Some(Reverse((cost, current))) = heap.pop() {
            let current = current as usize;
            if cost > dist[current] {
                continue;
            }
            if current == target_index {
                break;
            }
            let layer = current / (rows * cols);
            let rem = current % (rows * cols);
            let row = rem / cols;
            let col = rem % cols;

            let mut neighbours: Vec<(GridNode, u32)> = Vec::with_capacity(6);
            let preferred_horizontal = self.horizontal[layer];
            if col + 1 < cols {
                let step = if preferred_horizontal {
                    1
                } else {
                    NON_PREFERRED_COST
                };
                neighbours.push((
                    GridNode {
                        layer,
                        col: col + 1,
                        row,
                    },
                    step,
                ));
            }
            if col > 0 {
                let step = if preferred_horizontal {
                    1
                } else {
                    NON_PREFERRED_COST
                };
                neighbours.push((
                    GridNode {
                        layer,
                        col: col - 1,
                        row,
                    },
                    step,
                ));
            }
            if row + 1 < rows {
                let step = if preferred_horizontal {
                    NON_PREFERRED_COST
                } else {
                    1
                };
                neighbours.push((
                    GridNode {
                        layer,
                        col,
                        row: row + 1,
                    },
                    step,
                ));
            }
            if row > 0 {
                let step = if preferred_horizontal {
                    NON_PREFERRED_COST
                } else {
                    1
                };
                neighbours.push((
                    GridNode {
                        layer,
                        col,
                        row: row - 1,
                    },
                    step,
                ));
            }
            if layer + 1 < layers {
                neighbours.push((
                    GridNode {
                        layer: layer + 1,
                        col,
                        row,
                    },
                    VIA_COST,
                ));
            }
            if layer > 0 {
                neighbours.push((
                    GridNode {
                        layer: layer - 1,
                        col,
                        row,
                    },
                    VIA_COST,
                ));
            }

            for (next, step) in neighbours {
                if !self.grid.usable_by(next, net_id) {
                    continue;
                }
                let next_index = index(next);
                let next_cost = cost.saturating_add(step);
                if next_cost < dist[next_index] {
                    dist[next_index] = next_cost;
                    previous[next_index] = current as u32;
                    heap.push(Reverse((next_cost, next_index as u32)));
                }
            }
        }

        if dist[target_index] == u32::MAX {
            return None;
        }
        // Trace back from the target to the tree, including the tree node the
        // path attaches to so the emitted geometry is contiguous.
        let mut path = Vec::new();
        let mut current = target_index;
        loop {
            let layer = current / (rows * cols);
            let rem = current % (rows * cols);
            path.push(GridNode {
                layer,
                col: rem % cols,
                row: rem / cols,
            });
            if previous[current] == u32::MAX {
                break;
            }
            current = previous[current] as usize;
        }
        path.reverse();
        Some(path)
    }

    /// Converts a set of path nodes into merged wire segments and vias.
    fn emit_geometry(&mut self, net: &str, nodes: &[GridNode]) -> (Vec<Wire>, Vec<Via>) {
        let mut wires = Vec::new();
        let mut vias = Vec::new();
        // Consecutive nodes on the same layer become wire segments;
        // consecutive nodes on different layers become vias.  Callers that
        // need all wires strictly inside a block should inset the routing
        // region by at least half a wire width when building the grid.
        for pair in nodes.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let pa = self.grid.position(a);
            let pb = self.grid.position(b);
            if a.layer == b.layer {
                let half = self.wire_widths[a.layer] / 2.0;
                let rect = Rect::new(
                    pa.x.min(pb.x) - half,
                    pa.y.min(pb.y) - half,
                    pa.x.max(pb.x) + half,
                    pa.y.max(pb.y) + half,
                );
                wires.push(Wire {
                    net: net.to_string(),
                    layer: self.layer_names[a.layer].clone(),
                    rect,
                });
                self.stats.segments += 1;
            } else if a.col == b.col && a.row == b.row {
                let (low, high) = if a.layer < b.layer { (a, b) } else { (b, a) };
                vias.push(Via {
                    net: net.to_string(),
                    from_layer: self.layer_names[low.layer].clone(),
                    to_layer: self.layer_names[high.layer].clone(),
                    at: pa,
                });
                self.stats.vias += 1;
            }
        }
        (wires, vias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(width: f64, height: f64) -> MazeRouter {
        let grid = RoutingGrid::new(Rect::new(0.0, 0.0, width, height), 100.0, 3).unwrap();
        MazeRouter::new(
            grid,
            vec!["M2".into(), "M3".into(), "M4".into()],
            vec![false, true, false],
            vec![50.0, 50.0, 50.0],
        )
        .unwrap()
    }

    fn request(net: &str, id: u32, terminals: &[(usize, (f64, f64))]) -> RouteRequest {
        RouteRequest {
            net: net.into(),
            net_id: id,
            terminals: terminals
                .iter()
                .map(|&(l, (x, y))| (l, Point::new(x, y)))
                .collect(),
        }
    }

    #[test]
    fn routes_a_simple_two_terminal_net() {
        let mut r = router(2000.0, 2000.0);
        let (wires, vias) = r
            .route(&request("A", 1, &[(0, (0.0, 0.0)), (0, (0.0, 1000.0))]))
            .unwrap();
        assert!(!wires.is_empty());
        // Same column, vertical-preferred layer 0: no vias needed.
        assert!(vias.is_empty());
        assert_eq!(r.stats().routed_nets, 1);
        // Total routed length covers the 1000 nm span.
        let length: f64 = wires
            .iter()
            .map(|w| w.rect.height().max(w.rect.width()))
            .sum();
        assert!(length >= 1000.0);
    }

    #[test]
    fn l_shaped_route_prefers_layer_directions() {
        let mut r = router(2000.0, 2000.0);
        let (wires, vias) = r
            .route(&request("B", 2, &[(0, (0.0, 0.0)), (0, (1000.0, 1000.0))]))
            .unwrap();
        assert!(!wires.is_empty());
        // The horizontal leg should end up on the horizontal-preferred M3,
        // which requires at least one via.
        assert!(!vias.is_empty());
        assert!(wires.iter().any(|w| w.layer == "M3"));
    }

    #[test]
    fn multi_terminal_net_builds_a_tree() {
        let mut r = router(2000.0, 2000.0);
        let (wires, _vias) = r
            .route(&request(
                "CLK",
                3,
                &[(0, (0.0, 0.0)), (0, (0.0, 1500.0)), (0, (1500.0, 0.0))],
            ))
            .unwrap();
        let length: f64 = wires
            .iter()
            .map(|w| w.rect.height().max(w.rect.width()))
            .sum();
        // A Steiner-ish tree should be much shorter than routing both sinks
        // independently from scratch twice over.
        assert!(length >= 3000.0);
        assert!(length < 6000.0);
    }

    #[test]
    fn obstacles_force_detours() {
        let mut r = router(2000.0, 2000.0);
        // Wall across the middle of every layer except a gap at x=1900.
        for layer in 0..3 {
            r.grid_mut()
                .block_rect(layer, &Rect::new(0.0, 900.0, 1700.0, 1100.0));
        }
        let (wires, _) = r
            .route(&request("D", 4, &[(0, (0.0, 0.0)), (0, (0.0, 2000.0))]))
            .unwrap();
        let length: f64 = wires
            .iter()
            .map(|w| w.rect.height().max(w.rect.width()))
            .sum();
        // Must detour around the wall: noticeably longer than the direct 2000.
        assert!(length > 3000.0, "detour length {length}");
    }

    #[test]
    fn fully_blocked_net_is_unroutable() {
        let mut r = router(1000.0, 1000.0);
        for layer in 0..3 {
            r.grid_mut()
                .block_rect(layer, &Rect::new(0.0, 400.0, 1000.0, 600.0));
        }
        let err = r
            .route(&request("E", 5, &[(0, (0.0, 0.0)), (0, (0.0, 1000.0))]))
            .unwrap_err();
        assert!(matches!(err, LayoutError::Unroutable { net, .. } if net == "E"));
    }

    #[test]
    fn nets_do_not_short_each_other() {
        let mut r = router(2000.0, 2000.0);
        let (wires_a, _) = r
            .route(&request("A", 1, &[(0, (500.0, 0.0)), (0, (500.0, 2000.0))]))
            .unwrap();
        let (wires_b, _) = r
            .route(&request("B", 2, &[(1, (0.0, 500.0)), (1, (2000.0, 500.0))]))
            .unwrap();
        // The second net crosses the first; it must not reuse layer-0 nodes
        // owned by net A at the crossing.
        for wa in &wires_a {
            for wb in &wires_b {
                if wa.layer == wb.layer {
                    assert!(
                        !wa.rect.overlaps(&wb.rect),
                        "nets A and B short on {}",
                        wa.layer
                    );
                }
            }
        }
    }

    #[test]
    fn single_terminal_nets_need_no_wires() {
        let mut r = router(1000.0, 1000.0);
        let (wires, vias) = r.route(&request("F", 9, &[(0, (100.0, 100.0))])).unwrap();
        assert!(wires.is_empty());
        assert!(vias.is_empty());
    }

    #[test]
    fn bad_metadata_is_rejected() {
        let grid = RoutingGrid::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), 100.0, 2).unwrap();
        assert!(MazeRouter::new(
            grid.clone(),
            vec!["M2".into()],
            vec![false, true],
            vec![50.0, 50.0]
        )
        .is_err());
        assert!(MazeRouter::new(
            grid,
            vec!["M2".into(), "M3".into()],
            vec![false, true],
            vec![50.0, 0.0]
        )
        .is_err());
    }
}
