//! # acim-layout
//!
//! The template-based hierarchical placer and router of EasyACIM
//! (Sections 2.3 and 3.3, Figure 7 of the paper).
//!
//! The flow follows the paper's strategy: manually designed leaf cells
//! ("Std" layout cells from `acim-cell`) are never opened; each hierarchy
//! level only places whole blocks and routes the interconnect between them,
//! bottom-up:
//!
//! 1. **Column template** ([`mod@column`]) — the `H / L` local arrays (each `L`
//!    SRAM cells plus one compute cell), the CMOS switch, the comparator and
//!    the SAR logic/flip-flops are stacked deterministically into a column
//!    block; the read bit-line and the power rails use pre-defined routing
//!    tracks, the remaining intra-column nets are routed by the grid-based
//!    maze router ([`router`]).
//! 2. **Macro assembly** ([`flow`]) — `W` copies of the column template are
//!    abutted, the input/output buffer peripheries are placed, the shared
//!    word-lines and control nets are routed on pre-defined horizontal
//!    tracks, and the power grid is dropped on the top metals.
//! 3. **Checks and output** — a lightweight DRC ([`drc`]) verifies spacing
//!    and overlap rules, and the result can be written as text GDS/DEF
//!    ([`gds`]); [`metrics`] extracts the dimensions and F²/bit density the
//!    paper reports in Figure 8.
//!
//! General-purpose pieces — the annealing placer ([`placer`]) and the 3-D
//! grid maze router — are exposed so the ablation benchmarks can exercise
//! them in isolation (e.g. routing with and without pre-defined tracks).
//!
//! # Example
//!
//! ```
//! use acim_arch::AcimSpec;
//! use acim_cell::CellLibrary;
//! use acim_layout::LayoutFlow;
//! use acim_tech::Technology;
//!
//! # fn main() -> Result<(), acim_layout::LayoutError> {
//! let tech = Technology::s28();
//! let library = CellLibrary::s28_default(&tech);
//! let spec = AcimSpec::from_dimensions(32, 8, 4, 3)?;
//! let result = LayoutFlow::new(&tech, &library).generate(&spec)?;
//! assert!(result.metrics.core_area_f2_per_bit > 1000.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod column;
pub mod db;
pub mod drc;
pub mod error;
pub mod flow;
pub mod gds;
pub mod grid;
pub mod metrics;
pub mod placer;
pub mod router;

pub use column::ColumnTemplate;
pub use db::{Layout, LayoutPin, PlacedInstance, Via, Wire};
pub use drc::{check_layout, DrcReport, DrcViolation};
pub use error::LayoutError;
pub use flow::{LayoutFlow, MacroLayout};
pub use gds::{write_def, write_gds_text};
pub use grid::RoutingGrid;
pub use metrics::LayoutMetrics;
pub use placer::{AnnealingPlacer, PlacementItem, PlacerConfig};
pub use router::{MazeRouter, RouteRequest, RouterStats};
