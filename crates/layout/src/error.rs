//! Error types of the layout crate.

use std::error::Error;
use std::fmt;

use acim_arch::ArchError;
use acim_cell::CellError;
use acim_netlist::NetlistError;

/// Errors produced by placement, routing or layout assembly.
#[derive(Debug, Clone, PartialEq)]
pub enum LayoutError {
    /// A net could not be routed within the available resources.
    Unroutable {
        /// Net name.
        net: String,
        /// Context (block or level being routed).
        context: String,
    },
    /// Placement could not fit the blocks into the given region.
    PlacementOverflow {
        /// Context description.
        context: String,
    },
    /// A configuration or geometric parameter was invalid.
    InvalidParameter {
        /// Parameter name.
        name: String,
        /// Why it was rejected.
        reason: String,
    },
    /// An error bubbled up from the cell library.
    Cell(CellError),
    /// An error bubbled up from the netlist crate.
    Netlist(NetlistError),
    /// An error bubbled up from the architecture crate.
    Arch(ArchError),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::Unroutable { net, context } => {
                write!(f, "net `{net}` could not be routed in {context}")
            }
            LayoutError::PlacementOverflow { context } => {
                write!(f, "placement does not fit in {context}")
            }
            LayoutError::InvalidParameter { name, reason } => {
                write!(f, "invalid layout parameter `{name}`: {reason}")
            }
            LayoutError::Cell(err) => write!(f, "cell library error: {err}"),
            LayoutError::Netlist(err) => write!(f, "netlist error: {err}"),
            LayoutError::Arch(err) => write!(f, "architecture error: {err}"),
        }
    }
}

impl Error for LayoutError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LayoutError::Cell(err) => Some(err),
            LayoutError::Netlist(err) => Some(err),
            LayoutError::Arch(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CellError> for LayoutError {
    fn from(err: CellError) -> Self {
        LayoutError::Cell(err)
    }
}

impl From<NetlistError> for LayoutError {
    fn from(err: NetlistError) -> Self {
        LayoutError::Netlist(err)
    }
}

impl From<ArchError> for LayoutError {
    fn from(err: ArchError) -> Self {
        LayoutError::Arch(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = LayoutError::Unroutable {
            net: "RBL".into(),
            context: "COLUMN".into(),
        };
        assert!(e.to_string().contains("RBL"));
        let e: LayoutError = CellError::UnknownCell("X".into()).into();
        assert!(e.to_string().contains("cell library error"));
        let e: LayoutError = ArchError::invalid_spec("a", "b").into();
        assert!(e.to_string().contains("architecture error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LayoutError>();
    }
}
