//! Lightweight design-rule checking.
//!
//! A small but real subset of a DRC deck, sufficient to catch the mistakes
//! a placer/router can actually make in this flow:
//!
//! * placed instances must not overlap,
//! * wires of different nets on the same layer must keep the layer's
//!   minimum spacing,
//! * wires must meet the layer's minimum width,
//! * everything must stay inside the layout boundary.

use acim_tech::Technology;

use crate::db::Layout;

/// One rule violation.
#[derive(Debug, Clone, PartialEq)]
pub enum DrcViolation {
    /// Two placed instances overlap.
    InstanceOverlap {
        /// First instance name.
        a: String,
        /// Second instance name.
        b: String,
    },
    /// Two wires of different nets on the same layer are closer than the
    /// minimum spacing.
    SpacingViolation {
        /// Layer name.
        layer: String,
        /// First net.
        net_a: String,
        /// Second net.
        net_b: String,
        /// Measured spacing in nanometres.
        spacing: f64,
        /// Required spacing in nanometres.
        required: f64,
    },
    /// A wire is narrower than the layer's minimum width.
    WidthViolation {
        /// Layer name.
        layer: String,
        /// Net name.
        net: String,
        /// Measured width in nanometres.
        width: f64,
        /// Required width in nanometres.
        required: f64,
    },
    /// Geometry extends outside the layout boundary.
    OutsideBoundary {
        /// Description of the offending object.
        what: String,
    },
}

/// The result of a DRC run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DrcReport {
    /// All violations found.
    pub violations: Vec<DrcViolation>,
    /// Number of objects checked (instances + wires).
    pub checked_objects: usize,
}

impl DrcReport {
    /// Returns `true` when no violations were found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the checks on a layout.
pub fn check_layout(layout: &Layout, tech: &Technology) -> DrcReport {
    let mut report = DrcReport {
        checked_objects: layout.instances.len() + layout.wires.len(),
        ..Default::default()
    };

    // Instance overlap and boundary containment.
    let boundaries: Vec<_> = layout
        .instances
        .iter()
        .map(|i| (i.name.clone(), i.boundary()))
        .collect();
    for (i, (name_a, rect_a)) in boundaries.iter().enumerate() {
        if !layout.boundary.contains_rect(rect_a) {
            report.violations.push(DrcViolation::OutsideBoundary {
                what: format!("instance {name_a}"),
            });
        }
        for (name_b, rect_b) in boundaries.iter().skip(i + 1) {
            if rect_a.overlaps(rect_b) {
                report.violations.push(DrcViolation::InstanceOverlap {
                    a: name_a.clone(),
                    b: name_b.clone(),
                });
            }
        }
    }

    // Wire width, spacing and containment, grouped per layer.
    let mut by_layer: std::collections::BTreeMap<&str, Vec<usize>> = Default::default();
    for (index, wire) in layout.wires.iter().enumerate() {
        by_layer.entry(wire.layer.as_str()).or_default().push(index);
    }
    for (layer, indices) in by_layer {
        let Ok(rule) = tech.rules().layer_rule(layer) else {
            continue;
        };
        for &i in &indices {
            let wire = &layout.wires[i];
            let width = wire.rect.width().min(wire.rect.height());
            if width + 1e-9 < rule.min_width.value() {
                report.violations.push(DrcViolation::WidthViolation {
                    layer: layer.to_string(),
                    net: wire.net.clone(),
                    width,
                    required: rule.min_width.value(),
                });
            }
            if !layout.boundary.contains_rect(&wire.rect) {
                report.violations.push(DrcViolation::OutsideBoundary {
                    what: format!("wire {} on {}", wire.net, layer),
                });
            }
        }
        for (pos, &i) in indices.iter().enumerate() {
            for &j in indices.iter().skip(pos + 1) {
                let (wa, wb) = (&layout.wires[i], &layout.wires[j]);
                if wa.net == wb.net {
                    continue;
                }
                let spacing = wa.rect.spacing_to(&wb.rect);
                if wa.rect.overlaps(&wb.rect) || spacing + 1e-9 < rule.min_spacing.value() {
                    report.violations.push(DrcViolation::SpacingViolation {
                        layer: layer.to_string(),
                        net_a: wa.net.clone(),
                        net_b: wb.net.clone(),
                        spacing,
                        required: rule.min_spacing.value(),
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnTemplate;
    use crate::db::{PlacedInstance, Wire};
    use acim_arch::AcimSpec;
    use acim_cell::{CellLibrary, Orientation, Point, Rect};

    fn tech() -> Technology {
        Technology::s28()
    }

    #[test]
    fn clean_layout_passes() {
        let mut layout = Layout::new("clean", 10_000.0, 10_000.0);
        layout.wires.push(Wire {
            net: "A".into(),
            layer: "M2".into(),
            rect: Rect::new(0.0, 0.0, 50.0, 5000.0),
        });
        layout.wires.push(Wire {
            net: "B".into(),
            layer: "M2".into(),
            rect: Rect::new(500.0, 0.0, 550.0, 5000.0),
        });
        let report = check_layout(&layout, &tech());
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.checked_objects, 2);
    }

    #[test]
    fn overlapping_instances_are_caught() {
        let mut layout = Layout::new("bad", 10_000.0, 10_000.0);
        for (name, x) in [("X0", 0.0), ("X1", 500.0)] {
            layout.instances.push(PlacedInstance {
                name: name.into(),
                cell: "SRAM8T".into(),
                origin: Point::new(x, 0.0),
                orientation: Orientation::R0,
                width: 2000.0,
                height: 632.0,
            });
        }
        let report = check_layout(&layout, &tech());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, DrcViolation::InstanceOverlap { .. })));
    }

    #[test]
    fn spacing_and_width_violations_are_caught() {
        let mut layout = Layout::new("bad", 10_000.0, 10_000.0);
        // Two different nets 10 nm apart on M2 (minimum spacing is 50 nm).
        layout.wires.push(Wire {
            net: "A".into(),
            layer: "M2".into(),
            rect: Rect::new(0.0, 0.0, 50.0, 1000.0),
        });
        layout.wires.push(Wire {
            net: "B".into(),
            layer: "M2".into(),
            rect: Rect::new(60.0, 0.0, 110.0, 1000.0),
        });
        // A 20 nm-wide wire on M3 (minimum width 56 nm).
        layout.wires.push(Wire {
            net: "C".into(),
            layer: "M3".into(),
            rect: Rect::new(0.0, 2000.0, 1000.0, 2020.0),
        });
        let report = check_layout(&layout, &tech());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, DrcViolation::SpacingViolation { .. })));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, DrcViolation::WidthViolation { .. })));
    }

    #[test]
    fn same_net_wires_may_touch() {
        let mut layout = Layout::new("ok", 10_000.0, 10_000.0);
        layout.wires.push(Wire {
            net: "A".into(),
            layer: "M2".into(),
            rect: Rect::new(0.0, 0.0, 50.0, 1000.0),
        });
        layout.wires.push(Wire {
            net: "A".into(),
            layer: "M2".into(),
            rect: Rect::new(0.0, 950.0, 1000.0, 1000.0),
        });
        assert!(check_layout(&layout, &tech()).is_clean());
    }

    #[test]
    fn geometry_outside_the_boundary_is_caught() {
        let mut layout = Layout::new("bad", 1000.0, 1000.0);
        layout.wires.push(Wire {
            net: "A".into(),
            layer: "M2".into(),
            rect: Rect::new(900.0, 0.0, 1500.0, 60.0),
        });
        let report = check_layout(&layout, &tech());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, DrcViolation::OutsideBoundary { .. })));
    }

    #[test]
    fn generated_column_template_is_drc_clean() {
        let technology = tech();
        let library = CellLibrary::s28_default(&technology);
        let spec = AcimSpec::from_dimensions(32, 8, 4, 3).unwrap();
        let template = ColumnTemplate::build(&spec, &technology, &library).unwrap();
        let report = check_layout(&template.layout, &technology);
        assert!(
            report.is_clean(),
            "column template has violations: {:?}",
            report.violations.iter().take(5).collect::<Vec<_>>()
        );
    }
}
