//! Typed, composable flow stages.
//!
//! The paper's Figure-4 flow used to be a hard-coded sequence inside
//! `TopFlowController::run`.  This module breaks it into five [`Stage`]s
//! with typed inputs and outputs —
//!
//! ```text
//! ExploreStage   ()         -> Explored     (NSGA-II Pareto frontier)
//! DistillStage   Explored   -> Distilled    (user requirements applied)
//! NetlistStage   Distilled  -> Netlisted    (hierarchical netlists)
//! LayoutStage    Netlisted  -> LaidOut      (template-based P&R)
//! ChipStage      ()         -> ChipFlowResult (multi-macro composition)
//! ```
//!
//! — chained with [`Stage::then`], which only compiles when the output
//! type of one stage is the input type of the next.  The controller in
//! [`crate::flow`] and the multi-tenant service in [`crate::service`]
//! both assemble their pipelines from these pieces; the stages accept
//! [`ExploreOptions`] (shared cache, warm-start seeds) and an optional
//! [`ProgressObserver`], which is how one long-lived service thread
//! observes many concurrent explorations.

use std::sync::Arc;
use std::time::{Duration, Instant};

use acim_cell::CellLibrary;
use acim_chip::simulate_network;
use acim_dse::{
    ChipExplorer, DesignPoint, DesignSpaceExplorer, DseConfig, ExploreOptions, ParetoFrontierSet,
    UserRequirements,
};
use acim_layout::LayoutFlow;
use acim_moga::EvalStats;
use acim_netlist::{design_stats, write_spice, Design, DesignStats, NetlistGenerator};
use acim_tech::Technology;

use crate::chip::{ChipFlowConfig, ChipFlowResult};
use crate::error::FlowError;
use crate::flow::GeneratedDesign;

/// One progress tick from a running stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageProgress {
    /// Name of the reporting stage (`"explore"`, `"chip"`, …).
    pub stage: &'static str,
    /// Units of work finished so far (generations for the exploration
    /// stages, designs for netlist/layout).
    pub completed: usize,
    /// Total units of work the stage will perform.
    pub total: usize,
}

/// A shareable progress callback: stages invoke it after every unit of
/// work.  `Arc` so one observer can watch several concurrently running
/// stages (the service's job handles are built on this).
pub type ProgressObserver = Arc<dyn Fn(StageProgress) + Send + Sync>;

/// One typed step of the EasyACIM flow.
///
/// A stage consumes its `Input` and produces its `Output` (or a
/// [`FlowError`]); [`Stage::then`] chains two stages into a new one when
/// the types line up, so mis-ordered pipelines fail to compile instead of
/// failing at run time.
pub trait Stage {
    /// What the stage consumes.
    type Input;
    /// What the stage produces.
    type Output;

    /// Short stable name, used in progress events and reports.
    fn name(&self) -> &'static str;

    /// Executes the stage.
    ///
    /// # Errors
    ///
    /// Returns the stage's [`FlowError`] on failure.
    fn run(&self, input: Self::Input) -> Result<Self::Output, FlowError>;

    /// Chains `next` after this stage: the result is itself a [`Stage`]
    /// from this stage's input to `next`'s output.
    fn then<Next>(self, next: Next) -> Then<Self, Next>
    where
        Self: Sized,
        Next: Stage<Input = Self::Output>,
    {
        Then {
            first: self,
            second: next,
        }
    }
}

/// Two stages chained by [`Stage::then`].
#[derive(Debug, Clone)]
pub struct Then<A, B> {
    first: A,
    second: B,
}

impl<A, B> Stage for Then<A, B>
where
    A: Stage,
    B: Stage<Input = A::Output>,
{
    type Input = A::Input;
    type Output = B::Output;

    fn name(&self) -> &'static str {
        "pipeline"
    }

    fn run(&self, input: Self::Input) -> Result<Self::Output, FlowError> {
        self.second.run(self.first.run(input)?)
    }
}

/// Output of [`ExploreStage`]: the raw Pareto frontier.
#[derive(Debug, Clone)]
pub struct Explored {
    /// The full frontier set (points + evaluation-engine stats).
    pub frontier: ParetoFrontierSet,
    /// Wall-clock time of the exploration.
    pub exploration_time: Duration,
}

/// Output of [`DistillStage`]: the frontier after user distillation.
#[derive(Debug, Clone)]
pub struct Distilled {
    /// The full Pareto frontier found by the explorer.
    pub frontier: Vec<DesignPoint>,
    /// The frontier points surviving the user requirements.
    pub distilled: Vec<DesignPoint>,
    /// Evaluation-engine statistics of the exploration.
    pub engine: EvalStats,
    /// Wall-clock time of the exploration.
    pub exploration_time: Duration,
}

/// One netlisted design, produced by [`NetlistStage`].
#[derive(Debug, Clone)]
pub struct NetlistedDesign {
    /// The design point (spec + estimated metrics).
    pub point: DesignPoint,
    /// The hierarchical netlist.
    pub netlist: Design,
    /// Netlist statistics (cell/transistor counts).
    pub stats: DesignStats,
    /// SPICE text, when the stage was asked to emit files.
    pub spice: Option<String>,
    /// Wall-clock time spent generating the netlist.
    pub netlist_time: Duration,
}

/// Output of [`NetlistStage`]: distillation results plus one netlist per
/// selected design.
#[derive(Debug, Clone)]
pub struct Netlisted {
    /// The full Pareto frontier found by the explorer.
    pub frontier: Vec<DesignPoint>,
    /// The frontier points surviving the user requirements.
    pub distilled: Vec<DesignPoint>,
    /// Evaluation-engine statistics of the exploration.
    pub engine: EvalStats,
    /// Wall-clock time of the exploration.
    pub exploration_time: Duration,
    /// The netlisted designs (bounded by the stage's layout limit).
    pub netlists: Vec<NetlistedDesign>,
}

/// Output of [`LayoutStage`] — everything the macro flow produces.
#[derive(Debug, Clone)]
pub struct LaidOut {
    /// The full Pareto frontier found by the explorer.
    pub frontier: Vec<DesignPoint>,
    /// The frontier points surviving the user requirements.
    pub distilled: Vec<DesignPoint>,
    /// Evaluation-engine statistics of the exploration.
    pub engine: EvalStats,
    /// Wall-clock time of the exploration.
    pub exploration_time: Duration,
    /// Fully generated designs (netlist + layout each).
    pub designs: Vec<GeneratedDesign>,
}

/// The MOGA design-space exploration stage (`() -> Explored`).
#[derive(Clone)]
pub struct ExploreStage {
    config: DseConfig,
    options: ExploreOptions,
    observer: Option<ProgressObserver>,
}

impl ExploreStage {
    /// Creates the stage for one exploration configuration.
    pub fn new(config: DseConfig) -> Self {
        Self {
            config,
            options: ExploreOptions::default(),
            observer: None,
        }
    }

    /// Injects a shared cache / warm-start seeds.
    #[must_use]
    pub fn with_options(mut self, options: ExploreOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a progress observer (one event per generation).
    #[must_use]
    pub fn with_observer(mut self, observer: ProgressObserver) -> Self {
        self.observer = Some(observer);
        self
    }
}

impl std::fmt::Debug for ExploreStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExploreStage")
            .field("config", &self.config)
            .field("options", &self.options)
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

impl Stage for ExploreStage {
    type Input = ();
    type Output = Explored;

    fn name(&self) -> &'static str {
        "explore"
    }

    fn run(&self, (): ()) -> Result<Explored, FlowError> {
        let start = Instant::now();
        let explorer = DesignSpaceExplorer::new(self.config.clone())?;
        let total = self.config.generations;
        let observer = self.observer.clone();
        let frontier = explorer.explore_with(&self.options, |generation| {
            if let Some(observer) = &observer {
                observer(StageProgress {
                    stage: "explore",
                    completed: generation + 1,
                    total,
                });
            }
        })?;
        Ok(Explored {
            frontier,
            exploration_time: start.elapsed(),
        })
    }
}

/// The user-distillation stage (`Explored -> Distilled`).
#[derive(Debug, Clone)]
pub struct DistillStage {
    requirements: UserRequirements,
}

impl DistillStage {
    /// Creates the stage from the user's requirements.
    pub fn new(requirements: UserRequirements) -> Self {
        Self { requirements }
    }
}

impl Stage for DistillStage {
    type Input = Explored;
    type Output = Distilled;

    fn name(&self) -> &'static str {
        "distill"
    }

    fn run(&self, input: Explored) -> Result<Distilled, FlowError> {
        let exploration_time = input.exploration_time;
        let engine = input.frontier.engine.clone();
        let frontier = input.frontier.into_points();
        let distilled = self.requirements.distill(&frontier);
        if distilled.is_empty() {
            return Err(FlowError::EmptyDistilledSet);
        }
        Ok(Distilled {
            frontier,
            distilled,
            engine,
            exploration_time,
        })
    }
}

/// The template-based netlist-generation stage (`Distilled -> Netlisted`).
///
/// Generates a netlist for up to `limit` distilled designs (`0` = all) —
/// the same bound the layout stage honours, since netlists exist to be
/// laid out.
pub struct NetlistStage<'a> {
    library: &'a CellLibrary,
    emit_spice: bool,
    limit: usize,
    observer: Option<ProgressObserver>,
}

impl<'a> NetlistStage<'a> {
    /// Creates the stage over a cell library.
    pub fn new(library: &'a CellLibrary, emit_spice: bool, limit: usize) -> Self {
        Self {
            library,
            emit_spice,
            limit,
            observer: None,
        }
    }

    /// Attaches a progress observer (one event per netlisted design).
    #[must_use]
    pub fn with_observer(mut self, observer: ProgressObserver) -> Self {
        self.observer = Some(observer);
        self
    }
}

impl std::fmt::Debug for NetlistStage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetlistStage")
            .field("emit_spice", &self.emit_spice)
            .field("limit", &self.limit)
            .finish_non_exhaustive()
    }
}

impl Stage for NetlistStage<'_> {
    type Input = Distilled;
    type Output = Netlisted;

    fn name(&self) -> &'static str {
        "netlist"
    }

    fn run(&self, input: Distilled) -> Result<Netlisted, FlowError> {
        let limit = if self.limit == 0 {
            input.distilled.len()
        } else {
            self.limit.min(input.distilled.len())
        };
        let generator = NetlistGenerator::new(self.library);
        let mut netlists = Vec::with_capacity(limit);
        for (index, point) in input.distilled.iter().take(limit).enumerate() {
            let start = Instant::now();
            let netlist = generator.generate(&point.spec)?;
            let stats = design_stats(&netlist, self.library)?;
            let spice = if self.emit_spice {
                Some(write_spice(&netlist, self.library)?)
            } else {
                None
            };
            netlists.push(NetlistedDesign {
                point: *point,
                netlist,
                stats,
                spice,
                netlist_time: start.elapsed(),
            });
            if let Some(observer) = &self.observer {
                observer(StageProgress {
                    stage: "netlist",
                    completed: index + 1,
                    total: limit,
                });
            }
        }
        Ok(Netlisted {
            frontier: input.frontier,
            distilled: input.distilled,
            engine: input.engine,
            exploration_time: input.exploration_time,
            netlists,
        })
    }
}

/// The template-based place-and-route stage (`Netlisted -> LaidOut`).
pub struct LayoutStage<'a> {
    technology: &'a Technology,
    library: &'a CellLibrary,
    observer: Option<ProgressObserver>,
}

impl<'a> LayoutStage<'a> {
    /// Creates the stage over a technology and cell library.
    pub fn new(technology: &'a Technology, library: &'a CellLibrary) -> Self {
        Self {
            technology,
            library,
            observer: None,
        }
    }

    /// Attaches a progress observer (one event per laid-out design).
    #[must_use]
    pub fn with_observer(mut self, observer: ProgressObserver) -> Self {
        self.observer = Some(observer);
        self
    }
}

impl std::fmt::Debug for LayoutStage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayoutStage").finish_non_exhaustive()
    }
}

impl Stage for LayoutStage<'_> {
    type Input = Netlisted;
    type Output = LaidOut;

    fn name(&self) -> &'static str {
        "layout"
    }

    fn run(&self, input: Netlisted) -> Result<LaidOut, FlowError> {
        let flow = LayoutFlow::new(self.technology, self.library);
        let total = input.netlists.len();
        let mut designs = Vec::with_capacity(total);
        for (index, netlisted) in input.netlists.into_iter().enumerate() {
            let start = Instant::now();
            let layout = flow.generate(&netlisted.point.spec)?;
            designs.push(GeneratedDesign {
                point: netlisted.point,
                netlist: netlisted.netlist,
                netlist_stats: netlisted.stats,
                layout,
                spice: netlisted.spice,
                generation_time: netlisted.netlist_time + start.elapsed(),
            });
            if let Some(observer) = &self.observer {
                observer(StageProgress {
                    stage: "layout",
                    completed: index + 1,
                    total,
                });
            }
        }
        Ok(LaidOut {
            frontier: input.frontier,
            distilled: input.distilled,
            engine: input.engine,
            exploration_time: input.exploration_time,
            designs,
        })
    }
}

/// The chip-composition stage (`() -> ChipFlowResult`): multi-macro
/// co-exploration plus optional behavioural validation of the best chip.
///
/// Input-free like [`ExploreStage`]: it depends only on its
/// configuration, which is what lets [`crate::flow::TopFlowController`]
/// overlap it with the netlist/layout stages on the persistent pool.
#[derive(Clone)]
pub struct ChipStage {
    config: ChipFlowConfig,
    options: ExploreOptions,
    observer: Option<ProgressObserver>,
}

impl ChipStage {
    /// Creates the stage.
    pub fn new(config: ChipFlowConfig) -> Self {
        Self {
            config,
            options: ExploreOptions::default(),
            observer: None,
        }
    }

    /// Injects a shared cache / warm-start seeds.
    #[must_use]
    pub fn with_options(mut self, options: ExploreOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a progress observer (one event per generation).
    #[must_use]
    pub fn with_observer(mut self, observer: ProgressObserver) -> Self {
        self.observer = Some(observer);
        self
    }
}

impl std::fmt::Debug for ChipStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChipStage")
            .field("config", &self.config)
            .field("options", &self.options)
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

impl Stage for ChipStage {
    type Input = ();
    type Output = ChipFlowResult;

    fn name(&self) -> &'static str {
        "chip"
    }

    fn run(&self, (): ()) -> Result<ChipFlowResult, FlowError> {
        let start = Instant::now();
        let explorer = ChipExplorer::new(self.config.dse.clone())?;
        let total = self.config.dse.generations;
        let observer = self.observer.clone();
        let frontier = explorer.explore_with(&self.options, |generation| {
            if let Some(observer) = &observer {
                observer(StageProgress {
                    stage: "chip",
                    completed: generation + 1,
                    total,
                });
            }
        })?;
        let engine = frontier.engine.clone();
        let front = frontier.into_points();
        let exploration_time = start.elapsed();

        let mut result = ChipFlowResult {
            front,
            engine,
            exploration_time,
            validation: None,
        };
        if self.config.validate_best {
            if let Some(best) = result.best_throughput() {
                let report = simulate_network(
                    &best.chip,
                    explorer.problem().network(),
                    self.config.validation_seed,
                )?;
                result.validation = Some(report);
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn quick_dse() -> DseConfig {
        DseConfig {
            array_size: 4 * 1024,
            population_size: 24,
            generations: 8,
            ..Default::default()
        }
    }

    #[test]
    fn explore_then_distill_composes() {
        let events = Arc::new(AtomicUsize::new(0));
        let counter = events.clone();
        let observer: ProgressObserver = Arc::new(move |event: StageProgress| {
            assert_eq!(event.stage, "explore");
            assert_eq!(event.total, 8);
            counter.fetch_add(1, Ordering::Relaxed);
        });
        let pipeline = ExploreStage::new(quick_dse())
            .with_observer(observer)
            .then(DistillStage::new(UserRequirements::none()));
        assert_eq!(pipeline.name(), "pipeline");
        let distilled = pipeline.run(()).unwrap();
        assert!(!distilled.frontier.is_empty());
        assert!(!distilled.distilled.is_empty());
        assert!(distilled.engine.evaluations > 0);
        assert_eq!(events.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn distill_can_reject_everything() {
        let requirements = UserRequirements {
            min_snr_db: Some(500.0),
            ..UserRequirements::none()
        };
        let pipeline = ExploreStage::new(quick_dse()).then(DistillStage::new(requirements));
        assert!(matches!(
            pipeline.run(()),
            Err(FlowError::EmptyDistilledSet)
        ));
    }

    #[test]
    fn netlist_and_layout_stages_honour_the_limit() {
        let technology = Technology::s28();
        let library = CellLibrary::s28_default(&technology);
        let pipeline = ExploreStage::new(quick_dse())
            .then(DistillStage::new(UserRequirements::none()))
            .then(NetlistStage::new(&library, false, 1))
            .then(LayoutStage::new(&technology, &library));
        let laid = pipeline.run(()).unwrap();
        assert_eq!(laid.designs.len(), 1);
        let design = &laid.designs[0];
        assert_eq!(
            design.netlist_stats.sram_cells,
            design.point.spec.array_size()
        );
        assert!(design.spice.is_none());
        assert!(design.generation_time > Duration::ZERO);
    }

    #[test]
    fn stage_names_are_stable() {
        let technology = Technology::s28();
        let library = CellLibrary::s28_default(&technology);
        assert_eq!(ExploreStage::new(quick_dse()).name(), "explore");
        assert_eq!(
            DistillStage::new(UserRequirements::none()).name(),
            "distill"
        );
        assert_eq!(NetlistStage::new(&library, false, 1).name(), "netlist");
        assert_eq!(LayoutStage::new(&technology, &library).name(), "layout");
    }
}
