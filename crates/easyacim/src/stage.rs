//! Typed, composable flow stages.
//!
//! The paper's Figure-4 flow used to be a hard-coded sequence inside
//! `TopFlowController::run`.  This module breaks it into five [`Stage`]s
//! with typed inputs and outputs —
//!
//! ```text
//! ExploreStage   ()         -> Explored     (NSGA-II Pareto frontier)
//! DistillStage   Explored   -> Distilled    (user requirements applied)
//! NetlistStage   Distilled  -> Netlisted    (hierarchical netlists)
//! LayoutStage    Netlisted  -> LaidOut      (template-based P&R)
//! ChipStage      ()         -> ChipFlowResult (multi-macro composition)
//! ```
//!
//! — chained with [`Stage::then`], which only compiles when the output
//! type of one stage is the input type of the next.  The controller in
//! [`crate::flow`] and the multi-tenant service in [`crate::service`]
//! both assemble their pipelines from these pieces; the stages accept
//! [`ExploreOptions`] (shared cache, warm-start seeds) and an optional
//! [`ProgressObserver`], which is how one long-lived service thread
//! observes many concurrent explorations.

use std::sync::Arc;
use std::time::{Duration, Instant};

use acim_cell::CellLibrary;
use acim_chip::{simulate_mix, simulate_network};
use acim_dse::{
    ChipExplorer, DesignPoint, DesignSpaceExplorer, DseConfig, ExploreOptions, ParetoFrontierSet,
    UserRequirements,
};
use acim_layout::LayoutFlow;
use acim_moga::{CancelReason, CancelToken, EvalStats};
use acim_netlist::{design_stats, write_spice, Design, DesignStats, NetlistGenerator};
use acim_tech::Technology;
use acim_telemetry::{Histogram, SpanId, Telemetry};

use crate::chip::{ChipFlowConfig, ChipFlowResult};
use crate::error::FlowError;
use crate::flow::GeneratedDesign;

/// One progress tick from a running stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageProgress {
    /// Name of the reporting stage (`"explore"`, `"chip"`, …).
    pub stage: &'static str,
    /// Units of work finished so far (generations for the exploration
    /// stages, designs for netlist/layout).
    pub completed: usize,
    /// Total units of work the stage will perform.
    pub total: usize,
}

/// A shareable progress callback: stages invoke it after every unit of
/// work.  `Arc` so one observer can watch several concurrently running
/// stages (the service's job handles are built on this).
pub type ProgressObserver = Arc<dyn Fn(StageProgress) + Send + Sync>;

/// Maps a tripped [`CancelToken`] to the matching [`FlowError`] variant,
/// tagging it with the interrupted stage's partial progress.
fn cancel_error(reason: CancelReason, completed: usize, total: usize) -> FlowError {
    match reason {
        CancelReason::Cancelled => FlowError::Cancelled { completed, total },
        CancelReason::DeadlineExceeded => FlowError::DeadlineExceeded { completed, total },
    }
}

/// One typed step of the EasyACIM flow.
///
/// A stage consumes its `Input` and produces its `Output` (or a
/// [`FlowError`]); [`Stage::then`] chains two stages into a new one when
/// the types line up, so mis-ordered pipelines fail to compile instead of
/// failing at run time.
pub trait Stage {
    /// What the stage consumes.
    type Input;
    /// What the stage produces.
    type Output;

    /// Short stable name, used in progress events and reports.
    fn name(&self) -> &'static str;

    /// Executes the stage.
    ///
    /// # Errors
    ///
    /// Returns the stage's [`FlowError`] on failure.
    fn run(&self, input: Self::Input) -> Result<Self::Output, FlowError>;

    /// Chains `next` after this stage: the result is itself a [`Stage`]
    /// from this stage's input to `next`'s output.
    fn then<Next>(self, next: Next) -> Then<Self, Next>
    where
        Self: Sized,
        Next: Stage<Input = Self::Output>,
    {
        Then {
            first: self,
            second: next,
        }
    }
}

/// Two stages chained by [`Stage::then`].
#[derive(Debug, Clone)]
pub struct Then<A, B> {
    first: A,
    second: B,
}

impl<A, B> Stage for Then<A, B>
where
    A: Stage,
    B: Stage<Input = A::Output>,
{
    type Input = A::Input;
    type Output = B::Output;

    fn name(&self) -> &'static str {
        "pipeline"
    }

    fn run(&self, input: Self::Input) -> Result<Self::Output, FlowError> {
        self.second.run(self.first.run(input)?)
    }
}

/// Telemetry context threaded through a pipeline assembly: the bundle to
/// record into, plus the span id stage spans are parented under
/// (typically a request's root span, so per-request span trees read
/// `request → stage → generation`).
#[derive(Debug, Clone)]
pub struct TraceContext {
    /// The telemetry bundle (metric registry + span recorder).
    pub telemetry: Telemetry,
    /// Parent span id for stage spans recorded under this context.
    pub parent: Option<SpanId>,
    stages: Arc<StageHistograms>,
}

impl TraceContext {
    /// A context recording root-level stage spans.
    pub fn new(telemetry: Telemetry) -> Self {
        Self::under(telemetry, None)
    }

    /// A context parenting stage spans under `parent`.
    pub fn under(telemetry: Telemetry, parent: Option<SpanId>) -> Self {
        let stages = Arc::new(StageHistograms::resolve(&telemetry));
        Self::with_stages(telemetry, parent, stages)
    }

    /// A context reusing already-resolved stage histograms — long-lived
    /// callers (the service) resolve them once and share the handle
    /// across every request's context instead of walking the registry
    /// per request.
    pub fn with_stages(
        telemetry: Telemetry,
        parent: Option<SpanId>,
        stages: Arc<StageHistograms>,
    ) -> Self {
        Self {
            telemetry,
            parent,
            stages,
        }
    }
}

/// Pre-resolved `stage_seconds{stage}` histogram handles for the known
/// pipeline stages, so an instrumented stage run costs an atomic
/// observation instead of a locked registry walk.
#[derive(Debug)]
pub struct StageHistograms {
    entries: [(&'static str, Histogram); 5],
}

impl StageHistograms {
    /// Registers (or re-fetches) the histogram of every known stage.
    pub fn resolve(telemetry: &Telemetry) -> Self {
        let histogram = |stage: &'static str| {
            let handle = telemetry.registry().histogram(
                "stage_seconds",
                "Wall-clock duration of one flow-stage run",
                &[("stage", stage)],
            );
            (stage, handle)
        };
        Self {
            entries: [
                histogram("explore"),
                histogram("distill"),
                histogram("netlist"),
                histogram("layout"),
                histogram("chip"),
            ],
        }
    }

    fn get(&self, stage: &str) -> Option<&Histogram> {
        self.entries
            .iter()
            .find(|(name, _)| *name == stage)
            .map(|(_, handle)| handle)
    }
}

/// A [`Stage`] wrapper that records one tracing span and one
/// `stage_seconds{stage=...}` duration-histogram observation per run.
///
/// With no context attached (`trace: None`) it is a pure pass-through, so
/// pipeline assemblies can wrap unconditionally and let the option decide
/// — telemetry stays observably passive either way.
#[derive(Debug, Clone)]
pub struct Instrumented<S> {
    inner: S,
    trace: Option<TraceContext>,
}

impl<S: Stage> Instrumented<S> {
    /// Wraps `inner`, recording into `trace` when present.
    pub fn new(inner: S, trace: Option<TraceContext>) -> Self {
        Self { inner, trace }
    }

    /// The wrapped stage.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Stage> Stage for Instrumented<S> {
    type Input = S::Input;
    type Output = S::Output;

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn run(&self, input: Self::Input) -> Result<Self::Output, FlowError> {
        let Some(trace) = &self.trace else {
            return self.inner.run(input);
        };
        let mut span = trace
            .telemetry
            .span_with_parent(self.inner.name(), trace.parent);
        let started = Instant::now();
        let result = self.inner.run(input);
        span.attr("ok", if result.is_ok() { "true" } else { "false" });
        let elapsed = started.elapsed();
        match trace.stages.get(self.inner.name()) {
            Some(histogram) => histogram.observe_duration(elapsed),
            None => trace
                .telemetry
                .registry()
                .histogram(
                    "stage_seconds",
                    "Wall-clock duration of one flow-stage run",
                    &[("stage", self.inner.name())],
                )
                .observe_duration(elapsed),
        }
        result
    }
}

/// Output of [`ExploreStage`]: the raw Pareto frontier.
#[derive(Debug, Clone)]
pub struct Explored {
    /// The full frontier set (points + evaluation-engine stats).
    pub frontier: ParetoFrontierSet,
    /// Wall-clock time of the exploration.
    pub exploration_time: Duration,
}

/// Output of [`DistillStage`]: the frontier after user distillation.
#[derive(Debug, Clone)]
pub struct Distilled {
    /// The full Pareto frontier found by the explorer.
    pub frontier: Vec<DesignPoint>,
    /// The frontier points surviving the user requirements.
    pub distilled: Vec<DesignPoint>,
    /// Evaluation-engine statistics of the exploration.
    pub engine: EvalStats,
    /// Wall-clock time of the exploration.
    pub exploration_time: Duration,
}

/// One netlisted design, produced by [`NetlistStage`].
#[derive(Debug, Clone)]
pub struct NetlistedDesign {
    /// The design point (spec + estimated metrics).
    pub point: DesignPoint,
    /// The hierarchical netlist.
    pub netlist: Design,
    /// Netlist statistics (cell/transistor counts).
    pub stats: DesignStats,
    /// SPICE text, when the stage was asked to emit files.
    pub spice: Option<String>,
    /// Wall-clock time spent generating the netlist.
    pub netlist_time: Duration,
}

/// Output of [`NetlistStage`]: distillation results plus one netlist per
/// selected design.
#[derive(Debug, Clone)]
pub struct Netlisted {
    /// The full Pareto frontier found by the explorer.
    pub frontier: Vec<DesignPoint>,
    /// The frontier points surviving the user requirements.
    pub distilled: Vec<DesignPoint>,
    /// Evaluation-engine statistics of the exploration.
    pub engine: EvalStats,
    /// Wall-clock time of the exploration.
    pub exploration_time: Duration,
    /// The netlisted designs (bounded by the stage's layout limit).
    pub netlists: Vec<NetlistedDesign>,
}

/// Output of [`LayoutStage`] — everything the macro flow produces.
#[derive(Debug, Clone)]
pub struct LaidOut {
    /// The full Pareto frontier found by the explorer.
    pub frontier: Vec<DesignPoint>,
    /// The frontier points surviving the user requirements.
    pub distilled: Vec<DesignPoint>,
    /// Evaluation-engine statistics of the exploration.
    pub engine: EvalStats,
    /// Wall-clock time of the exploration.
    pub exploration_time: Duration,
    /// Fully generated designs (netlist + layout each).
    pub designs: Vec<GeneratedDesign>,
}

/// The MOGA design-space exploration stage (`() -> Explored`).
#[derive(Clone)]
pub struct ExploreStage {
    config: DseConfig,
    options: ExploreOptions,
    observer: Option<ProgressObserver>,
}

impl ExploreStage {
    /// Creates the stage for one exploration configuration.
    pub fn new(config: DseConfig) -> Self {
        Self {
            config,
            options: ExploreOptions::default(),
            observer: None,
        }
    }

    /// Injects a shared cache / warm-start seeds.
    #[must_use]
    pub fn with_options(mut self, options: ExploreOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a progress observer (one event per generation).
    #[must_use]
    pub fn with_observer(mut self, observer: ProgressObserver) -> Self {
        self.observer = Some(observer);
        self
    }
}

impl std::fmt::Debug for ExploreStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExploreStage")
            .field("config", &self.config)
            .field("options", &self.options)
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

impl Stage for ExploreStage {
    type Input = ();
    type Output = Explored;

    fn name(&self) -> &'static str {
        "explore"
    }

    fn run(&self, (): ()) -> Result<Explored, FlowError> {
        let start = Instant::now();
        let explorer = DesignSpaceExplorer::new(self.config.clone())?;
        let total = self.config.generations;
        let observer = self.observer.clone();
        let frontier = explorer.explore_with(&self.options, |generation| {
            if let Some(observer) = &observer {
                observer(StageProgress {
                    stage: "explore",
                    completed: generation + 1,
                    total,
                });
            }
        })?;
        Ok(Explored {
            frontier,
            exploration_time: start.elapsed(),
        })
    }
}

/// The user-distillation stage (`Explored -> Distilled`).
#[derive(Debug, Clone)]
pub struct DistillStage {
    requirements: UserRequirements,
}

impl DistillStage {
    /// Creates the stage from the user's requirements.
    pub fn new(requirements: UserRequirements) -> Self {
        Self { requirements }
    }
}

impl Stage for DistillStage {
    type Input = Explored;
    type Output = Distilled;

    fn name(&self) -> &'static str {
        "distill"
    }

    fn run(&self, input: Explored) -> Result<Distilled, FlowError> {
        let exploration_time = input.exploration_time;
        let engine = input.frontier.engine.clone();
        let frontier = input.frontier.into_points();
        let distilled = self.requirements.distill(&frontier);
        if distilled.is_empty() {
            return Err(FlowError::EmptyDistilledSet);
        }
        Ok(Distilled {
            frontier,
            distilled,
            engine,
            exploration_time,
        })
    }
}

/// The template-based netlist-generation stage (`Distilled -> Netlisted`).
///
/// Generates a netlist for up to `limit` distilled designs (`0` = all) —
/// the same bound the layout stage honours, since netlists exist to be
/// laid out.
pub struct NetlistStage<'a> {
    library: &'a CellLibrary,
    emit_spice: bool,
    limit: usize,
    observer: Option<ProgressObserver>,
    cancel: Option<CancelToken>,
}

impl<'a> NetlistStage<'a> {
    /// Creates the stage over a cell library.
    pub fn new(library: &'a CellLibrary, emit_spice: bool, limit: usize) -> Self {
        Self {
            library,
            emit_spice,
            limit,
            observer: None,
            cancel: None,
        }
    }

    /// Attaches a progress observer (one event per netlisted design).
    #[must_use]
    pub fn with_observer(mut self, observer: ProgressObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a cancellation token, polled before every design.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

impl std::fmt::Debug for NetlistStage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetlistStage")
            .field("emit_spice", &self.emit_spice)
            .field("limit", &self.limit)
            .finish_non_exhaustive()
    }
}

impl Stage for NetlistStage<'_> {
    type Input = Distilled;
    type Output = Netlisted;

    fn name(&self) -> &'static str {
        "netlist"
    }

    fn run(&self, input: Distilled) -> Result<Netlisted, FlowError> {
        let limit = if self.limit == 0 {
            input.distilled.len()
        } else {
            self.limit.min(input.distilled.len())
        };
        let generator = NetlistGenerator::new(self.library);
        let mut netlists = Vec::with_capacity(limit);
        for (index, point) in input.distilled.iter().take(limit).enumerate() {
            if let Some(reason) = self.cancel.as_ref().and_then(CancelToken::status) {
                return Err(cancel_error(reason, index, limit));
            }
            let start = Instant::now();
            let netlist = generator.generate(&point.spec)?;
            let stats = design_stats(&netlist, self.library)?;
            let spice = if self.emit_spice {
                Some(write_spice(&netlist, self.library)?)
            } else {
                None
            };
            netlists.push(NetlistedDesign {
                point: *point,
                netlist,
                stats,
                spice,
                netlist_time: start.elapsed(),
            });
            if let Some(observer) = &self.observer {
                observer(StageProgress {
                    stage: "netlist",
                    completed: index + 1,
                    total: limit,
                });
            }
        }
        Ok(Netlisted {
            frontier: input.frontier,
            distilled: input.distilled,
            engine: input.engine,
            exploration_time: input.exploration_time,
            netlists,
        })
    }
}

/// The template-based place-and-route stage (`Netlisted -> LaidOut`).
pub struct LayoutStage<'a> {
    technology: &'a Technology,
    library: &'a CellLibrary,
    observer: Option<ProgressObserver>,
    cancel: Option<CancelToken>,
}

impl<'a> LayoutStage<'a> {
    /// Creates the stage over a technology and cell library.
    pub fn new(technology: &'a Technology, library: &'a CellLibrary) -> Self {
        Self {
            technology,
            library,
            observer: None,
            cancel: None,
        }
    }

    /// Attaches a progress observer (one event per laid-out design).
    #[must_use]
    pub fn with_observer(mut self, observer: ProgressObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a cancellation token, polled before every design.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

impl std::fmt::Debug for LayoutStage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LayoutStage").finish_non_exhaustive()
    }
}

impl Stage for LayoutStage<'_> {
    type Input = Netlisted;
    type Output = LaidOut;

    fn name(&self) -> &'static str {
        "layout"
    }

    fn run(&self, input: Netlisted) -> Result<LaidOut, FlowError> {
        let flow = LayoutFlow::new(self.technology, self.library);
        let total = input.netlists.len();
        let mut designs = Vec::with_capacity(total);
        for (index, netlisted) in input.netlists.into_iter().enumerate() {
            if let Some(reason) = self.cancel.as_ref().and_then(CancelToken::status) {
                return Err(cancel_error(reason, index, total));
            }
            let start = Instant::now();
            let layout = flow.generate(&netlisted.point.spec)?;
            designs.push(GeneratedDesign {
                point: netlisted.point,
                netlist: netlisted.netlist,
                netlist_stats: netlisted.stats,
                layout,
                spice: netlisted.spice,
                generation_time: netlisted.netlist_time + start.elapsed(),
            });
            if let Some(observer) = &self.observer {
                observer(StageProgress {
                    stage: "layout",
                    completed: index + 1,
                    total,
                });
            }
        }
        Ok(LaidOut {
            frontier: input.frontier,
            distilled: input.distilled,
            engine: input.engine,
            exploration_time: input.exploration_time,
            designs,
        })
    }
}

/// The chip-composition stage (`() -> ChipFlowResult`): multi-macro
/// co-exploration plus optional behavioural validation of the best chip.
///
/// Input-free like [`ExploreStage`]: it depends only on its
/// configuration, which is what lets [`crate::flow::TopFlowController`]
/// overlap it with the netlist/layout stages on the persistent pool.
#[derive(Clone)]
pub struct ChipStage {
    config: ChipFlowConfig,
    options: ExploreOptions,
    observer: Option<ProgressObserver>,
}

impl ChipStage {
    /// Creates the stage.
    pub fn new(config: ChipFlowConfig) -> Self {
        Self {
            config,
            options: ExploreOptions::default(),
            observer: None,
        }
    }

    /// Injects a shared cache / warm-start seeds.
    #[must_use]
    pub fn with_options(mut self, options: ExploreOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a progress observer (one event per generation).
    #[must_use]
    pub fn with_observer(mut self, observer: ProgressObserver) -> Self {
        self.observer = Some(observer);
        self
    }
}

impl std::fmt::Debug for ChipStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChipStage")
            .field("config", &self.config)
            .field("options", &self.options)
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

impl Stage for ChipStage {
    type Input = ();
    type Output = ChipFlowResult;

    fn name(&self) -> &'static str {
        "chip"
    }

    fn run(&self, (): ()) -> Result<ChipFlowResult, FlowError> {
        let start = Instant::now();
        let explorer = ChipExplorer::new(self.config.dse.clone())?;
        let total = self.config.dse.generations;
        let observer = self.observer.clone();
        let frontier = explorer.explore_with(&self.options, |generation| {
            if let Some(observer) = &observer {
                observer(StageProgress {
                    stage: "chip",
                    completed: generation + 1,
                    total,
                });
            }
        })?;
        let engine = frontier.engine.clone();
        let front = frontier.into_points();
        let exploration_time = start.elapsed();

        let mut result = ChipFlowResult {
            front,
            engine,
            exploration_time,
            validation: None,
            mix_validation: None,
        };
        if self.config.validate_best {
            if let Some(best) = result.best_throughput() {
                let mix = explorer.problem().mix();
                // Single-tenant flows keep the historical single-network
                // simulator (and its exact seeded outputs); real mixes
                // validate through the interleaved stream simulator.
                if let [tenant] = mix.tenants() {
                    let report =
                        simulate_network(&best.chip, &tenant.network, self.config.validation_seed)?;
                    result.validation = Some(report);
                } else {
                    let report = simulate_mix(&best.chip, mix, self.config.validation_seed)?;
                    result.mix_validation = Some(report);
                }
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn quick_dse() -> DseConfig {
        DseConfig {
            array_size: 4 * 1024,
            population_size: 24,
            generations: 8,
            ..Default::default()
        }
    }

    #[test]
    fn explore_then_distill_composes() {
        let events = Arc::new(AtomicUsize::new(0));
        let counter = events.clone();
        let observer: ProgressObserver = Arc::new(move |event: StageProgress| {
            assert_eq!(event.stage, "explore");
            assert_eq!(event.total, 8);
            counter.fetch_add(1, Ordering::Relaxed);
        });
        let pipeline = ExploreStage::new(quick_dse())
            .with_observer(observer)
            .then(DistillStage::new(UserRequirements::none()));
        assert_eq!(pipeline.name(), "pipeline");
        let distilled = pipeline.run(()).unwrap();
        assert!(!distilled.frontier.is_empty());
        assert!(!distilled.distilled.is_empty());
        assert!(distilled.engine.evaluations > 0);
        assert_eq!(events.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn distill_can_reject_everything() {
        let requirements = UserRequirements {
            min_snr_db: Some(500.0),
            ..UserRequirements::none()
        };
        let pipeline = ExploreStage::new(quick_dse()).then(DistillStage::new(requirements));
        assert!(matches!(
            pipeline.run(()),
            Err(FlowError::EmptyDistilledSet)
        ));
    }

    #[test]
    fn netlist_and_layout_stages_honour_the_limit() {
        let technology = Technology::s28();
        let library = CellLibrary::s28_default(&technology);
        let pipeline = ExploreStage::new(quick_dse())
            .then(DistillStage::new(UserRequirements::none()))
            .then(NetlistStage::new(&library, false, 1))
            .then(LayoutStage::new(&technology, &library));
        let laid = pipeline.run(()).unwrap();
        assert_eq!(laid.designs.len(), 1);
        let design = &laid.designs[0];
        assert_eq!(
            design.netlist_stats.sram_cells,
            design.point.spec.array_size()
        );
        assert!(design.spice.is_none());
        assert!(design.generation_time > Duration::ZERO);
    }

    #[test]
    fn instrumented_stage_records_span_and_histogram() {
        let telemetry = Telemetry::new();
        let root = telemetry.span("request");
        let trace = TraceContext::under(telemetry.clone(), root.as_parent());
        let stage = Instrumented::new(
            ExploreStage::new(quick_dse()).then(DistillStage::new(UserRequirements::none())),
            Some(trace),
        );
        assert_eq!(stage.name(), "pipeline");
        let distilled = stage.run(()).unwrap();
        assert!(!distilled.distilled.is_empty());
        let root_id = root.id();
        drop(root);
        let snapshot = telemetry.snapshot();
        let hist = snapshot
            .histogram("stage_seconds", &[("stage", "pipeline")])
            .expect("stage histogram registered");
        assert_eq!(hist.count, 1);
        assert!(hist.quantile(0.5).is_finite());
        let span = snapshot
            .spans
            .iter()
            .find(|s| s.name == "pipeline")
            .expect("stage span recorded");
        assert_eq!(span.parent, Some(root_id));
        assert!(span.attributes.contains(&("ok".into(), "true".into())));
    }

    #[test]
    fn uninstrumented_wrapper_is_a_pure_pass_through() {
        let stage = Instrumented::new(
            ExploreStage::new(quick_dse()).then(DistillStage::new(UserRequirements::none())),
            None,
        );
        assert!(stage.inner().name() == "pipeline");
        assert!(!stage.run(()).unwrap().distilled.is_empty());
    }

    #[test]
    fn stage_names_are_stable() {
        let technology = Technology::s28();
        let library = CellLibrary::s28_default(&technology);
        assert_eq!(ExploreStage::new(quick_dse()).name(), "explore");
        assert_eq!(
            DistillStage::new(UserRequirements::none()).name(),
            "distill"
        );
        assert_eq!(NetlistStage::new(&library, false, 1).name(), "netlist");
        assert_eq!(LayoutStage::new(&technology, &library).name(), "layout");
    }
}
