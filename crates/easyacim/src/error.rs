//! Error type of the end-to-end flow.

use std::error::Error;
use std::fmt;

use acim_chip::ChipError;
use acim_dse::DseError;
use acim_layout::LayoutError;
use acim_netlist::NetlistError;
use acim_persist::PersistError;

/// Errors produced by the top flow controller.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// The flow configuration is inconsistent.
    InvalidConfig(String),
    /// The user distillation removed every Pareto-frontier solution.
    EmptyDistilledSet,
    /// A warm-start session archive was recorded over a different design
    /// space than the one the request explores.
    WarmStartMismatch {
        /// Design-space signature of the request.
        requested: String,
        /// Design-space signature the session archive was recorded over.
        session: String,
    },
    /// An error from the design-space explorer.
    Dse(DseError),
    /// An error from the netlist generator.
    Netlist(NetlistError),
    /// An error from the placer/router.
    Layout(LayoutError),
    /// An error from the chip-composition stage.
    Chip(ChipError),
    /// A snapshot/restore error from the persistence tier.  Restores fail
    /// *before* any merge, so a service that hits this continues with
    /// whatever it already held (a clean cold start for a fresh service).
    Persist(PersistError),
    /// The job was cancelled (`JobHandle::cancel` or a tripped
    /// `CancelToken`) and stopped cooperatively at the next generation /
    /// design boundary, carrying its partial progress.
    Cancelled {
        /// Work units fully completed before the job stopped (generations
        /// for the exploration stages, designs for netlist/layout).
        completed: usize,
        /// Work units the interrupted stage was going to perform.
        total: usize,
    },
    /// The job's deadline expired before it finished; it stopped
    /// cooperatively at the next generation / design boundary, carrying
    /// its partial progress.
    DeadlineExceeded {
        /// Work units fully completed before the job stopped.
        completed: usize,
        /// Work units the interrupted stage was going to perform.
        total: usize,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::InvalidConfig(reason) => write!(f, "invalid flow configuration: {reason}"),
            FlowError::EmptyDistilledSet => {
                write!(
                    f,
                    "user distillation removed every Pareto-frontier solution"
                )
            }
            FlowError::WarmStartMismatch { requested, session } => {
                write!(
                    f,
                    "warm-start session covers design space `{session}`, \
                     but the request explores `{requested}`"
                )
            }
            FlowError::Dse(err) => write!(f, "design-space exploration failed: {err}"),
            FlowError::Netlist(err) => write!(f, "netlist generation failed: {err}"),
            FlowError::Layout(err) => write!(f, "layout generation failed: {err}"),
            FlowError::Chip(err) => write!(f, "chip composition failed: {err}"),
            FlowError::Persist(err) => write!(f, "persistence failed: {err}"),
            FlowError::Cancelled { completed, total } => {
                write!(f, "job cancelled after {completed}/{total} work units")
            }
            FlowError::DeadlineExceeded { completed, total } => {
                write!(
                    f,
                    "job deadline exceeded after {completed}/{total} work units"
                )
            }
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Dse(err) => Some(err),
            FlowError::Netlist(err) => Some(err),
            FlowError::Layout(err) => Some(err),
            FlowError::Chip(err) => Some(err),
            FlowError::Persist(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DseError> for FlowError {
    fn from(err: DseError) -> Self {
        match err {
            // Cancellation surfaces as one typed variant regardless of
            // which layer noticed the tripped token, so callers match on
            // `FlowError::Cancelled` / `FlowError::DeadlineExceeded`
            // instead of digging through stage-specific wrappers.
            DseError::Cancelled { completed, total } => FlowError::Cancelled { completed, total },
            DseError::DeadlineExceeded { completed, total } => {
                FlowError::DeadlineExceeded { completed, total }
            }
            other => FlowError::Dse(other),
        }
    }
}

impl From<NetlistError> for FlowError {
    fn from(err: NetlistError) -> Self {
        FlowError::Netlist(err)
    }
}

impl From<LayoutError> for FlowError {
    fn from(err: LayoutError) -> Self {
        FlowError::Layout(err)
    }
}

impl From<ChipError> for FlowError {
    fn from(err: ChipError) -> Self {
        FlowError::Chip(err)
    }
}

impl From<PersistError> for FlowError {
    fn from(err: PersistError) -> Self {
        FlowError::Persist(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: FlowError = DseError::InvalidConfig("x".into()).into();
        assert!(e.to_string().contains("design-space exploration"));
        assert!(FlowError::EmptyDistilledSet
            .to_string()
            .contains("distillation"));
        let e: FlowError = PersistError::HeaderChecksum.into();
        assert!(e.to_string().contains("persistence failed"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn dse_cancellation_surfaces_as_the_flow_level_variant() {
        let e: FlowError = DseError::Cancelled {
            completed: 2,
            total: 9,
        }
        .into();
        assert_eq!(
            e,
            FlowError::Cancelled {
                completed: 2,
                total: 9
            }
        );
        assert!(e.to_string().contains("2/9"));
        let e: FlowError = DseError::DeadlineExceeded {
            completed: 8,
            total: 9,
        }
        .into();
        assert_eq!(
            e,
            FlowError::DeadlineExceeded {
                completed: 8,
                total: 9
            }
        );
        assert!(e.to_string().contains("deadline"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlowError>();
    }
}
