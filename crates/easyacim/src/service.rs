//! The multi-tenant exploration front-end.
//!
//! [`ExplorationService`] is the long-lived front door of the flow: it
//! accepts many concurrent [`ExplorationRequest`]s (full macro flows or
//! chip-composition runs) through a **bounded, deadline-aware admission
//! scheduler** — a fixed worker set sized off the shared evaluation
//! pool's width drains a priority-ordered queue, so a burst of requests
//! queues instead of spawning a thread herd, and a full queue rejects new
//! work with backpressure ([`SubmitError::QueueFull`]) instead of
//! accepting unbounded load.  The service owns one shared, concurrent
//! evaluation cache **per design space** — so the second request over a
//! space starts where the first left off instead of re-paying every
//! objective evaluation.  Each finished request returns a
//! [`SessionArchive`] of its Pareto frontier, which can warm-start the
//! next request over the same space (seeding the initial NSGA-II
//! population *and* the archive, so a warm run is provably no worse than
//! the session it started from).
//!
//! Requests are built with the [`ExplorationRequest::macro_space`] /
//! [`ExplorationRequest::chip_space`] /
//! [`ExplorationRequest::mix_space`] builders, which attach scheduling
//! class ([`Priority`]), an optional completion [`Deadline`], a
//! warm-start session and a diagnostic label.  An admitted job is
//! observed and controlled through its [`JobHandle`]: cooperative
//! [`JobHandle::cancel`] (and deadline expiry) stops the job at its next
//! generation / design boundary with a typed
//! [`FlowError::Cancelled`] / [`FlowError::DeadlineExceeded`] carrying
//! its partial progress.
//!
//! Sharing is safe because the caches are semantically lossless: entries
//! are keyed by decode buckets, so a hit returns exactly the evaluation a
//! cold run would recompute.  Concurrent requests therefore produce
//! bit-identical frontiers to the same requests run serially — only the
//! wall-clock and the hit/miss attribution change.  Cancellation keeps
//! that guarantee: an interrupted run's cache writes are a clean prefix
//! of the uninterrupted run's, so surviving jobs still see exactly the
//! entries a cold run would compute.
//!
//! # Example
//!
//! ```
//! use easyacim::service::{ExplorationRequest, ExplorationService, Priority};
//! use easyacim::ChipFlowConfig;
//! use acim_chip::Network;
//!
//! # fn main() -> Result<(), easyacim::ServiceError> {
//! let mut config = ChipFlowConfig::for_network(Network::edge_cnn(1));
//! config.dse.population_size = 16;
//! config.dse.generations = 4;
//! config.validate_best = false;
//!
//! let service = ExplorationService::new();
//! let first = service
//!     .run(ExplorationRequest::chip_space(config.clone()).label("cold"))?
//!     .into_chip()
//!     .expect("chip request yields a chip response");
//!
//! // Second request over the same space: answered from the shared cache,
//! // warm-started from the first session's frontier, and admitted ahead
//! // of any queued backlog.
//! let request = ExplorationRequest::chip_space(config)
//!     .warm_start(first.session.clone())
//!     .priority(Priority::High);
//! let second = service.run(request)?.into_chip().unwrap();
//! assert!(second.result.engine.cache.hits > 0);
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use acim_chip::{MacroMetricsCache, WorkloadMix};
use acim_dse::{
    CacheStore, ChipDseConfig, ChipExplorer, DesignSpaceExplorer, DseConfig, ExploreOptions,
};
use acim_model::ModelParams;
use acim_moga::{CancelReason, CancelToken, EvalStats};
use acim_persist::{PersistError, Snapshot};
use acim_telemetry::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, SpanId, SpanText, Telemetry,
    TelemetrySnapshot,
};

use crate::chip::{ChipFlowConfig, ChipFlowResult};
use crate::config::FlowConfig;
use crate::error::FlowError;
use crate::flow::{FlowOptions, FlowResult, TopFlowController};
use crate::persistence::{self, RestoreReport, SnapshotReport};
use crate::sched::{AdmitError, JobSlot, Scheduler, Ticket};
use crate::stage::{ProgressObserver, StageProgress, TraceContext};

pub use crate::sched::{Deadline, Priority};

/// A finished session's Pareto archive, re-encoded as genomes over its
/// design space.  Feed it back into the next request over the **same**
/// space via [`ExplorationRequest::warm_start`] to seed the initial
/// population.
#[derive(Debug, Clone)]
pub struct SessionArchive {
    space: String,
    genomes: Vec<Vec<f64>>,
}

impl SessionArchive {
    pub(crate) fn new(space: String, genomes: Vec<Vec<f64>>) -> Self {
        Self { space, genomes }
    }

    /// Signature of the design space the archive was recorded over.
    pub fn space(&self) -> &str {
        &self.space
    }

    /// The archived frontier genomes.
    pub fn genomes(&self) -> &[Vec<f64>] {
        &self.genomes
    }

    /// Number of archived genomes.
    pub fn len(&self) -> usize {
        self.genomes.len()
    }

    /// Returns `true` when the archive holds no genomes.
    pub fn is_empty(&self) -> bool {
        self.genomes.is_empty()
    }
}

/// The scheduling attributes of one request: priority class, optional
/// completion deadline, diagnostic label.  Attached through the
/// [`ExplorationRequest`] builder methods.
#[derive(Debug, Clone, Default)]
pub(crate) struct Admission {
    pub(crate) priority: Priority,
    pub(crate) deadline: Option<Deadline>,
    pub(crate) label: Option<String>,
}

/// A full macro-flow request: exploration → distillation → netlist →
/// layout (→ chip composition when the config carries a chip stage).
/// Built through [`ExplorationRequest::macro_space`].
#[derive(Debug, Clone)]
pub struct MacroRequest {
    /// The flow configuration.
    pub config: FlowConfig,
    /// Optional warm-start session over the same macro design space.
    pub warm_start: Option<SessionArchive>,
    pub(crate) admission: Admission,
}

impl MacroRequest {
    pub(crate) fn new(config: FlowConfig) -> Self {
        Self {
            config,
            warm_start: None,
            admission: Admission::default(),
        }
    }
}

/// A chip-composition request: multi-macro co-exploration (and optional
/// behavioural validation) without the macro netlist/layout stages.
/// Built through [`ExplorationRequest::chip_space`].
#[derive(Debug, Clone)]
pub struct ChipRequest {
    /// The chip-stage configuration.
    pub config: ChipFlowConfig,
    /// Optional warm-start session over the same chip design space.
    pub warm_start: Option<SessionArchive>,
    pub(crate) admission: Admission,
}

impl ChipRequest {
    pub(crate) fn new(config: ChipFlowConfig) -> Self {
        Self {
            config,
            warm_start: None,
            admission: Admission::default(),
        }
    }
}

/// One unit of work submitted to the service, built with
/// [`ExplorationRequest::macro_space`] or
/// [`ExplorationRequest::chip_space`] and refined with the chainable
/// builder methods:
///
/// ```
/// use easyacim::service::{Deadline, ExplorationRequest, Priority};
/// use easyacim::FlowConfig;
/// use std::time::Duration;
///
/// let request = ExplorationRequest::macro_space(FlowConfig::new(4 * 1024))
///     .priority(Priority::High)
///     .deadline(Deadline::within(Duration::from_secs(60)))
///     .label("macro-4k-interactive");
/// ```
// A macro request (a whole `FlowConfig`) is naturally bigger than a chip
// request; requests are moved once into a scheduler worker, so boxing the
// large variant would buy nothing and cost every caller a dereference.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ExplorationRequest {
    /// A full macro flow ([`MacroRequest`]).
    #[non_exhaustive]
    Macro(MacroRequest),
    /// A chip-composition run ([`ChipRequest`]).
    #[non_exhaustive]
    Chip(ChipRequest),
}

impl ExplorationRequest {
    /// A cold request over a macro design space: the full flow of
    /// `config` (exploration → distillation → netlist → layout, plus the
    /// chip stage when configured).
    pub fn macro_space(config: FlowConfig) -> Self {
        Self::Macro(MacroRequest::new(config))
    }

    /// A cold request over a chip design space: multi-macro
    /// co-exploration without the macro netlist/layout stages.
    pub fn chip_space(config: ChipFlowConfig) -> Self {
        Self::Chip(ChipRequest::new(config))
    }

    /// A cold request co-scheduling a multi-tenant [`WorkloadMix`]: the
    /// default chip-composition stage over `mix` (exploration plus
    /// behavioural validation of the best chip with the interleaved
    /// stream simulator).  Shorthand for
    /// `chip_space(ChipFlowConfig::for_mix(mix))`; tune the exploration
    /// by building the [`ChipFlowConfig`] explicitly.
    pub fn mix_space(mix: WorkloadMix) -> Self {
        Self::Chip(ChipRequest::new(ChipFlowConfig::for_mix(mix)))
    }

    fn admission_mut(&mut self) -> &mut Admission {
        match self {
            ExplorationRequest::Macro(request) => &mut request.admission,
            ExplorationRequest::Chip(request) => &mut request.admission,
        }
    }

    /// Sets the scheduling class (default [`Priority::Normal`]): the
    /// admission queue always dequeues higher priorities first.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.admission_mut().priority = priority;
        self
    }

    /// Sets a completion deadline.  A job whose deadline passes stops
    /// cooperatively at its next generation / design boundary and fails
    /// with [`FlowError::DeadlineExceeded`]; queue wait counts against
    /// the deadline.
    #[must_use]
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.admission_mut().deadline = Some(deadline);
        self
    }

    /// Warm-starts the request from a previous session's archive over the
    /// **same** design space.
    #[must_use]
    pub fn warm_start(mut self, session: SessionArchive) -> Self {
        match &mut self {
            ExplorationRequest::Macro(request) => request.warm_start = Some(session),
            ExplorationRequest::Chip(request) => request.warm_start = Some(session),
        }
        self
    }

    /// Attaches a diagnostic label, carried on the [`JobHandle`] and the
    /// request's root telemetry span.
    #[must_use]
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.admission_mut().label = Some(label.into());
        self
    }
}

/// Response to a [`MacroRequest`].
#[derive(Debug, Clone)]
pub struct MacroResponse {
    /// The full flow result.
    pub result: FlowResult,
    /// The macro frontier, re-encoded for warm-starting a follow-up
    /// request over the same macro space.
    pub session: SessionArchive,
    /// The chip frontier's session, when the flow ran a chip stage.
    pub chip_session: Option<SessionArchive>,
}

/// Response to a [`ChipRequest`].
#[derive(Debug, Clone)]
pub struct ChipResponse {
    /// The chip-stage result.
    pub result: ChipFlowResult,
    /// The chip frontier, re-encoded for warm-starting a follow-up
    /// request over the same chip space.
    pub session: SessionArchive,
}

/// The result of one finished request.
// See `ExplorationRequest`: one value per finished job, moved not stored.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ExplorationResponse {
    /// Response to a macro-flow request.
    Macro(MacroResponse),
    /// Response to a chip-composition request.
    Chip(ChipResponse),
}

impl ExplorationResponse {
    /// Evaluation-engine statistics of the request's (primary)
    /// exploration, including per-request cache hit/miss attribution.
    pub fn engine(&self) -> &EvalStats {
        match self {
            ExplorationResponse::Macro(response) => &response.result.engine,
            ExplorationResponse::Chip(response) => &response.result.engine,
        }
    }

    /// The session archive warm-starting a follow-up request.
    pub fn session(&self) -> &SessionArchive {
        match self {
            ExplorationResponse::Macro(response) => &response.session,
            ExplorationResponse::Chip(response) => &response.session,
        }
    }

    /// The macro response, if this was a macro request.
    pub fn into_macro(self) -> Option<MacroResponse> {
        match self {
            ExplorationResponse::Macro(response) => Some(response),
            ExplorationResponse::Chip(_) => None,
        }
    }

    /// The chip response, if this was a chip request.
    pub fn into_chip(self) -> Option<ChipResponse> {
        match self {
            ExplorationResponse::Chip(response) => Some(response),
            ExplorationResponse::Macro(_) => None,
        }
    }
}

/// Progress snapshot of a running job, counted in **exploration
/// generations** (macro plus chip when the flow has a chip stage) — the
/// dominant cost of a request.  `completed == total` means every
/// exploration finished; the short netlist/layout tail of a macro flow
/// may still be running, so use [`JobHandle::is_finished`] to detect
/// actual completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobProgress {
    /// Exploration generations finished.
    pub completed: usize,
    /// Total exploration generations the job will run.
    pub total: usize,
}

impl JobProgress {
    /// Completed fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.completed as f64 / self.total as f64).min(1.0)
        }
    }
}

impl std::fmt::Display for JobProgress {
    /// Renders `completed/total generations (NN%)` — e.g.
    /// `12/40 generations (30%)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} generations ({:.0}%)",
            self.completed,
            self.total,
            self.fraction() * 100.0
        )
    }
}

struct ProgressState {
    completed: AtomicUsize,
    total: AtomicUsize,
}

/// Per-request instrumentation, registered at submission and moved into
/// the worker thread: the root `request` span, the per-kind latency
/// histogram and the service-wide queue/active gauges.
struct RequestInstruments {
    root: acim_telemetry::Span,
    latency: Histogram,
    queue: Gauge,
    active: Gauge,
}

impl RequestInstruments {
    /// Runs `work` bracketed by the queue → active gauge hand-off, then
    /// records latency and outcome on the way out.  Consumes the
    /// instruments so the root span drops (and records) exactly here.
    fn observe<T, E>(mut self, work: impl FnOnce() -> Result<T, E>) -> Result<T, E> {
        self.queue.dec();
        self.active.inc();
        let started = Instant::now();
        let result = work();
        self.latency.observe_duration(started.elapsed());
        self.root
            .attr("ok", if result.is_ok() { "true" } else { "false" });
        self.active.dec();
        result
    }
}

/// The cache counters of one design space, resolved once per space and
/// cached on the service — worker threads receive clones, so recording a
/// finished request touches only pre-resolved atomic handles.
#[derive(Clone)]
struct SpaceInstruments {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    hit_rate: Gauge,
}

impl SpaceInstruments {
    fn new(registry: &Registry, space: &str) -> Self {
        let labels = [("space", space)];
        Self {
            hits: registry.counter(
                "service_cache_hits_total",
                "Evaluations answered from a shared per-space cache.",
                &labels,
            ),
            misses: registry.counter(
                "service_cache_misses_total",
                "Evaluations computed because the shared per-space cache missed.",
                &labels,
            ),
            evictions: registry.counter(
                "service_cache_evictions_total",
                "Entries requests over this space evicted from bounded caches.",
                &labels,
            ),
            hit_rate: registry.gauge(
                "service_cache_hit_rate",
                "Lifetime hit rate of the shared per-space evaluation cache.",
                &labels,
            ),
        }
    }

    /// Folds one finished request's cache attribution into the
    /// service-wide per-space telemetry: cumulative hit/miss/eviction
    /// counters plus the lifetime hit-rate gauge of the space.
    fn record(&self, stats: &EvalStats) {
        self.hits.add(stats.cache.hits as u64);
        self.misses.add(stats.cache.misses as u64);
        self.evictions.add(stats.cache.evictions as u64);
        let total = self.hits.get() + self.misses.get();
        let rate = if total == 0 {
            0.0
        } else {
            self.hits.get() as f64 / total as f64
        };
        self.hit_rate.set(rate);
    }
}

/// The multi-tenant instruments of one chip design space: a tenant-count
/// gauge plus one latency histogram per tenant, pre-resolved at
/// submission so the worker only touches atomic handles.  Recorded from
/// the best-throughput frontier point of each finished request — the
/// chip a deployment of this space would actually tape out.
#[derive(Clone)]
struct TenantInstruments {
    latency: Vec<(String, Histogram)>,
}

impl TenantInstruments {
    fn new(registry: &Registry, space: &str, mix: &WorkloadMix) -> Self {
        // The tenant count is a static property of the space: set at
        // registration, re-set (idempotently) on every submission over
        // the space.  The registry keeps the series alive; no handle is
        // retained.
        registry
            .gauge(
                "chip_tenants",
                "Tenant count of the workload mix a chip space co-schedules.",
                &[("space", space)],
            )
            .set(mix.len() as f64);
        let latency = mix
            .tenants()
            .iter()
            .map(|tenant| {
                (
                    tenant.name().to_string(),
                    registry.histogram(
                        "chip_tenant_latency_seconds",
                        "Per-tenant inference latency of the best-throughput \
                         frontier chip, observed once per finished request.",
                        &[("space", space), ("tenant", tenant.name())],
                    ),
                )
            })
            .collect();
        Self { latency }
    }

    /// Records every tenant's latency on the best-throughput frontier
    /// point of a finished chip request.  An empty frontier (cancelled
    /// run) records nothing.
    fn record(&self, result: &ChipFlowResult) {
        let Some(best) = result.best_throughput() else {
            return;
        };
        for (name, histogram) in &self.latency {
            if let Some(tenant) = best.tenants.iter().find(|t| &t.name == name) {
                histogram.observe(tenant.metrics.latency_ns * 1e-9);
            }
        }
    }
}

/// The per-kind request instruments.
struct KindInstruments {
    requests: Counter,
    latency: Histogram,
}

impl KindInstruments {
    fn new(registry: &Registry, kind: &'static str) -> Self {
        Self {
            requests: registry.counter(
                "service_requests_total",
                "Requests accepted, per request kind.",
                &[("kind", kind)],
            ),
            latency: registry.histogram(
                "service_request_seconds",
                "End-to-end request latency, per request kind.",
                &[("kind", kind)],
            ),
        }
    }
}

/// Every instrument handle the service registers eagerly at
/// construction.  Per-request `find_or_insert` registry walks (label
/// formatting and name matching under the registry lock) would otherwise
/// be telemetry's dominant cost on warm-cache requests; resolving the
/// handles once keeps the hot path down to atomic loads and stores.
struct ServiceInstruments {
    macro_requests: KindInstruments,
    chip_requests: KindInstruments,
    queue: Gauge,
    active: Gauge,
    workers: Gauge,
    rejected_full: Counter,
    rejected_shutdown: Counter,
    deadline_misses: Counter,
    explore_generation_seconds: Histogram,
    chip_generation_seconds: Histogram,
    cached_evaluations: Gauge,
    cached_macro_metrics: Gauge,
    cache_evictions: Gauge,
    pool_tasks: Counter,
    pool_steals: Counter,
    snapshot_seconds: Histogram,
    restore_seconds: Histogram,
    restored_archives: Counter,
    restored_evaluations: Counter,
    restored_macro_metrics: Counter,
    stages: Arc<crate::stage::StageHistograms>,
}

impl ServiceInstruments {
    fn new(telemetry: &Telemetry) -> Self {
        let registry = telemetry.registry();
        let generation_seconds = |stage: &'static str| {
            registry.histogram(
                "generation_seconds",
                "Wall-clock seconds per exploration generation, per stage.",
                &[("stage", stage)],
            )
        };
        Self {
            macro_requests: KindInstruments::new(registry, "macro"),
            chip_requests: KindInstruments::new(registry, "chip"),
            queue: registry.gauge(
                "service_queue_jobs",
                "Jobs accepted whose worker thread has not started yet.",
                &[],
            ),
            active: registry.gauge(
                "service_active_jobs",
                "Jobs currently executing on a worker thread.",
                &[],
            ),
            workers: registry.gauge(
                "service_worker_threads",
                "Fixed worker-thread count of the admission scheduler \
                 (the hard bound on service_active_jobs).",
                &[],
            ),
            rejected_full: registry.counter(
                "service_rejected_total",
                "Submissions the admission scheduler rejected, per reason.",
                &[("reason", "queue_full")],
            ),
            rejected_shutdown: registry.counter(
                "service_rejected_total",
                "Submissions the admission scheduler rejected, per reason.",
                &[("reason", "shutting_down")],
            ),
            deadline_misses: registry.counter(
                "service_deadline_misses_total",
                "Jobs that failed with DeadlineExceeded (before or during \
                 execution).",
                &[],
            ),
            explore_generation_seconds: generation_seconds("explore"),
            chip_generation_seconds: generation_seconds("chip"),
            cached_evaluations: registry.gauge(
                "service_cached_evaluations",
                "Distinct designs cached across every design space.",
                &[],
            ),
            cached_macro_metrics: registry.gauge(
                "service_cached_macro_metrics",
                "Distinct macro shapes cached across every parameter set.",
                &[],
            ),
            cache_evictions: registry.gauge(
                "service_cache_evictions",
                "Entries evicted across every cache the service owns \
                 (equals ExplorationService::total_evictions).",
                &[],
            ),
            pool_tasks: registry.counter(
                "pool_tasks_total",
                "Leaf tasks executed on the shared worker pool (process-wide).",
                &[],
            ),
            pool_steals: registry.counter(
                "pool_steals_total",
                "Ranges claimed by work-stealing on the shared pool (process-wide).",
                &[],
            ),
            snapshot_seconds: registry.histogram(
                "service_snapshot_seconds",
                "Wall-clock seconds per snapshot export + atomic write.",
                &[],
            ),
            restore_seconds: registry.histogram(
                "service_restore_seconds",
                "Wall-clock seconds per successful snapshot restore \
                 (read + verify + merge).",
                &[],
            ),
            restored_archives: registry.counter(
                "service_restored_archives",
                "Session archives merged into the registry by snapshot \
                 restores.",
                &[],
            ),
            restored_evaluations: registry.counter(
                "service_restored_evaluations",
                "Evaluation-cache entries merged by snapshot restores.",
                &[],
            ),
            restored_macro_metrics: registry.counter(
                "service_restored_macro_metrics",
                "Macro-metric entries merged by snapshot restores.",
                &[],
            ),
            stages: Arc::new(crate::stage::StageHistograms::resolve(telemetry)),
        }
    }

    fn kind(&self, kind: &str) -> &KindInstruments {
        if kind == "macro" {
            &self.macro_requests
        } else {
            &self.chip_requests
        }
    }
}

/// A handle to one admitted request: observe its progress, cancel it
/// cooperatively, then [`JobHandle::join`] it for the response.
pub struct JobHandle {
    id: u64,
    space: String,
    label: Option<String>,
    priority: Priority,
    cancel: CancelToken,
    progress: Arc<ProgressState>,
    slot: Arc<JobSlot<Result<ExplorationResponse, FlowError>>>,
}

impl JobHandle {
    /// Service-unique id of the job.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Signature of the (primary) design space the job explores — the key
    /// of the shared cache it reads and writes.
    pub fn space(&self) -> &str {
        &self.space
    }

    /// The diagnostic label attached at submission, if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// The scheduling class the job was admitted with.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Requests cooperative cancellation: the job stops at its next
    /// generation / design boundary (within one generation of the
    /// underlying explorations) and fails with [`FlowError::Cancelled`]
    /// carrying its partial progress.  A job still queued fails the same
    /// way without running; a job that already finished is unaffected.
    /// Idempotent.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Snapshot of the job's progress (built on the per-generation
    /// observer of the underlying `run_with_observer` loop).
    ///
    /// Consistency guarantee: both fields are read through one
    /// `Acquire` load pair — `total` first, then `completed`, which the
    /// observer publishes with `Release` — and `completed` is clamped to
    /// `total`, so a snapshot never reports more work done than the job
    /// has (even mid-tick).  Progress is monotone across snapshots, and a
    /// snapshot taken after [`JobHandle::is_finished`] returns `true` (or
    /// after [`JobHandle::join`]) reflects every generation the job ran.
    pub fn progress(&self) -> JobProgress {
        let total = self.progress.total.load(Ordering::Acquire);
        let completed = self.progress.completed.load(Ordering::Acquire).min(total);
        JobProgress { completed, total }
    }

    /// Returns `true` once the job has finished (successfully, with an
    /// error, or by panicking); the join methods will not block after
    /// this.
    pub fn is_finished(&self) -> bool {
        self.slot.is_finished()
    }

    /// Waits for the job and returns its response.
    ///
    /// # Errors
    ///
    /// Returns the [`FlowError`] the job failed with —
    /// [`FlowError::Cancelled`] / [`FlowError::DeadlineExceeded`] when it
    /// was stopped cooperatively.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the job.
    pub fn join(self) -> Result<ExplorationResponse, FlowError> {
        self.slot.take_blocking()
    }

    /// Returns the job's result if it already finished, or the handle
    /// back (`Err`) while it is still queued or running.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the job.
    pub fn try_join(self) -> Result<Result<ExplorationResponse, FlowError>, Self> {
        match self.slot.try_take() {
            Some(result) => Ok(result),
            None => Err(self),
        }
    }

    /// Waits up to `timeout` for the job's result, returning the handle
    /// back (`Err`) on timeout.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from the job.
    pub fn join_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<ExplorationResponse, FlowError>, Self> {
        match self.slot.take_timeout(timeout) {
            Some(result) => Ok(result),
            None => Err(self),
        }
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("space", &self.space)
            .field("label", &self.label)
            .field("priority", &self.priority)
            .field("cancelled", &self.cancel.is_triggered())
            .field("progress", &self.progress())
            .field("finished", &self.is_finished())
            .finish()
    }
}

/// Why [`ExplorationService::submit`] refused a request.  Admission
/// failures are deliberately **not** [`FlowError`]s: a rejected request
/// never entered the system, so callers can retry/back off on
/// [`SubmitError::QueueFull`] without conflating it with a job that ran
/// and failed.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The bounded admission queue is at capacity; retry after backing
    /// off (or raise [`ServiceConfig::queue_capacity`]).
    QueueFull {
        /// Queue depth at rejection time (== the configured capacity).
        depth: usize,
    },
    /// [`ExplorationService::shutdown`] has started; the service accepts
    /// no new work.
    ShuttingDown,
    /// The request itself is unrunnable (inconsistent configuration,
    /// warm-start session from a different space) — rejected eagerly,
    /// before touching the queue.
    Invalid(FlowError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { depth } => {
                write!(f, "admission queue full ({depth} jobs queued)")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
            SubmitError::Invalid(err) => write!(f, "invalid request: {err}"),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubmitError::Invalid(err) => Some(err),
            _ => None,
        }
    }
}

impl From<FlowError> for SubmitError {
    fn from(err: FlowError) -> Self {
        SubmitError::Invalid(err)
    }
}

/// Error of the blocking [`ExplorationService::run`] path, which spans
/// both phases of a request: admission ([`SubmitError`]) and execution
/// ([`FlowError`]).  An eagerly-rejected invalid request surfaces as
/// [`ServiceError::Flow`] (the underlying [`FlowError`]), so matching on
/// configuration errors works the same whether they were caught before
/// or during the run.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The request was refused at admission (queue full / shutting down).
    Submit(SubmitError),
    /// The job ran (or was validated) and failed.
    Flow(FlowError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Submit(err) => write!(f, "submission rejected: {err}"),
            ServiceError::Flow(err) => err.fmt(f),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Submit(err) => Some(err),
            ServiceError::Flow(err) => Some(err),
        }
    }
}

impl From<SubmitError> for ServiceError {
    fn from(err: SubmitError) -> Self {
        match err {
            SubmitError::Invalid(flow) => ServiceError::Flow(flow),
            other => ServiceError::Submit(other),
        }
    }
}

impl From<FlowError> for ServiceError {
    fn from(err: FlowError) -> Self {
        ServiceError::Flow(err)
    }
}

/// FNV-1a over a string: folds the verbose `Debug` dump of the
/// space-defining parameters into a compact, deterministic digest so the
/// signature stays a short map key / log line instead of a multi-kilobyte
/// parameter dump.
fn fnv1a(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Signature of a macro design space: a human-readable prefix plus a
/// digest of every field that changes what an evaluation means.  Budget
/// fields (population, generations, seed) are deliberately excluded —
/// runs with different budgets over one space share one cache.
fn macro_space_signature(config: &DseConfig) -> String {
    format!(
        "macro/{}x[{}..{}]/#{:016x}",
        config.array_size,
        config.min_height,
        config.max_height,
        fnv1a(&format!("{:?}", config.params))
    )
}

/// Signature of one model-parameter set — the key of the **macro-metric**
/// cache registry.  Macro metrics are pure functions of `(spec, params)`,
/// so every design space sharing one `ModelParams` (macro spaces of any
/// height range, chip spaces of any grid catalogue) shares one
/// macro-metric cache under this signature.
fn params_signature(params: &ModelParams) -> String {
    format!("params/#{:016x}", fnv1a(&format!("{params:?}")))
}

/// Records a finished job's session archive(s) in the service registry,
/// last-writer-wins per space — the registry always holds each space's
/// most recent frontier, which is what a snapshot should capture.
fn record_archives(
    registry: &Mutex<HashMap<String, SessionArchive>>,
    session: &SessionArchive,
    chip_session: Option<&SessionArchive>,
) {
    let mut archives = registry.lock().unwrap_or_else(PoisonError::into_inner);
    archives.insert(session.space().to_string(), session.clone());
    if let Some(chip) = chip_session {
        archives.insert(chip.space().to_string(), chip.clone());
    }
}

/// Signature of a chip design space (see [`macro_space_signature`]).
/// The workload mix (tenant networks, weights, quantisation), the
/// objective aggregation mode and the robustness sweep all define the
/// space: two requests differing in any of them must not share genome
/// caches or warm starts.
fn chip_space_signature(config: &ChipDseConfig) -> String {
    let defining = format!(
        "{:?}/{:?}/{:?}/{:?}/{:?}/{:?}/{:?}",
        config.grid_rows,
        config.grid_cols,
        config.buffer_kib,
        config.params,
        config.cost,
        config.objective,
        config.robustness,
    );
    format!(
        "chip/{}/{}x[{}..{}]/het={}/#{:016x}",
        config.mix.name,
        config.array_size,
        config.min_height,
        config.max_height,
        config.heterogeneous,
        fnv1a(&format!("{:?}/{defining}", config.mix))
    )
}

/// Checks a warm-start session against the space a request explores.
fn check_session(
    session: &Option<SessionArchive>,
    requested: &str,
) -> Result<Vec<Vec<f64>>, FlowError> {
    match session {
        None => Ok(Vec::new()),
        Some(session) if session.space == requested => Ok(session.genomes.clone()),
        Some(session) => Err(FlowError::WarmStartMismatch {
            requested: requested.to_string(),
            session: session.space.clone(),
        }),
    }
}

/// Capacity policy of an [`ExplorationService`]'s shared caches.
///
/// The default is unbounded — the right call for short-lived processes
/// and benchmarks.  Long-lived services should bound both registries:
/// the bounds cap **memory, not correctness** (evicted entries are
/// recomputed on demand; results stay bit-identical), and eviction
/// activity is visible per request via the `evictions` counters in
/// [`EvalStats`] and per store via [`CacheStore::evictions`] /
/// [`MacroMetricsCache::evictions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Capacity bound of each per-design-space evaluation cache
    /// (genome-level entries).  `None` = unbounded.
    pub cache_capacity: Option<usize>,
    /// Capacity bound of each per-parameter-set macro-metric cache
    /// (distinct macro shapes).  `None` = unbounded.
    pub macro_metric_capacity: Option<usize>,
    /// Worker threads of the admission scheduler (the hard bound on
    /// concurrently executing jobs).  `None` = the width of the shared
    /// evaluation pool (`rayon::current_num_threads()`) — one request per
    /// pool lane, so the pool stays busy without oversubscribing it.
    pub workers: Option<usize>,
    /// Capacity of the bounded admission queue; submissions beyond it are
    /// rejected with [`SubmitError::QueueFull`].  `None` =
    /// `max(16, 4 × workers)`.
    pub queue_capacity: Option<usize>,
    /// Record telemetry (request spans, latency histograms, queue/cache
    /// gauges — see [`ExplorationService::telemetry`]).  On by default;
    /// when off the service carries a disabled [`Telemetry`] handle,
    /// stages run uninstrumented, and the snapshot is empty.  Telemetry
    /// is observably passive either way: frontiers are bit-identical
    /// with it on or off.
    pub telemetry: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            cache_capacity: None,
            macro_metric_capacity: None,
            workers: None,
            queue_capacity: None,
            telemetry: true,
        }
    }
}

impl ServiceConfig {
    /// A configuration bounding every evaluation cache at
    /// `cache_capacity` entries and every macro-metric cache at
    /// `macro_metric_capacity` distinct macros.
    pub fn bounded(cache_capacity: usize, macro_metric_capacity: usize) -> Self {
        Self {
            cache_capacity: Some(cache_capacity),
            macro_metric_capacity: Some(macro_metric_capacity),
            ..Self::default()
        }
    }

    /// Disables telemetry recording.
    #[must_use]
    pub fn without_telemetry(mut self) -> Self {
        self.telemetry = false;
        self
    }

    /// Sets the scheduler's worker-thread count (clamped to at least 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the admission-queue capacity (clamped to at least 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }
}

/// The multi-tenant exploration front-end: shared per-space evaluation
/// caches, a shared per-parameter-set **macro-metric** cache underneath
/// them, a bounded deadline-aware admission scheduler with a fixed worker
/// set, warm-start sessions.
///
/// The service is cheap to construct; share one instance per process (or
/// per tenant class) to maximise cache reuse.  Both cache registries
/// recover poisoned locks (see [`CacheStore`]), and the scheduler's
/// workers latch job panics into the joining [`JobHandle`]: a panicking
/// request never takes the service — or any other tenant — down with it.
///
/// Dropping the service shuts it down (see
/// [`ExplorationService::shutdown`]): already-admitted jobs run to
/// completion, then the workers are joined.
pub struct ExplorationService {
    config: ServiceConfig,
    caches: Arc<Mutex<HashMap<String, CacheStore>>>,
    macro_caches: Arc<Mutex<HashMap<String, MacroMetricsCache>>>,
    session_archives: Arc<Mutex<HashMap<String, SessionArchive>>>,
    telemetry: Telemetry,
    instruments: ServiceInstruments,
    space_instruments: Mutex<HashMap<String, SpaceInstruments>>,
    next_job: AtomicU64,
    scheduler: Scheduler<Result<ExplorationResponse, FlowError>>,
}

impl Default for ExplorationService {
    fn default() -> Self {
        Self::with_config(ServiceConfig::default())
    }
}

impl ExplorationService {
    /// Creates a service with empty, unbounded caches and default
    /// scheduler sizing (see [`ServiceConfig`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a service honouring the capacity bounds and scheduler
    /// sizing of `config`.
    pub fn with_config(config: ServiceConfig) -> Self {
        let telemetry = if config.telemetry {
            Telemetry::new()
        } else {
            Telemetry::disabled()
        };
        let instruments = ServiceInstruments::new(&telemetry);
        let workers = config
            .workers
            .unwrap_or_else(rayon::current_num_threads)
            .max(1);
        let queue_capacity = config.queue_capacity.unwrap_or(16.max(4 * workers));
        let scheduler = Scheduler::new(workers, queue_capacity, "easyacim");
        instruments.workers.set(scheduler.worker_count() as f64);
        Self {
            config,
            caches: Arc::default(),
            macro_caches: Arc::default(),
            session_archives: Arc::default(),
            telemetry,
            instruments,
            space_instruments: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(0),
            scheduler,
        }
    }

    /// The capacity policy in use.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The scheduler's fixed worker-thread count — the hard bound on
    /// concurrently executing jobs.
    pub fn worker_count(&self) -> usize {
        self.scheduler.worker_count()
    }

    /// The admission-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.scheduler.capacity()
    }

    /// Jobs admitted but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        self.scheduler.queue_depth()
    }

    /// Shuts the service down deterministically: stops admission
    /// (subsequent [`ExplorationService::submit`] calls return
    /// [`SubmitError::ShuttingDown`]), drains the queue — every
    /// already-admitted job runs to completion, in priority order — and
    /// joins the worker threads.  Idempotent; also invoked by `Drop`.
    /// Outstanding [`JobHandle`]s stay valid and joinable afterwards.
    pub fn shutdown(&self) {
        self.scheduler.shutdown();
    }

    fn lock_caches(&self) -> MutexGuard<'_, HashMap<String, CacheStore>> {
        // Poison-tolerant (like the stores themselves): the registry is a
        // map of handles, always consistent between operations.
        self.caches.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_macro_caches(&self) -> MutexGuard<'_, HashMap<String, MacroMetricsCache>> {
        self.macro_caches
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_session_archives(&self) -> MutexGuard<'_, HashMap<String, SessionArchive>> {
        self.session_archives
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The shared store of one design space, creating it (with the
    /// configured bound) when a request over that space first arrives.
    fn store_for(&self, space: &str) -> CacheStore {
        self.lock_caches()
            .entry(space.to_string())
            .or_insert_with(|| match self.config.cache_capacity {
                Some(capacity) => CacheStore::bounded(capacity),
                None => CacheStore::new(),
            })
            .clone()
    }

    /// The shared macro-metric cache of one parameter set, creating it
    /// (with the configured bound) on first use.
    fn macro_store_for(&self, params: &ModelParams) -> MacroMetricsCache {
        self.macro_store_for_signature(&params_signature(params))
    }

    /// [`ExplorationService::macro_store_for`] keyed directly by
    /// signature — the restore path merges snapshot sections without ever
    /// reconstructing the `ModelParams` they were recorded under.
    fn macro_store_for_signature(&self, signature: &str) -> MacroMetricsCache {
        self.lock_macro_caches()
            .entry(signature.to_string())
            .or_insert_with(|| match self.config.macro_metric_capacity {
                Some(capacity) => MacroMetricsCache::bounded(capacity),
                None => MacroMetricsCache::new(),
            })
            .clone()
    }

    /// Signatures of every design space the service holds a cache for.
    pub fn spaces(&self) -> Vec<String> {
        let mut spaces: Vec<String> = self.lock_caches().keys().cloned().collect();
        spaces.sort();
        spaces
    }

    /// The shared cache store of a design space, when one exists (use a
    /// [`JobHandle::space`] or a [`SessionArchive::space`] as the key).
    pub fn cache_store(&self, space: &str) -> Option<CacheStore> {
        self.lock_caches().get(space).cloned()
    }

    /// The shared macro-metric cache of a parameter set, when one exists.
    pub fn macro_metric_cache(&self, params: &ModelParams) -> Option<MacroMetricsCache> {
        self.lock_macro_caches()
            .get(&params_signature(params))
            .cloned()
    }

    /// The most recent [`SessionArchive`] of every design space the
    /// service has finished a job over, sorted by space signature.
    ///
    /// The registry keeps exactly one archive per space —
    /// last-writer-wins, so a space explored five times is represented by
    /// its freshest frontier.  This is what
    /// [`ExplorationService::snapshot`] persists; it is also the handle
    /// for warm-starting a request without holding onto the original
    /// response.
    pub fn archives(&self) -> Vec<SessionArchive> {
        let registry = self.lock_session_archives();
        let mut archives: Vec<SessionArchive> = registry.values().cloned().collect();
        drop(registry);
        archives.sort_by(|a, b| a.space().cmp(b.space()));
        archives
    }

    /// The most recent [`SessionArchive`] recorded over one design space
    /// (use a [`JobHandle::space`] or a snapshot report as the key).
    pub fn archive(&self, space: &str) -> Option<SessionArchive> {
        self.lock_session_archives().get(space).cloned()
    }

    /// Total distinct designs cached across every design space.
    pub fn cached_evaluations(&self) -> usize {
        self.lock_caches().values().map(CacheStore::len).sum()
    }

    /// Total distinct macro shapes cached across every parameter set.
    pub fn cached_macro_metrics(&self) -> usize {
        self.lock_macro_caches()
            .values()
            .map(MacroMetricsCache::len)
            .sum()
    }

    /// Total entries evicted across every cache the service owns — the
    /// number a long-lived deployment graphs to size its bounds.
    pub fn total_evictions(&self) -> u64 {
        let stores: u64 = self.lock_caches().values().map(CacheStore::evictions).sum();
        let macros: u64 = self
            .lock_macro_caches()
            .values()
            .map(MacroMetricsCache::evictions)
            .sum();
        stores + macros
    }

    /// Persists everything warm about this service — every session
    /// archive, every evaluation cache, every macro-metric cache — to one
    /// checksummed `acim-persist` container at `path`.
    ///
    /// The write is atomic (temp file + rename): a crash mid-snapshot
    /// leaves either the previous file or no file, never a torn one.
    /// Sections are sorted (spaces, then entries within each space), so
    /// two services holding the same entries snapshot to byte-identical
    /// files.  Each cache is exported under its own lock; concurrent jobs
    /// may add entries between exports, which is harmless — every cached
    /// value is a pure function of its key, so a snapshot is always a
    /// consistent "at least these entries existed" set.
    ///
    /// Records `service_snapshot_seconds` and returns a
    /// [`SnapshotReport`] of what was written.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`] when the file cannot be written, or
    /// [`PersistError::InvalidRecord`] if an archive holds ragged genomes
    /// (impossible for archives this service recorded).  The target path
    /// is untouched on error.
    pub fn snapshot(&self, path: impl AsRef<Path>) -> Result<SnapshotReport, PersistError> {
        let started = Instant::now();
        let mut snapshot = Snapshot::new();
        for archive in self.archives() {
            snapshot
                .archives
                .push(persistence::archive_record(&archive));
        }
        for space in self.spaces() {
            if let Some(store) = self.cache_store(&space) {
                snapshot
                    .eval_caches
                    .push(persistence::eval_cache_record(&space, &store));
            }
        }
        let mut signatures: Vec<String> = self.lock_macro_caches().keys().cloned().collect();
        signatures.sort();
        for signature in signatures {
            let cache = self.lock_macro_caches().get(&signature).cloned();
            if let Some(cache) = cache {
                snapshot
                    .macro_caches
                    .push(persistence::macro_cache_record(&signature, &cache));
            }
        }
        let bytes = snapshot.write(path)?;
        let elapsed = started.elapsed();
        self.instruments
            .snapshot_seconds
            .observe(elapsed.as_secs_f64());
        Ok(SnapshotReport {
            archives: snapshot.archives.len(),
            genomes: snapshot.genome_count(),
            eval_caches: snapshot.eval_caches.len(),
            evaluations: snapshot.evaluation_count(),
            macro_caches: snapshot.macro_caches.len(),
            macro_metrics: snapshot.macro_metric_count(),
            bytes,
            elapsed,
        })
    }

    /// Merges a [`ExplorationService::snapshot`] file back into this
    /// service's registries, first-wins: entries the live service already
    /// knows are kept (they are at least as fresh), everything else is
    /// imported.  Bounded caches absorb imports CLOCK-style, evicting
    /// beyond capacity exactly like any other insert.
    ///
    /// Restore is **all-or-nothing before the merge**: the file is fully
    /// read, decoded, checksum-verified, and signature-validated first,
    /// and any failure — truncation, flipped bytes, wrong magic, a future
    /// format version, foreign signatures — returns the typed
    /// [`PersistError`], bumps
    /// `service_restore_rejected_total{reason=…}`, and leaves every
    /// registry untouched: the service continues exactly as if starting
    /// cold.  A snapshot recorded over *different-but-well-formed* spaces
    /// restores fine; its entries are simply never looked up.
    ///
    /// On success records `service_restore_seconds` and the
    /// `service_restored_{archives,evaluations,macro_metrics}` counters,
    /// and returns a [`RestoreReport`].
    pub fn restore(&self, path: impl AsRef<Path>) -> Result<RestoreReport, PersistError> {
        let path = path.as_ref();
        let started = Instant::now();
        let outcome = (|| {
            let raw = std::fs::read(path).map_err(|err| PersistError::io("read", path, &err))?;
            let snapshot = Snapshot::from_bytes(&raw)?;
            persistence::validate_signatures(&snapshot)?;
            Ok((snapshot, raw.len() as u64))
        })();
        let (snapshot, bytes) = match outcome {
            Ok(decoded) => decoded,
            Err(err) => {
                self.count_restore_rejection(&err);
                return Err(err);
            }
        };

        let mut report = RestoreReport {
            bytes,
            ..RestoreReport::default()
        };
        {
            let mut registry = self.lock_session_archives();
            for record in &snapshot.archives {
                if registry.contains_key(&record.space) {
                    report.skipped_archives += 1;
                } else {
                    registry.insert(
                        record.space.clone(),
                        persistence::archive_from_record(record),
                    );
                    report.archives += 1;
                }
            }
        }
        for record in snapshot.eval_caches {
            let store = self.store_for(&record.space);
            let (inserted, skipped) =
                store.import_entries(record.entries.into_iter().map(persistence::eval_entry));
            report.evaluations += inserted;
            report.skipped_evaluations += skipped;
        }
        for record in snapshot.macro_caches {
            let cache = self.macro_store_for_signature(&record.params);
            let (inserted, skipped) =
                cache.import_entries(record.entries.into_iter().map(persistence::macro_entry));
            report.macro_metrics += inserted;
            report.skipped_macro_metrics += skipped;
        }
        report.elapsed = started.elapsed();
        self.instruments
            .restore_seconds
            .observe(report.elapsed.as_secs_f64());
        self.instruments
            .restored_archives
            .add(report.archives as u64);
        self.instruments
            .restored_evaluations
            .add(report.evaluations as u64);
        self.instruments
            .restored_macro_metrics
            .add(report.macro_metrics as u64);
        Ok(report)
    }

    /// Counts one rejected restore under its typed reason.  Registered
    /// lazily — the label set is data-dependent, and a healthy deployment
    /// never mints any of these series.
    fn count_restore_rejection(&self, err: &PersistError) {
        self.telemetry
            .registry()
            .counter(
                "service_restore_rejected_total",
                "Snapshot restores rejected before any merge, per reason.",
                &[("reason", err.reason())],
            )
            .inc();
    }

    /// The service's telemetry handle — registry plus span recorder.
    /// Disabled (inert spans, empty snapshots) when the service was built
    /// with [`ServiceConfig::telemetry`] off.
    pub fn telemetry_handle(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Snapshot of everything the service observes: request counters and
    /// latency histograms per kind, queue/active job gauges, per-space
    /// cache counters and hit rates, per-generation spans and
    /// `generation_seconds`/`stage_seconds` histograms, plus the
    /// process-global worker-pool counters (tasks, steals, queue-wait
    /// histogram) bridged from [`rayon::pool_metrics`].
    ///
    /// Collector-style gauges are refreshed on the way out, so
    /// `service_cache_evictions` always equals
    /// [`ExplorationService::total_evictions`] at snapshot time.  Encode
    /// the result with [`acim_telemetry::prometheus_text`] or
    /// [`acim_telemetry::json_text`]; diff two snapshots with
    /// [`TelemetrySnapshot::diff`].  Empty when telemetry is disabled.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        if !self.telemetry.is_enabled() {
            return self.telemetry.snapshot();
        }
        self.instruments
            .cached_evaluations
            .set(self.cached_evaluations() as f64);
        self.instruments
            .cached_macro_metrics
            .set(self.cached_macro_metrics() as f64);
        self.instruments
            .cache_evictions
            .set(self.total_evictions() as f64);
        let pool = rayon::pool_metrics();
        self.instruments
            .pool_tasks
            .record_absolute(pool.tasks_executed());
        self.instruments.pool_steals.record_absolute(pool.steals());
        let mut snapshot = self.telemetry.snapshot();
        let bounds: Vec<f64> = rayon::QUEUE_WAIT_BOUNDS_NS
            .iter()
            .map(|&ns| ns as f64 * 1e-9)
            .collect();
        snapshot.push_histogram(
            "pool_queue_wait_seconds",
            "Delay between submitting a job to the shared pool and its first claimed range.",
            &[],
            HistogramSnapshot::from_parts(
                bounds,
                pool.queue_wait_bucket_counts,
                pool.queue_wait_sum_ns as f64 * 1e-9,
                pool.queue_wait_count,
            ),
        );
        snapshot
    }

    /// Clones the pre-registered per-kind request instruments and opens
    /// the root `request` span; counts the admission.  Called only after
    /// the scheduler reserved a queue slot, so rejected submissions never
    /// record a span or perturb the queue gauge.
    fn request_instruments(
        &self,
        kind: &'static str,
        id: u64,
        space: &str,
        admission: &Admission,
    ) -> RequestInstruments {
        let kind_instruments = self.instruments.kind(kind);
        kind_instruments.requests.inc();
        let mut root = self.telemetry.span("request");
        root.attr("kind", kind);
        root.attr("job", id.to_string());
        root.attr("space", space.to_string());
        root.attr("priority", admission.priority.to_string());
        if let Some(label) = &admission.label {
            root.attr("label", label.clone());
        }
        self.instruments.queue.inc();
        RequestInstruments {
            root,
            latency: kind_instruments.latency.clone(),
            queue: self.instruments.queue.clone(),
            active: self.instruments.active.clone(),
        }
    }

    /// The pre-resolved cache instruments of `space` (registering them on
    /// first use), `None` when telemetry is disabled.
    fn space_instruments_for(&self, space: &str) -> Option<SpaceInstruments> {
        if !self.telemetry.is_enabled() {
            return None;
        }
        let mut map = self
            .space_instruments
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Some(
            map.entry(space.to_string())
                .or_insert_with(|| SpaceInstruments::new(self.telemetry.registry(), space))
                .clone(),
        )
    }

    /// The multi-tenant instruments of a chip space (tenant-count gauge,
    /// per-tenant latency histograms), `None` when telemetry is disabled.
    /// The registry de-duplicates series, so repeated requests over the
    /// same space share one set of handles.
    fn tenant_instruments_for(&self, space: &str, mix: &WorkloadMix) -> Option<TenantInstruments> {
        self.telemetry
            .is_enabled()
            .then(|| TenantInstruments::new(self.telemetry.registry(), space, mix))
    }

    /// The trace context instrumenting one request's stages, `None` when
    /// telemetry is disabled (stages then run as pure pass-throughs).
    fn trace_context(&self, parent: Option<SpanId>) -> Option<TraceContext> {
        self.telemetry.is_enabled().then(|| {
            TraceContext::with_stages(
                self.telemetry.clone(),
                parent,
                self.instruments.stages.clone(),
            )
        })
    }

    /// Submits a request to the admission scheduler and returns a handle
    /// to the admitted job.
    ///
    /// Request problems (invalid config, warm-start session from a
    /// different space) are reported eagerly as
    /// [`SubmitError::Invalid`] before touching the queue; a full queue
    /// or a shutting-down service rejects with backpressure; runtime
    /// failures surface from [`JobHandle::join`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] for an unrunnable request,
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
    /// [`SubmitError::ShuttingDown`] after
    /// [`ExplorationService::shutdown`] started.
    pub fn submit(&self, request: ExplorationRequest) -> Result<JobHandle, SubmitError> {
        let id = self.next_job.fetch_add(1, Ordering::Relaxed);
        match request {
            ExplorationRequest::Macro(request) => self.submit_macro(id, request),
            ExplorationRequest::Chip(request) => self.submit_chip(id, request),
        }
    }

    /// Submits a request and blocks until it finishes — the synchronous
    /// convenience wrapper around [`ExplorationService::submit`] +
    /// [`JobHandle::join`].
    ///
    /// # Errors
    ///
    /// Returns the [`ServiceError`] of either phase; an eagerly-rejected
    /// invalid request surfaces as [`ServiceError::Flow`].
    pub fn run(&self, request: ExplorationRequest) -> Result<ExplorationResponse, ServiceError> {
        let handle = self.submit(request).map_err(ServiceError::from)?;
        handle.join().map_err(ServiceError::Flow)
    }

    /// Reserves one admission-queue slot, mapping a refusal to
    /// [`SubmitError`] and counting it in `service_rejected_total`.
    fn reserve_admission(&self) -> Result<Ticket, SubmitError> {
        self.scheduler.reserve().map_err(|err| match err {
            AdmitError::QueueFull { depth } => {
                self.instruments.rejected_full.inc();
                SubmitError::QueueFull { depth }
            }
            AdmitError::ShuttingDown => {
                self.instruments.rejected_shutdown.inc();
                SubmitError::ShuttingDown
            }
        })
    }

    /// Builds the progress state of a job totalling `generations`
    /// exploration generations, plus an observer that ticks it only on
    /// exploration events (netlist/layout events are a short tail the
    /// total deliberately excludes — see [`JobProgress`]).
    ///
    /// When the service's telemetry is enabled the observer additionally
    /// records one `generation` span per exploration generation (parented
    /// under the request's root span) and observes its duration in the
    /// `generation_seconds{stage}` histogram — the per-stage wall-clock
    /// breakdown the end-to-end `service_request_seconds` cannot give.
    fn generation_progress(
        &self,
        generations: usize,
        parent: Option<SpanId>,
    ) -> (Arc<ProgressState>, ProgressObserver) {
        let progress = Arc::new(ProgressState {
            completed: AtomicUsize::new(0),
            total: AtomicUsize::new(generations),
        });
        let ticker = progress.clone();
        let telemetry = self.telemetry.clone();
        let histograms: HashMap<&'static str, Histogram> = if telemetry.is_enabled() {
            [
                (
                    "explore",
                    self.instruments.explore_generation_seconds.clone(),
                ),
                ("chip", self.instruments.chip_generation_seconds.clone()),
            ]
            .into_iter()
            .collect()
        } else {
            HashMap::new()
        };
        // Per-stage timestamp of the previous tick (nanoseconds since
        // submission; `u64::MAX` = no tick yet): a generation's span
        // covers the time since the stage's last event (since submission
        // for its first), so concurrently running explore and chip stages
        // attribute their generations independently.  Plain atomics — a
        // mutexed map here would be measurable against a warm-cache
        // generation's microsecond-scale wall clock.
        let last_explore_ns = AtomicU64::new(u64::MAX);
        let last_chip_ns = AtomicU64::new(u64::MAX);
        let submitted = Instant::now();
        let observer: ProgressObserver = Arc::new(move |event: StageProgress| {
            if !matches!(event.stage, "explore" | "chip") {
                return;
            }
            // `Release` pairs with the `Acquire` pair in
            // `JobHandle::progress`.
            ticker.completed.fetch_add(1, Ordering::Release);
            if !telemetry.is_enabled() {
                return;
            }
            let now = Instant::now();
            let now_ns = now.saturating_duration_since(submitted).as_nanos() as u64;
            let last_ns = match event.stage {
                "explore" => &last_explore_ns,
                _ => &last_chip_ns,
            };
            let previous = last_ns.swap(now_ns, Ordering::Relaxed);
            let duration = if previous == u64::MAX {
                now.saturating_duration_since(submitted)
            } else {
                std::time::Duration::from_nanos(now_ns.saturating_sub(previous))
            };
            telemetry.spans().record_complete(
                "generation",
                parent,
                now.checked_sub(duration).unwrap_or(submitted),
                duration,
                vec![(SpanText::Borrowed("stage"), SpanText::Borrowed(event.stage))],
            );
            if let Some(histogram) = histograms.get(event.stage) {
                histogram.observe(duration.as_secs_f64());
            }
        });
        (progress, observer)
    }

    /// The cancellation token of one admission: carries the deadline when
    /// the request set one, so deadline expiry and explicit
    /// [`JobHandle::cancel`] trip the same token.
    fn cancel_token(admission: &Admission) -> CancelToken {
        match admission.deadline {
            Some(deadline) => CancelToken::with_deadline(deadline.instant()),
            None => CancelToken::new(),
        }
    }

    /// The typed error of a job whose token tripped **before** it started
    /// (cancelled or deadline-expired while queued).
    fn pre_run_error(reason: CancelReason, total: usize) -> FlowError {
        match reason {
            CancelReason::Cancelled => FlowError::Cancelled {
                completed: 0,
                total,
            },
            CancelReason::DeadlineExceeded => FlowError::DeadlineExceeded {
                completed: 0,
                total,
            },
        }
    }

    /// Wraps a job body with the pre-run cancellation check and the
    /// deadline-miss counter, producing the closure the scheduler's
    /// worker runs.
    fn job_closure(
        &self,
        instruments: RequestInstruments,
        cancel: CancelToken,
        total: usize,
        body: impl FnOnce() -> Result<ExplorationResponse, FlowError> + Send + 'static,
    ) -> Box<dyn FnOnce() -> Result<ExplorationResponse, FlowError> + Send> {
        let deadline_misses = self.instruments.deadline_misses.clone();
        Box::new(move || {
            let result = instruments.observe(move || {
                if let Some(reason) = cancel.status() {
                    return Err(Self::pre_run_error(reason, total));
                }
                body()
            });
            if matches!(result, Err(FlowError::DeadlineExceeded { .. })) {
                deadline_misses.inc();
            }
            result
        })
    }

    fn submit_macro(&self, id: u64, request: MacroRequest) -> Result<JobHandle, SubmitError> {
        let admission = request.admission;
        let controller = TopFlowController::new(request.config).map_err(SubmitError::Invalid)?;
        let config = controller.config().clone();
        let space = macro_space_signature(&config.dse);
        let warm_start =
            check_session(&request.warm_start, &space).map_err(SubmitError::Invalid)?;
        // Built eagerly (rejecting a bad exploration config before it
        // touches the queue) and reused by the worker for session
        // re-encoding.
        let session_explorer =
            DesignSpaceExplorer::new(config.dse.clone()).map_err(FlowError::from)?;
        let chip_session_explorer = match &config.chip {
            Some(chip) => Some(ChipExplorer::new(chip.dse.clone()).map_err(FlowError::from)?),
            None => None,
        };
        // Everything fallible is done: claim a queue slot (or reject with
        // backpressure) before building instruments, so a rejected
        // request records no span and perturbs no gauge.
        let ticket = self.reserve_admission()?;

        let cancel = Self::cancel_token(&admission);
        let mut total = config.dse.generations;
        let mut chip_options = ExploreOptions {
            cancel: Some(cancel.clone()),
            ..Default::default()
        };
        if let Some(chip) = &config.chip {
            total += chip.dse.generations;
            chip_options.cache = Some(self.store_for(&chip_space_signature(&chip.dse)));
            // One macro-metric cache per parameter set: when the chip
            // stage shares the macro stage's ModelParams, this is the
            // *same* cache handle — the chip exploration then reuses the
            // per-macro metrics the macro exploration just derived.
            chip_options.macro_cache = Some(self.macro_store_for(&chip.dse.params));
        }
        let instruments = self.request_instruments("macro", id, &space, &admission);
        let parent = instruments.root.as_parent();
        let (progress, observer) = self.generation_progress(total, parent);
        let options = FlowOptions {
            exploration: ExploreOptions {
                cache: Some(self.store_for(&space)),
                macro_cache: Some(self.macro_store_for(&config.dse.params)),
                warm_start,
                cancel: Some(cancel.clone()),
                ..Default::default()
            },
            chip: chip_options,
            observer: Some(observer),
            trace: self.trace_context(parent),
            cancel: Some(cancel.clone()),
        };

        let job_space = space.clone();
        let space_outcome = self.space_instruments_for(&space);
        let chip_outcome = config
            .chip
            .as_ref()
            .and_then(|chip| self.space_instruments_for(&chip_space_signature(&chip.dse)));
        let archive_registry = Arc::clone(&self.session_archives);
        let body = move || -> Result<ExplorationResponse, FlowError> {
            let result = controller.run_with(&options)?;
            if let Some(outcome) = &space_outcome {
                outcome.record(&result.engine);
            }
            let session =
                SessionArchive::new(space, session_explorer.session_genomes(&result.frontier));
            let chip_session = match (&config.chip, &result.chip, &chip_session_explorer) {
                (Some(chip_config), Some(chip_result), Some(explorer)) => {
                    let chip_space = chip_space_signature(&chip_config.dse);
                    if let Some(outcome) = &chip_outcome {
                        outcome.record(&chip_result.engine);
                    }
                    Some(SessionArchive::new(
                        chip_space,
                        explorer.session_genomes(&chip_result.front),
                    ))
                }
                _ => None,
            };
            record_archives(&archive_registry, &session, chip_session.as_ref());
            Ok(ExplorationResponse::Macro(MacroResponse {
                result,
                session,
                chip_session,
            }))
        };
        let work = self.job_closure(instruments, cancel.clone(), total, body);
        let slot = JobSlot::new();
        self.scheduler
            .enqueue(ticket, admission.priority, slot.clone(), work);

        Ok(JobHandle {
            id,
            space: job_space,
            label: admission.label,
            priority: admission.priority,
            cancel,
            progress,
            slot,
        })
    }

    fn submit_chip(&self, id: u64, request: ChipRequest) -> Result<JobHandle, SubmitError> {
        let admission = request.admission;
        // Built eagerly (rejecting an inconsistent configuration before
        // it touches the queue) and reused by the worker for session
        // re-encoding.
        let session_explorer =
            ChipExplorer::new(request.config.dse.clone()).map_err(FlowError::from)?;
        let config = request.config;
        let space = chip_space_signature(&config.dse);
        let warm_start =
            check_session(&request.warm_start, &space).map_err(SubmitError::Invalid)?;
        let ticket = self.reserve_admission()?;

        let cancel = Self::cancel_token(&admission);
        let options = ExploreOptions {
            cache: Some(self.store_for(&space)),
            macro_cache: Some(self.macro_store_for(&config.dse.params)),
            warm_start,
            cancel: Some(cancel.clone()),
            ..Default::default()
        };
        let total = config.dse.generations;
        let instruments = self.request_instruments("chip", id, &space, &admission);
        let parent = instruments.root.as_parent();
        let (progress, observer) = self.generation_progress(total, parent);
        let trace = self.trace_context(parent);

        let job_space = space.clone();
        let space_outcome = self.space_instruments_for(&space);
        let tenant_outcome = self.tenant_instruments_for(&space, &config.dse.mix);
        let archive_registry = Arc::clone(&self.session_archives);
        let body = move || -> Result<ExplorationResponse, FlowError> {
            let flow = crate::chip::ChipFlow::new(config);
            let result = flow.run_traced(&options, Some(observer), trace)?;
            if let Some(outcome) = &space_outcome {
                outcome.record(&result.engine);
            }
            if let Some(outcome) = &tenant_outcome {
                outcome.record(&result);
            }
            let session =
                SessionArchive::new(space, session_explorer.session_genomes(&result.front));
            record_archives(&archive_registry, &session, None);
            Ok(ExplorationResponse::Chip(ChipResponse { result, session }))
        };
        let work = self.job_closure(instruments, cancel.clone(), total, body);
        let slot = JobSlot::new();
        self.scheduler
            .enqueue(ticket, admission.priority, slot.clone(), work);

        Ok(JobHandle {
            id,
            space: job_space,
            label: admission.label,
            priority: admission.priority,
            cancel,
            progress,
            slot,
        })
    }
}

impl std::fmt::Debug for ExplorationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExplorationService")
            .field("config", &self.config)
            .field("workers", &self.worker_count())
            .field("queue_capacity", &self.queue_capacity())
            .field("queue_depth", &self.queue_depth())
            .field("spaces", &self.spaces())
            .field("cached_evaluations", &self.cached_evaluations())
            .field("cached_macro_metrics", &self.cached_macro_metrics())
            .field("total_evictions", &self.total_evictions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_chip::Network;

    fn quick_chip_config() -> ChipFlowConfig {
        let mut config = ChipFlowConfig::for_network(Network::edge_cnn(1));
        config.dse.population_size = 16;
        config.dse.generations = 5;
        config.dse.grid_rows = vec![1, 2];
        config.dse.grid_cols = vec![1, 2];
        config.dse.buffer_kib = vec![8, 32];
        config.validate_best = false;
        config
    }

    /// A two-tenant mix request (CNN + SNN), trimmed to the quick
    /// exploration settings of [`quick_chip_config`] but keeping the
    /// builder's behavioural validation on.
    fn quick_mix_request() -> ExplorationRequest {
        let mix = WorkloadMix::new("duo")
            .with_tenant(Network::edge_cnn(1), 1.0)
            .with_tenant(Network::snn_pipeline(), 2.0);
        let mut request = ExplorationRequest::mix_space(mix);
        let ExplorationRequest::Chip(chip) = &mut request else {
            panic!("mix_space builds a chip request");
        };
        chip.config.dse.population_size = 16;
        chip.config.dse.generations = 5;
        chip.config.dse.grid_rows = vec![1, 2];
        chip.config.dse.grid_cols = vec![1, 2];
        chip.config.dse.buffer_kib = vec![8, 32];
        request
    }

    #[test]
    fn mix_requests_flow_end_to_end_with_tenant_telemetry() {
        let service = ExplorationService::new();
        let response = service
            .run(quick_mix_request())
            .unwrap()
            .into_chip()
            .unwrap();
        assert!(!response.result.front.is_empty());
        // Every frontier point carries the per-tenant breakdown.
        for point in &response.result.front {
            assert_eq!(point.tenants.len(), 2);
        }
        // Validation ran on the interleaved stream simulator, not the
        // single-network path.
        let validation = response
            .result
            .mix_validation
            .as_ref()
            .expect("mix validation requested");
        assert_eq!(validation.tenants.len(), 2);
        assert!(validation.total_cycles > 0);
        assert!(response.result.validation.is_none());
        // Telemetry: the space's tenant-count gauge and one latency
        // histogram per tenant, observed from the best-throughput point.
        let space = response.session.space().to_string();
        let snapshot = service.telemetry();
        assert_eq!(
            snapshot.gauge("chip_tenants", &[("space", space.as_str())]),
            Some(2.0)
        );
        for tenant in ["edge_cnn_d1", "snn_pipeline"] {
            let histogram = snapshot
                .histogram(
                    "chip_tenant_latency_seconds",
                    &[("space", space.as_str()), ("tenant", tenant)],
                )
                .unwrap_or_else(|| panic!("latency series for {tenant}"));
            assert_eq!(histogram.count, 1);
            assert!(histogram.sum > 0.0);
        }

        // A second identical mix request reuses the space's shared cache
        // and folds into the same tenant series.
        let second = service
            .run(quick_mix_request())
            .unwrap()
            .into_chip()
            .unwrap();
        assert_eq!(second.result.engine.cache.misses, 0);
        let snapshot = service.telemetry();
        let histogram = snapshot
            .histogram(
                "chip_tenant_latency_seconds",
                &[("space", space.as_str()), ("tenant", "snn_pipeline")],
            )
            .unwrap();
        assert_eq!(histogram.count, 2);
    }

    /// A chip config whose exploration runs long enough to observe,
    /// cancel, or pin a worker with — always cancel jobs built from this.
    fn long_chip_config() -> ChipFlowConfig {
        let mut config = quick_chip_config();
        config.dse.generations = 50_000;
        config
    }

    /// Submits `request` and spins until its exploration has visibly
    /// started (at least one generation completed).
    fn submit_running(service: &ExplorationService, request: ExplorationRequest) -> JobHandle {
        let handle = service.submit(request).unwrap();
        while handle.progress().completed == 0 {
            std::thread::yield_now();
        }
        handle
    }

    #[test]
    fn chip_request_round_trips_and_reuses_the_cache() {
        let service = ExplorationService::new();
        let first = service
            .run(ExplorationRequest::chip_space(quick_chip_config()))
            .unwrap()
            .into_chip()
            .unwrap();
        assert!(!first.result.front.is_empty());
        assert!(first.result.engine.cache.misses > 0);
        assert_eq!(first.session.len(), first.result.front.len());
        assert!(first.session.space().starts_with("chip/"));
        assert_eq!(service.spaces().len(), 1);
        let cached = service.cached_evaluations();
        assert_eq!(cached, first.result.engine.cache.misses);

        // Identical second request: every evaluation is a cross-request
        // cache hit and no new entries appear.
        let second = service
            .run(ExplorationRequest::chip_space(quick_chip_config()))
            .unwrap()
            .into_chip()
            .unwrap();
        assert_eq!(second.result.engine.cache.misses, 0);
        assert!(second.result.engine.cache.hits > 0);
        assert_eq!(service.cached_evaluations(), cached);
        assert_eq!(first.result.front.len(), second.result.front.len());
    }

    #[test]
    fn warm_start_sessions_are_space_checked() {
        let service = ExplorationService::new();
        let response = service
            .run(ExplorationRequest::chip_space(quick_chip_config()))
            .unwrap();
        let session = response.session().clone();

        // Same space: accepted.
        let ok = ExplorationRequest::chip_space(quick_chip_config()).warm_start(session.clone());
        assert!(service.submit(ok).is_ok());

        // Different space (other buffer catalogue): rejected eagerly.
        let mut other = quick_chip_config();
        other.dse.buffer_kib = vec![16, 64];
        let bad = ExplorationRequest::chip_space(other).warm_start(session);
        match service.submit(bad) {
            Err(SubmitError::Invalid(FlowError::WarmStartMismatch { requested, session })) => {
                assert_ne!(requested, session);
            }
            other => panic!("expected WarmStartMismatch, got {other:?}"),
        }
    }

    #[test]
    fn job_handles_report_progress_space_and_admission() {
        let service = ExplorationService::new();
        let handle = service
            .submit(
                ExplorationRequest::chip_space(quick_chip_config())
                    .priority(Priority::High)
                    .label("smoke"),
            )
            .unwrap();
        assert!(handle.space().starts_with("chip/"));
        assert_eq!(handle.label(), Some("smoke"));
        assert_eq!(handle.priority(), Priority::High);
        let total = handle.progress().total;
        assert_eq!(total, 5);
        let response = handle.join().unwrap();
        assert!(matches!(response, ExplorationResponse::Chip(_)));
    }

    #[test]
    fn invalid_requests_fail_eagerly() {
        let service = ExplorationService::new();
        let mut config = quick_chip_config();
        config.dse.population_size = 7;
        assert!(matches!(
            service.submit(ExplorationRequest::chip_space(config)),
            Err(SubmitError::Invalid(_))
        ));
        let mut flow = FlowConfig::new(4 * 1024);
        flow.dse.population_size = 2;
        assert!(matches!(
            service.submit(ExplorationRequest::macro_space(flow)),
            Err(SubmitError::Invalid(_))
        ));
    }

    #[test]
    fn finished_jobs_report_complete_progress() {
        let service = ExplorationService::new();
        let handle = service
            .submit(ExplorationRequest::chip_space(quick_chip_config()))
            .unwrap();
        while !handle.is_finished() {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // The documented guarantee: after `is_finished`, the snapshot
        // reflects every generation, and completed never exceeds total.
        let progress = handle.progress();
        assert_eq!(progress.completed, progress.total);
        assert_eq!(progress.fraction(), 1.0);
        handle.join().unwrap();
    }

    #[test]
    fn queue_full_rejections_are_deterministic_at_capacity() {
        let service = ExplorationService::with_config(
            ServiceConfig::default()
                .with_workers(1)
                .with_queue_capacity(2),
        );
        assert_eq!(service.worker_count(), 1);
        assert_eq!(service.queue_capacity(), 2);
        // Pin the single worker, then fill the queue to capacity.
        let pinned = submit_running(&service, ExplorationRequest::chip_space(long_chip_config()));
        let queued_a = service
            .submit(ExplorationRequest::chip_space(quick_chip_config()))
            .unwrap();
        let queued_b = service
            .submit(ExplorationRequest::chip_space(quick_chip_config()))
            .unwrap();
        assert_eq!(service.queue_depth(), 2);
        // Deterministic backpressure: the next submission must be
        // rejected with the queue depth, regardless of priority.
        match service
            .submit(ExplorationRequest::chip_space(quick_chip_config()).priority(Priority::High))
        {
            Err(SubmitError::QueueFull { depth }) => assert_eq!(depth, 2),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        let snapshot = service.telemetry();
        assert_eq!(
            snapshot.counter("service_rejected_total", &[("reason", "queue_full")]),
            Some(1)
        );
        pinned.cancel();
        assert!(matches!(pinned.join(), Err(FlowError::Cancelled { .. })));
        queued_a.join().unwrap();
        queued_b.join().unwrap();
    }

    #[test]
    fn high_priority_jobs_bypass_the_queued_backlog() {
        let service = ExplorationService::with_config(
            ServiceConfig::default()
                .with_workers(1)
                .with_queue_capacity(16),
        );
        // Pin the single worker so the backlog's dequeue order is decided
        // by the priority heap, not by arrival timing.
        let pinned = submit_running(&service, ExplorationRequest::chip_space(long_chip_config()));
        let low_a = service
            .submit(
                ExplorationRequest::chip_space(quick_chip_config())
                    .priority(Priority::Low)
                    .label("low-a"),
            )
            .unwrap();
        let low_b = service
            .submit(
                ExplorationRequest::chip_space(quick_chip_config())
                    .priority(Priority::Low)
                    .label("low-b"),
            )
            .unwrap();
        let high = service
            .submit(
                ExplorationRequest::chip_space(quick_chip_config())
                    .priority(Priority::High)
                    .label("high"),
            )
            .unwrap();
        pinned.cancel();
        assert!(pinned.join().is_err());
        low_a.join().unwrap();
        low_b.join().unwrap();
        high.join().unwrap();
        // Execution order from the span record: with one worker, jobs
        // complete in the order they were dequeued, so the root span of
        // the high-priority job must close before either low-priority
        // job's (which keep FIFO order between themselves).  The roots'
        // *start* times carry no order — they open at submission.
        let snapshot = service.telemetry();
        let request_end = |label: &str| -> u64 {
            let root = snapshot
                .spans
                .iter()
                .find(|s| {
                    s.name == "request"
                        && s.attributes
                            .iter()
                            .any(|(k, v)| k.as_ref() == "label" && v.as_ref() == label)
                })
                .unwrap_or_else(|| panic!("root span of {label}"));
            root.start_us + root.duration_us
        };
        let high_end = request_end("high");
        let low_a_end = request_end("low-a");
        let low_b_end = request_end("low-b");
        assert!(
            high_end < low_a_end && high_end < low_b_end,
            "high ({high_end}) must finish before low-a ({low_a_end}) and low-b ({low_b_end})"
        );
        assert!(low_a_end < low_b_end, "equal-priority jobs keep FIFO order");
    }

    #[test]
    fn cancellation_stops_a_running_job_within_a_generation() {
        let service = ExplorationService::new();
        let handle = submit_running(&service, ExplorationRequest::chip_space(long_chip_config()));
        handle.cancel();
        // Idempotent.
        handle.cancel();
        match handle.join() {
            Err(FlowError::Cancelled { completed, total }) => {
                assert!(completed >= 1, "ran at least one generation");
                assert!(completed < total, "stopped before the full budget");
                assert_eq!(total, 50_000);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_fails_a_queued_job_without_running_it() {
        let service = ExplorationService::new();
        let handle = service
            .submit(
                ExplorationRequest::chip_space(long_chip_config())
                    .deadline(Deadline::at(Instant::now() - Duration::from_millis(1))),
            )
            .unwrap();
        match handle.join() {
            Err(FlowError::DeadlineExceeded { completed, total }) => {
                assert_eq!(completed, 0, "never started");
                assert_eq!(total, 50_000);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let snapshot = service.telemetry();
        assert_eq!(
            snapshot.counter("service_deadline_misses_total", &[]),
            Some(1)
        );
    }

    #[test]
    fn mid_run_deadline_stops_the_job_and_counts_the_miss() {
        let service = ExplorationService::new();
        let handle = service
            .submit(
                ExplorationRequest::chip_space(long_chip_config())
                    .deadline(Deadline::within(Duration::from_millis(80))),
            )
            .unwrap();
        match handle.join() {
            Err(FlowError::DeadlineExceeded { completed, total }) => {
                assert!(completed <= total);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let snapshot = service.telemetry();
        assert_eq!(
            snapshot.counter("service_deadline_misses_total", &[]),
            Some(1)
        );
    }

    #[test]
    fn shutdown_drains_the_queue_and_rejects_new_work() {
        let service = ExplorationService::with_config(
            ServiceConfig::default()
                .with_workers(1)
                .with_queue_capacity(16),
        );
        let handles: Vec<_> = (0..3)
            .map(|_| {
                service
                    .submit(ExplorationRequest::chip_space(quick_chip_config()))
                    .unwrap()
            })
            .collect();
        service.shutdown();
        // Every admitted job ran to completion before shutdown returned…
        for handle in handles {
            assert!(handle.is_finished());
            handle.join().unwrap();
        }
        assert_eq!(service.queue_depth(), 0);
        // …and new work is rejected from then on.  Idempotent.
        assert!(matches!(
            service.submit(ExplorationRequest::chip_space(quick_chip_config())),
            Err(SubmitError::ShuttingDown)
        ));
        service.shutdown();
        let snapshot = service.telemetry();
        assert_eq!(
            snapshot.counter("service_rejected_total", &[("reason", "shutting_down")]),
            Some(1)
        );
    }

    #[test]
    fn try_join_and_join_timeout_hand_the_handle_back() {
        let service = ExplorationService::new();
        let mut handle =
            submit_running(&service, ExplorationRequest::chip_space(long_chip_config()));
        handle = handle.try_join().expect_err("job still running");
        handle = handle
            .join_timeout(Duration::from_millis(5))
            .expect_err("job outlives the timeout");
        handle.cancel();
        let result = handle
            .join_timeout(Duration::from_secs(60))
            .expect("cancelled job finishes within a generation");
        assert!(matches!(result, Err(FlowError::Cancelled { .. })));

        let finished = service
            .submit(ExplorationRequest::chip_space(quick_chip_config()))
            .unwrap();
        while !finished.is_finished() {
            std::thread::sleep(Duration::from_millis(2));
        }
        finished.try_join().expect("finished job").unwrap();
    }

    #[test]
    fn submit_errors_display_and_convert() {
        let full = SubmitError::QueueFull { depth: 7 };
        assert!(full.to_string().contains("7"));
        assert!(SubmitError::ShuttingDown.to_string().contains("shutting"));
        let invalid: SubmitError = FlowError::EmptyDistilledSet.into();
        assert!(invalid.to_string().contains("invalid request"));
        // run()'s error flattening: Invalid surfaces as Flow, admission
        // failures as Submit.
        assert_eq!(
            ServiceError::from(invalid),
            ServiceError::Flow(FlowError::EmptyDistilledSet)
        );
        assert_eq!(
            ServiceError::from(SubmitError::ShuttingDown),
            ServiceError::Submit(SubmitError::ShuttingDown)
        );
        assert!(ServiceError::from(SubmitError::QueueFull { depth: 3 })
            .to_string()
            .contains("submission rejected"));
    }

    #[test]
    fn telemetry_snapshot_exposes_request_cache_and_pool_series() {
        let service = ExplorationService::new();
        let response = service
            .run(ExplorationRequest::chip_space(quick_chip_config()))
            .unwrap()
            .into_chip()
            .unwrap();
        let space = response.session.space().to_string();
        let snapshot = service.telemetry();

        assert_eq!(
            snapshot.counter("service_requests_total", &[("kind", "chip")]),
            Some(1)
        );
        let latency = snapshot
            .histogram("service_request_seconds", &[("kind", "chip")])
            .expect("request latency histogram");
        assert_eq!(latency.count, 1);
        assert!(latency.quantile(0.99).is_finite());
        assert_eq!(snapshot.gauge("service_queue_jobs", &[]), Some(0.0));
        assert_eq!(snapshot.gauge("service_active_jobs", &[]), Some(0.0));

        let labels = [("space", space.as_str())];
        assert_eq!(
            snapshot.counter("service_cache_misses_total", &labels),
            Some(response.result.engine.cache.misses as u64)
        );
        let rate = snapshot
            .gauge("service_cache_hit_rate", &labels)
            .expect("hit-rate gauge");
        assert!((0.0..=1.0).contains(&rate));

        let generations = snapshot
            .histogram("generation_seconds", &[("stage", "chip")])
            .expect("per-generation histogram");
        assert_eq!(
            generations.count as usize,
            quick_chip_config().dse.generations
        );
        assert!(snapshot
            .histogram("stage_seconds", &[("stage", "chip")])
            .is_some());

        assert!(snapshot.counter("pool_tasks_total", &[]).is_some());
        assert!(snapshot.counter("pool_steals_total", &[]).is_some());
        assert!(snapshot.histogram("pool_queue_wait_seconds", &[]).is_some());

        // Span tree: request → chip stage → generations.
        let spans = &snapshot.spans;
        let root = spans
            .iter()
            .find(|s| s.name == "request")
            .expect("root request span");
        assert!(spans
            .iter()
            .any(|s| s.name == "chip" && s.parent == Some(root.id)));
        let gen_count = spans
            .iter()
            .filter(|s| s.name == "generation" && s.parent == Some(root.id))
            .count();
        assert_eq!(gen_count, quick_chip_config().dse.generations);

        // Both encoders render the snapshot.
        let text = acim_telemetry::prometheus_text(&snapshot);
        assert!(text.contains("service_requests_total{kind=\"chip\"} 1"));
        assert!(text.contains("pool_queue_wait_seconds_bucket"));
        let json = acim_telemetry::json_text(&snapshot);
        assert!(json.contains("\"service_request_seconds\""));
    }

    #[test]
    fn eviction_gauge_agrees_with_total_evictions() {
        // Tight bounds force evictions in both cache layers; the
        // collector-style gauge must agree with the method at snapshot
        // time.
        let service = ExplorationService::with_config(ServiceConfig::bounded(16, 4));
        service
            .run(ExplorationRequest::chip_space(quick_chip_config()))
            .unwrap();
        let snapshot = service.telemetry();
        let evictions = service.total_evictions();
        assert!(evictions > 0, "bounded caches should have evicted");
        assert_eq!(
            snapshot.gauge("service_cache_evictions", &[]),
            Some(evictions as f64)
        );
    }

    #[test]
    fn disabled_telemetry_yields_empty_snapshots() {
        let service = ExplorationService::with_config(ServiceConfig::default().without_telemetry());
        assert!(!service.telemetry_handle().is_enabled());
        service
            .run(ExplorationRequest::chip_space(quick_chip_config()))
            .unwrap();
        let snapshot = service.telemetry();
        assert!(snapshot.is_empty());
        assert!(acim_telemetry::prometheus_text(&snapshot).is_empty());
    }

    #[test]
    fn job_progress_fraction_saturates() {
        let progress = JobProgress {
            completed: 3,
            total: 4,
        };
        assert!((progress.fraction() - 0.75).abs() < 1e-12);
        let done = JobProgress {
            completed: 9,
            total: 4,
        };
        assert_eq!(done.fraction(), 1.0);
        let empty = JobProgress {
            completed: 0,
            total: 0,
        };
        assert_eq!(empty.fraction(), 0.0);
    }

    #[test]
    fn job_progress_displays_human_readably() {
        let progress = JobProgress {
            completed: 12,
            total: 40,
        };
        assert_eq!(progress.to_string(), "12/40 generations (30%)");
        let empty = JobProgress {
            completed: 0,
            total: 0,
        };
        assert_eq!(empty.to_string(), "0/0 generations (0%)");
    }
}
