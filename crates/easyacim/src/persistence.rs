//! The service ↔ snapshot boundary: domain/wire conversions, signature
//! validation, and the snapshot/restore reports.
//!
//! `acim-persist` deliberately knows nothing about this crate's domain
//! types — it moves plain strings, integer words and `f64` bit patterns.
//! This module owns the (lossless, bit-exact) conversions in both
//! directions and the one semantic check the wire format cannot do
//! itself: that every signature in a snapshot belongs to the registry
//! namespace it targets.  [`ExplorationService::snapshot`] /
//! [`ExplorationService::restore`] are thin orchestration over these
//! helpers.
//!
//! [`ExplorationService::snapshot`]: crate::service::ExplorationService::snapshot
//! [`ExplorationService::restore`]: crate::service::ExplorationService::restore

use std::fmt;
use std::time::Duration;

use acim_chip::{MacroMetrics, MacroMetricsCache};
use acim_model::{DesignMetrics, SpecKey};
use acim_moga::{CacheStore, Evaluation};
use acim_persist::{
    ArchiveRecord, EvalCacheRecord, EvalEntry, MacroCacheRecord, MacroEntry, PersistError, Snapshot,
};

use crate::service::SessionArchive;

/// Signature namespace of macro design spaces.
const MACRO_SPACE_PREFIX: &str = "macro/";
/// Signature namespace of chip design spaces.
const CHIP_SPACE_PREFIX: &str = "chip/";
/// Signature namespace of model-parameter sets.
const PARAMS_PREFIX: &str = "params/";

/// What [`ExplorationService::snapshot`] wrote: the counts per registry,
/// the encoded size, the wall-clock cost.
///
/// [`ExplorationService::snapshot`]: crate::service::ExplorationService::snapshot
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotReport {
    /// Session archives written (one per design space).
    pub archives: usize,
    /// Frontier genomes across every archive.
    pub genomes: usize,
    /// Evaluation-cache sections written (one per design space).
    pub eval_caches: usize,
    /// Cached evaluations across every store.
    pub evaluations: usize,
    /// Macro-cache sections written (one per parameter set).
    pub macro_caches: usize,
    /// Cached macro derivations across every macro cache.
    pub macro_metrics: usize,
    /// Encoded file size in bytes.
    pub bytes: u64,
    /// Wall-clock time of the export + atomic write.
    pub elapsed: Duration,
}

impl fmt::Display for SnapshotReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} archives ({} genomes), {} evaluations over {} spaces, \
             {} macro metrics over {} parameter sets — {} bytes in {:.1} ms",
            self.archives,
            self.genomes,
            self.evaluations,
            self.eval_caches,
            self.macro_metrics,
            self.macro_caches,
            self.bytes,
            self.elapsed.as_secs_f64() * 1e3,
        )
    }
}

/// What [`ExplorationService::restore`] merged — and what it skipped
/// because the live registries already knew fresher entries.
///
/// [`ExplorationService::restore`]: crate::service::ExplorationService::restore
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestoreReport {
    /// Session archives merged into the registry.
    pub archives: usize,
    /// Archives skipped because their space already has a live archive.
    pub skipped_archives: usize,
    /// Evaluation-cache entries merged.
    pub evaluations: usize,
    /// Evaluation entries skipped (key already live).
    pub skipped_evaluations: usize,
    /// Macro-metric entries merged.
    pub macro_metrics: usize,
    /// Macro-metric entries skipped (key already live).
    pub skipped_macro_metrics: usize,
    /// Snapshot file size in bytes.
    pub bytes: u64,
    /// Wall-clock time of the read + verify + merge.
    pub elapsed: Duration,
}

impl fmt::Display for RestoreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} archives, {} evaluations, {} macro metrics restored",
            self.archives, self.evaluations, self.macro_metrics
        )?;
        let skipped = self.skipped_archives + self.skipped_evaluations + self.skipped_macro_metrics;
        if skipped > 0 {
            write!(f, " ({skipped} already live)")?;
        }
        write!(
            f,
            " from {} bytes in {:.1} ms",
            self.bytes,
            self.elapsed.as_secs_f64() * 1e3
        )
    }
}

/// A session archive as its wire record (genomes cloned bit-exactly).
pub(crate) fn archive_record(archive: &SessionArchive) -> ArchiveRecord {
    ArchiveRecord {
        space: archive.space().to_string(),
        genomes: archive.genomes().to_vec(),
    }
}

/// A wire record back into a session archive.
pub(crate) fn archive_from_record(record: &ArchiveRecord) -> SessionArchive {
    SessionArchive::new(record.space.clone(), record.genomes.clone())
}

/// One evaluation store's contents, sorted by genome key so identical
/// stores serialize to identical bytes.
pub(crate) fn eval_cache_record(space: &str, store: &CacheStore) -> EvalCacheRecord {
    let mut entries = store.export_entries();
    entries.sort_by(|(a, _), (b, _)| a.cmp(b));
    EvalCacheRecord {
        space: space.to_string(),
        entries: entries
            .into_iter()
            .map(|(key, evaluation)| EvalEntry {
                key,
                objectives: evaluation.objectives.to_vec(),
                constraint_violation: evaluation.constraint_violation,
            })
            .collect(),
    }
}

/// A wire evaluation entry back into the store's `(key, value)` shape.
pub(crate) fn eval_entry(entry: EvalEntry) -> (Vec<i64>, Evaluation) {
    (
        entry.key,
        Evaluation {
            objectives: entry.objectives.into(),
            constraint_violation: entry.constraint_violation,
        },
    )
}

/// One macro cache's contents, sorted by key words for deterministic
/// bytes.
pub(crate) fn macro_cache_record(params: &str, cache: &MacroMetricsCache) -> MacroCacheRecord {
    let mut entries = cache.export_entries();
    entries.sort_by_key(|(key, _)| *key);
    MacroCacheRecord {
        params: params.to_string(),
        entries: entries
            .into_iter()
            .map(|(key, metrics)| MacroEntry {
                key: key.to_words(),
                snr_db: metrics.design.snr_db,
                throughput_tops: metrics.design.throughput_tops,
                energy_per_mac_fj: metrics.design.energy_per_mac_fj,
                tops_per_watt: metrics.design.tops_per_watt,
                area_f2_per_bit: metrics.design.area_f2_per_bit,
                cycle_ns: metrics.cycle_ns,
            })
            .collect(),
    }
}

/// A wire macro entry back into the cache's `(key, value)` shape.
pub(crate) fn macro_entry(entry: MacroEntry) -> (SpecKey, MacroMetrics) {
    (
        SpecKey::from_words(entry.key),
        MacroMetrics {
            design: DesignMetrics {
                snr_db: entry.snr_db,
                throughput_tops: entry.throughput_tops,
                energy_per_mac_fj: entry.energy_per_mac_fj,
                tops_per_watt: entry.tops_per_watt,
                area_f2_per_bit: entry.area_f2_per_bit,
            },
            cycle_ns: entry.cycle_ns,
        },
    )
}

/// Rejects any snapshot whose signatures cannot belong to the registries
/// they target — the restore-side guard that runs **before** any merge,
/// so a wrong-namespace snapshot leaves the service untouched.
///
/// Note what this check is *not*: a snapshot recorded over a different
/// (but well-formed) design space or parameter set is perfectly valid —
/// it restores fine and its entries are simply never looked up, which is
/// a clean cold start by construction.  The typed rejection is for
/// signatures from the wrong namespace entirely, which would plant
/// entries no signature scheme of this service can ever address.
pub(crate) fn validate_signatures(snapshot: &Snapshot) -> Result<(), PersistError> {
    let space_ok =
        |space: &str| space.starts_with(MACRO_SPACE_PREFIX) || space.starts_with(CHIP_SPACE_PREFIX);
    for archive in &snapshot.archives {
        if !space_ok(&archive.space) {
            return Err(PersistError::BadSignature {
                expected: "design-space (`macro/…` or `chip/…`)",
                found: archive.space.clone(),
            });
        }
    }
    for cache in &snapshot.eval_caches {
        if !space_ok(&cache.space) {
            return Err(PersistError::BadSignature {
                expected: "design-space (`macro/…` or `chip/…`)",
                found: cache.space.clone(),
            });
        }
    }
    for cache in &snapshot.macro_caches {
        if !cache.params.starts_with(PARAMS_PREFIX) {
            return Err(PersistError::BadSignature {
                expected: "model-parameter (`params/…`)",
                found: cache.params.clone(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_entries_convert_bit_exactly_in_both_directions() {
        let store = CacheStore::new();
        store.insert(
            vec![3, -1, 4],
            Evaluation {
                objectives: vec![-31.5, -0.0, f64::MIN_POSITIVE].into(),
                constraint_violation: 0.25,
            },
        );
        let record = eval_cache_record("chip/x", &store);
        assert_eq!(record.entries.len(), 1);
        let (key, evaluation) = eval_entry(record.entries[0].clone());
        assert_eq!(key, vec![3, -1, 4]);
        let bits: Vec<u64> = evaluation.objectives.iter().map(|o| o.to_bits()).collect();
        assert_eq!(
            bits,
            vec![
                (-31.5f64).to_bits(),
                (-0.0f64).to_bits(),
                f64::MIN_POSITIVE.to_bits()
            ]
        );
        assert_eq!(evaluation.constraint_violation, 0.25);
    }

    #[test]
    fn signature_validation_accepts_real_namespaces_and_rejects_others() {
        let mut snapshot = Snapshot::new();
        snapshot.archives.push(ArchiveRecord {
            space: "chip/edge#1".into(),
            genomes: vec![],
        });
        snapshot.eval_caches.push(EvalCacheRecord {
            space: "macro/64x[1..6]/#a".into(),
            entries: vec![],
        });
        snapshot.macro_caches.push(MacroCacheRecord {
            params: "params/#b".into(),
            entries: vec![],
        });
        validate_signatures(&snapshot).unwrap();

        snapshot.archives[0].space = "bogus/space".into();
        let err = validate_signatures(&snapshot).unwrap_err();
        assert!(matches!(err, PersistError::BadSignature { .. }));
        assert_eq!(err.reason(), "bad_signature");
    }

    #[test]
    fn reports_render_their_counts() {
        let snapshot = SnapshotReport {
            archives: 2,
            genomes: 31,
            eval_caches: 2,
            evaluations: 457,
            macro_caches: 1,
            macro_metrics: 96,
            bytes: 54321,
            elapsed: Duration::from_micros(850),
        };
        let text = snapshot.to_string();
        assert!(text.contains("2 archives (31 genomes)"));
        assert!(text.contains("457 evaluations"));
        assert!(text.contains("54321 bytes"));

        let restore = RestoreReport {
            archives: 2,
            evaluations: 457,
            macro_metrics: 96,
            skipped_evaluations: 3,
            ..RestoreReport::default()
        };
        let text = restore.to_string();
        assert!(text.contains("457 evaluations"));
        assert!(text.contains("(3 already live)"));
        assert!(!RestoreReport::default()
            .to_string()
            .contains("already live"));
    }
}
