//! Human-readable reports of flow results.

use acim_chip::TenantMetrics;
use acim_dse::{ChipDesignPoint, DesignPoint};
use acim_telemetry::{Histogram, MetricValue, TelemetrySnapshot};

use crate::chip::ChipFlowResult;
use crate::flow::{FlowResult, GeneratedDesign};

/// Formats a Pareto frontier (or any list of design points) as an aligned
/// text table, one row per design.
pub fn frontier_table(points: &[DesignPoint]) -> String {
    let mut out = String::new();
    out.push_str(
        "  H      W      L   B  | SNR(dB)  T(TOPS)   E(fJ/MAC)  eff(TOPS/W)  area(F2/bit)\n",
    );
    out.push_str(
        "-------------------------------------------------------------------------------\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:>5} {:>6} {:>4} {:>3}  | {:>7.1} {:>8.3} {:>10.2} {:>12.0} {:>13.0}\n",
            p.spec.height(),
            p.spec.width(),
            p.spec.local_array(),
            p.spec.adc_bits(),
            p.metrics.snr_db,
            p.metrics.throughput_tops,
            p.metrics.energy_per_mac_fj,
            p.metrics.tops_per_watt,
            p.metrics.area_f2_per_bit,
        ));
    }
    out
}

/// Formats one generated design (netlist + layout) as a report block.
pub fn design_report(design: &GeneratedDesign) -> String {
    let m = &design.layout.metrics;
    let s = &design.netlist_stats;
    format!(
        "design {spec}\n\
         \x20 estimated: {point}\n\
         \x20 netlist  : {cells} SRAM cells, {lc} compute cells, {tr} transistors, {caps} capacitors\n\
         \x20 layout   : core {w:.0} x {h:.0} um ({density:.0} F2/bit), total {tw:.0} x {th:.0} um\n\
         \x20 wiring   : {wl:.0} um routed, {vias} vias, {inst} placed instances\n\
         \x20 runtime  : {ms} ms netlist+layout generation\n",
        spec = design.point.spec,
        point = design.point,
        cells = s.sram_cells,
        lc = s.compute_cells,
        tr = s.transistors,
        caps = s.capacitors,
        w = m.core_width_um,
        h = m.core_height_um,
        density = m.core_area_f2_per_bit,
        tw = m.total_width_um,
        th = m.total_height_um,
        wl = m.wirelength_um,
        vias = m.via_count,
        inst = m.instance_count,
        ms = design.generation_time.as_millis(),
    )
}

/// Formats a chip-level Pareto front as an aligned text table, one row
/// per chip.
pub fn chip_frontier_table(points: &[ChipDesignPoint]) -> String {
    let mut out = String::new();
    out.push_str(
        "grid    macro          buf(KiB) | acc(dB)  T(TOPS)  E(pJ/inf)  area(MF2)  lat(ns)\n",
    );
    out.push_str(
        "---------------------------------------------------------------------------------\n",
    );
    for p in points {
        let macro_desc = if p.chip.grid.is_uniform() {
            let spec = p.chip.grid.spec(0);
            format!(
                "{:>4}x{:<4} L={:<2} B={}",
                spec.height(),
                spec.width(),
                spec.local_array(),
                spec.adc_bits(),
            )
        } else {
            format!(
                "{:<18}",
                format!("{} macro shapes", p.chip.grid.distinct_specs().len())
            )
        };
        out.push_str(&format!(
            "{:>2}x{:<2}  {} {:>6}  | {:>7.1} {:>8.3} {:>10.1} {:>10.1} {:>8.1}\n",
            p.chip.grid.rows(),
            p.chip.grid.cols(),
            macro_desc,
            p.chip.buffer_kib,
            p.metrics.accuracy_db,
            p.metrics.throughput_tops,
            p.metrics.energy_per_inference_pj,
            p.metrics.area_mf2,
            p.metrics.latency_ns,
        ));
    }
    out
}

/// Formats the per-tenant breakdown of one frontier chip as an aligned
/// text table, one row per tenant.  Empty for single-tenant points, so
/// single-network reports are unchanged.
pub fn tenant_table(tenants: &[TenantMetrics]) -> String {
    if tenants.len() < 2 {
        return String::new();
    }
    let mut out = String::new();
    out.push_str("tenant              weight | acc(dB)  T(TOPS)  E(pJ/inf)   lat(ns)  util\n");
    out.push_str("------------------------------------------------------------------------\n");
    for t in tenants {
        out.push_str(&format!(
            "{:<18} {:>6.1}  | {:>7.1} {:>8.3} {:>10.1} {:>9.1} {:>5.2}\n",
            t.name,
            t.weight,
            t.metrics.accuracy_db,
            t.metrics.throughput_tops,
            t.metrics.energy_per_inference_pj,
            t.metrics.latency_ns,
            t.metrics.mean_utilization,
        ));
    }
    out
}

/// One report line for the macro-metric reuse layer, empty when the run
/// had no macro-metric cache (so cold single-run reports are unchanged).
/// For a multi-tenant run, `tenants` (the best chip's per-tenant
/// breakdown) appends each tenant's share of the reuse: its per-tile
/// macro-metric reads, all served from the chip's once-per-distinct-macro
/// derivation.  Counts only — the line stays `NaN`/`inf`-free even for
/// full-cache-hit replays whose timing stats are all zero.
fn macro_cache_line(engine: &acim_moga::EvalStats, tenants: Option<&[TenantMetrics]>) -> String {
    if engine.macro_cache.total() == 0 {
        return String::new();
    }
    let mut line = format!("macro-metric reuse: {}", engine.macro_cache);
    if let Some(tenants) = tenants {
        if tenants.len() > 1 {
            let shares: Vec<String> = tenants
                .iter()
                .map(|t| format!("{} {} reads", t.name, t.macro_reads))
                .collect();
            line.push_str(&format!(" (best chip, per tenant: {})", shares.join(", ")));
        }
    }
    line.push('\n');
    line
}

/// The always-rendered `telemetry:` report line: generation-latency
/// quantiles (p50/p90/p99 over the run's per-generation wall-clock),
/// cache hit rate and pool steal rate.  Every value is guaranteed finite
/// — a `--quick` full-cache-hit replay whose generations all land below
/// the timer resolution renders zeros, never `NaN`/`inf`
/// (`tests/service.rs` asserts this).
fn telemetry_line(engine: &acim_moga::EvalStats) -> String {
    let histogram = Histogram::latency();
    for &seconds in &engine.generation_seconds {
        histogram.observe(seconds);
    }
    let snapshot = histogram.snapshot();
    format!(
        "telemetry: generation p50 {:.1} ms / p90 {:.1} ms / p99 {:.1} ms, \
         cache hit rate {:.1}%, pool steal rate {:.1}%\n",
        snapshot.quantile(0.50) * 1e3,
        snapshot.quantile(0.90) * 1e3,
        snapshot.quantile(0.99) * 1e3,
        engine.cache.hit_rate() * 100.0,
        engine.pool.steal_rate() * 100.0,
    )
}

/// Renders a service telemetry snapshot ([`TelemetrySnapshot`]) as an
/// indented human-readable section: one line per counter/gauge, a
/// `p50/p90/p99` line per histogram, plus the span-buffer tally.  Empty
/// snapshot (telemetry disabled) → empty string.  All values render
/// finite (the snapshot types sanitise on construction).
pub fn telemetry_section(snapshot: &TelemetrySnapshot) -> String {
    if snapshot.is_empty() {
        return String::new();
    }
    let mut out = String::from("telemetry:\n");
    for sample in &snapshot.samples {
        let labels = if sample.labels.is_empty() {
            String::new()
        } else {
            let pairs: Vec<String> = sample
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            format!("{{{}}}", pairs.join(","))
        };
        match &sample.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("  {}{labels} {v}\n", sample.name));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("  {}{labels} {v:.3}\n", sample.name));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!(
                    "  {}{labels} count {} p50 {:.6} p90 {:.6} p99 {:.6}\n",
                    sample.name,
                    h.count,
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                ));
            }
        }
    }
    out.push_str(&format!(
        "  spans: {} recorded, {} dropped\n",
        snapshot.spans.len(),
        snapshot.spans_dropped,
    ));
    out
}

/// Summarises the chip-composition stage: the front, the evaluation-engine
/// stats, the best chip, and the behavioural validation when present.
pub fn chip_report(result: &ChipFlowResult) -> String {
    let mut out = format!(
        "chip composition: {} frontier chips ({} evaluations in {:.2} s)\n\
         evaluation engine: {:.0} evals/s, cache {}, {:.1} ms mean per generation, {}\n{}{}{}",
        result.front.len(),
        result.engine.evaluations,
        result.exploration_time.as_secs_f64(),
        result.engine.evaluations_per_second(),
        result.engine.cache,
        result.engine.mean_generation_seconds() * 1e3,
        result.engine.pool,
        macro_cache_line(
            &result.engine,
            result.best_throughput().map(|p| p.tenants.as_slice()),
        ),
        telemetry_line(&result.engine),
        chip_frontier_table(&result.front),
    );
    if let Some(best) = result.best_throughput() {
        out.push_str(&format!("best throughput: {best}\n"));
        let tenants = tenant_table(&best.tenants);
        if !tenants.is_empty() {
            out.push_str("per-tenant breakdown (best-throughput chip):\n");
            out.push_str(&tenants);
        }
    }
    if let Some(best) = result.best_energy() {
        out.push_str(&format!("best energy    : {best}\n"));
    }
    if let Some(best) = result.best_area() {
        out.push_str(&format!("best area      : {best}\n"));
    }
    if let Some(validation) = &result.validation {
        out.push_str(&format!(
            "behavioural validation: {} layers, {} total cycles, max relative error {:.4}\n",
            validation.layers.len(),
            validation.layers.iter().map(|l| l.cycles).sum::<u64>(),
            validation.max_relative_error(),
        ));
        for layer in &validation.layers {
            out.push_str(&format!(
                "  {:<12} {:>4} tiles on {} macros, {:>6} cycles, err {:.4}\n",
                layer.name, layer.tiles, layer.macros_used, layer.cycles, layer.relative_error,
            ));
        }
    }
    if let Some(validation) = &result.mix_validation {
        out.push_str(&format!(
            "behavioural validation (interleaved streams): {} tenants, {} total cycles, \
             makespan {:.1} ns, max relative error {:.4}\n",
            validation.tenants.len(),
            validation.total_cycles,
            validation.makespan_ns,
            validation.max_relative_error(),
        ));
        for tenant in &validation.tenants {
            out.push_str(&format!(
                "  {:<18} {} layers, {:>6} cycles, err {:.4}\n",
                tenant.name,
                tenant.report.layers.len(),
                tenant.report.layers.iter().map(|l| l.cycles).sum::<u64>(),
                tenant.report.max_relative_error(),
            ));
        }
    }
    out
}

/// Summarises a whole flow run (frontier size, timings, generated designs).
pub fn flow_summary(result: &FlowResult) -> String {
    let mut out = format!(
        "EasyACIM flow: {} frontier points, {} after distillation, {} layouts generated\n\
         exploration: {} evaluations in {:.2} s ({:.0} evals/s, cache {}, {}); \
         total runtime {:.2} s\n{}{}",
        result.frontier.len(),
        result.distilled.len(),
        result.designs.len(),
        result.engine.evaluations,
        result.exploration_time.as_secs_f64(),
        result.engine.evaluations_per_second(),
        result.engine.cache,
        result.engine.pool,
        result.total_time.as_secs_f64(),
        macro_cache_line(&result.engine, None),
        telemetry_line(&result.engine),
    );
    for design in &result.designs {
        out.push_str(&design_report(design));
    }
    if let Some(chip) = &result.chip {
        out.push_str(&chip_report(chip));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_arch::AcimSpec;
    use acim_model::{evaluate, ModelParams};

    fn points() -> Vec<DesignPoint> {
        [(128usize, 128usize, 8usize, 3u32), (64, 256, 8, 3)]
            .iter()
            .map(|&(h, w, l, b)| {
                let spec = AcimSpec::from_dimensions(h, w, l, b).unwrap();
                DesignPoint::new(spec, evaluate(&spec, &ModelParams::s28_default()).unwrap())
            })
            .collect()
    }

    #[test]
    fn frontier_table_has_one_row_per_point_plus_header() {
        let table = frontier_table(&points());
        assert_eq!(table.lines().count(), 2 + 2);
        assert!(table.contains("TOPS/W"));
        assert!(table.contains("128"));
    }

    #[test]
    fn empty_frontier_renders_header_only() {
        let table = frontier_table(&[]);
        assert_eq!(table.lines().count(), 2);
    }

    #[test]
    fn telemetry_line_renders_finite_even_for_zero_duration_runs() {
        // A full-cache-hit replay: every generation below the timer
        // resolution, zero misses.
        let engine = acim_moga::EvalStats {
            generation_seconds: vec![0.0; 8],
            ..Default::default()
        };
        let line = telemetry_line(&engine);
        assert!(line.starts_with("telemetry:"));
        assert!(!line.contains("NaN") && !line.contains("inf"));
    }

    #[test]
    fn tenant_table_renders_only_for_mixes() {
        let tenant = |name: &str, weight: f64, reads: usize| TenantMetrics {
            name: name.into(),
            weight,
            metrics: acim_chip::ChipMetrics {
                latency_ns: 100.0,
                inferences_per_s: 1e7,
                throughput_tops: 0.5,
                energy_per_inference_pj: 42.0,
                area_mf2: 1.0,
                accuracy_db: 18.0,
                mean_utilization: 0.75,
                layers: Vec::new(),
            },
            macro_reads: reads,
        };
        assert!(tenant_table(&[tenant("solo", 1.0, 4)]).is_empty());
        let table = tenant_table(&[tenant("cnn", 2.0, 8), tenant("snn", 4.0, 3)]);
        assert_eq!(table.lines().count(), 2 + 2);
        assert!(table.contains("cnn"));
        assert!(table.contains("snn"));

        // The reuse line breaks the best chip's reads down per tenant and
        // stays NaN/inf-free even when every timing stat is zero (a
        // full-cache-hit replay).
        let engine = acim_moga::EvalStats {
            macro_cache: acim_moga::CacheStats {
                hits: 7,
                misses: 0,
                evictions: 0,
            },
            ..Default::default()
        };
        let line = macro_cache_line(
            &engine,
            Some(&[tenant("cnn", 2.0, 8), tenant("snn", 4.0, 3)]),
        );
        assert!(line.starts_with("macro-metric reuse:"));
        assert!(line.contains("cnn 8 reads"));
        assert!(line.contains("snn 3 reads"));
        assert!(!line.contains("NaN") && !line.contains("inf"));
        // Single-tenant runs keep the pre-mix line verbatim.
        let single = macro_cache_line(&engine, Some(&[tenant("solo", 1.0, 4)]));
        assert!(!single.contains("reads"));
    }

    #[test]
    fn telemetry_section_renders_samples_and_spans() {
        let empty = TelemetrySnapshot::default();
        assert!(telemetry_section(&empty).is_empty());

        let telemetry = acim_telemetry::Telemetry::new();
        telemetry
            .registry()
            .counter("demo_total", "demo", &[("kind", "x")])
            .inc();
        telemetry
            .registry()
            .histogram("demo_seconds", "demo", &[])
            .observe(0.25);
        drop(telemetry.span("demo"));
        let section = telemetry_section(&telemetry.snapshot());
        assert!(section.starts_with("telemetry:\n"));
        assert!(section.contains("demo_total{kind=x} 1"));
        assert!(section.contains("demo_seconds"));
        assert!(section.contains("spans: 1 recorded, 0 dropped"));
        assert!(!section.contains("NaN") && !section.contains("inf"));
    }
}
