//! The chip-composition stage of the flow: from a distilled macro space
//! to a full multi-macro accelerator.
//!
//! The macro flow of [`crate::flow`] ends with netlists and layouts for
//! single macros.  `ChipFlow` continues where it stops: it runs the
//! chip-level co-exploration of `acim-dse` (macro shape × macro count ×
//! global-buffer sizing against a whole network) and, optionally,
//! validates the best chip behaviourally by simulating every layer on the
//! macro grid.

use std::time::Duration;

use acim_chip::{ChipSimReport, MixSimReport, Network, WorkloadMix};
use acim_dse::{ChipDesignPoint, ChipDseConfig, ExploreOptions};
use acim_moga::EvalStats;

use crate::error::FlowError;
use crate::stage::{ChipStage, Instrumented, ProgressObserver, Stage, TraceContext};

/// Configuration of the chip-composition stage.
#[derive(Debug, Clone)]
pub struct ChipFlowConfig {
    /// The chip-level exploration settings (network, grid/buffer
    /// candidates, NSGA-II parameters).
    pub dse: ChipDseConfig,
    /// Behaviourally validate the highest-throughput frontier chip by
    /// simulating the network on its macro grid.
    pub validate_best: bool,
    /// Seed of the behavioural validation run.
    pub validation_seed: u64,
}

impl ChipFlowConfig {
    /// Default chip stage for a network: explore, then validate the best
    /// chip behaviourally.
    pub fn for_network(network: Network) -> Self {
        Self {
            dse: ChipDseConfig::for_network(network),
            validate_best: true,
            validation_seed: 0xC812,
        }
    }

    /// Default chip stage for a multi-tenant workload mix: co-explore,
    /// then validate the best chip behaviourally with the interleaved
    /// stream simulator.
    pub fn for_mix(mix: WorkloadMix) -> Self {
        Self {
            dse: ChipDseConfig::for_mix(mix),
            validate_best: true,
            validation_seed: 0xC812,
        }
    }
}

/// The result of the chip-composition stage.
#[derive(Debug, Clone)]
pub struct ChipFlowResult {
    /// The chip-level Pareto front.
    pub front: Vec<ChipDesignPoint>,
    /// Evaluation-engine statistics of the chip exploration (evaluations,
    /// cache hit/miss counters, wall-clock breakdown).
    pub engine: EvalStats,
    /// Wall-clock time of the chip exploration.
    pub exploration_time: Duration,
    /// The behavioural validation of the best-throughput chip, when
    /// requested — the single-network simulator's report (set for
    /// single-tenant explorations).
    pub validation: Option<ChipSimReport>,
    /// The behavioural validation of the best-throughput chip for
    /// multi-tenant explorations: the interleaved stream simulator's
    /// per-tenant report.  Exactly one of `validation` / `mix_validation`
    /// is set when validation is requested.
    pub mix_validation: Option<MixSimReport>,
}

impl ChipFlowResult {
    /// The frontier point with the highest throughput.
    pub fn best_throughput(&self) -> Option<&ChipDesignPoint> {
        self.front.iter().max_by(|a, b| {
            a.metrics
                .throughput_tops
                .partial_cmp(&b.metrics.throughput_tops)
                .expect("throughput must not be NaN")
        })
    }

    /// The frontier point with the lowest energy per inference.
    pub fn best_energy(&self) -> Option<&ChipDesignPoint> {
        self.front.iter().min_by(|a, b| {
            a.metrics
                .energy_per_inference_pj
                .partial_cmp(&b.metrics.energy_per_inference_pj)
                .expect("energy must not be NaN")
        })
    }

    /// The frontier point with the smallest chip area.
    pub fn best_area(&self) -> Option<&ChipDesignPoint> {
        self.front.iter().min_by(|a, b| {
            a.metrics
                .area_mf2
                .partial_cmp(&b.metrics.area_mf2)
                .expect("area must not be NaN")
        })
    }
}

/// The chip-composition stage runner.
#[derive(Debug, Clone)]
pub struct ChipFlow {
    config: ChipFlowConfig,
}

impl ChipFlow {
    /// Creates the stage.
    pub fn new(config: ChipFlowConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ChipFlowConfig {
        &self.config
    }

    /// Runs chip exploration (and optional behavioural validation).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] when the exploration or the validation
    /// simulation fails.
    pub fn run(&self) -> Result<ChipFlowResult, FlowError> {
        self.run_with(&ExploreOptions::default(), None)
    }

    /// Runs the stage with caller-injected [`ExploreOptions`] (shared
    /// cache, warm-start seeds) and an optional progress observer — the
    /// entry point the multi-tenant service uses.  With default options
    /// this is exactly [`ChipFlow::run`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] when the exploration or the validation
    /// simulation fails.
    pub fn run_with(
        &self,
        options: &ExploreOptions,
        observer: Option<ProgressObserver>,
    ) -> Result<ChipFlowResult, FlowError> {
        self.run_traced(options, observer, None)
    }

    /// [`ChipFlow::run_with`] plus an optional telemetry context: when
    /// present, the chip stage runs wrapped in
    /// [`crate::stage::Instrumented`], recording a `chip` span (parented
    /// under the context's parent) and a `stage_seconds{stage="chip"}`
    /// histogram observation.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] when the exploration or the validation
    /// simulation fails.
    pub fn run_traced(
        &self,
        options: &ExploreOptions,
        observer: Option<ProgressObserver>,
        trace: Option<TraceContext>,
    ) -> Result<ChipFlowResult, FlowError> {
        let mut stage = ChipStage::new(self.config.clone()).with_options(options.clone());
        if let Some(observer) = observer {
            stage = stage.with_observer(observer);
        }
        Instrumented::new(stage, trace).run(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ChipFlowConfig {
        let mut config = ChipFlowConfig::for_network(Network::edge_cnn(1));
        config.dse.population_size = 16;
        config.dse.generations = 6;
        config.dse.grid_rows = vec![1, 2];
        config.dse.grid_cols = vec![1, 2];
        config.dse.buffer_kib = vec![8, 32];
        config
    }

    #[test]
    fn chip_stage_produces_front_and_validation() {
        let result = ChipFlow::new(quick_config()).run().unwrap();
        assert!(!result.front.is_empty());
        assert!(result.engine.evaluations > 0);
        assert_eq!(result.engine.cache.total(), result.engine.evaluations);
        assert_eq!(result.engine.generation_seconds.len(), 6);
        assert!(result.engine.evaluations_per_second() >= 0.0);
        assert!(result.engine.mean_generation_seconds() >= 0.0);
        let validation = result.validation.as_ref().expect("validation requested");
        assert_eq!(validation.layers.len(), 3);
        assert!(validation.max_relative_error() < 0.5);
        let best = result.best_throughput().unwrap();
        assert!(best.metrics.throughput_tops > 0.0);
    }

    #[test]
    fn best_accessors_pick_the_extremes() {
        let mut config = quick_config();
        config.validate_best = false;
        let result = ChipFlow::new(config).run().unwrap();
        let best_energy = result
            .best_energy()
            .unwrap()
            .metrics
            .energy_per_inference_pj;
        let best_area = result.best_area().unwrap().metrics.area_mf2;
        for p in &result.front {
            assert!(p.metrics.energy_per_inference_pj >= best_energy);
            assert!(p.metrics.area_mf2 >= best_area);
        }
    }

    #[test]
    fn validation_can_be_disabled() {
        let mut config = quick_config();
        config.validate_best = false;
        let result = ChipFlow::new(config).run().unwrap();
        assert!(result.validation.is_none());
    }

    #[test]
    fn heterogeneous_stage_explores_mixed_grids() {
        let mut config = quick_config();
        config.dse.heterogeneous = true;
        config.dse.population_size = 24;
        config.dse.generations = 8;
        config.validate_best = false;
        let result = ChipFlow::new(config).run().unwrap();
        assert!(!result.front.is_empty());
        // Every frontier row serialises with the extended CSV schema.
        for point in &result.front {
            assert_eq!(
                point.to_csv_row().split(',').count(),
                acim_dse::ChipDesignPoint::csv_header().split(',').count()
            );
        }
    }
}
