//! Flow configuration.

use acim_dse::{ChipExplorer, DseConfig, UserRequirements};
use acim_tech::Technology;

use crate::chip::ChipFlowConfig;
use crate::error::FlowError;

/// Configuration of one end-to-end EasyACIM run.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// The technology files (layer map, design rules, device statistics).
    pub technology: Technology,
    /// Design-space-exploration settings (array size, NSGA-II parameters,
    /// estimation-model parameters).
    pub dse: DseConfig,
    /// The user-distillation requirements applied to the Pareto frontier.
    pub requirements: UserRequirements,
    /// Maximum number of distilled solutions taken through netlist and
    /// layout generation (the most expensive stage); `0` means "all".
    pub max_layouts: usize,
    /// Whether to emit SPICE/DEF/GDS text alongside the in-memory results.
    pub emit_files: bool,
    /// Optional chip-composition stage: co-explore macro shape × macro
    /// count × buffer sizing against a whole network after the macro flow.
    pub chip: Option<ChipFlowConfig>,
}

impl FlowConfig {
    /// Creates a configuration for a user-defined array size with default
    /// exploration settings, no distillation constraints, and at most three
    /// generated layouts.
    pub fn new(array_size: usize) -> Self {
        Self {
            technology: Technology::s28(),
            dse: DseConfig {
                array_size,
                ..DseConfig::default()
            },
            requirements: UserRequirements::none(),
            max_layouts: 3,
            emit_files: false,
            chip: None,
        }
    }

    /// Enables the chip-composition stage with the given settings.
    pub fn with_chip_stage(mut self, chip: ChipFlowConfig) -> Self {
        self.chip = Some(chip);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] for obviously inconsistent
    /// settings; deeper validation happens inside the explorer.
    pub fn validate(&self) -> Result<(), FlowError> {
        if self.dse.array_size == 0 {
            return Err(FlowError::InvalidConfig(
                "array size must be positive".into(),
            ));
        }
        if self.dse.population_size < 4 {
            return Err(FlowError::InvalidConfig(
                "population size must be at least 4".into(),
            ));
        }
        if let Some(chip) = &self.chip {
            // Build the chip explorer eagerly so an inconsistent chip stage
            // is rejected before the expensive macro flow runs.
            ChipExplorer::new(chip.dse.clone())
                .map_err(|e| FlowError::InvalidConfig(format!("chip stage: {e}")))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_is_valid() {
        let config = FlowConfig::new(16 * 1024);
        assert!(config.validate().is_ok());
        assert_eq!(config.dse.array_size, 16 * 1024);
        assert_eq!(config.max_layouts, 3);
    }

    #[test]
    fn invalid_configurations_detected() {
        let mut config = FlowConfig::new(0);
        assert!(config.validate().is_err());
        config = FlowConfig::new(1024);
        config.dse.population_size = 2;
        assert!(config.validate().is_err());
    }

    #[test]
    fn invalid_chip_stage_rejected_up_front() {
        let mut chip = ChipFlowConfig::for_network(acim_chip::Network::edge_cnn(1));
        chip.dse.population_size = 7;
        let config = FlowConfig::new(16 * 1024).with_chip_stage(chip);
        assert!(config.validate().is_err());

        let chip = ChipFlowConfig::for_network(acim_chip::Network::edge_cnn(1));
        let config = FlowConfig::new(16 * 1024).with_chip_stage(chip);
        assert!(config.validate().is_ok());
    }
}
