//! Bounded, deadline-aware admission scheduling.
//!
//! [`Scheduler`] replaces the service's original thread-per-request model:
//! instead of spawning one unbounded OS thread per submission, requests
//! enter a **bounded admission queue** and a **fixed-size worker set**
//! (sized off the shared evaluation pool's width) drains it in priority
//! order.  A burst of requests therefore queues instead of spawning a
//! thread herd — the number of concurrently executing jobs can never
//! exceed the worker count, and a full queue rejects new work with
//! backpressure ([`AdmitError::QueueFull`]) rather than accepting
//! unbounded load.
//!
//! The module is deliberately generic over the job result type `T`: the
//! scheduler moves `FnOnce() -> T` closures to workers and hands results
//! back through [`JobSlot`]s, so its queueing, priority, shutdown, and
//! panic-latching behaviour is unit-tested here without dragging in the
//! whole exploration stack.  `crate::service` instantiates it with
//! `T = Result<ExplorationResponse, FlowError>`.
//!
//! Ordering guarantees:
//!
//! * Higher [`Priority`] always dequeues first.
//! * Within one priority class, jobs dequeue in admission (FIFO) order.
//!
//! Workers latch panics: a panicking job parks its payload in its
//! [`JobSlot`] (re-raised by the joining caller) and the worker thread
//! survives to serve the next job — one panicking tenant cannot shrink
//! the worker set for everyone else.

use std::any::Any;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Scheduling class of a submitted request: higher priorities dequeue
/// first; requests of equal priority dequeue in admission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background work: bulk sweeps, speculative warm-ups.
    Low,
    /// The default class for interactive requests.
    #[default]
    Normal,
    /// Latency-sensitive work, admitted ahead of any queued backlog.
    High,
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Priority::Low => write!(f, "low"),
            Priority::Normal => write!(f, "normal"),
            Priority::High => write!(f, "high"),
        }
    }
}

/// A completion deadline for one request.
///
/// The deadline is an absolute instant: [`Deadline::within`] fixes it
/// relative to the moment the request is *built* (not admitted), so time
/// spent waiting in the admission queue counts against the budget — which
/// is what a caller with an end-to-end latency target wants.  A job whose
/// deadline passes stops cooperatively at its next generation / design
/// boundary and fails with `FlowError::DeadlineExceeded`; a job still
/// queued when its deadline passes fails the same way without running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline(Instant);

impl Deadline {
    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Self {
        Self(instant)
    }

    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Self(Instant::now() + budget)
    }

    /// The absolute instant of the deadline.
    pub fn instant(self) -> Instant {
        self.0
    }

    /// Returns `true` once the deadline has passed.
    pub fn has_passed(self) -> bool {
        Instant::now() >= self.0
    }
}

/// Why the scheduler refused to admit a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitError {
    /// The bounded admission queue is at capacity.
    QueueFull {
        /// Queue depth at rejection time (== the configured capacity).
        depth: usize,
    },
    /// The scheduler is shutting down and no longer admits work.
    ShuttingDown,
}

/// The result slot of one job: filled exactly once by a worker, consumed
/// exactly once by the joining caller.
pub(crate) struct JobSlot<T> {
    state: Mutex<SlotState<T>>,
    done: Condvar,
}

enum SlotState<T> {
    Pending,
    Done(T),
    Panicked(Box<dyn Any + Send>),
    Taken,
}

impl<T> JobSlot<T> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SlotState::Pending),
            done: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, SlotState<T>> {
        // Poison-tolerant: the slot state is a single enum, consistent
        // between operations, and workers catch job panics anyway.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn fill(&self, state: SlotState<T>) {
        *self.lock() = state;
        self.done.notify_all();
    }

    /// Returns `true` once the job has finished (successfully or by
    /// panicking); the take methods will not block after this.
    pub(crate) fn is_finished(&self) -> bool {
        !matches!(*self.lock(), SlotState::Pending)
    }

    fn take_filled(state: &mut SlotState<T>) -> Option<T> {
        if matches!(state, SlotState::Pending) {
            return None;
        }
        match std::mem::replace(state, SlotState::Taken) {
            SlotState::Done(value) => Some(value),
            SlotState::Panicked(payload) => std::panic::resume_unwind(payload),
            SlotState::Taken => panic!("job result taken twice"),
            SlotState::Pending => unreachable!("pending handled above"),
        }
    }

    /// Blocks until the job finishes and takes its result, re-raising a
    /// panic from the job.
    pub(crate) fn take_blocking(&self) -> T {
        let mut state = self.lock();
        loop {
            if let Some(value) = Self::take_filled(&mut state) {
                return value;
            }
            state = self
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Takes the result if the job already finished (`None` while it is
    /// still pending or queued), re-raising a panic from the job.
    pub(crate) fn try_take(&self) -> Option<T> {
        Self::take_filled(&mut self.lock())
    }

    /// Blocks up to `timeout` for the result, re-raising a panic from the
    /// job.
    pub(crate) fn take_timeout(&self, timeout: Duration) -> Option<T> {
        let give_up = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            if let Some(value) = Self::take_filled(&mut state) {
                return Some(value);
            }
            let remaining = give_up.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            state = self
                .done
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

/// An admitted-but-not-yet-enqueued slot: [`Scheduler::reserve`] claims
/// queue capacity and the admission sequence number atomically, the
/// caller builds the job, then [`Scheduler::enqueue`] (infallible) lands
/// it.  The split keeps expensive job construction (telemetry spans,
/// explorer clones) out of the rejection path: a rejected request builds
/// nothing.
#[derive(Debug)]
pub(crate) struct Ticket {
    seq: u64,
}

struct QueuedJob<T> {
    priority: Priority,
    seq: u64,
    work: Box<dyn FnOnce() -> T + Send>,
    slot: Arc<JobSlot<T>>,
}

impl<T> QueuedJob<T> {
    /// Max-heap key: higher priority first, then earlier admission.
    fn key(&self) -> (Priority, std::cmp::Reverse<u64>) {
        (self.priority, std::cmp::Reverse(self.seq))
    }
}

impl<T> PartialEq for QueuedJob<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for QueuedJob<T> {}
impl<T> PartialOrd for QueuedJob<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for QueuedJob<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

struct QueueState<T> {
    heap: BinaryHeap<QueuedJob<T>>,
    /// Admitted jobs not yet claimed by a worker: heap entries plus
    /// outstanding reservations.  This — not `heap.len()` — is what the
    /// capacity bound applies to, so a reserved-but-still-building job
    /// counts against the queue like an enqueued one.
    queued: usize,
    /// Tickets handed out whose job has not been enqueued yet.
    reservations: usize,
    shutting_down: bool,
    next_seq: u64,
}

struct Shared<T> {
    state: Mutex<QueueState<T>>,
    /// Workers wait here for jobs (or the shutdown signal).
    work_ready: Condvar,
}

/// The bounded, priority-ordered admission scheduler (see the module
/// docs).  Dropping it shuts down: remaining queued jobs run to
/// completion, then the workers exit and are joined.
pub(crate) struct Scheduler<T> {
    shared: Arc<Shared<T>>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    worker_count: usize,
    capacity: usize,
}

impl<T: Send + 'static> Scheduler<T> {
    /// Creates a scheduler with `workers` worker threads (clamped to at
    /// least 1) and an admission queue bounded at `capacity` jobs
    /// (clamped to at least 1).  Worker threads are named
    /// `{name}-worker-{i}` and spawned eagerly.
    pub(crate) fn new(workers: usize, capacity: usize, name: &str) -> Self {
        let worker_count = workers.max(1);
        let capacity = capacity.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                heap: BinaryHeap::new(),
                queued: 0,
                reservations: 0,
                shutting_down: false,
                next_seq: 0,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..worker_count)
            .map(|i| {
                let shared = shared.clone();
                thread::Builder::new()
                    .name(format!("{name}-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn scheduler worker thread")
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(handles),
            worker_count,
            capacity,
        }
    }
}

// Everything but worker spawning is bound-free: the queue operations and
// shutdown only move already-`Send` jobs around, and `Drop` must compile
// without the `Send` bound.
impl<T> Scheduler<T> {
    fn lock_state(&self) -> MutexGuard<'_, QueueState<T>> {
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The fixed worker-set size.
    pub(crate) fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// The admission-queue capacity.
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs admitted but not yet claimed by a worker.
    pub(crate) fn queue_depth(&self) -> usize {
        self.lock_state().queued
    }

    /// Atomically claims one unit of queue capacity and the next
    /// admission sequence number.
    ///
    /// # Errors
    ///
    /// [`AdmitError::QueueFull`] at capacity, [`AdmitError::ShuttingDown`]
    /// after [`Scheduler::shutdown`] started.
    pub(crate) fn reserve(&self) -> Result<Ticket, AdmitError> {
        let mut state = self.lock_state();
        if state.shutting_down {
            return Err(AdmitError::ShuttingDown);
        }
        if state.queued >= self.capacity {
            return Err(AdmitError::QueueFull {
                depth: state.queued,
            });
        }
        state.queued += 1;
        state.reservations += 1;
        let seq = state.next_seq;
        state.next_seq += 1;
        Ok(Ticket { seq })
    }

    /// Lands a reserved job in the queue.  Infallible by design: the
    /// capacity check already happened in [`Scheduler::reserve`], and a
    /// shutdown that races in between waits for outstanding reservations,
    /// so the job still runs.
    pub(crate) fn enqueue(
        &self,
        ticket: Ticket,
        priority: Priority,
        slot: Arc<JobSlot<T>>,
        work: Box<dyn FnOnce() -> T + Send>,
    ) {
        let mut state = self.lock_state();
        state.reservations -= 1;
        state.heap.push(QueuedJob {
            priority,
            seq: ticket.seq,
            work,
            slot,
        });
        drop(state);
        // Wake one worker for the job; during shutdown wake everyone so
        // idle workers re-check the exit condition too.
        self.shared.work_ready.notify_all();
    }

    /// Stops admission and drains the queue deterministically: every
    /// already-admitted job runs to completion, then the workers exit and
    /// are joined.  Idempotent; concurrent callers all block until the
    /// drain finishes.
    pub(crate) fn shutdown(&self) {
        {
            let mut state = self.lock_state();
            state.shutting_down = true;
        }
        self.shared.work_ready.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in handles {
            // Workers never panic (job panics are latched into the slot).
            let _ = handle.join();
        }
    }
}

impl<T> Drop for Scheduler<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop<T: Send + 'static>(shared: Arc<Shared<T>>) {
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = state.heap.pop() {
                    state.queued -= 1;
                    break job;
                }
                // Exit only when no job can ever arrive again: shutdown
                // signalled, heap empty, and no reservation still being
                // built (its enqueue would notify us).
                if state.shutting_down && state.reservations == 0 {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Latch panics into the slot: the joining caller re-raises them,
        // and this worker survives to serve the next tenant.
        match catch_unwind(AssertUnwindSafe(job.work)) {
            Ok(value) => job.slot.fill(SlotState::Done(value)),
            Err(payload) => job.slot.fill(SlotState::Panicked(payload)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    fn submit<T: Send + 'static>(
        scheduler: &Scheduler<T>,
        priority: Priority,
        work: impl FnOnce() -> T + Send + 'static,
    ) -> Result<Arc<JobSlot<T>>, AdmitError> {
        let ticket = scheduler.reserve()?;
        let slot = JobSlot::new();
        scheduler.enqueue(ticket, priority, slot.clone(), Box::new(work));
        Ok(slot)
    }

    /// A job that blocks until released, used to pin workers down so
    /// queue contents are deterministic.
    fn gate() -> (mpsc::Sender<()>, impl FnOnce() -> usize + Send) {
        let (tx, rx) = mpsc::channel();
        (tx, move || {
            rx.recv().ok();
            0
        })
    }

    #[test]
    fn jobs_run_and_results_come_back() {
        let scheduler: Scheduler<usize> = Scheduler::new(2, 8, "test");
        assert_eq!(scheduler.worker_count(), 2);
        assert_eq!(scheduler.capacity(), 8);
        let slots: Vec<_> = (0..6)
            .map(|i| submit(&scheduler, Priority::Normal, move || i * i).unwrap())
            .collect();
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(slot.take_blocking(), i * i);
        }
        assert_eq!(scheduler.queue_depth(), 0);
    }

    #[test]
    fn queue_full_rejects_with_depth_and_shutdown_rejects_afterwards() {
        let scheduler: Scheduler<usize> = Scheduler::new(1, 2, "test");
        // Pin the single worker so the queue fills deterministically.
        let (release, blocker) = gate();
        let pinned = submit(&scheduler, Priority::Normal, blocker).unwrap();
        while scheduler.queue_depth() > 0 {
            thread::yield_now();
        }
        let queued_a = submit(&scheduler, Priority::Normal, || 1).unwrap();
        let queued_b = submit(&scheduler, Priority::Normal, || 2).unwrap();
        assert_eq!(scheduler.queue_depth(), 2);
        match submit(&scheduler, Priority::High, || 3) {
            Err(AdmitError::QueueFull { depth }) => assert_eq!(depth, 2),
            Err(other) => panic!("expected QueueFull, got {other:?}"),
            Ok(_) => panic!("expected QueueFull, got an admitted job"),
        }
        release.send(()).unwrap();
        assert_eq!(pinned.take_blocking(), 0);
        assert_eq!(queued_a.take_blocking(), 1);
        assert_eq!(queued_b.take_blocking(), 2);
        scheduler.shutdown();
        assert!(matches!(
            submit(&scheduler, Priority::Normal, || 4),
            Err(AdmitError::ShuttingDown)
        ));
    }

    #[test]
    fn higher_priority_dequeues_first_fifo_within_class() {
        let scheduler: Scheduler<usize> = Scheduler::new(1, 16, "test");
        let (release, blocker) = gate();
        let pinned = submit(&scheduler, Priority::Normal, blocker).unwrap();
        while scheduler.queue_depth() > 0 {
            thread::yield_now();
        }
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut slots = Vec::new();
        let classes = [
            (Priority::Low, "low-0"),
            (Priority::Normal, "normal-0"),
            (Priority::High, "high-0"),
            (Priority::Normal, "normal-1"),
            (Priority::High, "high-1"),
        ];
        for (priority, tag) in classes {
            let order = order.clone();
            slots.push(
                submit(&scheduler, priority, move || {
                    order.lock().unwrap().push(tag);
                    0
                })
                .unwrap(),
            );
        }
        release.send(()).unwrap();
        pinned.take_blocking();
        for slot in slots {
            slot.take_blocking();
        }
        assert_eq!(
            *order.lock().unwrap(),
            vec!["high-0", "high-1", "normal-0", "normal-1", "low-0"]
        );
    }

    #[test]
    fn shutdown_drains_queued_jobs_before_returning() {
        let scheduler: Scheduler<usize> = Scheduler::new(1, 16, "test");
        let ran = Arc::new(AtomicUsize::new(0));
        let slots: Vec<_> = (0..5)
            .map(|_| {
                let ran = ran.clone();
                submit(&scheduler, Priority::Normal, move || {
                    ran.fetch_add(1, Ordering::SeqCst)
                })
                .unwrap()
            })
            .collect();
        scheduler.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 5);
        for slot in slots {
            assert!(slot.is_finished());
            slot.take_blocking();
        }
    }

    #[test]
    fn panicking_job_is_latched_and_the_worker_survives() {
        let scheduler: Scheduler<usize> = Scheduler::new(1, 8, "test");
        let bad = submit(&scheduler, Priority::Normal, || panic!("tenant bug")).unwrap();
        let good = submit(&scheduler, Priority::Normal, || 7).unwrap();
        // The worker survives the panic and serves the next job…
        assert_eq!(good.take_blocking(), 7);
        // …and the panic re-raises at join time.
        let caught = catch_unwind(AssertUnwindSafe(|| bad.take_blocking()));
        let payload = caught.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"tenant bug"));
    }

    #[test]
    fn try_take_and_take_timeout() {
        let scheduler: Scheduler<usize> = Scheduler::new(1, 8, "test");
        let (release, blocker) = gate();
        let pinned = submit(&scheduler, Priority::Normal, blocker).unwrap();
        assert!(!pinned.is_finished());
        assert_eq!(pinned.try_take(), None);
        assert_eq!(pinned.take_timeout(Duration::from_millis(5)), None);
        release.send(()).unwrap();
        assert_eq!(pinned.take_blocking(), 0);

        let done = submit(&scheduler, Priority::Normal, || 3).unwrap();
        while !done.is_finished() {
            thread::yield_now();
        }
        assert_eq!(done.try_take(), Some(3));
        let timed = submit(&scheduler, Priority::Normal, || 4).unwrap();
        assert_eq!(timed.take_timeout(Duration::from_secs(5)), Some(4));
    }

    #[test]
    fn deadline_and_priority_values_behave() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::High.to_string(), "high");
        let passed = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(passed.has_passed());
        let future = Deadline::within(Duration::from_secs(3600));
        assert!(!future.has_passed());
        assert!(future.instant() > Instant::now());
    }

    #[test]
    fn workers_and_capacity_are_clamped() {
        let scheduler: Scheduler<usize> = Scheduler::new(0, 0, "test");
        assert_eq!(scheduler.worker_count(), 1);
        assert_eq!(scheduler.capacity(), 1);
        let slot = submit(&scheduler, Priority::Normal, || 9).unwrap();
        assert_eq!(slot.take_blocking(), 9);
    }
}
