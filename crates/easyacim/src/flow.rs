//! The top flow controller (Figure 4).

use std::time::{Duration, Instant};

use acim_cell::CellLibrary;
use acim_dse::{DesignPoint, DesignSpaceExplorer, ParetoFrontierSet};
use acim_layout::{LayoutFlow, MacroLayout};
use acim_moga::EvalStats;
use acim_netlist::{design_stats, write_spice, Design, DesignStats, NetlistGenerator};

use crate::chip::{ChipFlow, ChipFlowResult};
use crate::config::FlowConfig;
use crate::error::FlowError;

/// One fully generated design: the distilled Pareto point, its hierarchical
/// netlist and its layout.
#[derive(Debug, Clone)]
pub struct GeneratedDesign {
    /// The design point (spec + estimated metrics).
    pub point: DesignPoint,
    /// The hierarchical netlist.
    pub netlist: Design,
    /// Netlist statistics (cell/transistor counts).
    pub netlist_stats: DesignStats,
    /// The generated macro layout and its measured metrics.
    pub layout: MacroLayout,
    /// SPICE text of the netlist, when `emit_files` was requested.
    pub spice: Option<String>,
    /// Wall-clock time spent generating this design's netlist and layout.
    pub generation_time: Duration,
}

/// The result of an end-to-end run.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The full Pareto-frontier set found by the explorer.
    pub frontier: Vec<DesignPoint>,
    /// The frontier after user distillation.
    pub distilled: Vec<DesignPoint>,
    /// Netlists + layouts for the distilled solutions (up to `max_layouts`).
    pub designs: Vec<GeneratedDesign>,
    /// Wall-clock time of the design-space exploration.
    pub exploration_time: Duration,
    /// Total wall-clock time of the run.
    pub total_time: Duration,
    /// Evaluation-engine statistics of the macro exploration
    /// (evaluations, cache hit/miss counters, wall-clock breakdown).
    pub engine: EvalStats,
    /// The chip-composition stage result, when the stage was configured.
    pub chip: Option<ChipFlowResult>,
}

/// The EasyACIM top flow controller.
#[derive(Debug, Clone)]
pub struct TopFlowController {
    config: FlowConfig,
    library: CellLibrary,
}

impl TopFlowController {
    /// Creates the controller, building the customized cell library for the
    /// configured technology.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn new(config: FlowConfig) -> Result<Self, FlowError> {
        config.validate()?;
        let library = CellLibrary::s28_default(&config.technology);
        Ok(Self { config, library })
    }

    /// The cell library used by the flow.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// The configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Runs the full flow: exploration → distillation → netlist → layout.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] when any stage fails, or
    /// [`FlowError::EmptyDistilledSet`] when the user requirements reject
    /// every frontier solution.
    pub fn run(&self) -> Result<FlowResult, FlowError> {
        let start = Instant::now();

        // 1. MOGA-based design-space exploration.
        let explorer = DesignSpaceExplorer::new(self.config.dse.clone())?;
        let frontier_set: ParetoFrontierSet = explorer.explore()?;
        let exploration_time = start.elapsed();
        let engine = frontier_set.engine.clone();
        let frontier = frontier_set.into_points();

        // 2. User distillation.
        let distilled = self.config.requirements.distill(&frontier);
        if distilled.is_empty() {
            return Err(FlowError::EmptyDistilledSet);
        }

        // 3-4. Netlist generation and template-based P&R for each distilled
        // solution (bounded by `max_layouts`).
        let limit = if self.config.max_layouts == 0 {
            distilled.len()
        } else {
            self.config.max_layouts.min(distilled.len())
        };
        let generator = NetlistGenerator::new(&self.library);
        let layout_flow = LayoutFlow::new(&self.config.technology, &self.library);
        let mut designs = Vec::with_capacity(limit);
        for point in distilled.iter().take(limit) {
            let design_start = Instant::now();
            let netlist = generator.generate(&point.spec)?;
            let netlist_stats = design_stats(&netlist, &self.library)?;
            let layout = layout_flow.generate(&point.spec)?;
            let spice = if self.config.emit_files {
                Some(write_spice(&netlist, &self.library)?)
            } else {
                None
            };
            designs.push(GeneratedDesign {
                point: *point,
                netlist,
                netlist_stats,
                layout,
                spice,
                generation_time: design_start.elapsed(),
            });
        }

        // 5. Optional chip composition: macro × count × buffer
        // co-exploration against a whole network.
        let chip = match &self.config.chip {
            Some(chip_config) => Some(ChipFlow::new(chip_config.clone()).run()?),
            None => None,
        };

        Ok(FlowResult {
            frontier,
            distilled,
            designs,
            exploration_time,
            total_time: start.elapsed(),
            engine,
            chip,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_dse::UserRequirements;

    fn quick_config(array_size: usize) -> FlowConfig {
        let mut config = FlowConfig::new(array_size);
        config.dse.population_size = 24;
        config.dse.generations = 12;
        config.max_layouts = 2;
        config
    }

    #[test]
    fn end_to_end_flow_produces_designs() {
        let controller = TopFlowController::new(quick_config(4 * 1024)).unwrap();
        let result = controller.run().unwrap();
        assert!(!result.frontier.is_empty());
        assert!(!result.distilled.is_empty());
        assert!(!result.designs.is_empty());
        assert!(result.designs.len() <= 2);
        assert!(result.engine.evaluations > 0);
        assert!(result.total_time >= result.exploration_time);
        for design in &result.designs {
            assert_eq!(
                design.netlist_stats.sram_cells,
                design.point.spec.array_size()
            );
            assert!(design.layout.metrics.core_area_f2_per_bit > 1000.0);
            assert!(design.spice.is_none());
        }
    }

    #[test]
    fn distillation_filters_and_can_empty_the_set() {
        let mut config = quick_config(4 * 1024);
        config.requirements = UserRequirements {
            min_snr_db: Some(500.0),
            ..UserRequirements::none()
        };
        let controller = TopFlowController::new(config).unwrap();
        assert!(matches!(
            controller.run(),
            Err(FlowError::EmptyDistilledSet)
        ));
    }

    #[test]
    fn emit_files_produces_spice_text() {
        let mut config = quick_config(4 * 1024);
        config.max_layouts = 1;
        config.emit_files = true;
        let result = TopFlowController::new(config).unwrap().run().unwrap();
        let spice = result.designs[0].spice.as_ref().expect("spice emitted");
        assert!(spice.contains(".SUBCKT ACIM_TOP"));
    }

    #[test]
    fn chip_stage_runs_when_configured() {
        use crate::chip::ChipFlowConfig;
        use acim_chip::Network;

        let mut chip_config = ChipFlowConfig::for_network(Network::edge_cnn(1));
        chip_config.dse.population_size = 16;
        chip_config.dse.generations = 5;
        chip_config.dse.grid_rows = vec![1, 2];
        chip_config.dse.grid_cols = vec![1, 2];
        chip_config.dse.buffer_kib = vec![8, 32];
        chip_config.validate_best = false;
        let config = quick_config(4 * 1024).with_chip_stage(chip_config);
        let result = TopFlowController::new(config).unwrap().run().unwrap();
        let chip = result.chip.as_ref().expect("chip stage ran");
        assert!(!chip.front.is_empty());
        // The macro flow is untouched by the chip stage.
        assert!(!result.designs.is_empty());
    }

    #[test]
    fn library_has_all_cells() {
        let controller = TopFlowController::new(quick_config(1024)).unwrap();
        assert_eq!(controller.library().len(), 7);
        assert_eq!(controller.config().dse.array_size, 1024);
    }
}
