//! The top flow controller (Figure 4), assembled from the typed stages of
//! [`crate::stage`].
//!
//! [`TopFlowController::run`] is the cold single-tenant entry point; the
//! multi-tenant [`crate::service::ExplorationService`] drives the same
//! stages through [`TopFlowController::run_with`], injecting shared
//! caches, warm-start seeds and a progress observer via [`FlowOptions`].
//! Both paths produce bit-identical results for a fixed configuration —
//! the options only change *how fast* the frontier is found, never what
//! it is.

use std::time::{Duration, Instant};

use acim_cell::CellLibrary;
use acim_dse::{DesignPoint, ExploreOptions};
use acim_layout::MacroLayout;
use acim_moga::EvalStats;
use acim_netlist::{Design, DesignStats};

use crate::chip::ChipFlowResult;
use crate::config::FlowConfig;
use crate::error::FlowError;
use crate::stage::{
    ChipStage, DistillStage, ExploreStage, Instrumented, LaidOut, LayoutStage, NetlistStage,
    ProgressObserver, Stage, TraceContext,
};

/// One fully generated design: the distilled Pareto point, its hierarchical
/// netlist and its layout.
#[derive(Debug, Clone)]
pub struct GeneratedDesign {
    /// The design point (spec + estimated metrics).
    pub point: DesignPoint,
    /// The hierarchical netlist.
    pub netlist: Design,
    /// Netlist statistics (cell/transistor counts).
    pub netlist_stats: DesignStats,
    /// The generated macro layout and its measured metrics.
    pub layout: MacroLayout,
    /// SPICE text of the netlist, when `emit_files` was requested.
    pub spice: Option<String>,
    /// Wall-clock time spent generating this design's netlist and layout.
    pub generation_time: Duration,
}

/// The result of an end-to-end run.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The full Pareto-frontier set found by the explorer.
    pub frontier: Vec<DesignPoint>,
    /// The frontier after user distillation.
    pub distilled: Vec<DesignPoint>,
    /// Netlists + layouts for the distilled solutions (up to `max_layouts`).
    pub designs: Vec<GeneratedDesign>,
    /// Wall-clock time of the design-space exploration.
    pub exploration_time: Duration,
    /// Total wall-clock time of the run.
    pub total_time: Duration,
    /// Evaluation-engine statistics of the macro exploration
    /// (evaluations, cache hit/miss counters, wall-clock breakdown).
    pub engine: EvalStats,
    /// The chip-composition stage result, when the stage was configured.
    pub chip: Option<ChipFlowResult>,
}

/// Injection points a long-lived caller (the
/// [`crate::service::ExplorationService`]) threads into one flow run:
/// shared evaluation caches for the macro and chip design spaces,
/// warm-start seed populations, and a progress observer.  The default is
/// a cold, unobserved, self-contained run.
#[derive(Clone, Default)]
pub struct FlowOptions {
    /// Cache / warm-start injection for the macro exploration stage.
    pub exploration: ExploreOptions,
    /// Cache / warm-start injection for the optional chip stage.
    pub chip: ExploreOptions,
    /// Observer receiving one event per unit of stage progress.
    pub observer: Option<ProgressObserver>,
    /// Telemetry context: when present, every stage is wrapped in an
    /// [`Instrumented`] adapter recording per-stage spans (parented under
    /// the context's parent span) and `stage_seconds` histograms.
    pub trace: Option<TraceContext>,
    /// Cooperative cancellation for the netlist/layout tail stages,
    /// polled before every design.  The exploration stages carry their
    /// own token inside [`ExploreOptions::cancel`] (usually a clone of
    /// this one), where it is polled at generation boundaries.
    pub cancel: Option<acim_moga::CancelToken>,
}

impl std::fmt::Debug for FlowOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowOptions")
            .field("exploration", &self.exploration)
            .field("chip", &self.chip)
            .field("observed", &self.observer.is_some())
            .field("traced", &self.trace.is_some())
            .field("cancellable", &self.cancel.is_some())
            .finish()
    }
}

/// The EasyACIM top flow controller.
#[derive(Debug, Clone)]
pub struct TopFlowController {
    config: FlowConfig,
    library: CellLibrary,
}

impl TopFlowController {
    /// Creates the controller, building the customized cell library for the
    /// configured technology.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn new(config: FlowConfig) -> Result<Self, FlowError> {
        config.validate()?;
        let library = CellLibrary::s28_default(&config.technology);
        Ok(Self { config, library })
    }

    /// The cell library used by the flow.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// The configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// Runs the full flow: exploration → distillation → netlist → layout
    /// (→ chip composition, when configured).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] when any stage fails, or
    /// [`FlowError::EmptyDistilledSet`] when the user requirements reject
    /// every frontier solution.
    pub fn run(&self) -> Result<FlowResult, FlowError> {
        self.run_with(&FlowOptions::default())
    }

    /// Runs the full flow with caller-injected [`FlowOptions`].
    ///
    /// The stages are the typed pipeline of [`crate::stage`]:
    /// explore → distill → netlist → layout, with the input-free chip
    /// stage — when configured — running **concurrently** with the
    /// netlist/layout stages on the persistent worker pool
    /// ([`rayon::join_owned`]); the chip stage depends only on its
    /// configuration, so the overlap changes wall-clock, not results.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] when any stage fails.
    pub fn run_with(&self, options: &FlowOptions) -> Result<FlowResult, FlowError> {
        let start = Instant::now();

        let macro_stages = || -> Result<LaidOut, FlowError> {
            let mut explore = ExploreStage::new(self.config.dse.clone())
                .with_options(options.exploration.clone());
            let mut netlist = NetlistStage::new(
                &self.library,
                self.config.emit_files,
                self.config.max_layouts,
            );
            let mut layout = LayoutStage::new(&self.config.technology, &self.library);
            if let Some(observer) = &options.observer {
                explore = explore.with_observer(observer.clone());
                netlist = netlist.with_observer(observer.clone());
                layout = layout.with_observer(observer.clone());
            }
            if let Some(cancel) = &options.cancel {
                netlist = netlist.with_cancel(cancel.clone());
                layout = layout.with_cancel(cancel.clone());
            }
            let trace = options.trace.clone();
            Instrumented::new(explore, trace.clone())
                .then(Instrumented::new(
                    DistillStage::new(self.config.requirements),
                    trace.clone(),
                ))
                .then(Instrumented::new(netlist, trace.clone()))
                .then(Instrumented::new(layout, trace))
                .run(())
        };

        let (laid_out, chip) = match &self.config.chip {
            Some(chip_config) => {
                let mut chip_stage =
                    ChipStage::new(chip_config.clone()).with_options(options.chip.clone());
                if let Some(observer) = &options.observer {
                    chip_stage = chip_stage.with_observer(observer.clone());
                }
                let chip_stage = Instrumented::new(chip_stage, options.trace.clone());
                // The chip stage owns everything it needs, so it runs as a
                // `'static` job on the persistent pool while this thread
                // works through the macro stages.
                let (chip, laid_out) = rayon::join_owned(move || chip_stage.run(()), macro_stages);
                (laid_out?, Some(chip?))
            }
            None => (macro_stages()?, None),
        };

        Ok(FlowResult {
            frontier: laid_out.frontier,
            distilled: laid_out.distilled,
            designs: laid_out.designs,
            exploration_time: laid_out.exploration_time,
            total_time: start.elapsed(),
            engine: laid_out.engine,
            chip,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_dse::UserRequirements;

    fn quick_config(array_size: usize) -> FlowConfig {
        let mut config = FlowConfig::new(array_size);
        config.dse.population_size = 24;
        config.dse.generations = 12;
        config.max_layouts = 2;
        config
    }

    #[test]
    fn end_to_end_flow_produces_designs() {
        let controller = TopFlowController::new(quick_config(4 * 1024)).unwrap();
        let result = controller.run().unwrap();
        assert!(!result.frontier.is_empty());
        assert!(!result.distilled.is_empty());
        assert!(!result.designs.is_empty());
        assert!(result.designs.len() <= 2);
        assert!(result.engine.evaluations > 0);
        assert!(result.total_time >= result.exploration_time);
        for design in &result.designs {
            assert_eq!(
                design.netlist_stats.sram_cells,
                design.point.spec.array_size()
            );
            assert!(design.layout.metrics.core_area_f2_per_bit > 1000.0);
            assert!(design.spice.is_none());
        }
    }

    #[test]
    fn distillation_filters_and_can_empty_the_set() {
        let mut config = quick_config(4 * 1024);
        config.requirements = UserRequirements {
            min_snr_db: Some(500.0),
            ..UserRequirements::none()
        };
        let controller = TopFlowController::new(config).unwrap();
        assert!(matches!(
            controller.run(),
            Err(FlowError::EmptyDistilledSet)
        ));
    }

    #[test]
    fn emit_files_produces_spice_text() {
        let mut config = quick_config(4 * 1024);
        config.max_layouts = 1;
        config.emit_files = true;
        let result = TopFlowController::new(config).unwrap().run().unwrap();
        let spice = result.designs[0].spice.as_ref().expect("spice emitted");
        assert!(spice.contains(".SUBCKT ACIM_TOP"));
    }

    #[test]
    fn chip_stage_runs_when_configured() {
        use crate::chip::ChipFlowConfig;
        use acim_chip::Network;

        let mut chip_config = ChipFlowConfig::for_network(Network::edge_cnn(1));
        chip_config.dse.population_size = 16;
        chip_config.dse.generations = 5;
        chip_config.dse.grid_rows = vec![1, 2];
        chip_config.dse.grid_cols = vec![1, 2];
        chip_config.dse.buffer_kib = vec![8, 32];
        chip_config.validate_best = false;
        let config = quick_config(4 * 1024).with_chip_stage(chip_config);
        let result = TopFlowController::new(config).unwrap().run().unwrap();
        let chip = result.chip.as_ref().expect("chip stage ran");
        assert!(!chip.front.is_empty());
        // The macro flow is untouched by the chip stage.
        assert!(!result.designs.is_empty());
    }

    #[test]
    fn library_has_all_cells() {
        let controller = TopFlowController::new(quick_config(1024)).unwrap();
        assert_eq!(controller.library().len(), 7);
        assert_eq!(controller.config().dse.array_size, 1024);
    }
}
