//! # easyacim
//!
//! The end-to-end automated ACIM flow of the paper *"EasyACIM: An End-to-End
//! Automated Analog CIM with Synthesizable Architecture and Agile Design
//! Space Exploration"* (DAC 2024), reproduced in Rust.
//!
//! The crate wires the sub-crates of this workspace into the flow of the
//! paper's Figure 4:
//!
//! ```text
//! customized cell library ──┐
//! synthesizable architecture ├─> MOGA-based DSE (NSGA-II) ─> Pareto-frontier set
//! technology files ─────────┘            │ user distillation
//!                                         v
//!                template-based netlist generator ─> template-based
//!                hierarchical placer & router ─> ACIM layouts + reports
//! ```
//!
//! * [`FlowConfig`] collects the three inputs (technology, cell library,
//!   array size) and the exploration/distillation settings,
//! * [`TopFlowController::run`] executes the whole flow and returns a
//!   [`FlowResult`] with the frontier, the distilled set and one
//!   [`GeneratedDesign`] (netlist + layout + metrics) per distilled
//!   solution,
//! * the flow itself is assembled from the **typed stages** of [`stage`]
//!   (explore → distill → netlist → layout, plus the input-free chip
//!   stage), chained with [`stage::Stage::then`],
//! * [`service::ExplorationService`] is the **multi-tenant front door**:
//!   a bounded, deadline-aware admission scheduler (fixed worker set,
//!   priority queue, cooperative cancellation) runs many concurrent
//!   exploration requests against shared per-design-space evaluation
//!   caches and returns [`service::SessionArchive`]s that warm-start
//!   follow-up requests,
//! * the sub-crates are re-exported under [`prelude`] so downstream users
//!   need a single dependency.
//!
//! # Example
//!
//! ```
//! use easyacim::{FlowConfig, TopFlowController};
//!
//! # fn main() -> Result<(), easyacim::FlowError> {
//! let mut config = FlowConfig::new(4 * 1024);
//! config.dse.population_size = 24;
//! config.dse.generations = 10;
//! config.max_layouts = 1;
//! let result = TopFlowController::new(config)?.run()?;
//! assert!(!result.frontier.is_empty());
//! assert!(!result.designs.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chip;
pub mod config;
pub mod error;
pub mod flow;
pub mod persistence;
pub mod report;
mod sched;
pub mod service;
pub mod stage;

pub use chip::{ChipFlow, ChipFlowConfig, ChipFlowResult};
pub use config::FlowConfig;
pub use error::FlowError;
pub use flow::{FlowOptions, FlowResult, GeneratedDesign, TopFlowController};
pub use persistence::{RestoreReport, SnapshotReport};
pub use report::{
    chip_frontier_table, chip_report, design_report, frontier_table, telemetry_section,
    tenant_table,
};
pub use service::{
    ChipRequest, Deadline, ExplorationRequest, ExplorationResponse, ExplorationService, JobHandle,
    JobProgress, MacroRequest, Priority, ServiceConfig, ServiceError, SessionArchive, SubmitError,
};
pub use stage::{Instrumented, ProgressObserver, Stage, StageProgress, TraceContext};

// The cooperative-cancellation vocabulary of [`FlowOptions::cancel`] and
// [`acim_dse::ExploreOptions::cancel`], re-exported so downstream users
// can build and trip tokens without naming the MOGA crate.
pub use acim_moga::{CancelReason, CancelToken};

// The typed error vocabulary of [`service::ExplorationService::restore`],
// re-exported so downstream users can match rejection reasons without
// naming the persistence crate.
pub use acim_persist::PersistError;

// The telemetry vocabulary of [`ExplorationService::telemetry`] and
// [`FlowOptions::trace`], re-exported so downstream users can encode and
// diff snapshots without naming the telemetry crate.
pub use acim_telemetry::{json_text, prometheus_text, Telemetry, TelemetrySnapshot};

/// Convenience re-exports of the whole EasyACIM workspace.
pub mod prelude {
    pub use acim_arch::{AcimMacro, AcimSpec, NoiseConfig};
    pub use acim_cell::{CellKind, CellLibrary};
    pub use acim_chip::{
        evaluate_chip, evaluate_chip_mix, simulate_mix, simulate_network, ChipEvaluator,
        ChipMetrics, ChipSpec, MacroGrid, MacroMetricsCache, MixMetrics, MixObjective,
        MixSimReport, Network, Tenant, TenantMetrics, TenantQuant, WorkloadMix,
    };
    pub use acim_dse::{
        ChipDesignPoint, ChipDseConfig, ChipExplorer, DesignPoint, DesignSpaceExplorer, DseConfig,
        ExploreOptions, RobustnessConfig, RobustnessSweep, UserRequirements,
    };
    pub use acim_layout::{LayoutFlow, MacroLayout};
    pub use acim_model::{evaluate, DesignMetrics, ModelParams};
    pub use acim_moga::{
        CacheStats, CacheStore, CachedProblem, CancelReason, CancelToken, EvalStats, Nsga2,
        Nsga2Config, PoolStats, Problem,
    };
    pub use acim_netlist::{write_spice, NetlistGenerator};
    pub use acim_tech::Technology;
    pub use acim_workloads::{ApplicationProfile, MacroMapper};

    pub use acim_telemetry::{
        json_text, prometheus_text, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Span,
        SpanRecord, SpanRecorder, Telemetry, TelemetrySnapshot,
    };

    pub use crate::{
        ChipFlow, ChipFlowConfig, ChipFlowResult, ChipRequest, Deadline, ExplorationRequest,
        ExplorationResponse, ExplorationService, FlowConfig, FlowOptions, FlowResult,
        GeneratedDesign, Instrumented, JobHandle, JobProgress, MacroRequest, PersistError,
        Priority, RestoreReport, ServiceConfig, ServiceError, SessionArchive, SnapshotReport,
        Stage, SubmitError, TopFlowController, TraceContext,
    };
}
