//! Golden bit-identity regression for the seeded chip frontier.
//!
//! The 14 objective rows below are the sorted `to_bits()` images of the
//! quick seeded NSGA-II chip frontier captured on the last
//! single-network-only revision (commit before the `WorkloadMix`
//! refactor).  The same exploration must keep reproducing them bit-exactly
//! — whether configured through the legacy `for_network` constructor or as
//! a mix of one tenant, and regardless of the (single-tenant-degenerate)
//! aggregation objective.

use acim_chip::{MixObjective, Network, WorkloadMix};
use acim_dse::{ChipDseConfig, ChipExplorer};

/// Sorted `(−acc, −thr, energy, area)` rows of the golden frontier.
const GOLDEN_FRONTIER: &[(u64, u64, u64, u64)] = &[
    (
        0x40066d0c23c74d8d,
        0xbfdbbe5ad6136a36,
        0x4059c8785ad08f8a,
        0x403ec5e0b4e11dbd,
    ),
    (
        0x40150b14cf67a940,
        0xbfdbead8f304c819,
        0x405be74765995b8c,
        0x4041f8da3c21187e,
    ),
    (
        0xbfe7a75984c2b604,
        0xbfdd1b30f09506a5,
        0x405d2bd4b13e4202,
        0x40479752977c88e8,
    ),
    (
        0xc00992f3dc38b273,
        0xbfdaf5bb4095b4e8,
        0x405d11857e5831b4,
        0x403ecf67b1c0010c,
    ),
    (
        0xc00992f3dc38b273,
        0xbfdd2574cb5124bf,
        0x40605a7a7acd27f6,
        0x40531b25f633ce64,
    ),
    (
        0xc01648c306b1bbbb,
        0xbfd9a8bdee36cc9d,
        0x4061c0e25eb9ea3d,
        0x4043474107314ca9,
    ),
    (
        0xc01f534f191567fb,
        0xbfd4a0cb013737a3,
        0x40676832ae479716,
        0x404e748e4755ffe7,
    ),
    (
        0xc02264bcf70e2c9d,
        0xbfdaeb535c4ea8db,
        0x40629b4cc029d372,
        0x405324acf312b1b3,
    ),
    (
        0xc0242eed95bc8a1e,
        0xbfbf0a850d5ac1a4,
        0x4071017e9c1d30fe,
        0x4033fcc9ea9a3d2e,
    ),
    (
        0xc0242eed95bc8a1e,
        0xbfc87a83e8af24ec,
        0x40719a0c674c6ed9,
        0x404d2999567dbb17,
    ),
    (
        0xc028b4339eee603c,
        0xbfb8885061439909,
        0x40821385dbd87e53,
        0x4035b44e50c5eb31,
    ),
    (
        0xc02ba9a78c8ab3fc,
        0xbfd1603db1df44f4,
        0x406eed19272f56d0,
        0x404e879c4113c686,
    ),
    (
        0xc0301776cade450e,
        0xbfc1f6ac68c877d7,
        0x4078f6ff34dede5c,
        0x403ef2e05ccc89b1,
    ),
    (
        0xc033d4d3c64559fe,
        0xbfcb85fd8a016cbc,
        0x40894d1c1267e934,
        0x404f2773e24febd1,
    ),
];

fn quick(mut config: ChipDseConfig) -> ChipDseConfig {
    config.population_size = 16;
    config.generations = 5;
    config.grid_rows = vec![1, 2];
    config.grid_cols = vec![1, 2];
    config.buffer_kib = vec![8, 32];
    config
}

/// Runs `config` and returns its frontier's objective rows, sorted.
fn frontier_bits(config: ChipDseConfig) -> Vec<(u64, u64, u64, u64)> {
    let explorer = ChipExplorer::new(config).unwrap();
    let front = explorer.explore().unwrap();
    let mut rows: Vec<(u64, u64, u64, u64)> = front
        .points()
        .iter()
        .map(|p| {
            let o = p.metrics.objective_array();
            (
                o[0].to_bits(),
                o[1].to_bits(),
                o[2].to_bits(),
                o[3].to_bits(),
            )
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn for_network_frontier_matches_pre_refactor_golden_bits() {
    let config = quick(ChipDseConfig::for_network(Network::edge_cnn(1)));
    assert_eq!(frontier_bits(config), GOLDEN_FRONTIER);
}

#[test]
fn mix_of_one_frontier_matches_pre_refactor_golden_bits() {
    let config = quick(ChipDseConfig::for_mix(WorkloadMix::single(
        Network::edge_cnn(1),
    )));
    assert_eq!(frontier_bits(config), GOLDEN_FRONTIER);
}

#[test]
fn aggregation_objective_is_irrelevant_for_a_single_tenant() {
    // Worst-tenant and weighted-mean reduce to the same arithmetic when
    // there is only one tenant, so both reproduce the golden frontier.
    for objective in [MixObjective::WorstTenant, MixObjective::WeightedMean] {
        let mut config = quick(ChipDseConfig::for_network(Network::edge_cnn(1)));
        config.objective = objective;
        assert_eq!(frontier_bits(config), GOLDEN_FRONTIER, "{objective:?}");
    }
}
