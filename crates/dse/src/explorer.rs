//! The MOGA-based design-space explorer (Figure 4, "MOGA-based Design Space
//! Explorer (NSGA-II)").

use acim_model::ModelParams;
use acim_moga::{CachedProblem, EvalStats, Nsga2, Nsga2Config, ParetoArchive};

use crate::error::DseError;
use crate::problem::AcimDesignProblem;
use crate::solution::DesignPoint;

/// Configuration of one exploration run.
#[derive(Debug, Clone, PartialEq)]
pub struct DseConfig {
    /// User-defined array size (`H · W`).
    pub array_size: usize,
    /// Smallest array height considered.
    pub min_height: usize,
    /// Largest array height considered.
    pub max_height: usize,
    /// NSGA-II population size.
    pub population_size: usize,
    /// NSGA-II generation count.
    pub generations: usize,
    /// RNG seed (exploration is deterministic per seed).
    pub seed: u64,
    /// Estimation-model parameters.
    pub params: ModelParams,
}

impl Default for DseConfig {
    fn default() -> Self {
        Self {
            array_size: 16 * 1024,
            min_height: 16,
            max_height: 1024,
            population_size: 80,
            generations: 60,
            seed: 0xACE5,
            params: ModelParams::s28_default(),
        }
    }
}

/// The Pareto-frontier set produced by an exploration run: every feasible,
/// mutually non-dominated design encountered during the search.
#[derive(Debug, Clone, Default)]
pub struct ParetoFrontierSet {
    points: Vec<DesignPoint>,
    /// Evaluation-engine statistics of the run: evaluations requested,
    /// cache hit/miss counters (hits are designs the optimiser re-sampled
    /// and the engine did not re-evaluate), and wall-clock breakdown.
    pub engine: EvalStats,
}

impl ParetoFrontierSet {
    /// The frontier design points.
    pub fn points(&self) -> &[DesignPoint] {
        &self.points
    }

    /// Number of frontier points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over the frontier points.
    pub fn iter(&self) -> impl Iterator<Item = &DesignPoint> {
        self.points.iter()
    }

    /// Consumes the set and returns the points.
    pub fn into_points(self) -> Vec<DesignPoint> {
        self.points
    }

    /// The point with the best (largest) value of a metric selected by
    /// `key`, if the frontier is non-empty.
    pub fn best_by<F: Fn(&DesignPoint) -> f64>(&self, key: F) -> Option<&DesignPoint> {
        self.points.iter().max_by(|a, b| {
            key(a)
                .partial_cmp(&key(b))
                .expect("metrics must not be NaN")
        })
    }
}

/// The design-space explorer: NSGA-II over [`AcimDesignProblem`] with a
/// global archive of every feasible non-dominated design evaluated.
#[derive(Debug, Clone)]
pub struct DesignSpaceExplorer {
    config: DseConfig,
    problem: AcimDesignProblem,
}

impl DesignSpaceExplorer {
    /// Creates an explorer.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::InvalidConfig`] when the configuration is
    /// inconsistent (no valid heights, zero population, …).
    pub fn new(config: DseConfig) -> Result<Self, DseError> {
        if config.population_size < 4 || !config.population_size.is_multiple_of(2) {
            return Err(DseError::InvalidConfig(
                "population size must be an even number >= 4".into(),
            ));
        }
        if config.generations == 0 {
            return Err(DseError::InvalidConfig(
                "generation count must be at least 1".into(),
            ));
        }
        let problem = AcimDesignProblem::new(
            config.array_size,
            config.min_height,
            config.max_height,
            config.params,
        )?;
        Ok(Self { config, problem })
    }

    /// The configuration.
    pub fn config(&self) -> &DseConfig {
        &self.config
    }

    /// Runs the exploration and returns the Pareto-frontier set.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::EmptyDesignSpace`] when the optimiser never found
    /// a feasible design (which indicates an over-constrained array size).
    pub fn explore(&self) -> Result<ParetoFrontierSet, DseError> {
        let nsga_config = Nsga2Config {
            population_size: self.config.population_size,
            generations: self.config.generations,
            ..Default::default()
        };
        // Archive every feasible design seen in any generation, keyed by the
        // decoded spec, so the frontier is not limited to the final
        // population.  The problem is wrapped in a memoizing cache keyed by
        // decode buckets: the bucketed genome re-samples identical designs
        // constantly, and the cache answers those re-evaluations for free
        // while its batch path fans the unique misses out across cores.
        let mut archive: ParetoArchive<DesignPoint> = ParetoArchive::new();
        let problem = &self.problem;
        // The key closure only needs the genome encoding, not a clone of
        // the whole problem.
        let key_encoding = self.problem.encoding().clone();
        let cached =
            CachedProblem::with_key_fn(problem, move |genes| key_encoding.bucket_indices(genes));
        let result = Nsga2::new(&cached, nsga_config)
            .with_seed(self.config.seed)
            .run_with_observer(|_generation, population| {
                for individual in population {
                    if !individual.is_feasible() {
                        continue;
                    }
                    if let Some(point) = problem.decode_point(&individual.genes) {
                        archive.insert(point.objective_vector(), point);
                    }
                }
            });

        // The final population may contain points the observer never saw at
        // an archive-worthy moment; fold it in too.
        for individual in &result.population {
            if individual.is_feasible() {
                if let Some(point) = problem.decode_point(&individual.genes) {
                    archive.insert(point.objective_vector(), point);
                }
            }
        }

        let points: Vec<DesignPoint> = archive
            .into_entries()
            .into_iter()
            .map(|e| e.payload)
            .collect();
        if points.is_empty() {
            return Err(DseError::EmptyDesignSpace {
                array_size: self.config.array_size,
            });
        }
        let mut engine = result.engine;
        engine.cache = cached.stats();
        Ok(ParetoFrontierSet { points, engine })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_moga::dominates;

    fn quick_config() -> DseConfig {
        DseConfig {
            population_size: 32,
            generations: 20,
            ..Default::default()
        }
    }

    #[test]
    fn exploration_finds_a_diverse_frontier() {
        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let frontier = explorer.explore().unwrap();
        assert!(
            frontier.len() >= 5,
            "only {} frontier points",
            frontier.len()
        );
        // Frontier must be mutually non-dominated.
        for a in frontier.iter() {
            for b in frontier.iter() {
                if a.spec != b.spec {
                    assert!(!dominates(&a.objective_vector(), &b.objective_vector()));
                }
            }
        }
        // It should span multiple ADC precisions (diversity across the
        // SNR/energy trade-off).
        let precisions: std::collections::BTreeSet<u32> =
            frontier.iter().map(|p| p.spec.adc_bits()).collect();
        assert!(precisions.len() >= 3, "precisions found: {precisions:?}");
    }

    #[test]
    fn exploration_is_deterministic_per_seed() {
        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let a = explorer.explore().unwrap();
        let b = explorer.explore().unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.engine.evaluations, b.engine.evaluations);
        assert_eq!(a.engine.cache, b.engine.cache);
    }

    #[test]
    fn cache_absorbs_resampled_designs() {
        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let frontier = explorer.explore().unwrap();
        let engine = &frontier.engine;
        assert_eq!(engine.cache.total(), engine.evaluations);
        // The discrete (H, L, B) space has only a few hundred designs, so a
        // 32x20 run must re-sample heavily.
        assert!(
            engine.cache.hits > engine.evaluations / 4,
            "cache stats: {}",
            engine.cache
        );
        assert_eq!(engine.generation_seconds.len(), 20);
        assert!(engine.evaluations_per_second() >= 0.0);
    }

    #[test]
    fn every_frontier_point_respects_constraints() {
        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let frontier = explorer.explore().unwrap();
        for p in frontier.iter() {
            assert_eq!(p.spec.array_size(), 16 * 1024);
            assert!(p.spec.height() >= p.spec.local_array());
            assert!(p.spec.capacitors_per_column() >= 1 << p.spec.adc_bits());
        }
    }

    #[test]
    fn best_by_selects_extremes() {
        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let frontier = explorer.explore().unwrap();
        let best_throughput = frontier
            .best_by(|p| p.metrics.throughput_tops)
            .unwrap()
            .metrics
            .throughput_tops;
        for p in frontier.iter() {
            assert!(p.metrics.throughput_tops <= best_throughput + 1e-12);
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut config = quick_config();
        config.population_size = 7;
        assert!(DesignSpaceExplorer::new(config).is_err());
        let mut config = quick_config();
        config.generations = 0;
        assert!(DesignSpaceExplorer::new(config).is_err());
        let mut config = quick_config();
        config.array_size = 9973;
        assert!(DesignSpaceExplorer::new(config).is_err());
    }
}
