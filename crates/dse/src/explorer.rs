//! The MOGA-based design-space explorer (Figure 4, "MOGA-based Design Space
//! Explorer (NSGA-II)").
//!
//! Long-lived callers (the `easyacim` `ExplorationService`) drive the
//! explorer through [`DesignSpaceExplorer::explore_with`], which accepts
//! [`ExploreOptions`] — a shared evaluation-cache store amortised across
//! requests and a warm-start seed population from a previous run's
//! archive — plus a per-generation progress callback.  The plain
//! [`DesignSpaceExplorer::explore`] remains the cold single-run path and
//! is bit-identical to what it produced before these injection points
//! existed.

use std::ops::ControlFlow;

use acim_chip::MacroMetricsCache;
use acim_model::ModelParams;
use acim_moga::{
    CacheStore, CachedProblem, CancelToken, EvalStats, Nsga2, Nsga2Config, ParetoArchive, PoolStats,
};

use crate::error::DseError;
use crate::problem::AcimDesignProblem;
use crate::solution::DesignPoint;

/// Injection points a long-lived caller can thread into an exploration
/// run.  The default (no cache handles, no bounds, no warm-start genomes)
/// reproduces a cold, self-contained run exactly.
#[derive(Debug, Clone, Default)]
pub struct ExploreOptions {
    /// Shared evaluation-cache store.  `None` gives the run a fresh
    /// private cache; `Some` makes it read and write entries other runs
    /// over the **same design space** produced — the store trusts its
    /// keys, so handing it to a run over a different space poisons it.
    pub cache: Option<CacheStore>,
    /// Capacity bound for the run's **private** evaluation cache, applied
    /// only when [`ExploreOptions::cache`] is `None` (a shared store
    /// carries its own bound from construction).  `None` = unbounded.
    /// Bounding changes hit/miss/eviction counters, never results.
    pub cache_capacity: Option<usize>,
    /// Shared macro-metric cache (see `acim_chip::MacroMetricsCache`):
    /// per-macro `DesignMetrics` reused **below** the genome-level cache,
    /// across chips, requests, and mixed macro + chip sessions over the
    /// same model parameters.  `None` disables the reuse layer.  The
    /// cache must be paired with one `ModelParams` value.
    pub macro_cache: Option<MacroMetricsCache>,
    /// Warm-start genomes, typically a previous run's Pareto archive over
    /// the same design space: they seed the initial NSGA-II population
    /// (see [`Nsga2Config::initial_population`]) and are pre-inserted
    /// into the run's archive, so the warm frontier can never be worse
    /// than the seeds it started from.
    pub warm_start: Vec<Vec<f64>>,
    /// Cooperative cancellation handle, polled after every generation's
    /// environmental selection.  When it trips, the run stops at that
    /// generation boundary and returns [`DseError::Cancelled`] /
    /// [`DseError::DeadlineExceeded`] carrying the partial progress.  A
    /// token that never trips is unobservable: the run (RNG stream, cache
    /// fills, frontier) is bit-identical to one without a token.
    pub cancel: Option<CancelToken>,
}

impl ExploreOptions {
    /// The run's genome-level cache store: the shared one when injected,
    /// otherwise a fresh private store honouring
    /// [`ExploreOptions::cache_capacity`].
    pub(crate) fn store(&self) -> CacheStore {
        match (&self.cache, self.cache_capacity) {
            (Some(store), _) => store.clone(),
            (None, Some(capacity)) => CacheStore::bounded(capacity),
            (None, None) => CacheStore::new(),
        }
    }
}

/// Converts a pool-metrics delta into the [`PoolStats`] embedded in
/// [`EvalStats`].
pub(crate) fn pool_stats_since(before: &rayon::PoolMetrics) -> PoolStats {
    let delta = rayon::pool_metrics().delta_since(before);
    PoolStats {
        tasks_executed: delta.tasks_executed(),
        steals: delta.steals(),
        tasks_per_worker: delta.tasks_per_slot,
    }
}

/// Configuration of one exploration run.
#[derive(Debug, Clone, PartialEq)]
pub struct DseConfig {
    /// User-defined array size (`H · W`).
    pub array_size: usize,
    /// Smallest array height considered.
    pub min_height: usize,
    /// Largest array height considered.
    pub max_height: usize,
    /// NSGA-II population size.
    pub population_size: usize,
    /// NSGA-II generation count.
    pub generations: usize,
    /// RNG seed (exploration is deterministic per seed).
    pub seed: u64,
    /// Estimation-model parameters.
    pub params: ModelParams,
}

impl Default for DseConfig {
    fn default() -> Self {
        Self {
            array_size: 16 * 1024,
            min_height: 16,
            max_height: 1024,
            population_size: 80,
            generations: 60,
            seed: 0xACE5,
            params: ModelParams::s28_default(),
        }
    }
}

/// The Pareto-frontier set produced by an exploration run: every feasible,
/// mutually non-dominated design encountered during the search.
#[derive(Debug, Clone, Default)]
pub struct ParetoFrontierSet {
    points: Vec<DesignPoint>,
    /// Evaluation-engine statistics of the run: evaluations requested,
    /// cache hit/miss counters (hits are designs the optimiser re-sampled
    /// and the engine did not re-evaluate), and wall-clock breakdown.
    pub engine: EvalStats,
}

impl ParetoFrontierSet {
    /// The frontier design points.
    pub fn points(&self) -> &[DesignPoint] {
        &self.points
    }

    /// Number of frontier points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over the frontier points.
    pub fn iter(&self) -> impl Iterator<Item = &DesignPoint> {
        self.points.iter()
    }

    /// Consumes the set and returns the points.
    pub fn into_points(self) -> Vec<DesignPoint> {
        self.points
    }

    /// The point with the best (largest) value of a metric selected by
    /// `key`, if the frontier is non-empty.
    pub fn best_by<F: Fn(&DesignPoint) -> f64>(&self, key: F) -> Option<&DesignPoint> {
        self.points.iter().max_by(|a, b| {
            key(a)
                .partial_cmp(&key(b))
                .expect("metrics must not be NaN")
        })
    }
}

/// The design-space explorer: NSGA-II over [`AcimDesignProblem`] with a
/// global archive of every feasible non-dominated design evaluated.
#[derive(Debug, Clone)]
pub struct DesignSpaceExplorer {
    config: DseConfig,
    problem: AcimDesignProblem,
}

impl DesignSpaceExplorer {
    /// Creates an explorer.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::InvalidConfig`] when the configuration is
    /// inconsistent (no valid heights, zero population, …).
    pub fn new(config: DseConfig) -> Result<Self, DseError> {
        if config.population_size < 4 || !config.population_size.is_multiple_of(2) {
            return Err(DseError::InvalidConfig(
                "population size must be an even number >= 4".into(),
            ));
        }
        if config.generations == 0 {
            return Err(DseError::InvalidConfig(
                "generation count must be at least 1".into(),
            ));
        }
        let problem = AcimDesignProblem::new(
            config.array_size,
            config.min_height,
            config.max_height,
            config.params,
        )?;
        Ok(Self { config, problem })
    }

    /// The configuration.
    pub fn config(&self) -> &DseConfig {
        &self.config
    }

    /// The underlying problem (exposes the genome encoding, used e.g. to
    /// re-encode frontier points into warm-start genomes).
    pub fn problem(&self) -> &AcimDesignProblem {
        &self.problem
    }

    /// Runs a cold, self-contained exploration and returns the
    /// Pareto-frontier set.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::EmptyDesignSpace`] when the optimiser never found
    /// a feasible design (which indicates an over-constrained array size).
    pub fn explore(&self) -> Result<ParetoFrontierSet, DseError> {
        self.explore_with(&ExploreOptions::default(), |_| {})
    }

    /// Runs the exploration with caller-injected [`ExploreOptions`] (shared
    /// cache, warm-start seeds), invoking `progress(generation)` after every
    /// generation's environmental selection.
    ///
    /// With default options this is exactly [`DesignSpaceExplorer::explore`]:
    /// same RNG stream, bit-identical frontier.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::EmptyDesignSpace`] when the optimiser never
    /// found a feasible design, [`DseError::InvalidConfig`] when a
    /// warm-start genome does not match the problem's genome length, or
    /// [`DseError::Cancelled`] / [`DseError::DeadlineExceeded`] when the
    /// injected [`CancelToken`] tripped before the run finished.
    pub fn explore_with<F>(
        &self,
        options: &ExploreOptions,
        mut progress: F,
    ) -> Result<ParetoFrontierSet, DseError>
    where
        F: FnMut(usize),
    {
        let n_var = self.problem.encoding().num_genes();
        for genome in &options.warm_start {
            if genome.len() != n_var {
                return Err(DseError::InvalidConfig(format!(
                    "warm-start genome has {} genes, design space has {n_var}",
                    genome.len()
                )));
            }
        }
        // A token that tripped before any work ran: stop before the
        // initial population is even evaluated.
        if let Some(reason) = options.cancel.as_ref().and_then(CancelToken::status) {
            return Err(DseError::from_cancel(reason, 0, self.config.generations));
        }
        let nsga_config = Nsga2Config {
            population_size: self.config.population_size,
            generations: self.config.generations,
            initial_population: options.warm_start.clone(),
            ..Default::default()
        };
        // Archive every feasible design seen in any generation, keyed by the
        // decoded spec, so the frontier is not limited to the final
        // population.  The problem is wrapped in a memoizing cache keyed by
        // decode buckets: the bucketed genome re-samples identical designs
        // constantly, and the cache answers those re-evaluations for free
        // while its batch path fans the unique misses out across cores.
        let mut archive: ParetoArchive<DesignPoint> = ParetoArchive::new();
        // Route per-macro metric derivation through the shared reuse
        // layer when the caller injected one (a mixed macro + chip
        // session over one parameter set then shares per-macro work).
        let problem = match &options.macro_cache {
            Some(cache) => self.problem.clone().with_macro_cache(cache.clone()),
            None => self.problem.clone(),
        };
        let problem = &problem;
        // Warm-start seeds are archived up front: whatever the warm run
        // finds is unioned with them, so its frontier dominates-or-equals
        // the one it was seeded from.
        for genome in &options.warm_start {
            if let Some(point) = problem.decode_point(genome) {
                archive.insert(point.objective_vector(), point);
            }
        }
        // The key closure only needs the genome encoding, not a clone of
        // the whole problem.
        let key_encoding = self.problem.encoding().clone();
        let cached =
            CachedProblem::with_key_fn(problem, move |genes| key_encoding.bucket_indices(genes))
                .with_shared_store(options.store());
        let pool_before = rayon::pool_metrics();
        let result = Nsga2::new(&cached, nsga_config)
            .with_seed(self.config.seed)
            .run_with_observer(|generation, population| {
                for individual in population {
                    if !individual.is_feasible() {
                        continue;
                    }
                    if let Some(point) = problem.decode_point(&individual.genes) {
                        archive.insert(point.objective_vector(), point);
                    }
                }
                progress(generation);
                // Cooperative cancellation: the completed generation is
                // already archived and its cache fills are in the shared
                // store, so stopping here leaves every shared structure in
                // the exact state of an uninterrupted run's prefix.
                match options.cancel.as_ref().map(CancelToken::is_triggered) {
                    Some(true) => ControlFlow::Break(()),
                    _ => ControlFlow::Continue(()),
                }
            });
        if result.generations < self.config.generations {
            let reason = options
                .cancel
                .as_ref()
                .and_then(CancelToken::status)
                // The loop only breaks early when the token tripped; a
                // token cannot un-trip (cancel is sticky, deadlines only
                // move further into the past).
                .expect("early NSGA-II stop without a tripped cancel token");
            return Err(DseError::from_cancel(
                reason,
                result.generations,
                self.config.generations,
            ));
        }

        // The final population may contain points the observer never saw at
        // an archive-worthy moment; fold it in too.
        for individual in &result.population {
            if individual.is_feasible() {
                if let Some(point) = problem.decode_point(&individual.genes) {
                    archive.insert(point.objective_vector(), point);
                }
            }
        }

        let points: Vec<DesignPoint> = archive
            .into_entries()
            .into_iter()
            .map(|e| e.payload)
            .collect();
        if points.is_empty() {
            return Err(DseError::EmptyDesignSpace {
                array_size: self.config.array_size,
            });
        }
        let mut engine = result.engine;
        engine.cache = cached.stats();
        engine.macro_cache = problem.macro_cache_stats();
        engine.pool = pool_stats_since(&pool_before);
        Ok(ParetoFrontierSet { points, engine })
    }

    /// Re-encodes frontier points into warm-start genomes for a follow-up
    /// run over the same design space (points outside this problem's
    /// catalogue are skipped).
    pub fn session_genomes(&self, points: &[DesignPoint]) -> Vec<Vec<f64>> {
        let encoding = self.problem.encoding();
        points
            .iter()
            .filter_map(|point| {
                encoding.encode(&crate::encoding::Candidate {
                    height: point.spec.height(),
                    width: point.spec.width(),
                    local_array: point.spec.local_array(),
                    adc_bits: point.spec.adc_bits(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_moga::dominates;

    fn quick_config() -> DseConfig {
        DseConfig {
            population_size: 32,
            generations: 20,
            ..Default::default()
        }
    }

    #[test]
    fn exploration_finds_a_diverse_frontier() {
        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let frontier = explorer.explore().unwrap();
        assert!(
            frontier.len() >= 5,
            "only {} frontier points",
            frontier.len()
        );
        // Frontier must be mutually non-dominated.
        for a in frontier.iter() {
            for b in frontier.iter() {
                if a.spec != b.spec {
                    assert!(!dominates(&a.objective_vector(), &b.objective_vector()));
                }
            }
        }
        // It should span multiple ADC precisions (diversity across the
        // SNR/energy trade-off).
        let precisions: std::collections::BTreeSet<u32> =
            frontier.iter().map(|p| p.spec.adc_bits()).collect();
        assert!(precisions.len() >= 3, "precisions found: {precisions:?}");
    }

    #[test]
    fn exploration_is_deterministic_per_seed() {
        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let a = explorer.explore().unwrap();
        let b = explorer.explore().unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.engine.evaluations, b.engine.evaluations);
        assert_eq!(a.engine.cache, b.engine.cache);
    }

    #[test]
    fn cache_absorbs_resampled_designs() {
        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let frontier = explorer.explore().unwrap();
        let engine = &frontier.engine;
        assert_eq!(engine.cache.total(), engine.evaluations);
        // The discrete (H, L, B) space has only a few hundred designs, so a
        // 32x20 run must re-sample heavily.
        assert!(
            engine.cache.hits > engine.evaluations / 4,
            "cache stats: {}",
            engine.cache
        );
        assert_eq!(engine.generation_seconds.len(), 20);
        assert!(engine.evaluations_per_second() >= 0.0);
    }

    #[test]
    fn every_frontier_point_respects_constraints() {
        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let frontier = explorer.explore().unwrap();
        for p in frontier.iter() {
            assert_eq!(p.spec.array_size(), 16 * 1024);
            assert!(p.spec.height() >= p.spec.local_array());
            assert!(p.spec.capacitors_per_column() >= 1 << p.spec.adc_bits());
        }
    }

    #[test]
    fn best_by_selects_extremes() {
        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let frontier = explorer.explore().unwrap();
        let best_throughput = frontier
            .best_by(|p| p.metrics.throughput_tops)
            .unwrap()
            .metrics
            .throughput_tops;
        for p in frontier.iter() {
            assert!(p.metrics.throughput_tops <= best_throughput + 1e-12);
        }
    }

    #[test]
    fn explore_with_default_options_matches_explore() {
        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let cold = explorer.explore().unwrap();
        let mut generations = Vec::new();
        let injected = explorer
            .explore_with(&ExploreOptions::default(), |generation| {
                generations.push(generation)
            })
            .unwrap();
        assert_eq!(cold.len(), injected.len());
        for (a, b) in cold.iter().zip(injected.iter()) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.objective_vector(), b.objective_vector());
        }
        assert_eq!(generations, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn shared_cache_turns_a_replayed_run_into_pure_hits() {
        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let store = acim_moga::CacheStore::new();
        let options = ExploreOptions {
            cache: Some(store.clone()),
            ..Default::default()
        };
        let first = explorer.explore_with(&options, |_| {}).unwrap();
        assert!(first.engine.cache.misses > 0);
        let entries_after_first = store.len();
        assert_eq!(entries_after_first, first.engine.cache.misses);

        // Same seed, same space, shared store: the replay's every
        // evaluation is a cross-run hit, and the frontier is unchanged.
        let replay = explorer.explore_with(&options, |_| {}).unwrap();
        assert_eq!(replay.engine.cache.misses, 0);
        assert_eq!(replay.engine.cache.hits, replay.engine.evaluations);
        assert_eq!(store.len(), entries_after_first);
        assert_eq!(first.len(), replay.len());
        for (a, b) in first.iter().zip(replay.iter()) {
            assert_eq!(a.spec, b.spec);
        }
    }

    #[test]
    fn warm_start_seeds_archive_and_population() {
        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let cold = explorer.explore().unwrap();
        let seeds = explorer.session_genomes(cold.points());
        assert_eq!(seeds.len(), cold.len());
        let options = ExploreOptions {
            warm_start: seeds,
            ..Default::default()
        };
        let warm_a = explorer.explore_with(&options, |_| {}).unwrap();
        let warm_b = explorer.explore_with(&options, |_| {}).unwrap();
        // Warm runs are deterministic…
        assert_eq!(warm_a.len(), warm_b.len());
        for (a, b) in warm_a.iter().zip(warm_b.iter()) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.objective_vector(), b.objective_vector());
        }
        // …and every cold frontier point is matched-or-dominated in the
        // warm frontier (the seeds were archived up front).
        for cold_point in cold.iter() {
            let c = cold_point.objective_vector();
            assert!(
                warm_a.iter().any(|w| {
                    let w = w.objective_vector();
                    w == c || dominates(&w, &c)
                }),
                "cold frontier point lost by the warm run"
            );
        }
    }

    #[test]
    fn cancel_token_stops_the_run_at_a_generation_boundary() {
        use acim_moga::CancelToken;

        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let token = CancelToken::new();
        let options = ExploreOptions {
            cancel: Some(token.clone()),
            ..Default::default()
        };
        let mut seen = 0usize;
        let err = explorer
            .explore_with(&options, |generation| {
                seen = generation + 1;
                if generation == 4 {
                    token.cancel();
                }
            })
            .unwrap_err();
        assert_eq!(
            err,
            DseError::Cancelled {
                completed: 5,
                total: 20
            }
        );
        assert_eq!(seen, 5, "no generation ran after the cancel");
    }

    #[test]
    fn pre_tripped_token_stops_before_any_evaluation() {
        use acim_moga::{CacheStore, CancelToken};

        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let store = CacheStore::new();
        let options = ExploreOptions {
            cache: Some(store.clone()),
            cancel: Some(token),
            ..Default::default()
        };
        let err = explorer.explore_with(&options, |_| {}).unwrap_err();
        assert_eq!(
            err,
            DseError::Cancelled {
                completed: 0,
                total: 20
            }
        );
        assert_eq!(store.len(), 0, "no evaluation reached the shared store");
    }

    #[test]
    fn expired_deadline_reports_deadline_exceeded() {
        use acim_moga::CancelToken;
        use std::time::{Duration, Instant};

        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let options = ExploreOptions {
            cancel: Some(CancelToken::with_deadline(
                Instant::now() - Duration::from_millis(1),
            )),
            ..Default::default()
        };
        match explorer.explore_with(&options, |_| {}) {
            Err(DseError::DeadlineExceeded { completed, total }) => {
                assert_eq!(completed, 0);
                assert_eq!(total, 20);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn untripped_token_is_unobservable() {
        use acim_moga::CancelToken;

        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let plain = explorer.explore().unwrap();
        let options = ExploreOptions {
            cancel: Some(CancelToken::new()),
            ..Default::default()
        };
        let with_token = explorer.explore_with(&options, |_| {}).unwrap();
        assert_eq!(plain.len(), with_token.len());
        for (a, b) in plain.iter().zip(with_token.iter()) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.objective_vector(), b.objective_vector());
        }
    }

    #[test]
    fn wrong_length_warm_genome_is_rejected() {
        let explorer = DesignSpaceExplorer::new(quick_config()).unwrap();
        let options = ExploreOptions {
            warm_start: vec![vec![0.5; 7]],
            ..Default::default()
        };
        assert!(explorer.explore_with(&options, |_| {}).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut config = quick_config();
        config.population_size = 7;
        assert!(DesignSpaceExplorer::new(config).is_err());
        let mut config = quick_config();
        config.generations = 0;
        assert!(DesignSpaceExplorer::new(config).is_err());
        let mut config = quick_config();
        config.array_size = 9973;
        assert!(DesignSpaceExplorer::new(config).is_err());
    }
}
