//! Exhaustive enumeration of the design space.
//!
//! The discrete (H, L, B_ADC) space for one array size is small (tens to a
//! few hundred combinations), so it can be enumerated exactly.  The
//! enumeration serves two purposes:
//!
//! * it is the ground-truth Pareto front against which the NSGA-II explorer
//!   is validated in the ablation benchmarks,
//! * it generates the dense scatter clouds of Figure 9 (the figure shows the
//!   whole design space, not only the frontier).

use acim_arch::AcimSpec;
use acim_model::{evaluate, ModelParams};
use acim_moga::dominance::non_dominated_indices;

use crate::error::DseError;
use crate::solution::DesignPoint;

/// Enumerates every feasible design point of one array size.
///
/// Heights are the power-of-two divisors of `array_size` in
/// `[min_height, max_height]`; local sizes are the powers of two in
/// `[2, 32]`; ADC precisions are `1..=8`.
///
/// # Errors
///
/// Returns [`DseError::EmptyDesignSpace`] when no feasible design exists.
pub fn enumerate_design_space(
    array_size: usize,
    min_height: usize,
    max_height: usize,
    params: &ModelParams,
) -> Result<Vec<DesignPoint>, DseError> {
    params.validate()?;
    let mut points = Vec::new();
    for (height, width) in AcimSpec::factorizations(array_size, min_height, max_height) {
        for k in 1..=5usize {
            let local = 1usize << k;
            for bits in 1..=8u32 {
                let Ok(spec) = AcimSpec::new(array_size, height, width, local, bits) else {
                    continue;
                };
                let metrics = evaluate(&spec, params)?;
                points.push(DesignPoint::new(spec, metrics));
            }
        }
    }
    if points.is_empty() {
        return Err(DseError::EmptyDesignSpace { array_size });
    }
    Ok(points)
}

/// Extracts the exact Pareto front (in the four-objective sense of
/// Equation 12) from a set of design points.
pub fn exact_pareto_front(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let objectives: Vec<Vec<f64>> = points.iter().map(DesignPoint::objective_vector).collect();
    non_dominated_indices(&objectives)
        .into_iter()
        .map(|i| points[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_moga::dominates;

    #[test]
    fn enumeration_covers_figure8_points() {
        let points =
            enumerate_design_space(16 * 1024, 16, 1024, &ModelParams::s28_default()).unwrap();
        assert!(points.len() > 50, "only {} points", points.len());
        let has = |h: usize, l: usize, b: u32| {
            points.iter().any(|p| {
                p.spec.height() == h && p.spec.local_array() == l && p.spec.adc_bits() == b
            })
        };
        assert!(has(128, 2, 3));
        assert!(has(128, 8, 3));
        assert!(has(64, 8, 3));
    }

    #[test]
    fn every_enumerated_point_is_feasible() {
        let points =
            enumerate_design_space(4 * 1024, 16, 1024, &ModelParams::s28_default()).unwrap();
        for p in &points {
            assert_eq!(p.spec.array_size(), 4 * 1024);
            assert!(p.spec.capacitors_per_column() >= (1 << p.spec.adc_bits()));
        }
    }

    #[test]
    fn pareto_front_is_non_dominated_and_nonempty() {
        let points =
            enumerate_design_space(16 * 1024, 16, 1024, &ModelParams::s28_default()).unwrap();
        let front = exact_pareto_front(&points);
        assert!(!front.is_empty());
        assert!(front.len() < points.len());
        for a in &front {
            for b in &front {
                if a.spec != b.spec {
                    assert!(!dominates(&a.objective_vector(), &b.objective_vector()));
                }
            }
        }
        // Every dominated point must be dominated by some front member.
        for p in &points {
            let on_front = front.iter().any(|f| f.spec == p.spec);
            if !on_front {
                assert!(
                    front
                        .iter()
                        .any(|f| dominates(&f.objective_vector(), &p.objective_vector())),
                    "point {p} is neither on the front nor dominated"
                );
            }
        }
    }

    #[test]
    fn impossible_array_size_is_an_error() {
        // A prime array size has no power-of-two factorisation above 16.
        assert!(matches!(
            enumerate_design_space(9973, 16, 1024, &ModelParams::s28_default()),
            Err(DseError::InvalidConfig(_)) | Err(DseError::EmptyDesignSpace { .. })
        ));
    }
}
