//! Chip-level design-space exploration: macro shape × macro count ×
//! buffer sizing, co-explored by NSGA-II.
//!
//! The macro-level problem of [`crate::problem`] asks "what is the best
//! (H, W, L, B_ADC)?"; this module asks the question the chip architect
//! actually has: "what macro, **how many of them**, and **how much global
//! buffer** serve this workload best?"  The genome extends the three macro
//! genes with three chip genes (grid rows, grid cols, buffer capacity),
//! and each candidate is scored by `acim-chip`'s analytic evaluator —
//! against one network, or against a whole co-scheduled multi-tenant
//! [`WorkloadMix`] with worst-tenant or weighted-mean objective
//! aggregation ([`MixObjective`]) and an optional Monte-Carlo
//! device-variation yield constraint ([`RobustnessConfig`]).
//!
//! Two levels of parallelism keep the exploration agile: within one chip,
//! per-round objective evaluation runs in parallel under `rayon`; across
//! the population, [`ChipDesignProblem`]'s
//! [`Problem::evaluate_batch`] fans a whole NSGA-II generation out over
//! the cores (order-preserving, so exploration remains bit-reproducible
//! per seed).
//!
//! With [`ChipDseConfig::heterogeneous`] the genome additionally carries
//! **per-tile macro genes**, letting NSGA-II mix macro shapes across the
//! grid — e.g. a high-SNR macro near the buffer for accuracy-critical
//! layers next to long-local-array macros for energy-tolerant ones.

use std::fmt;
use std::ops::ControlFlow;

use acim_chip::{
    ChipCostParams, ChipError, ChipEvaluator, ChipMetrics, ChipSpec, MacroGrid, MacroMetricsCache,
    MixMetrics, MixObjective, Network, TenantMetrics, WorkloadMix,
};
use acim_model::ModelParams;
use acim_moga::{
    CacheStats, CachedProblem, CancelToken, EvalStats, Evaluation, Nsga2, Nsga2Config,
    ParetoArchive, Problem,
};
use rayon::prelude::*;

use crate::encoding::{gene_from_index, index_from_gene, DesignEncoding};
use crate::error::DseError;
use crate::explorer::{pool_stats_since, ExploreOptions};
use crate::robustness::{RobustnessConfig, RobustnessSweep};

/// Configuration of one chip-level exploration run.
#[derive(Debug, Clone)]
pub struct ChipDseConfig {
    /// Per-macro array size (`H · W`) of every grid position.
    pub array_size: usize,
    /// Smallest macro height considered.
    pub min_height: usize,
    /// Largest macro height considered.
    pub max_height: usize,
    /// Candidate grid row counts (e.g. `[1, 2, 3, 4]`).
    pub grid_rows: Vec<usize>,
    /// Candidate grid column counts.
    pub grid_cols: Vec<usize>,
    /// Candidate global-buffer capacities in KiB.
    pub buffer_kib: Vec<usize>,
    /// Explore heterogeneous grids: when `true` every grid position gets
    /// its own (H, L, B_ADC) genes, so NSGA-II can mix macro shapes across
    /// the chip; when `false` (the default) all positions share one macro.
    pub heterogeneous: bool,
    /// The target workload: one network or a whole co-scheduled
    /// multi-tenant mix (see [`WorkloadMix`]).
    pub mix: WorkloadMix,
    /// How the per-tenant metrics of a mix aggregate into objectives.
    /// Irrelevant for single-tenant mixes (both modes reduce to the
    /// tenant's own objectives, bit for bit).
    pub objective: MixObjective,
    /// Optional Monte-Carlo device-variation sweep: when set, chips whose
    /// SNR yield under the perturbed corners falls below the target become
    /// constraint-infeasible (see [`RobustnessConfig`]).
    pub robustness: Option<RobustnessConfig>,
    /// NSGA-II population size.
    pub population_size: usize,
    /// NSGA-II generation count.
    pub generations: usize,
    /// RNG seed (exploration is deterministic per seed).
    pub seed: u64,
    /// Macro estimation-model parameters.
    pub params: ModelParams,
    /// Chip-level cost parameters.
    pub cost: ChipCostParams,
}

impl ChipDseConfig {
    /// A default configuration targeting a multi-tenant `mix`.
    pub fn for_mix(mix: WorkloadMix) -> Self {
        Self {
            array_size: 4 * 1024,
            min_height: 16,
            max_height: 512,
            grid_rows: vec![1, 2, 3, 4],
            grid_cols: vec![1, 2, 3, 4],
            buffer_kib: vec![4, 8, 16, 32, 64, 128],
            heterogeneous: false,
            mix,
            objective: MixObjective::default(),
            robustness: None,
            population_size: 60,
            generations: 40,
            seed: 0xC41F,
            params: ModelParams::s28_default(),
            cost: ChipCostParams::s28_default(),
        }
    }

    /// A default configuration targeting one `network` — exactly
    /// [`ChipDseConfig::for_mix`] over the degenerate single-tenant mix,
    /// which the whole stack scores bit-identically to the pre-mix
    /// single-network path.
    pub fn for_network(network: Network) -> Self {
        Self::for_mix(WorkloadMix::single(network))
    }
}

/// One explored chip design: the chip specification, its per-macro spec,
/// and the chip-level metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipDesignPoint {
    /// The chip (macro grid + buffer).
    pub chip: ChipSpec,
    /// The chip-level metrics.  For a multi-tenant mix this is the
    /// mix-level view ([`MixMetrics::combined`]): makespan latency,
    /// aggregate throughput, total energy, worst-tenant accuracy.  For a
    /// single tenant it is that tenant's metrics, unchanged.
    pub metrics: ChipMetrics,
    /// Per-tenant breakdown, in mix order (one entry for single-network
    /// explorations).
    pub tenants: Vec<TenantMetrics>,
}

impl ChipDesignPoint {
    /// Objective vector `[−accuracy, −throughput, energy, area]`.
    pub fn objective_vector(&self) -> Vec<f64> {
        self.metrics.objective_vector()
    }

    /// CSV header matching [`ChipDesignPoint::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "grid_rows,grid_cols,height,width,local_array,adc_bits,distinct_macros,macro_set,buffer_kib,accuracy_db,throughput_tops,energy_per_inference_pj,area_mf2,latency_ns,tenants"
    }

    /// Serialises the point as one CSV row.  The per-macro columns read
    /// `mixed` for heterogeneous grids, which have no single macro shape;
    /// the `distinct_macros`/`macro_set` columns carry the mix instead.
    pub fn to_csv_row(&self) -> String {
        let macro_columns = if self.chip.grid.is_uniform() {
            let spec = self.chip.grid.spec(0);
            format!(
                "{},{},{},{}",
                spec.height(),
                spec.width(),
                spec.local_array(),
                spec.adc_bits(),
            )
        } else {
            "mixed,mixed,mixed,mixed".into()
        };
        format!(
            "{},{},{},{},{},{},{:.3},{:.4},{:.2},{:.2},{:.1},{}",
            self.chip.grid.rows(),
            self.chip.grid.cols(),
            macro_columns,
            self.chip.grid.distinct_specs().len(),
            self.macro_set(),
            self.chip.buffer_kib,
            self.metrics.accuracy_db,
            self.metrics.throughput_tops,
            self.metrics.energy_per_inference_pj,
            self.metrics.area_mf2,
            self.metrics.latency_ns,
            self.tenant_set(),
        )
    }

    /// Compact `|`-separated per-tenant summary (CSV-safe: no commas),
    /// e.g. `edge_cnn@23.9dB|transformer_block@18.5dB`.
    pub fn tenant_set(&self) -> String {
        self.tenants
            .iter()
            .map(|t| format!("{}@{:.1}dB", t.name, t.metrics.accuracy_db))
            .collect::<Vec<_>>()
            .join("|")
    }

    /// Compact `|`-separated description of the distinct macro shapes on
    /// the grid, e.g. `128x32L4B4|64x64L8B3` (CSV-safe: no commas).
    pub fn macro_set(&self) -> String {
        self.chip
            .grid
            .distinct_specs()
            .iter()
            .map(|spec| {
                format!(
                    "{}x{}L{}B{}",
                    spec.height(),
                    spec.width(),
                    spec.local_array(),
                    spec.adc_bits(),
                )
            })
            .collect::<Vec<_>>()
            .join("|")
    }
}

impl fmt::Display for ChipDesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} acc={:.1}dB T={:.3}TOPS E={:.1}pJ/inf A={:.1}MF2",
            self.chip,
            self.metrics.accuracy_db,
            self.metrics.throughput_tops,
            self.metrics.energy_per_inference_pj,
            self.metrics.area_mf2,
        )
    }
}

/// The chip design problem: macro (H, L, B_ADC) plus grid rows, grid cols
/// and buffer capacity, evaluated against one workload mix (a
/// single-tenant mix for classic single-network exploration).
///
/// # Genome layout
///
/// Uniform grids use six genes: `[H, L, B, rows, cols, buffer]`.
/// Heterogeneous grids keep that prefix (the first triple describes tile 0,
/// so uniform genomes embed unchanged) and append one (H, L, B) triple per
/// additional grid position up to the largest candidate grid:
///
/// ```text
/// [H₀, L₀, B₀, rows, cols, buffer, H₁, L₁, B₁, …, H_T₋₁, L_T₋₁, B_T₋₁]
/// ```
///
/// where `T = max(grid_rows) · max(grid_cols)`.  When the decoded grid is
/// smaller than `T`, the surplus tile genes are inert — the standard
/// fixed-length encoding of a variable-topology space, which keeps the
/// variation operators problem-agnostic.
#[derive(Debug, Clone)]
pub struct ChipDesignProblem {
    encoding: DesignEncoding,
    grid_rows: Vec<usize>,
    grid_cols: Vec<usize>,
    buffer_kib: Vec<usize>,
    /// Grid positions encodable in the genome (1 when uniform).
    max_tiles: usize,
    heterogeneous: bool,
    evaluator: ChipEvaluator,
    mix: WorkloadMix,
    objective: MixObjective,
    robustness: Option<RobustnessSweep>,
}

impl ChipDesignProblem {
    /// Creates the problem from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::InvalidConfig`] when the macro encoding cannot
    /// be built, a candidate list is empty, or the parameters are invalid.
    pub fn new(config: &ChipDseConfig) -> Result<Self, DseError> {
        let encoding =
            DesignEncoding::new(config.array_size, config.min_height, config.max_height)?;
        for (name, list) in [
            ("grid_rows", &config.grid_rows),
            ("grid_cols", &config.grid_cols),
            ("buffer_kib", &config.buffer_kib),
        ] {
            if list.is_empty() {
                return Err(DseError::InvalidConfig(format!("{name} must not be empty")));
            }
            if list.contains(&0) {
                return Err(DseError::InvalidConfig(format!(
                    "{name} must not contain 0"
                )));
            }
        }
        config
            .mix
            .validate()
            .map_err(|e| DseError::InvalidConfig(format!("workload mix: {e}")))?;
        let evaluator = ChipEvaluator::new(config.params, config.cost)
            .map_err(|e| DseError::InvalidConfig(e.to_string()))?;
        // The Monte-Carlo corners are hoisted here, once per problem —
        // genome evaluations only run the batch kernel over them.
        let robustness = config
            .robustness
            .map(|rc| RobustnessSweep::new(rc, &config.params))
            .transpose()?;
        let max_tiles = if config.heterogeneous {
            config.grid_rows.iter().max().copied().unwrap_or(1)
                * config.grid_cols.iter().max().copied().unwrap_or(1)
        } else {
            1
        };
        Ok(Self {
            encoding,
            grid_rows: config.grid_rows.clone(),
            grid_cols: config.grid_cols.clone(),
            buffer_kib: config.buffer_kib.clone(),
            max_tiles,
            heterogeneous: config.heterogeneous,
            evaluator,
            mix: config.mix.clone(),
            objective: config.objective,
            robustness,
        })
    }

    /// Installs a shared macro-metric cache on the underlying evaluator
    /// (see [`ChipEvaluator::with_macro_cache`]): per-macro
    /// `DesignMetrics` are then reused across chips, requests and mixed
    /// macro + chip sessions over the same model parameters, with
    /// attribution readable via
    /// [`ChipDesignProblem::macro_cache_stats`].
    #[must_use]
    pub fn with_macro_cache(mut self, cache: MacroMetricsCache) -> Self {
        self.evaluator = self.evaluator.clone().with_macro_cache(cache);
        self
    }

    /// Hit/miss/eviction attribution of this problem (and its clones)
    /// against the installed macro-metric cache; all zeros when no cache
    /// is installed.
    pub fn macro_cache_stats(&self) -> CacheStats {
        self.evaluator.macro_cache_stats()
    }

    /// Returns `true` when the genome carries per-tile macro genes.
    pub fn is_heterogeneous(&self) -> bool {
        self.heterogeneous
    }

    /// Grid positions representable in the genome (1 for uniform grids).
    pub fn max_tiles(&self) -> usize {
        self.max_tiles
    }

    /// The macro genome encoding in use.
    pub fn encoding(&self) -> &DesignEncoding {
        &self.encoding
    }

    /// The target workload mix (a single-tenant mix for single-network
    /// explorations).
    pub fn mix(&self) -> &WorkloadMix {
        &self.mix
    }

    /// The objective aggregation mode for multi-tenant mixes.
    pub fn objective(&self) -> MixObjective {
        self.objective
    }

    /// The hoisted device-variation sweep, when robustness is enabled.
    pub fn robustness(&self) -> Option<&RobustnessSweep> {
        self.robustness.as_ref()
    }

    /// Decodes the chip genes into `(rows, cols, buffer_kib)`.
    fn decode_chip_genes(&self, genes: &[f64]) -> (usize, usize, usize) {
        (
            self.grid_rows[index_from_gene(genes[3], self.grid_rows.len())],
            self.grid_cols[index_from_gene(genes[4], self.grid_cols.len())],
            self.buffer_kib[index_from_gene(genes[5], self.buffer_kib.len())],
        )
    }

    /// Encodes an explicit uniform design into gene space (bucket
    /// centres), for seeding or testing; returns `None` when a value is
    /// not part of the catalogue.  In heterogeneous mode the surplus tile
    /// genes all carry the same macro, so the genome decodes to the same
    /// uniform chip.
    pub fn encode(
        &self,
        candidate: &crate::encoding::Candidate,
        rows: usize,
        cols: usize,
        buffer_kib: usize,
    ) -> Option<Vec<f64>> {
        let tiles = vec![*candidate; rows * cols];
        self.encode_heterogeneous(&tiles, rows, cols, buffer_kib)
    }

    /// Encodes an explicit (possibly mixed-macro) design into gene space.
    /// `tiles` holds one candidate per grid position, row-major,
    /// `tiles.len() == rows · cols`.  Returns `None` when a value is not
    /// part of the catalogue, the tile count mismatches, or the grid does
    /// not fit the genome (`rows · cols > max_tiles` with mixed macros).
    pub fn encode_heterogeneous(
        &self,
        tiles: &[crate::encoding::Candidate],
        rows: usize,
        cols: usize,
        buffer_kib: usize,
    ) -> Option<Vec<f64>> {
        if tiles.len() != rows * cols || tiles.is_empty() {
            return None;
        }
        let uniform = tiles.windows(2).all(|w| w[0] == w[1]);
        if !self.heterogeneous && !uniform {
            return None;
        }
        if tiles.len() > self.max_tiles.max(1) && !uniform {
            return None;
        }
        let mut genes = self.encoding.encode(&tiles[0])?;
        let ri = self.grid_rows.iter().position(|&r| r == rows)?;
        let ci = self.grid_cols.iter().position(|&c| c == cols)?;
        let bi = self.buffer_kib.iter().position(|&b| b == buffer_kib)?;
        genes.push(gene_from_index(ri, self.grid_rows.len()));
        genes.push(gene_from_index(ci, self.grid_cols.len()));
        genes.push(gene_from_index(bi, self.buffer_kib.len()));
        if self.heterogeneous {
            for tile in 1..self.max_tiles {
                // Surplus positions (beyond rows x cols) repeat the base
                // macro; they are inert at decode time.
                let candidate = tiles.get(tile).unwrap_or(&tiles[0]);
                genes.extend(self.encoding.encode(candidate)?);
            }
        }
        Some(genes)
    }

    /// Builds the chip a genome describes, when every used macro is
    /// feasible.
    ///
    /// # Errors
    ///
    /// Returns the summed constraint violation of the infeasible tiles (as
    /// in [`crate::encoding::Candidate::into_spec`]) wrapped in
    /// `Err(Some)`, or `Err(None)` for chip-construction failures.
    fn decode_chip(&self, genes: &[f64]) -> Result<ChipSpec, Option<f64>> {
        let (rows, cols, buffer_kib) = self.decode_chip_genes(genes);
        let used_tiles = if self.heterogeneous {
            (rows * cols).min(self.max_tiles)
        } else {
            1
        };
        let mut specs = Vec::with_capacity(rows * cols);
        let mut violation = 0.0;
        for tile in 0..used_tiles {
            let candidate = self.encoding.decode(macro_genes(genes, tile));
            match candidate.into_spec(self.encoding.array_size()) {
                Ok(spec) => specs.push(spec),
                Err(v) => violation += v,
            }
        }
        if violation > 0.0 {
            return Err(Some(violation));
        }
        let grid = if self.heterogeneous {
            // Grids larger than max_tiles cannot occur (rows/cols bound the
            // candidate lists), so every position has its own spec.
            MacroGrid::from_specs(rows, cols, specs).map_err(|_| None)?
        } else {
            MacroGrid::uniform(rows, cols, specs[0]).map_err(|_| None)?
        };
        ChipSpec::new(grid, buffer_kib).map_err(|_| None)
    }

    /// The canonical cache key of a genome (see [`ChipGenomeKeyer::key`]).
    pub fn cache_key(&self, genes: &[f64]) -> Vec<i64> {
        self.keyer().key(genes)
    }

    /// A self-contained quantizer for this problem's genomes — clones
    /// only the encoding and catalogues (no evaluator or network), so it
    /// is cheap to move into a [`acim_moga::CachedProblem`] key closure.
    pub fn keyer(&self) -> ChipGenomeKeyer {
        ChipGenomeKeyer {
            encoding: self.encoding.clone(),
            grid_rows: self.grid_rows.clone(),
            grid_cols: self.grid_cols.clone(),
            buffer_kib: self.buffer_kib.clone(),
            heterogeneous: self.heterogeneous,
        }
    }

    /// The full genome → objectives path, with the per-round fan-out
    /// toggled by the caller (on for one-off evaluations, off inside the
    /// population-parallel batch).  Both settings are bit-identical.
    fn evaluate_genome(&self, genes: &[f64], parallel_rounds: bool) -> Evaluation {
        match self.decode_chip(genes) {
            Ok(chip) => {
                let result = if parallel_rounds {
                    self.evaluator.evaluate_mix(&chip, &self.mix)
                } else {
                    self.evaluator.evaluate_mix_serial(&chip, &self.mix)
                };
                match result {
                    Ok(metrics) => {
                        let objectives = metrics.objectives(self.objective);
                        // The yield sweep only runs for chips that are
                        // otherwise feasible; zero violation keeps the
                        // evaluation unconstrained, so robustness-off and
                        // robustness-trivially-satisfied runs agree.
                        let violation = self
                            .robustness
                            .as_ref()
                            .map_or(0.0, |sweep| sweep.violation(&chip));
                        if violation > 0.0 {
                            Evaluation::new(objectives, violation)
                        } else {
                            Evaluation::unconstrained(objectives)
                        }
                    }
                    // Model failures are heavily infeasible rather than
                    // fatal, matching AcimDesignProblem.
                    Err(_) => Evaluation::new([f64::MAX; 4], 10.0),
                }
            }
            Err(Some(violation)) => Evaluation::new([f64::MAX; 4], violation),
            Err(None) => Evaluation::new([f64::MAX; 4], 10.0),
        }
    }

    /// Decodes a genome into a full [`ChipDesignPoint`] when feasible.
    pub fn decode_point(&self, genes: &[f64]) -> Option<ChipDesignPoint> {
        let chip = self.decode_chip(genes).ok()?;
        let mix_metrics = self.evaluator.evaluate_mix(&chip, &self.mix).ok()?;
        let metrics = mix_metrics.combined();
        Some(ChipDesignPoint {
            chip,
            metrics,
            tenants: mix_metrics.tenants,
        })
    }

    /// Evaluates one chip explicitly (used by benches and reports): the
    /// mix-level combined metrics, which for single-tenant problems are
    /// that tenant's metrics unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError`] when the evaluation fails.
    pub fn evaluate_chip(&self, chip: &ChipSpec) -> Result<ChipMetrics, ChipError> {
        Ok(self.evaluator.evaluate_mix(chip, &self.mix)?.combined())
    }

    /// Evaluates one chip explicitly with the full per-tenant breakdown.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError`] when the evaluation fails.
    pub fn evaluate_chip_mix(&self, chip: &ChipSpec) -> Result<MixMetrics, ChipError> {
        self.evaluator.evaluate_mix(chip, &self.mix)
    }
}

/// The three macro genes describing grid position `tile`: tile 0 lives in
/// the genome prefix, every further tile in the appended triples (see the
/// genome-layout diagram on [`ChipDesignProblem`]).
fn macro_genes(genes: &[f64], tile: usize) -> &[f64] {
    if tile == 0 {
        &genes[..3]
    } else {
        let start = 6 + 3 * (tile - 1);
        &genes[start..start + 3]
    }
}

/// A self-contained chip-genome quantizer: computes the canonical cache
/// key of a genome without holding the problem's evaluator or network,
/// so it can be moved into a long-lived cache-key closure cheaply.
#[derive(Debug, Clone)]
pub struct ChipGenomeKeyer {
    encoding: DesignEncoding,
    grid_rows: Vec<usize>,
    grid_cols: Vec<usize>,
    buffer_kib: Vec<usize>,
    heterogeneous: bool,
}

impl ChipGenomeKeyer {
    /// The canonical cache key of a genome: the decoded grid shape,
    /// buffer choice and the decode-bucket indices of every **used**
    /// tile.  Surplus heterogeneous tile genes are excluded, so genomes
    /// that differ only in inert genes share one cache entry.
    pub fn key(&self, genes: &[f64]) -> Vec<i64> {
        let rows = self.grid_rows[index_from_gene(genes[3], self.grid_rows.len())];
        let cols = self.grid_cols[index_from_gene(genes[4], self.grid_cols.len())];
        let buffer_kib = self.buffer_kib[index_from_gene(genes[5], self.buffer_kib.len())];
        let used_tiles = if self.heterogeneous { rows * cols } else { 1 };
        let mut key = vec![rows as i64, cols as i64, buffer_kib as i64];
        for tile in 0..used_tiles {
            key.extend(self.encoding.bucket_indices(macro_genes(genes, tile)));
        }
        key
    }
}

impl Problem for ChipDesignProblem {
    fn num_variables(&self) -> usize {
        // [H, L, B, rows, cols, buffer] plus one (H, L, B) triple per
        // additional heterogeneous tile.
        6 + 3 * (self.max_tiles.saturating_sub(1))
    }

    fn num_objectives(&self) -> usize {
        4
    }

    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        self.evaluate_genome(genes, true)
    }

    /// Population-parallel batch evaluation: one work-stealing task **per
    /// genome** (`with_max_len(1)`), so a single deep heterogeneous chip
    /// cannot stall a chunk of uniform ones — stealing rebalances the
    /// skew that heterogeneous grids and variable layer counts produce.
    /// Within the batch each chip's layers are costed serially —
    /// parallelising across the population scales better than across a
    /// handful of layers, and nesting both would oversubscribe the cores.
    /// The tasks borrow the caller's genome slice in place on the scoped
    /// executor, so the batch path clones neither the problem nor the
    /// genomes.  Order-preserving and bit-identical to the serial map, so
    /// seeded chip explorations stay deterministic.
    fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
        genomes
            .par_iter()
            .with_max_len(1)
            .map(|genes| self.evaluate_genome(genes, false))
            .collect()
    }

    fn name(&self) -> &str {
        "easyacim chip-level design-space exploration"
    }
}

/// The Pareto set of a chip exploration run.
#[derive(Debug, Clone, Default)]
pub struct ChipParetoSet {
    points: Vec<ChipDesignPoint>,
    /// Evaluation-engine statistics of the run: evaluations requested,
    /// cache hit/miss counters (hits are chips the optimiser re-sampled
    /// and the engine did not re-evaluate), and wall-clock breakdown.
    pub engine: EvalStats,
}

impl ChipParetoSet {
    /// The frontier points.
    pub fn points(&self) -> &[ChipDesignPoint] {
        &self.points
    }

    /// Number of frontier points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over the frontier points.
    pub fn iter(&self) -> impl Iterator<Item = &ChipDesignPoint> {
        self.points.iter()
    }

    /// Consumes the set and returns the points.
    pub fn into_points(self) -> Vec<ChipDesignPoint> {
        self.points
    }

    /// The point with the best (largest) value of `key`.
    pub fn best_by<F: Fn(&ChipDesignPoint) -> f64>(&self, key: F) -> Option<&ChipDesignPoint> {
        self.points.iter().max_by(|a, b| {
            key(a)
                .partial_cmp(&key(b))
                .expect("metrics must not be NaN")
        })
    }
}

/// The chip-level explorer: NSGA-II over [`ChipDesignProblem`] with an
/// archive of every feasible non-dominated chip evaluated.
#[derive(Debug, Clone)]
pub struct ChipExplorer {
    config: ChipDseConfig,
    problem: ChipDesignProblem,
}

impl ChipExplorer {
    /// Creates an explorer.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn new(config: ChipDseConfig) -> Result<Self, DseError> {
        if config.population_size < 4 || !config.population_size.is_multiple_of(2) {
            return Err(DseError::InvalidConfig(
                "population size must be an even number >= 4".into(),
            ));
        }
        if config.generations == 0 {
            return Err(DseError::InvalidConfig(
                "generation count must be at least 1".into(),
            ));
        }
        let problem = ChipDesignProblem::new(&config)?;
        Ok(Self { config, problem })
    }

    /// The configuration.
    pub fn config(&self) -> &ChipDseConfig {
        &self.config
    }

    /// The underlying problem.
    pub fn problem(&self) -> &ChipDesignProblem {
        &self.problem
    }

    /// Runs a cold, self-contained exploration and returns the chip
    /// Pareto set.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::EmptyDesignSpace`] when no feasible chip was
    /// ever found.
    pub fn explore(&self) -> Result<ChipParetoSet, DseError> {
        self.explore_with(&ExploreOptions::default(), |_| {})
    }

    /// Runs the exploration with caller-injected [`ExploreOptions`] (shared
    /// cache, warm-start seeds), invoking `progress(generation)` after every
    /// generation's environmental selection.  With default options this is
    /// exactly [`ChipExplorer::explore`] — same RNG stream, bit-identical
    /// front.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::EmptyDesignSpace`] when no feasible chip was
    /// ever found, [`DseError::InvalidConfig`] when a warm-start genome
    /// does not match the problem's genome length, or
    /// [`DseError::Cancelled`] / [`DseError::DeadlineExceeded`] when the
    /// injected cancel token tripped before the run finished.
    pub fn explore_with<F>(
        &self,
        options: &ExploreOptions,
        mut progress: F,
    ) -> Result<ChipParetoSet, DseError>
    where
        F: FnMut(usize),
    {
        let n_var = Problem::num_variables(&self.problem);
        for genome in &options.warm_start {
            if genome.len() != n_var {
                return Err(DseError::InvalidConfig(format!(
                    "warm-start genome has {} genes, chip design space has {n_var}",
                    genome.len()
                )));
            }
        }
        if let Some(reason) = options.cancel.as_ref().and_then(CancelToken::status) {
            return Err(DseError::from_cancel(reason, 0, self.config.generations));
        }
        let nsga_config = Nsga2Config {
            population_size: self.config.population_size,
            generations: self.config.generations,
            initial_population: options.warm_start.clone(),
            ..Default::default()
        };
        // Archive genomes against the objectives NSGA-II already computed;
        // decoding a genome into a `ChipDesignPoint` repeats the full chip
        // evaluation, so it is deferred to the surviving archive entries.
        // The cache wrapper (keyed by decoded buckets) absorbs re-sampled
        // duplicate chips, and its batch path fans each generation's
        // unique misses across cores.
        let mut archive: ParetoArchive<Vec<f64>> = ParetoArchive::new();
        // Route per-macro metric derivation through the shared reuse
        // layer when the caller injected one: the cache sits *below* the
        // genome-level cache, so even a genome never seen before reuses
        // the macro metrics earlier chips (or macro sessions) derived.
        let problem = match &options.macro_cache {
            Some(cache) => self.problem.clone().with_macro_cache(cache.clone()),
            None => self.problem.clone(),
        };
        let problem = &problem;
        let keyer = self.problem.keyer();
        let cached = CachedProblem::with_key_fn(problem, move |genes| keyer.key(genes))
            .with_shared_store(options.store());
        // Warm-start seeds are archived up front (feasible ones only), so
        // the warm front dominates-or-equals the front it was seeded from.
        // Scoring them goes through the cache: when the seeds came from a
        // request sharing this store, every one is a hit.
        if !options.warm_start.is_empty() {
            let evals = cached.evaluate_batch(&options.warm_start);
            for (genome, eval) in options.warm_start.iter().zip(evals) {
                if eval.is_feasible() {
                    archive.insert(eval.objectives, genome.clone());
                }
            }
        }
        let pool_before = rayon::pool_metrics();
        let result = Nsga2::new(&cached, nsga_config)
            .with_seed(self.config.seed)
            .run_with_observer(|generation, population| {
                for individual in population {
                    if individual.is_feasible() {
                        archive.insert(individual.objectives.clone(), individual.genes.clone());
                    }
                }
                progress(generation);
                // Cooperative cancellation at the generation boundary: the
                // completed generation is archived and its cache fills are
                // already shared, so an interrupted run's side effects are
                // a clean prefix of an uninterrupted one.
                match options.cancel.as_ref().map(CancelToken::is_triggered) {
                    Some(true) => ControlFlow::Break(()),
                    _ => ControlFlow::Continue(()),
                }
            });
        if result.generations < self.config.generations {
            let reason = options
                .cancel
                .as_ref()
                .and_then(CancelToken::status)
                .expect("early NSGA-II stop without a tripped cancel token");
            return Err(DseError::from_cancel(
                reason,
                result.generations,
                self.config.generations,
            ));
        }
        for individual in &result.population {
            if individual.is_feasible() {
                archive.insert(individual.objectives.clone(), individual.genes.clone());
            }
        }

        let points: Vec<ChipDesignPoint> = archive
            .into_entries()
            .into_iter()
            .filter_map(|e| problem.decode_point(&e.payload))
            .collect();
        if points.is_empty() {
            return Err(DseError::EmptyDesignSpace {
                array_size: self.config.array_size,
            });
        }
        let mut engine = result.engine;
        engine.cache = cached.stats();
        engine.macro_cache = problem.macro_cache_stats();
        engine.pool = pool_stats_since(&pool_before);
        Ok(ChipParetoSet { points, engine })
    }

    /// Re-encodes frontier points into warm-start genomes for a follow-up
    /// run over the same design space (points whose macros or grid fall
    /// outside this problem's catalogue are skipped).
    pub fn session_genomes(&self, points: &[ChipDesignPoint]) -> Vec<Vec<f64>> {
        points
            .iter()
            .filter_map(|point| {
                let tiles: Vec<crate::encoding::Candidate> = (0..point.chip.grid.num_macros())
                    .map(|i| {
                        let spec = point.chip.grid.spec(i);
                        crate::encoding::Candidate {
                            height: spec.height(),
                            width: spec.width(),
                            local_array: spec.local_array(),
                            adc_bits: spec.adc_bits(),
                        }
                    })
                    .collect();
                self.problem.encode_heterogeneous(
                    &tiles,
                    point.chip.grid.rows(),
                    point.chip.grid.cols(),
                    point.chip.buffer_kib,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Candidate;
    use acim_moga::dominates;

    fn quick_config() -> ChipDseConfig {
        ChipDseConfig {
            population_size: 24,
            generations: 10,
            grid_rows: vec![1, 2],
            grid_cols: vec![1, 2],
            buffer_kib: vec![8, 32],
            ..ChipDseConfig::for_network(Network::edge_cnn(1))
        }
    }

    #[test]
    fn problem_shape_and_name() {
        let problem = ChipDesignProblem::new(&quick_config()).unwrap();
        assert_eq!(problem.num_variables(), 6);
        assert_eq!(problem.num_objectives(), 4);
        assert!(problem.name().contains("chip"));
    }

    #[test]
    fn feasible_genome_round_trips_to_a_chip_point() {
        let problem = ChipDesignProblem::new(&quick_config()).unwrap();
        let genes = problem
            .encode(
                &Candidate {
                    height: 128,
                    width: 32,
                    local_array: 4,
                    adc_bits: 3,
                },
                2,
                2,
                32,
            )
            .expect("catalogue values encode");
        let eval = Problem::evaluate(&problem, &genes);
        assert!(eval.is_feasible());
        assert!(eval.objectives.iter().all(|o| o.is_finite()));
        let point = problem
            .decode_point(&genes)
            .expect("feasible point decodes");
        assert_eq!(point.chip.grid.num_macros(), 4);
        assert_eq!(point.chip.buffer_kib, 32);
        assert_eq!(point.chip.grid.spec(0).local_array(), 4);
        assert!(
            point.to_csv_row().split(',').count()
                == ChipDesignPoint::csv_header().split(',').count()
        );
    }

    #[test]
    fn infeasible_macro_reports_violation() {
        let problem = ChipDesignProblem::new(&quick_config()).unwrap();
        // L = 32 and B = 8 violates H/L ≥ 2^B for every height of a 4 kb
        // array; encode via a feasible macro then poison the L/B genes.
        let mut genes = problem
            .encode(
                &Candidate {
                    height: 128,
                    width: 32,
                    local_array: 4,
                    adc_bits: 3,
                },
                1,
                1,
                8,
            )
            .unwrap();
        genes[1] = 0.99; // L = 32
        genes[2] = 0.99; // B = 8
        let eval = Problem::evaluate(&problem, &genes);
        assert!(!eval.is_feasible());
        assert!(problem.decode_point(&genes).is_none());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut config = quick_config();
        config.population_size = 7;
        assert!(ChipExplorer::new(config).is_err());

        let mut config = quick_config();
        config.grid_rows.clear();
        assert!(ChipDesignProblem::new(&config).is_err());

        let mut config = quick_config();
        config.buffer_kib = vec![0];
        assert!(ChipDesignProblem::new(&config).is_err());

        let mut config = quick_config();
        config.mix = WorkloadMix::single(Network::new("empty", vec![]));
        assert!(ChipDesignProblem::new(&config).is_err());

        let mut config = quick_config();
        config.mix = WorkloadMix::new("no-tenants");
        assert!(ChipDesignProblem::new(&config).is_err());

        let mut config = quick_config();
        config.robustness = Some(crate::robustness::RobustnessConfig {
            samples: 0,
            ..Default::default()
        });
        assert!(ChipDesignProblem::new(&config).is_err());
    }

    #[test]
    fn exploration_finds_a_mutually_non_dominated_front() {
        let frontier = ChipExplorer::new(quick_config())
            .unwrap()
            .explore()
            .unwrap();
        assert!(!frontier.is_empty());
        assert!(frontier.engine.evaluations > 0);
        for a in frontier.iter() {
            for b in frontier.iter() {
                if a != b {
                    assert!(!dominates(&a.objective_vector(), &b.objective_vector()));
                }
            }
        }
    }

    #[test]
    fn exploration_is_deterministic_per_seed() {
        let explorer = ChipExplorer::new(quick_config()).unwrap();
        let a = explorer.explore().unwrap();
        let b = explorer.explore().unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.engine.evaluations, b.engine.evaluations);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.objective_vector(), y.objective_vector());
        }
    }

    #[test]
    fn exploration_spans_multiple_grid_sizes() {
        let frontier = ChipExplorer::new(quick_config())
            .unwrap()
            .explore()
            .unwrap();
        let grid_sizes: std::collections::BTreeSet<usize> =
            frontier.iter().map(|p| p.chip.grid.num_macros()).collect();
        assert!(
            grid_sizes.len() >= 2,
            "frontier should trade throughput against area: {grid_sizes:?}"
        );
    }

    #[test]
    fn best_by_selects_the_extreme() {
        let frontier = ChipExplorer::new(quick_config())
            .unwrap()
            .explore()
            .unwrap();
        let best = frontier
            .best_by(|p| p.metrics.throughput_tops)
            .unwrap()
            .metrics
            .throughput_tops;
        for p in frontier.iter() {
            assert!(p.metrics.throughput_tops <= best + 1e-12);
        }
    }

    fn hetero_config() -> ChipDseConfig {
        ChipDseConfig {
            heterogeneous: true,
            ..quick_config()
        }
    }

    #[test]
    fn heterogeneous_genome_carries_per_tile_genes() {
        let problem = ChipDesignProblem::new(&hetero_config()).unwrap();
        assert!(problem.is_heterogeneous());
        // max grid is 2x2 -> 4 tiles -> 6 + 3*3 genes.
        assert_eq!(problem.max_tiles(), 4);
        assert_eq!(problem.num_variables(), 15);
        // The uniform problem is untouched.
        let uniform = ChipDesignProblem::new(&quick_config()).unwrap();
        assert!(!uniform.is_heterogeneous());
        assert_eq!(uniform.num_variables(), 6);
    }

    #[test]
    fn mixed_macro_chip_round_trips_through_the_genome() {
        let problem = ChipDesignProblem::new(&hetero_config()).unwrap();
        let tall = Candidate {
            height: 256,
            width: 16,
            local_array: 4,
            adc_bits: 4,
        };
        let wide = Candidate {
            height: 64,
            width: 64,
            local_array: 8,
            adc_bits: 3,
        };
        let genes = problem
            .encode_heterogeneous(&[tall, wide, wide, tall], 2, 2, 32)
            .expect("catalogue values encode");
        assert_eq!(genes.len(), problem.num_variables());
        let eval = Problem::evaluate(&problem, &genes);
        assert!(eval.is_feasible());
        let point = problem.decode_point(&genes).expect("feasible mix decodes");
        assert!(!point.chip.grid.is_uniform());
        assert_eq!(point.chip.grid.num_macros(), 4);
        assert_eq!(point.chip.grid.spec(0).height(), 256);
        assert_eq!(point.chip.grid.spec(1).height(), 64);
        // CSV carries the mix: "mixed" shape columns plus the macro set.
        let row = point.to_csv_row();
        assert_eq!(
            row.split(',').count(),
            ChipDesignPoint::csv_header().split(',').count()
        );
        assert!(row.contains("mixed"));
        assert!(row.contains("256x16L4B4|64x64L8B3"));
        assert!(row.contains(",2,")); // two distinct macros
    }

    #[test]
    fn uniform_encode_still_round_trips_in_heterogeneous_mode() {
        let problem = ChipDesignProblem::new(&hetero_config()).unwrap();
        let candidate = Candidate {
            height: 128,
            width: 32,
            local_array: 4,
            adc_bits: 3,
        };
        let genes = problem.encode(&candidate, 2, 2, 32).unwrap();
        let point = problem.decode_point(&genes).unwrap();
        assert!(point.chip.grid.is_uniform());
        assert_eq!(point.chip.grid.num_macros(), 4);
        assert_eq!(point.macro_set(), "128x32L4B3");
    }

    #[test]
    fn one_infeasible_tile_makes_the_chip_infeasible() {
        let problem = ChipDesignProblem::new(&hetero_config()).unwrap();
        let good = Candidate {
            height: 128,
            width: 32,
            local_array: 4,
            adc_bits: 3,
        };
        let genes = problem
            .encode_heterogeneous(&[good, good, good, good], 2, 2, 32)
            .unwrap();
        // Poison tile 3's (L, B) genes: L = 32, B = 8 violates H/L >= 2^B.
        let mut poisoned = genes.clone();
        poisoned[13] = 0.99;
        poisoned[14] = 0.99;
        let eval = Problem::evaluate(&problem, &poisoned);
        assert!(!eval.is_feasible());
        assert!(problem.decode_point(&poisoned).is_none());
    }

    #[test]
    fn batch_evaluation_matches_serial_in_order() {
        for config in [quick_config(), hetero_config()] {
            let problem = ChipDesignProblem::new(&config).unwrap();
            let n = problem.num_variables();
            let genomes: Vec<Vec<f64>> = (0..24)
                .map(|i| {
                    (0..n)
                        .map(|j| ((i * 31 + j * 17) % 100) as f64 / 99.0)
                        .collect()
                })
                .collect();
            let batch = problem.evaluate_batch(&genomes);
            assert_eq!(batch.len(), genomes.len());
            for (genes, eval) in genomes.iter().zip(&batch) {
                assert_eq!(eval, &problem.evaluate(genes));
            }
        }
    }

    #[test]
    fn chip_shared_cache_and_warm_start_compose() {
        let explorer = ChipExplorer::new(quick_config()).unwrap();
        let store = acim_moga::CacheStore::new();
        let options = ExploreOptions {
            cache: Some(store.clone()),
            ..Default::default()
        };
        let cold = explorer.explore_with(&options, |_| {}).unwrap();
        assert!(!store.is_empty());
        // Replay over the shared store: zero misses, identical front.
        let replay = explorer.explore_with(&options, |_| {}).unwrap();
        assert_eq!(replay.engine.cache.misses, 0);
        assert_eq!(cold.len(), replay.len());

        // Warm-start from the cold front: deterministic and every cold
        // point matched-or-dominated.
        let seeds = explorer.session_genomes(cold.points());
        assert_eq!(seeds.len(), cold.len());
        let warm_options = ExploreOptions {
            cache: Some(store.clone()),
            warm_start: seeds,
            ..Default::default()
        };
        let warm = explorer.explore_with(&warm_options, |_| {}).unwrap();
        for cold_point in cold.iter() {
            let c = cold_point.objective_vector();
            assert!(warm.iter().any(|w| {
                let w = w.objective_vector();
                w == c || dominates(&w, &c)
            }));
        }
        // Wrong-length warm genomes are rejected.
        let bad = ExploreOptions {
            warm_start: vec![vec![0.5; 99]],
            ..Default::default()
        };
        assert!(explorer.explore_with(&bad, |_| {}).is_err());
    }

    #[test]
    fn macro_metric_reuse_is_bit_identical_and_warms_across_requests() {
        for config in [quick_config(), hetero_config()] {
            let explorer = ChipExplorer::new(config).unwrap();
            let plain = explorer.explore().unwrap();

            let macro_cache = acim_chip::MacroMetricsCache::new();
            let options = ExploreOptions {
                macro_cache: Some(macro_cache.clone()),
                ..Default::default()
            };
            let reusing = explorer.explore_with(&options, |_| {}).unwrap();
            // Reuse-on and reuse-off frontiers are bit-identical.
            assert_eq!(plain.len(), reusing.len());
            for (a, b) in plain.iter().zip(reusing.iter()) {
                assert_eq!(a.objective_vector(), b.objective_vector());
                assert_eq!(a.chip, b.chip);
            }
            // The reuse layer saw work and populated the shared cache.
            let stats = reusing.engine.macro_cache;
            assert!(stats.misses > 0, "cold macro cache must record misses");
            assert!(
                stats.hits > 0,
                "recurring specs across genomes must hit: {stats}"
            );
            assert_eq!(macro_cache.len(), stats.misses);
            // Off-path runs report zero macro-cache activity.
            assert_eq!(plain.engine.macro_cache, acim_moga::CacheStats::default());

            // A second request over the warmed cache derives nothing new.
            let replay = explorer.explore_with(&options, |_| {}).unwrap();
            assert_eq!(replay.engine.macro_cache.misses, 0);
            assert_eq!(replay.len(), plain.len());
        }
    }

    #[test]
    fn bounded_caches_with_warm_start_still_dominate_their_seeds() {
        let explorer = ChipExplorer::new(quick_config()).unwrap();
        let cold = explorer.explore().unwrap();

        // Deliberately tiny bounds so the run is forced to evict.
        let store = acim_moga::CacheStore::bounded(8);
        let options = ExploreOptions {
            cache: Some(store.clone()),
            macro_cache: Some(acim_chip::MacroMetricsCache::bounded(2)),
            warm_start: explorer.session_genomes(cold.points()),
            ..Default::default()
        };
        let warm = explorer.explore_with(&options, |_| {}).unwrap();
        assert!(store.evictions() > 0, "an 8-entry store must evict");
        assert!(warm.engine.cache.evictions > 0);
        assert!(store.len() <= 8);
        // Eviction costs hits, never correctness: every cold frontier
        // point is still matched-or-dominated by the warm frontier.
        for cold_point in cold.iter() {
            let c = cold_point.objective_vector();
            assert!(
                warm.iter().any(|w| {
                    let w = w.objective_vector();
                    w == c || dominates(&w, &c)
                }),
                "cold frontier point lost under eviction"
            );
        }
    }

    #[test]
    fn private_cache_capacity_bound_is_honoured_without_changing_results() {
        let explorer = ChipExplorer::new(quick_config()).unwrap();
        let unbounded = explorer.explore().unwrap();
        let bounded = explorer
            .explore_with(
                &ExploreOptions {
                    cache_capacity: Some(4),
                    ..Default::default()
                },
                |_| {},
            )
            .unwrap();
        assert!(bounded.engine.cache.evictions > 0);
        assert_eq!(unbounded.len(), bounded.len());
        for (a, b) in unbounded.iter().zip(bounded.iter()) {
            assert_eq!(a.objective_vector(), b.objective_vector());
        }
    }

    #[test]
    fn heterogeneous_session_genomes_round_trip() {
        let explorer = ChipExplorer::new(hetero_config()).unwrap();
        let front = explorer.explore().unwrap();
        let seeds = explorer.session_genomes(front.points());
        assert_eq!(seeds.len(), front.len());
        for (seed, point) in seeds.iter().zip(front.iter()) {
            let decoded = explorer
                .problem()
                .decode_point(seed)
                .expect("session genome decodes");
            assert_eq!(decoded.objective_vector(), point.objective_vector());
        }
    }

    fn mix_config() -> ChipDseConfig {
        ChipDseConfig {
            population_size: 16,
            generations: 5,
            grid_rows: vec![1, 2],
            grid_cols: vec![1, 2],
            buffer_kib: vec![8, 32],
            ..ChipDseConfig::for_mix(
                WorkloadMix::new("duo")
                    .with_tenant(Network::edge_cnn(1), 1.0)
                    .with_tenant(Network::snn_pipeline(), 2.0),
            )
        }
    }

    #[test]
    fn single_tenant_mix_explores_bit_identically_to_for_network() {
        let network_front = ChipExplorer::new(quick_config())
            .unwrap()
            .explore()
            .unwrap();
        let mix_front = ChipExplorer::new(ChipDseConfig {
            population_size: 24,
            generations: 10,
            grid_rows: vec![1, 2],
            grid_cols: vec![1, 2],
            buffer_kib: vec![8, 32],
            ..ChipDseConfig::for_mix(WorkloadMix::single(Network::edge_cnn(1)))
        })
        .unwrap()
        .explore()
        .unwrap();
        assert_eq!(network_front.len(), mix_front.len());
        for (a, b) in network_front.iter().zip(mix_front.iter()) {
            assert_eq!(a.chip, b.chip);
            for (x, y) in a.objective_vector().iter().zip(b.objective_vector()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.tenants.len(), 1);
        }
    }

    #[test]
    fn mix_exploration_carries_per_tenant_metrics() {
        let frontier = ChipExplorer::new(mix_config()).unwrap().explore().unwrap();
        assert!(!frontier.is_empty());
        for point in frontier.iter() {
            assert_eq!(point.tenants.len(), 2);
            for tenant in &point.tenants {
                assert!(tenant.metrics.latency_ns > 0.0);
                assert!(tenant.metrics.accuracy_db.is_finite());
            }
            let row = point.to_csv_row();
            assert_eq!(
                row.split(',').count(),
                ChipDesignPoint::csv_header().split(',').count()
            );
            assert!(row.contains('@'), "tenant column present: {row}");
        }
    }

    #[test]
    fn objective_modes_both_explore_deterministically() {
        for objective in [MixObjective::WorstTenant, MixObjective::WeightedMean] {
            let config = ChipDseConfig {
                objective,
                ..mix_config()
            };
            let a = ChipExplorer::new(config.clone())
                .unwrap()
                .explore()
                .unwrap();
            let b = ChipExplorer::new(config).unwrap().explore().unwrap();
            assert!(!a.is_empty());
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.objective_vector(), y.objective_vector());
            }
        }
    }

    #[test]
    fn trivially_satisfied_robustness_leaves_the_frontier_bit_identical() {
        let plain = ChipExplorer::new(mix_config()).unwrap().explore().unwrap();
        let robust = ChipExplorer::new(ChipDseConfig {
            robustness: Some(RobustnessConfig {
                min_snr_db: -1000.0,
                ..Default::default()
            }),
            ..mix_config()
        })
        .unwrap()
        .explore()
        .unwrap();
        assert_eq!(plain.len(), robust.len());
        for (a, b) in plain.iter().zip(robust.iter()) {
            assert_eq!(a.chip, b.chip);
            for (x, y) in a.objective_vector().iter().zip(b.objective_vector()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn impossible_yield_target_empties_the_design_space() {
        let result = ChipExplorer::new(ChipDseConfig {
            robustness: Some(RobustnessConfig {
                min_snr_db: 10_000.0,
                min_yield: 1.0,
                ..Default::default()
            }),
            ..mix_config()
        })
        .unwrap()
        .explore();
        assert!(matches!(result, Err(DseError::EmptyDesignSpace { .. })));
    }

    #[test]
    fn yield_constraint_prunes_fragile_chips() {
        // Pick an SNR floor between the best and worst macro corners so
        // the sweep genuinely separates designs.
        let config = ChipDseConfig {
            robustness: Some(RobustnessConfig {
                min_snr_db: 18.0,
                min_yield: 0.95,
                sigma: 0.1,
                samples: 32,
                ..Default::default()
            }),
            ..mix_config()
        };
        let explorer = ChipExplorer::new(config).unwrap();
        let sweep = explorer.problem().robustness().expect("sweep installed");
        if let Ok(frontier) = explorer.explore() {
            for point in frontier.iter() {
                assert!(
                    sweep.yield_for(&point.chip) >= 0.95,
                    "frontier chip misses the yield target: {point}"
                );
            }
        }
    }

    #[test]
    fn heterogeneous_exploration_is_deterministic_and_reports_cache() {
        let explorer = ChipExplorer::new(hetero_config()).unwrap();
        let a = explorer.explore().unwrap();
        let b = explorer.explore().unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.engine.cache, b.engine.cache);
        assert_eq!(a.engine.cache.total(), a.engine.evaluations);
        assert_eq!(a.engine.generation_seconds.len(), 10);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.objective_vector(), y.objective_vector());
        }
    }
}
