//! Chip-level design-space exploration: macro shape × macro count ×
//! buffer sizing, co-explored by NSGA-II.
//!
//! The macro-level problem of [`crate::problem`] asks "what is the best
//! (H, W, L, B_ADC)?"; this module asks the question the chip architect
//! actually has: "what macro, **how many of them**, and **how much global
//! buffer** serve this network best?"  The genome extends the three macro
//! genes with three chip genes (grid rows, grid cols, buffer capacity),
//! and each candidate is scored by `acim-chip`'s analytic evaluator —
//! whose per-layer objective evaluation runs in parallel under `rayon`
//! while staying bit-deterministic, so exploration remains reproducible
//! per seed.

use std::fmt;

use acim_chip::{
    ChipCostParams, ChipError, ChipEvaluator, ChipMetrics, ChipSpec, MacroGrid, Network,
};
use acim_model::ModelParams;
use acim_moga::{Evaluation, Nsga2, Nsga2Config, ParetoArchive, Problem};

use crate::encoding::{gene_from_index, index_from_gene, DesignEncoding};
use crate::error::DseError;

/// Configuration of one chip-level exploration run.
#[derive(Debug, Clone)]
pub struct ChipDseConfig {
    /// Per-macro array size (`H · W`) of every grid position.
    pub array_size: usize,
    /// Smallest macro height considered.
    pub min_height: usize,
    /// Largest macro height considered.
    pub max_height: usize,
    /// Candidate grid row counts (e.g. `[1, 2, 3, 4]`).
    pub grid_rows: Vec<usize>,
    /// Candidate grid column counts.
    pub grid_cols: Vec<usize>,
    /// Candidate global-buffer capacities in KiB.
    pub buffer_kib: Vec<usize>,
    /// The target network.
    pub network: Network,
    /// NSGA-II population size.
    pub population_size: usize,
    /// NSGA-II generation count.
    pub generations: usize,
    /// RNG seed (exploration is deterministic per seed).
    pub seed: u64,
    /// Macro estimation-model parameters.
    pub params: ModelParams,
    /// Chip-level cost parameters.
    pub cost: ChipCostParams,
}

impl ChipDseConfig {
    /// A default configuration targeting `network`.
    pub fn for_network(network: Network) -> Self {
        Self {
            array_size: 4 * 1024,
            min_height: 16,
            max_height: 512,
            grid_rows: vec![1, 2, 3, 4],
            grid_cols: vec![1, 2, 3, 4],
            buffer_kib: vec![4, 8, 16, 32, 64, 128],
            network,
            population_size: 60,
            generations: 40,
            seed: 0xC41F,
            params: ModelParams::s28_default(),
            cost: ChipCostParams::s28_default(),
        }
    }
}

/// One explored chip design: the chip specification, its per-macro spec,
/// and the chip-level metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipDesignPoint {
    /// The chip (macro grid + buffer).
    pub chip: ChipSpec,
    /// The chip-level metrics.
    pub metrics: ChipMetrics,
}

impl ChipDesignPoint {
    /// Objective vector `[−accuracy, −throughput, energy, area]`.
    pub fn objective_vector(&self) -> Vec<f64> {
        self.metrics.objective_vector()
    }

    /// CSV header matching [`ChipDesignPoint::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "grid_rows,grid_cols,height,width,local_array,adc_bits,buffer_kib,accuracy_db,throughput_tops,energy_per_inference_pj,area_mf2,latency_ns"
    }

    /// Serialises the point as one CSV row.  The per-macro columns read
    /// `mixed` for heterogeneous grids, which have no single macro shape.
    pub fn to_csv_row(&self) -> String {
        let macro_columns = if self.chip.grid.is_uniform() {
            let spec = self.chip.grid.spec(0);
            format!(
                "{},{},{},{}",
                spec.height(),
                spec.width(),
                spec.local_array(),
                spec.adc_bits(),
            )
        } else {
            "mixed,mixed,mixed,mixed".into()
        };
        format!(
            "{},{},{},{},{:.3},{:.4},{:.2},{:.2},{:.1}",
            self.chip.grid.rows(),
            self.chip.grid.cols(),
            macro_columns,
            self.chip.buffer_kib,
            self.metrics.accuracy_db,
            self.metrics.throughput_tops,
            self.metrics.energy_per_inference_pj,
            self.metrics.area_mf2,
            self.metrics.latency_ns,
        )
    }
}

impl fmt::Display for ChipDesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} acc={:.1}dB T={:.3}TOPS E={:.1}pJ/inf A={:.1}MF2",
            self.chip,
            self.metrics.accuracy_db,
            self.metrics.throughput_tops,
            self.metrics.energy_per_inference_pj,
            self.metrics.area_mf2,
        )
    }
}

/// The six-gene chip design problem: macro (H, L, B_ADC) plus grid rows,
/// grid cols and buffer capacity, evaluated against one network.
#[derive(Debug, Clone)]
pub struct ChipDesignProblem {
    encoding: DesignEncoding,
    grid_rows: Vec<usize>,
    grid_cols: Vec<usize>,
    buffer_kib: Vec<usize>,
    evaluator: ChipEvaluator,
    network: Network,
}

impl ChipDesignProblem {
    /// Creates the problem from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::InvalidConfig`] when the macro encoding cannot
    /// be built, a candidate list is empty, or the parameters are invalid.
    pub fn new(config: &ChipDseConfig) -> Result<Self, DseError> {
        let encoding =
            DesignEncoding::new(config.array_size, config.min_height, config.max_height)?;
        for (name, list) in [
            ("grid_rows", &config.grid_rows),
            ("grid_cols", &config.grid_cols),
            ("buffer_kib", &config.buffer_kib),
        ] {
            if list.is_empty() {
                return Err(DseError::InvalidConfig(format!("{name} must not be empty")));
            }
            if list.contains(&0) {
                return Err(DseError::InvalidConfig(format!(
                    "{name} must not contain 0"
                )));
            }
        }
        if config.network.is_empty() {
            return Err(DseError::InvalidConfig("network must have layers".into()));
        }
        let evaluator = ChipEvaluator::new(config.params, config.cost)
            .map_err(|e| DseError::InvalidConfig(e.to_string()))?;
        Ok(Self {
            encoding,
            grid_rows: config.grid_rows.clone(),
            grid_cols: config.grid_cols.clone(),
            buffer_kib: config.buffer_kib.clone(),
            evaluator,
            network: config.network.clone(),
        })
    }

    /// The macro genome encoding in use.
    pub fn encoding(&self) -> &DesignEncoding {
        &self.encoding
    }

    /// The target network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Decodes the chip genes into `(rows, cols, buffer_kib)`.
    fn decode_chip_genes(&self, genes: &[f64]) -> (usize, usize, usize) {
        (
            self.grid_rows[index_from_gene(genes[3], self.grid_rows.len())],
            self.grid_cols[index_from_gene(genes[4], self.grid_cols.len())],
            self.buffer_kib[index_from_gene(genes[5], self.buffer_kib.len())],
        )
    }

    /// Encodes an explicit design into gene space (bucket centres), for
    /// seeding or testing; returns `None` when a value is not part of the
    /// catalogue.
    pub fn encode(
        &self,
        candidate: &crate::encoding::Candidate,
        rows: usize,
        cols: usize,
        buffer_kib: usize,
    ) -> Option<Vec<f64>> {
        let mut genes = self.encoding.encode(candidate)?;
        let ri = self.grid_rows.iter().position(|&r| r == rows)?;
        let ci = self.grid_cols.iter().position(|&c| c == cols)?;
        let bi = self.buffer_kib.iter().position(|&b| b == buffer_kib)?;
        genes.push(gene_from_index(ri, self.grid_rows.len()));
        genes.push(gene_from_index(ci, self.grid_cols.len()));
        genes.push(gene_from_index(bi, self.buffer_kib.len()));
        Some(genes)
    }

    /// Builds the chip a genome describes, when the macro is feasible.
    ///
    /// # Errors
    ///
    /// Returns the constraint violation for infeasible macros (as in
    /// [`crate::encoding::Candidate::into_spec`]) wrapped in `Err(Some)`,
    /// or `Err(None)` for chip-construction failures.
    fn decode_chip(&self, genes: &[f64]) -> Result<ChipSpec, Option<f64>> {
        let candidate = self.encoding.decode(&genes[..3]);
        let spec = candidate
            .into_spec(self.encoding.array_size())
            .map_err(Some)?;
        let (rows, cols, buffer_kib) = self.decode_chip_genes(genes);
        let grid = MacroGrid::uniform(rows, cols, spec).map_err(|_| None)?;
        ChipSpec::new(grid, buffer_kib).map_err(|_| None)
    }

    /// Decodes a genome into a full [`ChipDesignPoint`] when feasible.
    pub fn decode_point(&self, genes: &[f64]) -> Option<ChipDesignPoint> {
        let chip = self.decode_chip(genes).ok()?;
        let metrics = self.evaluator.evaluate(&chip, &self.network).ok()?;
        Some(ChipDesignPoint { chip, metrics })
    }

    /// Evaluates one chip explicitly (used by benches and reports).
    ///
    /// # Errors
    ///
    /// Returns [`ChipError`] when the evaluation fails.
    pub fn evaluate_chip(&self, chip: &ChipSpec) -> Result<ChipMetrics, ChipError> {
        self.evaluator.evaluate(chip, &self.network)
    }
}

impl Problem for ChipDesignProblem {
    fn num_variables(&self) -> usize {
        6
    }

    fn num_objectives(&self) -> usize {
        4
    }

    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        match self.decode_chip(genes) {
            Ok(chip) => match self.evaluator.evaluate(&chip, &self.network) {
                Ok(metrics) => Evaluation::unconstrained(metrics.objective_vector()),
                // Model failures are heavily infeasible rather than fatal,
                // matching AcimDesignProblem.
                Err(_) => Evaluation::new(vec![f64::MAX; 4], 10.0),
            },
            Err(Some(violation)) => Evaluation::new(vec![f64::MAX; 4], violation),
            Err(None) => Evaluation::new(vec![f64::MAX; 4], 10.0),
        }
    }

    fn name(&self) -> &str {
        "easyacim chip-level design-space exploration"
    }
}

/// The Pareto set of a chip exploration run.
#[derive(Debug, Clone, Default)]
pub struct ChipParetoSet {
    points: Vec<ChipDesignPoint>,
    /// Number of objective evaluations spent by the optimiser.
    pub evaluations: usize,
}

impl ChipParetoSet {
    /// The frontier points.
    pub fn points(&self) -> &[ChipDesignPoint] {
        &self.points
    }

    /// Number of frontier points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` when the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over the frontier points.
    pub fn iter(&self) -> impl Iterator<Item = &ChipDesignPoint> {
        self.points.iter()
    }

    /// Consumes the set and returns the points.
    pub fn into_points(self) -> Vec<ChipDesignPoint> {
        self.points
    }

    /// The point with the best (largest) value of `key`.
    pub fn best_by<F: Fn(&ChipDesignPoint) -> f64>(&self, key: F) -> Option<&ChipDesignPoint> {
        self.points.iter().max_by(|a, b| {
            key(a)
                .partial_cmp(&key(b))
                .expect("metrics must not be NaN")
        })
    }
}

/// The chip-level explorer: NSGA-II over [`ChipDesignProblem`] with an
/// archive of every feasible non-dominated chip evaluated.
#[derive(Debug, Clone)]
pub struct ChipExplorer {
    config: ChipDseConfig,
    problem: ChipDesignProblem,
}

impl ChipExplorer {
    /// Creates an explorer.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn new(config: ChipDseConfig) -> Result<Self, DseError> {
        if config.population_size < 4 || !config.population_size.is_multiple_of(2) {
            return Err(DseError::InvalidConfig(
                "population size must be an even number >= 4".into(),
            ));
        }
        if config.generations == 0 {
            return Err(DseError::InvalidConfig(
                "generation count must be at least 1".into(),
            ));
        }
        let problem = ChipDesignProblem::new(&config)?;
        Ok(Self { config, problem })
    }

    /// The configuration.
    pub fn config(&self) -> &ChipDseConfig {
        &self.config
    }

    /// The underlying problem.
    pub fn problem(&self) -> &ChipDesignProblem {
        &self.problem
    }

    /// Runs the exploration and returns the chip Pareto set.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::EmptyDesignSpace`] when no feasible chip was
    /// ever found.
    pub fn explore(&self) -> Result<ChipParetoSet, DseError> {
        let nsga_config = Nsga2Config {
            population_size: self.config.population_size,
            generations: self.config.generations,
            ..Default::default()
        };
        // Archive genomes against the objectives NSGA-II already computed;
        // decoding a genome into a `ChipDesignPoint` repeats the full chip
        // evaluation, so it is deferred to the surviving archive entries.
        let mut archive: ParetoArchive<Vec<f64>> = ParetoArchive::new();
        let problem = &self.problem;
        let result = Nsga2::new(problem, nsga_config)
            .with_seed(self.config.seed)
            .run_with_observer(|_generation, population| {
                for individual in population {
                    if individual.is_feasible() {
                        archive.insert(individual.objectives.clone(), individual.genes.clone());
                    }
                }
            });
        for individual in &result.population {
            if individual.is_feasible() {
                archive.insert(individual.objectives.clone(), individual.genes.clone());
            }
        }

        let points: Vec<ChipDesignPoint> = archive
            .into_entries()
            .into_iter()
            .filter_map(|e| problem.decode_point(&e.payload))
            .collect();
        if points.is_empty() {
            return Err(DseError::EmptyDesignSpace {
                array_size: self.config.array_size,
            });
        }
        Ok(ChipParetoSet {
            points,
            evaluations: result.evaluations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::Candidate;
    use acim_moga::dominates;

    fn quick_config() -> ChipDseConfig {
        ChipDseConfig {
            population_size: 24,
            generations: 10,
            grid_rows: vec![1, 2],
            grid_cols: vec![1, 2],
            buffer_kib: vec![8, 32],
            ..ChipDseConfig::for_network(Network::edge_cnn(1))
        }
    }

    #[test]
    fn problem_shape_and_name() {
        let problem = ChipDesignProblem::new(&quick_config()).unwrap();
        assert_eq!(problem.num_variables(), 6);
        assert_eq!(problem.num_objectives(), 4);
        assert!(problem.name().contains("chip"));
    }

    #[test]
    fn feasible_genome_round_trips_to_a_chip_point() {
        let problem = ChipDesignProblem::new(&quick_config()).unwrap();
        let genes = problem
            .encode(
                &Candidate {
                    height: 128,
                    width: 32,
                    local_array: 4,
                    adc_bits: 3,
                },
                2,
                2,
                32,
            )
            .expect("catalogue values encode");
        let eval = Problem::evaluate(&problem, &genes);
        assert!(eval.is_feasible());
        assert!(eval.objectives.iter().all(|o| o.is_finite()));
        let point = problem
            .decode_point(&genes)
            .expect("feasible point decodes");
        assert_eq!(point.chip.grid.num_macros(), 4);
        assert_eq!(point.chip.buffer_kib, 32);
        assert_eq!(point.chip.grid.spec(0).local_array(), 4);
        assert!(
            point.to_csv_row().split(',').count()
                == ChipDesignPoint::csv_header().split(',').count()
        );
    }

    #[test]
    fn infeasible_macro_reports_violation() {
        let problem = ChipDesignProblem::new(&quick_config()).unwrap();
        // L = 32 and B = 8 violates H/L ≥ 2^B for every height of a 4 kb
        // array; encode via a feasible macro then poison the L/B genes.
        let mut genes = problem
            .encode(
                &Candidate {
                    height: 128,
                    width: 32,
                    local_array: 4,
                    adc_bits: 3,
                },
                1,
                1,
                8,
            )
            .unwrap();
        genes[1] = 0.99; // L = 32
        genes[2] = 0.99; // B = 8
        let eval = Problem::evaluate(&problem, &genes);
        assert!(!eval.is_feasible());
        assert!(problem.decode_point(&genes).is_none());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut config = quick_config();
        config.population_size = 7;
        assert!(ChipExplorer::new(config).is_err());

        let mut config = quick_config();
        config.grid_rows.clear();
        assert!(ChipDesignProblem::new(&config).is_err());

        let mut config = quick_config();
        config.buffer_kib = vec![0];
        assert!(ChipDesignProblem::new(&config).is_err());

        let mut config = quick_config();
        config.network = Network::new("empty", vec![]);
        assert!(ChipDesignProblem::new(&config).is_err());
    }

    #[test]
    fn exploration_finds_a_mutually_non_dominated_front() {
        let frontier = ChipExplorer::new(quick_config())
            .unwrap()
            .explore()
            .unwrap();
        assert!(!frontier.is_empty());
        assert!(frontier.evaluations > 0);
        for a in frontier.iter() {
            for b in frontier.iter() {
                if a != b {
                    assert!(!dominates(&a.objective_vector(), &b.objective_vector()));
                }
            }
        }
    }

    #[test]
    fn exploration_is_deterministic_per_seed() {
        let explorer = ChipExplorer::new(quick_config()).unwrap();
        let a = explorer.explore().unwrap();
        let b = explorer.explore().unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.evaluations, b.evaluations);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.objective_vector(), y.objective_vector());
        }
    }

    #[test]
    fn exploration_spans_multiple_grid_sizes() {
        let frontier = ChipExplorer::new(quick_config())
            .unwrap()
            .explore()
            .unwrap();
        let grid_sizes: std::collections::BTreeSet<usize> =
            frontier.iter().map(|p| p.chip.grid.num_macros()).collect();
        assert!(
            grid_sizes.len() >= 2,
            "frontier should trade throughput against area: {grid_sizes:?}"
        );
    }

    #[test]
    fn best_by_selects_the_extreme() {
        let frontier = ChipExplorer::new(quick_config())
            .unwrap()
            .explore()
            .unwrap();
        let best = frontier
            .best_by(|p| p.metrics.throughput_tops)
            .unwrap()
            .metrics
            .throughput_tops;
        for p in frontier.iter() {
            assert!(p.metrics.throughput_tops <= best + 1e-12);
        }
    }
}
