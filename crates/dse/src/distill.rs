//! User distillation of the Pareto-frontier set (Figure 4, "User
//! Distillation").
//!
//! After the automatic exploration, the user removes solutions that do not
//! meet the application's requirements — e.g. a transformer workload needs
//! high SNR, a low-power CNN accelerator caps the energy per MAC.  The
//! distilled set is what proceeds to netlist generation and layout.

use crate::solution::DesignPoint;

/// Application requirements used to filter the frontier.  `None` means "no
/// constraint on this metric".
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UserRequirements {
    /// Minimum acceptable SNR in dB.
    pub min_snr_db: Option<f64>,
    /// Minimum acceptable throughput in TOPS.
    pub min_throughput_tops: Option<f64>,
    /// Maximum acceptable energy per MAC in fJ.
    pub max_energy_per_mac_fj: Option<f64>,
    /// Minimum acceptable energy efficiency in TOPS/W.
    pub min_tops_per_watt: Option<f64>,
    /// Maximum acceptable area per bit in F².
    pub max_area_f2_per_bit: Option<f64>,
}

impl UserRequirements {
    /// No requirements: the distillation keeps everything.
    pub fn none() -> Self {
        Self::default()
    }

    /// A high-accuracy profile (e.g. transformer / LLM inference): demands
    /// SNR and throughput, tolerates area and energy.
    pub fn high_accuracy() -> Self {
        Self {
            min_snr_db: Some(25.0),
            min_throughput_tops: Some(0.3),
            ..Self::default()
        }
    }

    /// An energy-first edge profile (e.g. always-on CNN keyword spotting).
    pub fn low_power() -> Self {
        Self {
            min_tops_per_watt: Some(300.0),
            max_area_f2_per_bit: Some(3500.0),
            ..Self::default()
        }
    }

    /// A throughput-first profile (e.g. high-frame-rate vision).
    pub fn high_throughput() -> Self {
        Self {
            min_throughput_tops: Some(1.5),
            ..Self::default()
        }
    }

    /// Returns `true` when a design point satisfies every requirement.
    pub fn accepts(&self, point: &DesignPoint) -> bool {
        let m = &point.metrics;
        if let Some(min) = self.min_snr_db {
            if m.snr_db < min {
                return false;
            }
        }
        if let Some(min) = self.min_throughput_tops {
            if m.throughput_tops < min {
                return false;
            }
        }
        if let Some(max) = self.max_energy_per_mac_fj {
            if m.energy_per_mac_fj > max {
                return false;
            }
        }
        if let Some(min) = self.min_tops_per_watt {
            if m.tops_per_watt < min {
                return false;
            }
        }
        if let Some(max) = self.max_area_f2_per_bit {
            if m.area_f2_per_bit > max {
                return false;
            }
        }
        true
    }

    /// Filters a frontier, keeping only the accepted points.
    pub fn distill(&self, points: &[DesignPoint]) -> Vec<DesignPoint> {
        points.iter().copied().filter(|p| self.accepts(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_arch::AcimSpec;
    use acim_model::{evaluate, ModelParams};

    fn point(h: usize, w: usize, l: usize, b: u32) -> DesignPoint {
        let spec = AcimSpec::from_dimensions(h, w, l, b).unwrap();
        DesignPoint::new(spec, evaluate(&spec, &ModelParams::s28_default()).unwrap())
    }

    fn sample_frontier() -> Vec<DesignPoint> {
        vec![
            point(128, 128, 2, 3), // high throughput
            point(128, 128, 8, 3), // balanced
            point(512, 32, 2, 8),  // high SNR, power hungry
            point(1024, 16, 2, 2), // ultra efficient, low SNR
        ]
    }

    #[test]
    fn no_requirements_keeps_everything() {
        let frontier = sample_frontier();
        assert_eq!(
            UserRequirements::none().distill(&frontier).len(),
            frontier.len()
        );
    }

    #[test]
    fn high_accuracy_prefers_high_snr_points() {
        let frontier = sample_frontier();
        let kept = UserRequirements::high_accuracy().distill(&frontier);
        assert!(!kept.is_empty());
        for p in &kept {
            assert!(p.metrics.snr_db >= 25.0);
            assert!(p.metrics.throughput_tops >= 0.3);
        }
        // The ultra-efficient low-SNR point must be rejected.
        assert!(kept.iter().all(|p| p.spec.adc_bits() > 2));
    }

    #[test]
    fn low_power_prefers_efficient_points() {
        let frontier = sample_frontier();
        let kept = UserRequirements::low_power().distill(&frontier);
        for p in &kept {
            assert!(p.metrics.tops_per_watt >= 300.0);
            assert!(p.metrics.area_f2_per_bit <= 3500.0);
        }
        // The B=8 design cannot meet 300 TOPS/W.
        assert!(kept.iter().all(|p| p.spec.adc_bits() < 8));
    }

    #[test]
    fn high_throughput_keeps_only_fast_designs() {
        let frontier = sample_frontier();
        let kept = UserRequirements::high_throughput().distill(&frontier);
        assert!(!kept.is_empty());
        for p in &kept {
            assert!(p.metrics.throughput_tops >= 1.5);
        }
    }

    #[test]
    fn impossible_requirements_yield_empty_set() {
        let frontier = sample_frontier();
        let requirements = UserRequirements {
            min_snr_db: Some(90.0),
            ..UserRequirements::default()
        };
        assert!(requirements.distill(&frontier).is_empty());
    }

    #[test]
    fn individual_bounds_are_respected() {
        let p = point(128, 128, 8, 3);
        let accepts_energy = UserRequirements {
            max_energy_per_mac_fj: Some(p.metrics.energy_per_mac_fj + 1.0),
            ..UserRequirements::default()
        };
        let rejects_energy = UserRequirements {
            max_energy_per_mac_fj: Some(p.metrics.energy_per_mac_fj - 1.0),
            ..UserRequirements::default()
        };
        assert!(accepts_energy.accepts(&p));
        assert!(!rejects_energy.accepts(&p));
    }
}
