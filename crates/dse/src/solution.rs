//! Design points: a specification plus its estimated metrics.

use std::fmt;

use acim_arch::AcimSpec;
use acim_model::DesignMetrics;

/// One explored design: the (H, W, L, B_ADC) specification and the four
/// estimated figures of merit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// The validated specification.
    pub spec: AcimSpec,
    /// The estimated metrics (analytic model).
    pub metrics: DesignMetrics,
}

impl DesignPoint {
    /// Creates a design point.
    pub fn new(spec: AcimSpec, metrics: DesignMetrics) -> Self {
        Self { spec, metrics }
    }

    /// Objective vector `[−SNR, −T, E, A]` (Equation 12).
    pub fn objective_vector(&self) -> Vec<f64> {
        self.metrics.objective_vector()
    }

    /// CSV header matching [`DesignPoint::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "array_size,height,width,local_array,adc_bits,snr_db,throughput_tops,energy_per_mac_fj,tops_per_watt,area_f2_per_bit"
    }

    /// Serialises the point as one CSV row (used by the figure-reproduction
    /// binaries).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{:.3},{:.4},{:.3},{:.1},{:.1}",
            self.spec.array_size(),
            self.spec.height(),
            self.spec.width(),
            self.spec.local_array(),
            self.spec.adc_bits(),
            self.metrics.snr_db,
            self.metrics.throughput_tops,
            self.metrics.energy_per_mac_fj,
            self.metrics.tops_per_watt,
            self.metrics.area_f2_per_bit,
        )
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} SNR={:.1}dB T={:.3}TOPS E={:.2}fJ ({:.0}TOPS/W) A={:.0}F2/bit",
            self.spec,
            self.metrics.snr_db,
            self.metrics.throughput_tops,
            self.metrics.energy_per_mac_fj,
            self.metrics.tops_per_watt,
            self.metrics.area_f2_per_bit
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_model::{evaluate, ModelParams};

    fn point() -> DesignPoint {
        let spec = AcimSpec::from_dimensions(128, 128, 8, 3).unwrap();
        let metrics = evaluate(&spec, &ModelParams::s28_default()).unwrap();
        DesignPoint::new(spec, metrics)
    }

    #[test]
    fn csv_row_has_same_field_count_as_header() {
        let p = point();
        let header_fields = DesignPoint::csv_header().split(',').count();
        let row_fields = p.to_csv_row().split(',').count();
        assert_eq!(header_fields, row_fields);
        assert_eq!(header_fields, 10);
    }

    #[test]
    fn display_mentions_the_key_metrics() {
        let text = point().to_string();
        assert!(text.contains("TOPS"));
        assert!(text.contains("dB"));
        assert!(text.contains("F2/bit"));
    }

    #[test]
    fn objective_vector_delegates_to_metrics() {
        let p = point();
        assert_eq!(p.objective_vector(), p.metrics.objective_vector());
    }
}
