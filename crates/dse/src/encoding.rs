//! Genome encoding for the (H, W, L, B_ADC) design space.
//!
//! The discrete design space is mapped onto a three-gene real-coded genome
//! in `[0, 1]³`:
//!
//! * gene 0 selects the array height `H` from the power-of-two divisors of
//!   the array size (which fixes `W = ArraySize / H`),
//! * gene 1 selects the local-array size `L` from the powers of two in
//!   `[2, 32]`,
//! * gene 2 selects the ADC precision `B_ADC ∈ [1, 8]`.
//!
//! Candidates decoded this way always satisfy `H · W = ArraySize`; the
//! remaining constraints (`L | H`, `H ≥ L`, `H/L ≥ 2^B`) may be violated and
//! are handled by NSGA-II's constrained-domination (the violation magnitude
//! is returned alongside the decoded candidate).

use acim_arch::spec::{MAX_ADC_BITS, MAX_LOCAL_ARRAY, MIN_LOCAL_ARRAY};
use acim_arch::{AcimSpec, ArchError};

use crate::error::DseError;

/// A decoded (possibly infeasible) candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Array height.
    pub height: usize,
    /// Array width.
    pub width: usize,
    /// Local-array size.
    pub local_array: usize,
    /// ADC precision in bits.
    pub adc_bits: u32,
}

impl Candidate {
    /// Attempts to turn the candidate into a validated specification,
    /// returning the constraint-violation magnitude on failure.
    pub fn into_spec(self, array_size: usize) -> Result<AcimSpec, f64> {
        match AcimSpec::new(
            array_size,
            self.height,
            self.width,
            self.local_array,
            self.adc_bits,
        ) {
            Ok(spec) => Ok(spec),
            Err(ArchError::InvalidSpec { .. }) => Err(self.violation(array_size)),
            Err(_) => Err(1.0),
        }
    }

    /// Quantifies how badly the candidate violates the architectural
    /// constraints (0 = feasible).  Normalised so each violated constraint
    /// contributes on the order of 1.
    pub fn violation(self, array_size: usize) -> f64 {
        let mut violation = 0.0;
        if self.height * self.width != array_size {
            violation += 1.0;
        }
        if self.height < self.local_array {
            violation += 1.0 + (self.local_array - self.height) as f64 / self.local_array as f64;
        }
        if self.local_array == 0 || !self.height.is_multiple_of(self.local_array.max(1)) {
            violation += 1.0;
        }
        if let Some(caps) = self.height.checked_div(self.local_array) {
            let needed = 1usize << self.adc_bits;
            if caps < needed {
                violation += 1.0 + (needed - caps) as f64 / needed as f64;
            }
        }
        violation
    }
}

/// The genome ↔ candidate mapping for one array size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignEncoding {
    array_size: usize,
    /// Allowed heights (power-of-two divisors of the array size).
    heights: Vec<usize>,
    /// Allowed local-array sizes.
    local_sizes: Vec<usize>,
    /// Allowed ADC precisions.
    adc_bits: Vec<u32>,
}

impl DesignEncoding {
    /// Builds the encoding for an array size, restricting heights to
    /// power-of-two divisors in `[min_height, max_height]`.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::InvalidConfig`] when no valid height exists.
    pub fn new(array_size: usize, min_height: usize, max_height: usize) -> Result<Self, DseError> {
        let heights = AcimSpec::factorizations(array_size, min_height, max_height)
            .into_iter()
            .map(|(h, _)| h)
            .collect::<Vec<_>>();
        if heights.is_empty() {
            return Err(DseError::InvalidConfig(format!(
                "array size {array_size} has no power-of-two height in [{min_height}, {max_height}]"
            )));
        }
        let local_sizes: Vec<usize> = (1..=5)
            .map(|k| 1usize << k)
            .filter(|&l| (MIN_LOCAL_ARRAY..=MAX_LOCAL_ARRAY).contains(&l))
            .collect();
        let adc_bits: Vec<u32> = (1..=MAX_ADC_BITS).collect();
        Ok(Self {
            array_size,
            heights,
            local_sizes,
            adc_bits,
        })
    }

    /// The array size this encoding targets.
    pub fn array_size(&self) -> usize {
        self.array_size
    }

    /// Number of genes (always 3: height, local size, ADC bits).
    pub fn num_genes(&self) -> usize {
        3
    }

    /// The candidate heights.
    pub fn heights(&self) -> &[usize] {
        &self.heights
    }

    /// The candidate local-array sizes.
    pub fn local_sizes(&self) -> &[usize] {
        &self.local_sizes
    }

    /// The candidate ADC precisions.
    pub fn adc_bits(&self) -> &[u32] {
        &self.adc_bits
    }

    /// Decodes a genome into a candidate.
    ///
    /// # Panics
    ///
    /// Panics if the genome does not have exactly [`Self::num_genes`] genes.
    pub fn decode(&self, genes: &[f64]) -> Candidate {
        assert_eq!(genes.len(), self.num_genes(), "genome length mismatch");
        let height = self.heights[index_from_gene(genes[0], self.heights.len())];
        let local_array = self.local_sizes[index_from_gene(genes[1], self.local_sizes.len())];
        let adc_bits = self.adc_bits[index_from_gene(genes[2], self.adc_bits.len())];
        Candidate {
            height,
            width: self.array_size / height,
            local_array,
            adc_bits,
        }
    }

    /// The bucket indices a genome decodes to — the canonical cache key
    /// of the encoding: two genomes with equal indices decode to the same
    /// candidate, hence the same evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the genome does not have exactly [`Self::num_genes`] genes.
    pub fn bucket_indices(&self, genes: &[f64]) -> Vec<i64> {
        assert_eq!(genes.len(), self.num_genes(), "genome length mismatch");
        vec![
            index_from_gene(genes[0], self.heights.len()) as i64,
            index_from_gene(genes[1], self.local_sizes.len()) as i64,
            index_from_gene(genes[2], self.adc_bits.len()) as i64,
        ]
    }

    /// Encodes a candidate back into gene-space (centre of the bucket);
    /// returns `None` when a value is not part of the encoding.
    pub fn encode(&self, candidate: &Candidate) -> Option<Vec<f64>> {
        let hi = self.heights.iter().position(|&h| h == candidate.height)?;
        let li = self
            .local_sizes
            .iter()
            .position(|&l| l == candidate.local_array)?;
        let bi = self
            .adc_bits
            .iter()
            .position(|&b| b == candidate.adc_bits)?;
        Some(vec![
            gene_from_index(hi, self.heights.len()),
            gene_from_index(li, self.local_sizes.len()),
            gene_from_index(bi, self.adc_bits.len()),
        ])
    }
}

/// Maps a gene in `[0, 1]` to a bucket index in `[0, count)`.
pub(crate) fn index_from_gene(gene: f64, count: usize) -> usize {
    ((gene.clamp(0.0, 1.0) * count as f64) as usize).min(count - 1)
}

/// Centre of bucket `index` in gene space.
pub(crate) fn gene_from_index(index: usize, count: usize) -> f64 {
    (index as f64 + 0.5) / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoding() -> DesignEncoding {
        DesignEncoding::new(16 * 1024, 16, 1024).unwrap()
    }

    #[test]
    fn heights_are_power_of_two_divisors() {
        let e = encoding();
        assert!(e.heights().contains(&128));
        assert!(e.heights().contains(&64));
        for &h in e.heights() {
            assert!(h.is_power_of_two());
            assert_eq!((16 * 1024) % h, 0);
        }
        assert_eq!(e.num_genes(), 3);
        assert_eq!(e.array_size(), 16 * 1024);
    }

    #[test]
    fn local_sizes_and_bits_cover_papers_bounds() {
        let e = encoding();
        assert_eq!(e.local_sizes(), &[2, 4, 8, 16, 32]);
        assert_eq!(e.adc_bits(), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn decode_covers_all_buckets_and_is_in_range() {
        let e = encoding();
        for step in 0..=20 {
            let g = f64::from(step) / 20.0;
            let c = e.decode(&[g, g, g]);
            assert!(e.heights().contains(&c.height));
            assert!(e.local_sizes().contains(&c.local_array));
            assert!(e.adc_bits().contains(&c.adc_bits));
            assert_eq!(c.height * c.width, 16 * 1024);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let e = encoding();
        let candidate = Candidate {
            height: 128,
            width: 128,
            local_array: 8,
            adc_bits: 3,
        };
        let genes = e.encode(&candidate).expect("valid candidate encodes");
        assert_eq!(e.decode(&genes), candidate);
    }

    #[test]
    fn encode_rejects_values_outside_the_space() {
        let e = encoding();
        let candidate = Candidate {
            height: 100, // not a power-of-two divisor
            width: 164,
            local_array: 8,
            adc_bits: 3,
        };
        assert!(e.encode(&candidate).is_none());
    }

    #[test]
    fn feasible_candidate_converts_to_spec() {
        let c = Candidate {
            height: 128,
            width: 128,
            local_array: 8,
            adc_bits: 3,
        };
        assert!(c.into_spec(16 * 1024).is_ok());
        assert_eq!(c.violation(16 * 1024), 0.0);
    }

    #[test]
    fn infeasible_candidate_reports_graded_violation() {
        // H/L = 4 but B = 8 needs 256 capacitors.
        let c = Candidate {
            height: 128,
            width: 128,
            local_array: 32,
            adc_bits: 8,
        };
        let violation = c.into_spec(16 * 1024).unwrap_err();
        assert!(violation > 1.0);
        // A milder violation (B = 3 needs 8 > 4 caps) scores lower.
        let milder = Candidate {
            height: 128,
            width: 128,
            local_array: 32,
            adc_bits: 3,
        };
        assert!(milder.violation(16 * 1024) < violation);
        assert!(milder.violation(16 * 1024) > 0.0);
    }

    #[test]
    fn empty_height_range_is_rejected() {
        // 12 000 is not a power-of-two multiple in the allowed band.
        assert!(DesignEncoding::new(10_000, 1024, 2048).is_err());
    }

    #[test]
    fn gene_bucket_helpers_are_inverse() {
        for count in [1usize, 3, 8, 17] {
            for index in 0..count {
                assert_eq!(index_from_gene(gene_from_index(index, count), count), index);
            }
        }
        assert_eq!(index_from_gene(1.0, 5), 4);
        assert_eq!(index_from_gene(0.0, 5), 0);
    }
}
