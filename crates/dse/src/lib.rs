//! # acim-dse
//!
//! The MOGA-based design-space explorer of EasyACIM (Section 3.2).
//!
//! Given a user-defined array size, the explorer searches the
//! (H, W, L, B_ADC) space for the Pareto frontier of the four objectives
//! `[−SNR, −throughput, energy, area]` (Equation 12), subject to
//!
//! * `H · W = ArraySize`,
//! * `H ≥ L`, `L | H`, `2 ≤ L ≤ 32`,
//! * `H / L ≥ 2^B_ADC`, `1 ≤ B_ADC ≤ 8`.
//!
//! The pieces:
//!
//! * [`encoding`] — maps a real-coded NSGA-II genome to a candidate
//!   (H, W, L, B_ADC) tuple,
//! * [`problem`] — the [`acim_moga::Problem`] implementation that evaluates
//!   candidates with the analytic model of `acim-model`,
//! * [`explorer`] — runs NSGA-II and collects every feasible non-dominated
//!   design it ever evaluates into a [`ParetoFrontierSet`],
//! * [`enumerate`] — exhaustive enumeration of the (small) discrete space,
//!   used as ground truth in the ablation benchmarks,
//! * [`distill`] — the "user distillation" step of Figure 4: filtering the
//!   frontier with application requirements,
//! * [`chip`] — the chip-level co-exploration problem (macro shape ×
//!   macro count × buffer sizing) built on `acim-chip`,
//! * [`sweep`] — the parameter sweeps behind Figure 9.
//!
//! # Example
//!
//! ```
//! use acim_dse::{DseConfig, DesignSpaceExplorer};
//!
//! # fn main() -> Result<(), acim_dse::DseError> {
//! let config = DseConfig {
//!     array_size: 16 * 1024,
//!     population_size: 40,
//!     generations: 20,
//!     ..Default::default()
//! };
//! let explorer = DesignSpaceExplorer::new(config)?;
//! let frontier = explorer.explore()?;
//! assert!(!frontier.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chip;
pub mod distill;
pub mod encoding;
pub mod enumerate;
pub mod error;
pub mod explorer;
pub mod problem;
pub mod robustness;
pub mod solution;
pub mod sweep;

pub use acim_moga::{
    CacheStats, CacheStore, CachedProblem, CancelReason, CancelToken, EvalStats, PoolStats,
};
pub use chip::{
    ChipDesignPoint, ChipDesignProblem, ChipDseConfig, ChipExplorer, ChipGenomeKeyer, ChipParetoSet,
};
pub use distill::UserRequirements;
pub use encoding::DesignEncoding;
pub use enumerate::enumerate_design_space;
pub use error::DseError;
pub use explorer::{DesignSpaceExplorer, DseConfig, ExploreOptions, ParetoFrontierSet};
pub use problem::AcimDesignProblem;
pub use robustness::{RobustnessConfig, RobustnessSweep};
pub use solution::DesignPoint;
pub use sweep::{sweep_by_array_size, sweep_by_parameter, SweepSeries};
