//! Parameter sweeps for the design-space figures (Figure 9).
//!
//! Figure 9 shows the whole design space as scatter plots in two metric
//! planes — (throughput, SNR) and (area, energy efficiency) — with the
//! points grouped by array size (panels a, b), by `H` (c, d), by `L` (e, f)
//! and by `B_ADC` (g, h).  This module produces exactly those groupings as
//! labelled series of design points.

use acim_model::ModelParams;

use crate::enumerate::enumerate_design_space;
use crate::error::DseError;
use crate::solution::DesignPoint;

/// Which design parameter a sweep groups by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepParameter {
    /// Group by array height `H` (Figure 9 c, d).
    Height,
    /// Group by local-array size `L` (Figure 9 e, f).
    LocalArray,
    /// Group by ADC precision `B_ADC` (Figure 9 g, h).
    AdcBits,
}

impl SweepParameter {
    /// The grouping key of a design point under this parameter.
    pub fn key(self, point: &DesignPoint) -> usize {
        match self {
            SweepParameter::Height => point.spec.height(),
            SweepParameter::LocalArray => point.spec.local_array(),
            SweepParameter::AdcBits => point.spec.adc_bits() as usize,
        }
    }

    /// Human-readable label used in CSV/report output.
    pub fn label(self) -> &'static str {
        match self {
            SweepParameter::Height => "H",
            SweepParameter::LocalArray => "L",
            SweepParameter::AdcBits => "B_ADC",
        }
    }
}

/// One labelled series of a sweep: every design point sharing the same value
/// of the grouping key.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSeries {
    /// Name of the grouping parameter (`"H"`, `"L"`, `"B_ADC"`,
    /// `"array_size"`).
    pub parameter: String,
    /// Value of the grouping key for this series.
    pub value: usize,
    /// The design points of the series.
    pub points: Vec<DesignPoint>,
}

impl SweepSeries {
    /// Mean energy efficiency of the series in TOPS/W.
    pub fn mean_tops_per_watt(&self) -> f64 {
        mean(self.points.iter().map(|p| p.metrics.tops_per_watt))
    }

    /// Mean SNR of the series in dB.
    pub fn mean_snr_db(&self) -> f64 {
        mean(self.points.iter().map(|p| p.metrics.snr_db))
    }

    /// Maximum throughput of the series in TOPS.
    pub fn max_throughput_tops(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.metrics.throughput_tops)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum area of the series in F²/bit.
    pub fn min_area_f2_per_bit(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.metrics.area_f2_per_bit)
            .fold(f64::INFINITY, f64::min)
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let collected: Vec<f64> = values.collect();
    if collected.is_empty() {
        return f64::NAN;
    }
    collected.iter().sum::<f64>() / collected.len() as f64
}

/// Enumerates the design space of one array size and groups it by a design
/// parameter (Figure 9 panels c–h).
///
/// # Errors
///
/// Propagates [`DseError`] from the enumeration.
pub fn sweep_by_parameter(
    array_size: usize,
    parameter: SweepParameter,
    params: &ModelParams,
) -> Result<Vec<SweepSeries>, DseError> {
    let points = enumerate_design_space(array_size, 16, 1024, params)?;
    let mut keys: Vec<usize> = points.iter().map(|p| parameter.key(p)).collect();
    keys.sort_unstable();
    keys.dedup();
    Ok(keys
        .into_iter()
        .map(|value| SweepSeries {
            parameter: parameter.label().to_string(),
            value,
            points: points
                .iter()
                .copied()
                .filter(|p| parameter.key(p) == value)
                .collect(),
        })
        .collect())
}

/// Enumerates several array sizes and groups the combined space by array
/// size (Figure 9 panels a, b).
///
/// # Errors
///
/// Propagates [`DseError`] from the enumeration.
pub fn sweep_by_array_size(
    array_sizes: &[usize],
    params: &ModelParams,
) -> Result<Vec<SweepSeries>, DseError> {
    let mut series = Vec::with_capacity(array_sizes.len());
    for &array_size in array_sizes {
        let points = enumerate_design_space(array_size, 16, 1024, params)?;
        series.push(SweepSeries {
            parameter: "array_size".to_string(),
            value: array_size,
            points,
        });
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::s28_default()
    }

    #[test]
    fn sweep_by_l_reproduces_figure9ef_trend() {
        // Figure 9(e)(f): reducing L raises throughput and the SNR upper
        // bound but costs area.
        let series = sweep_by_parameter(16 * 1024, SweepParameter::LocalArray, &params()).unwrap();
        assert!(series.len() >= 3);
        let l2 = series.iter().find(|s| s.value == 2).unwrap();
        let l8 = series.iter().find(|s| s.value == 8).unwrap();
        assert!(l2.max_throughput_tops() > l8.max_throughput_tops());
        assert!(l2.min_area_f2_per_bit() > l8.min_area_f2_per_bit());
    }

    #[test]
    fn sweep_by_h_reproduces_figure9cd_trend() {
        // Figure 9(c)(d): a smaller H keeps the highest throughput reachable
        // (throughput depends on ArraySize/L, not on H directly) but caps the
        // achievable SNR (fewer capacitors bound B_ADC) and costs area.
        let series = sweep_by_parameter(16 * 1024, SweepParameter::Height, &params()).unwrap();
        let smallest = series.first().unwrap();
        let largest = series.last().unwrap();
        assert!(smallest.value < largest.value);
        assert!(smallest.max_throughput_tops() >= largest.max_throughput_tops());
        assert!(smallest.min_area_f2_per_bit() > largest.min_area_f2_per_bit());
        let max_snr = |s: &SweepSeries| {
            s.points
                .iter()
                .map(|p| p.metrics.snr_db)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        assert!(max_snr(smallest) < max_snr(largest));
    }

    #[test]
    fn sweep_by_b_reproduces_figure9gh_trend() {
        // Figure 9(g)(h): reducing B_ADC improves energy efficiency but
        // lowers SNR.
        let series = sweep_by_parameter(16 * 1024, SweepParameter::AdcBits, &params()).unwrap();
        let low = series.iter().find(|s| s.value == 2).unwrap();
        let high = series.iter().find(|s| s.value == 6).unwrap();
        assert!(low.mean_tops_per_watt() > high.mean_tops_per_watt());
        assert!(low.mean_snr_db() < high.mean_snr_db());
    }

    #[test]
    fn sweep_by_array_size_reproduces_figure9ab_trend() {
        // Figure 9(a)(b): larger arrays reach higher SNR and throughput,
        // smaller arrays prioritise energy efficiency and area.
        let sizes = [4 * 1024, 16 * 1024, 64 * 1024];
        let series = sweep_by_array_size(&sizes, &params()).unwrap();
        assert_eq!(series.len(), 3);
        let small = &series[0];
        let large = &series[2];
        assert!(large.max_throughput_tops() > small.max_throughput_tops());
        let best_snr = |s: &SweepSeries| {
            s.points
                .iter()
                .map(|p| p.metrics.snr_db)
                .fold(f64::NEG_INFINITY, f64::max)
        };
        assert!(best_snr(large) >= best_snr(small));
    }

    #[test]
    fn series_partition_the_space() {
        let series = sweep_by_parameter(16 * 1024, SweepParameter::AdcBits, &params()).unwrap();
        let total: usize = series.iter().map(|s| s.points.len()).sum();
        let all = enumerate_design_space(16 * 1024, 16, 1024, &params()).unwrap();
        assert_eq!(total, all.len());
        for s in &series {
            assert!(!s.points.is_empty());
            assert!(s
                .points
                .iter()
                .all(|p| p.spec.adc_bits() as usize == s.value));
        }
    }
}
