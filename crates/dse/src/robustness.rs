//! Monte-Carlo device-variation robustness: an optional SNR-yield
//! constraint for the chip design problem.
//!
//! Analog CIM accuracy rides on device parameters that vary die to die —
//! above all the capacitor matching behind the SNR model's `k3`/`C_o`
//! terms.  A chip that clears its accuracy target only at the nominal
//! corner is not a robust design point.  This module draws `N` seeded
//! perturbations of the [`ModelParams`] SNR corner, scores every
//! candidate chip's distinct macros through the hoisted batch kernel
//! ([`ModelInvariants::evaluate_batch`]) under each corner, and turns the
//! fraction of corners where the chip's worst macro still clears an SNR
//! floor — its **yield** — into an NSGA-II constraint violation.
//!
//! The sweep is deliberately cheap: the `N` perturbed invariants are
//! hoisted once per problem (not per genome), each chip contributes only
//! its *distinct* macro shapes to the batch, and the whole sweep is pure
//! arithmetic — deterministic per seed, thread-safe by `&self`.

use acim_chip::ChipSpec;
use acim_model::{ModelInvariants, ModelParams, SpecBatch};
use acim_tech::Femtofarad;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::DseError;

/// Configuration of the Monte-Carlo device-variation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessConfig {
    /// Number of perturbed parameter corners to draw.
    pub samples: usize,
    /// Relative half-width of the uniform perturbation applied to the SNR
    /// device parameters (`k3`, `C_o`): each corner scales them by
    /// `1 + sigma · u` with `u ~ U(−1, 1)`.
    pub sigma: f64,
    /// SNR floor a chip's worst macro must clear for a corner to count as
    /// a passing die.
    pub min_snr_db: f64,
    /// Required yield: the fraction of corners that must pass.  A chip
    /// with `yield < min_yield` becomes infeasible with violation
    /// `min_yield − yield`.
    pub min_yield: f64,
    /// RNG seed for the corner draws (the sweep is deterministic per
    /// seed).
    pub seed: u64,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        Self {
            samples: 32,
            sigma: 0.05,
            min_snr_db: 15.0,
            min_yield: 0.9,
            seed: 0xD1CE,
        }
    }
}

/// The hoisted sweep: `samples` perturbed [`ModelInvariants`], built once
/// per problem and shared (immutably) by every genome evaluation.
#[derive(Debug, Clone)]
pub struct RobustnessSweep {
    config: RobustnessConfig,
    corners: Vec<ModelInvariants>,
}

impl RobustnessSweep {
    /// Draws the perturbed corners from `params`.
    ///
    /// Only the SNR device terms (`k3`, `C_o`) are perturbed: they carry
    /// the capacitor-mismatch variation the yield question is about, and
    /// they are the only device parameters the analytic SNR (Equation 11)
    /// reads.  Timing/energy/area stay at the nominal corner so the yield
    /// constraint prunes accuracy-fragile chips without re-ranking the
    /// other objectives.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::InvalidConfig`] when the configuration is
    /// out of range or a perturbed corner fails model validation.
    pub fn new(config: RobustnessConfig, params: &ModelParams) -> Result<Self, DseError> {
        if config.samples == 0 {
            return Err(DseError::InvalidConfig(
                "robustness samples must be at least 1".into(),
            ));
        }
        if !config.sigma.is_finite() || config.sigma < 0.0 || config.sigma >= 1.0 {
            return Err(DseError::InvalidConfig(
                "robustness sigma must be finite and in [0, 1)".into(),
            ));
        }
        if !config.min_yield.is_finite() || !(0.0..=1.0).contains(&config.min_yield) {
            return Err(DseError::InvalidConfig(
                "robustness min_yield must be in [0, 1]".into(),
            ));
        }
        if !config.min_snr_db.is_finite() {
            return Err(DseError::InvalidConfig(
                "robustness min_snr_db must be finite".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut corners = Vec::with_capacity(config.samples);
        for _ in 0..config.samples {
            let mut corner = *params;
            let k3_u: f64 = rng.gen_range(-1.0..1.0);
            let co_u: f64 = rng.gen_range(-1.0..1.0);
            corner.snr.k3 = params.snr.k3 * (1.0 + config.sigma * k3_u);
            corner.snr.c_o = Femtofarad::new(params.snr.c_o.value() * (1.0 + config.sigma * co_u));
            corners.push(
                ModelInvariants::new(&corner)
                    .map_err(|e| DseError::InvalidConfig(format!("robustness corner: {e}")))?,
            );
        }
        Ok(Self { config, corners })
    }

    /// The sweep configuration.
    pub fn config(&self) -> &RobustnessConfig {
        &self.config
    }

    /// The fraction of corners where `chip`'s worst distinct macro clears
    /// the SNR floor, in `[0, 1]`.
    pub fn yield_for(&self, chip: &ChipSpec) -> f64 {
        let distinct = chip.grid.distinct_specs();
        let mut batch = SpecBatch::with_capacity(distinct.len());
        for spec in distinct {
            batch.push_spec(spec);
        }
        let mut out = Vec::with_capacity(batch.len());
        let mut passes = 0usize;
        for corner in &self.corners {
            corner.evaluate_batch(&batch, &mut out);
            let worst = out.iter().map(|m| m.snr_db).fold(f64::INFINITY, f64::min);
            if worst >= self.config.min_snr_db {
                passes += 1;
            }
        }
        passes as f64 / self.corners.len() as f64
    }

    /// The constraint violation of `chip`: `max(0, min_yield − yield)`.
    /// Zero for chips that meet the yield target.
    pub fn violation(&self, chip: &ChipSpec) -> f64 {
        (self.config.min_yield - self.yield_for(chip)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_arch::AcimSpec;
    use acim_chip::MacroGrid;

    fn chip(adc_bits: u32) -> ChipSpec {
        ChipSpec::new(
            MacroGrid::uniform(
                2,
                2,
                AcimSpec::from_dimensions(128, 32, 4, adc_bits).unwrap(),
            )
            .unwrap(),
            64,
        )
        .unwrap()
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let params = ModelParams::s28_default();
        let a = RobustnessSweep::new(RobustnessConfig::default(), &params).unwrap();
        let b = RobustnessSweep::new(RobustnessConfig::default(), &params).unwrap();
        let c = RobustnessSweep::new(
            RobustnessConfig {
                seed: 7,
                ..Default::default()
            },
            &params,
        )
        .unwrap();
        let chip = chip(4);
        assert_eq!(a.yield_for(&chip).to_bits(), b.yield_for(&chip).to_bits());
        // A different seed draws different corners; the yield may or may
        // not move, but the sweep itself must differ.
        assert_eq!(a.corners.len(), c.corners.len());
    }

    #[test]
    fn generous_floor_passes_and_brutal_floor_fails() {
        let params = ModelParams::s28_default();
        let easy = RobustnessSweep::new(
            RobustnessConfig {
                min_snr_db: -100.0,
                ..Default::default()
            },
            &params,
        )
        .unwrap();
        assert_eq!(easy.yield_for(&chip(4)), 1.0);
        assert_eq!(easy.violation(&chip(4)), 0.0);

        let brutal = RobustnessSweep::new(
            RobustnessConfig {
                min_snr_db: 1000.0,
                ..Default::default()
            },
            &params,
        )
        .unwrap();
        assert_eq!(brutal.yield_for(&chip(4)), 0.0);
        assert!(brutal.violation(&chip(4)) > 0.0);
    }

    #[test]
    fn higher_precision_macros_yield_better_near_the_edge() {
        let params = ModelParams::s28_default();
        // Pick a floor between the 2-bit and 5-bit nominal SNRs so the
        // sweep separates them.
        let nominal = ModelInvariants::new(&params).unwrap();
        let low = nominal.evaluate_spec(chip(2).grid.spec(0)).snr_db;
        let high = nominal.evaluate_spec(chip(5).grid.spec(0)).snr_db;
        assert!(high > low);
        let sweep = RobustnessSweep::new(
            RobustnessConfig {
                min_snr_db: (low + high) / 2.0,
                samples: 64,
                sigma: 0.2,
                ..Default::default()
            },
            &params,
        )
        .unwrap();
        assert!(sweep.yield_for(&chip(5)) > sweep.yield_for(&chip(2)));
    }

    #[test]
    fn invalid_configs_rejected() {
        let params = ModelParams::s28_default();
        for config in [
            RobustnessConfig {
                samples: 0,
                ..Default::default()
            },
            RobustnessConfig {
                sigma: -0.1,
                ..Default::default()
            },
            RobustnessConfig {
                sigma: 1.0,
                ..Default::default()
            },
            RobustnessConfig {
                min_yield: 1.5,
                ..Default::default()
            },
            RobustnessConfig {
                min_snr_db: f64::NAN,
                ..Default::default()
            },
        ] {
            assert!(RobustnessSweep::new(config, &params).is_err(), "{config:?}");
        }
    }
}
