//! Error type of the design-space explorer.

use std::error::Error;
use std::fmt;

use acim_arch::ArchError;
use acim_model::ModelError;

/// Errors produced by the design-space explorer.
#[derive(Debug, Clone, PartialEq)]
pub enum DseError {
    /// The exploration configuration is invalid (e.g. array size with no
    /// valid factorisation, zero population, …).
    InvalidConfig(String),
    /// No feasible design exists for the requested array size and bounds.
    EmptyDesignSpace {
        /// The requested array size.
        array_size: usize,
    },
    /// An error bubbled up from the estimation model.
    Model(ModelError),
    /// An error bubbled up from the architecture crate.
    Arch(ArchError),
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::InvalidConfig(reason) => write!(f, "invalid DSE configuration: {reason}"),
            DseError::EmptyDesignSpace { array_size } => {
                write!(
                    f,
                    "no feasible ACIM design exists for array size {array_size}"
                )
            }
            DseError::Model(err) => write!(f, "estimation model error: {err}"),
            DseError::Arch(err) => write!(f, "architecture error: {err}"),
        }
    }
}

impl Error for DseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DseError::Model(err) => Some(err),
            DseError::Arch(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ModelError> for DseError {
    fn from(err: ModelError) -> Self {
        DseError::Model(err)
    }
}

impl From<ArchError> for DseError {
    fn from(err: ArchError) -> Self {
        DseError::Arch(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: DseError = ModelError::InsufficientData("x".into()).into();
        assert!(e.to_string().contains("estimation model error"));
        let e: DseError = ArchError::invalid_spec("c", "d").into();
        assert!(e.to_string().contains("architecture error"));
        assert!(DseError::EmptyDesignSpace { array_size: 77 }
            .to_string()
            .contains("77"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DseError>();
    }
}
