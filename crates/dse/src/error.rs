//! Error type of the design-space explorer.

use std::error::Error;
use std::fmt;

use acim_arch::ArchError;
use acim_model::ModelError;
use acim_moga::CancelReason;

/// Errors produced by the design-space explorer.
#[derive(Debug, Clone, PartialEq)]
pub enum DseError {
    /// The exploration configuration is invalid (e.g. array size with no
    /// valid factorisation, zero population, …).
    InvalidConfig(String),
    /// No feasible design exists for the requested array size and bounds.
    EmptyDesignSpace {
        /// The requested array size.
        array_size: usize,
    },
    /// An error bubbled up from the estimation model.
    Model(ModelError),
    /// An error bubbled up from the architecture crate.
    Arch(ArchError),
    /// The run was cancelled (`CancelToken::cancel`) and stopped
    /// cooperatively at a generation boundary, carrying its partial
    /// progress.
    Cancelled {
        /// Generations fully executed before the run stopped.
        completed: usize,
        /// Generations the run was configured for.
        total: usize,
    },
    /// The run's deadline expired before it finished; it stopped
    /// cooperatively at a generation boundary, carrying its partial
    /// progress.
    DeadlineExceeded {
        /// Generations fully executed before the run stopped.
        completed: usize,
        /// Generations the run was configured for.
        total: usize,
    },
}

impl DseError {
    /// Maps a [`CancelReason`] to the matching error variant, tagging it
    /// with the run's partial progress.
    pub fn from_cancel(reason: CancelReason, completed: usize, total: usize) -> Self {
        match reason {
            CancelReason::Cancelled => DseError::Cancelled { completed, total },
            CancelReason::DeadlineExceeded => DseError::DeadlineExceeded { completed, total },
        }
    }
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::InvalidConfig(reason) => write!(f, "invalid DSE configuration: {reason}"),
            DseError::EmptyDesignSpace { array_size } => {
                write!(
                    f,
                    "no feasible ACIM design exists for array size {array_size}"
                )
            }
            DseError::Model(err) => write!(f, "estimation model error: {err}"),
            DseError::Arch(err) => write!(f, "architecture error: {err}"),
            DseError::Cancelled { completed, total } => {
                write!(
                    f,
                    "exploration cancelled after {completed}/{total} generations"
                )
            }
            DseError::DeadlineExceeded { completed, total } => {
                write!(
                    f,
                    "exploration deadline exceeded after {completed}/{total} generations"
                )
            }
        }
    }
}

impl Error for DseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DseError::Model(err) => Some(err),
            DseError::Arch(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ModelError> for DseError {
    fn from(err: ModelError) -> Self {
        DseError::Model(err)
    }
}

impl From<ArchError> for DseError {
    fn from(err: ArchError) -> Self {
        DseError::Arch(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: DseError = ModelError::InsufficientData("x".into()).into();
        assert!(e.to_string().contains("estimation model error"));
        let e: DseError = ArchError::invalid_spec("c", "d").into();
        assert!(e.to_string().contains("architecture error"));
        assert!(DseError::EmptyDesignSpace { array_size: 77 }
            .to_string()
            .contains("77"));
    }

    #[test]
    fn cancel_reasons_map_to_typed_variants_with_progress() {
        let cancelled = DseError::from_cancel(CancelReason::Cancelled, 3, 10);
        assert_eq!(
            cancelled,
            DseError::Cancelled {
                completed: 3,
                total: 10
            }
        );
        assert!(cancelled.to_string().contains("3/10"));
        let late = DseError::from_cancel(CancelReason::DeadlineExceeded, 9, 10);
        assert_eq!(
            late,
            DseError::DeadlineExceeded {
                completed: 9,
                total: 10
            }
        );
        assert!(late.to_string().contains("deadline"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DseError>();
    }
}
