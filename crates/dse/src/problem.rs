//! The ACIM design problem as an [`acim_moga::Problem`].

use acim_arch::AcimSpec;
use acim_chip::{MacroCacheClient, MacroMetrics, MacroMetricsCache};
use acim_model::{DesignMetrics, ModelInvariants, ModelParams, SpecBatch, SpecKey};
use acim_moga::{CacheStats, Evaluation, Problem};
use rayon::prelude::*;

use crate::encoding::DesignEncoding;
use crate::error::DseError;
use crate::solution::DesignPoint;

/// The four-objective, constrained ACIM parameter-selection problem of
/// Equation 12, evaluated with the analytic estimation model.
///
/// With [`AcimDesignProblem::with_macro_cache`] the per-spec metric
/// derivation is routed through the shared macro-metric reuse layer
/// (`acim_chip::MacroMetricsCache`), so macro explorations, chip
/// explorations and decode passes over the same [`ModelParams`] share one
/// store of per-macro `DesignMetrics` — with the same bit-identical
/// results, since the metrics are pure functions of `(spec, params)`.
#[derive(Debug, Clone)]
pub struct AcimDesignProblem {
    encoding: DesignEncoding,
    params: ModelParams,
    // Every per-ModelParams quantity of Equations 7-11, hoisted once at
    // construction so the per-genome path is pure arithmetic.
    invariants: ModelInvariants,
    // Clones share the client's counters, so per-request attribution
    // survives the batch fan-out.
    macro_client: MacroCacheClient,
}

impl AcimDesignProblem {
    /// Creates the problem for one array size.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::InvalidConfig`] when the encoding cannot be built
    /// or the model parameters are invalid.
    pub fn new(
        array_size: usize,
        min_height: usize,
        max_height: usize,
        params: ModelParams,
    ) -> Result<Self, DseError> {
        let invariants = ModelInvariants::new(&params)?;
        let encoding = DesignEncoding::new(array_size, min_height, max_height)?;
        Ok(Self {
            encoding,
            params,
            invariants,
            macro_client: MacroCacheClient::detached(),
        })
    }

    /// Installs a shared macro-metric cache (paired with this problem's
    /// [`ModelParams`]) and resets the hit/miss attribution.
    #[must_use]
    pub fn with_macro_cache(mut self, cache: MacroMetricsCache) -> Self {
        self.macro_client = MacroCacheClient::attached(cache);
        self
    }

    /// Hit/miss/eviction attribution of this problem (and its clones)
    /// against the installed macro-metric cache; all zeros when no cache
    /// is installed.
    pub fn macro_cache_stats(&self) -> CacheStats {
        self.macro_client.stats()
    }

    /// Derives one spec's metrics, consulting the shared macro-metric
    /// cache when one is installed.  Both routes go through the hoisted
    /// [`ModelInvariants`] kernel, which is bit-identical to the scalar
    /// facade ([`acim_model::evaluate`]).
    fn spec_metrics(&self, spec: &AcimSpec) -> Result<DesignMetrics, acim_model::ModelError> {
        if self.macro_client.cache().is_none() {
            return Ok(self.invariants.evaluate_spec(spec));
        }
        self.macro_client
            .get_or_derive(SpecKey::of(spec), || {
                Ok(MacroMetrics {
                    design: self.invariants.evaluate_spec(spec),
                    // The chip evaluator reads the cycle time from the
                    // same entry, so populate it here too: a macro
                    // session warms the chip sessions that follow it.
                    cycle_ns: self.invariants.cycle_time_ns(spec.adc_bits()),
                })
            })
            .map(|metrics| metrics.design)
    }

    /// The genome encoding in use.
    pub fn encoding(&self) -> &DesignEncoding {
        &self.encoding
    }

    /// The model parameters in use.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// The canonical cache key of a genome: its decode-bucket indices.
    /// Every genome landing in the same (H, L, B_ADC) design shares one
    /// key, so a memoizing wrapper ([`acim_moga::CachedProblem`]) never
    /// re-evaluates a re-sampled design.
    pub fn cache_key(&self, genes: &[f64]) -> Vec<i64> {
        self.encoding.bucket_indices(genes)
    }

    /// Decodes a genome into a full [`DesignPoint`] when it is feasible.
    pub fn decode_point(&self, genes: &[f64]) -> Option<DesignPoint> {
        let candidate = self.encoding.decode(genes);
        let spec = candidate.into_spec(self.encoding.array_size()).ok()?;
        let metrics = self.spec_metrics(&spec).ok()?;
        Some(DesignPoint::new(spec, metrics))
    }
}

impl Problem for AcimDesignProblem {
    fn num_variables(&self) -> usize {
        self.encoding.num_genes()
    }

    fn num_objectives(&self) -> usize {
        4
    }

    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        let candidate = self.encoding.decode(genes);
        match candidate.into_spec(self.encoding.array_size()) {
            Ok(spec) => match self.spec_metrics(&spec) {
                Ok(metrics) => Evaluation::unconstrained(metrics.objective_array()),
                // Model failures are treated as heavily infeasible rather
                // than aborting the whole optimisation run.
                Err(_) => Evaluation::new([f64::MAX; 4], 10.0),
            },
            Err(violation) => Evaluation::new([f64::MAX; 4], violation),
        }
    }

    /// Population-parallel batch evaluation, borrowed straight from the
    /// caller's slice — the work-stealing tasks reference the genomes in
    /// place (scoped executor), so the batch path allocates nothing per
    /// genome.
    ///
    /// Without a macro-metric cache the genomes are decoded in parallel
    /// (`with_max_len(1)`, so one slow decode cannot stall a chunk) and
    /// every feasible spec then flows through the struct-of-arrays batch
    /// kernel ([`ModelInvariants::evaluate_batch`]) in one pass.  With a
    /// cache installed, each genome goes through [`Self::evaluate`] so
    /// hit/miss attribution keeps working.  Both routes preserve input
    /// order and are bit-identical to the serial map — seeded explorations
    /// stay deterministic.
    fn evaluate_batch(&self, genomes: &[Vec<f64>]) -> Vec<Evaluation> {
        if self.macro_client.cache().is_some() {
            return genomes
                .par_iter()
                .with_max_len(1)
                .map(|genes| self.evaluate(genes))
                .collect();
        }
        let decoded: Vec<Result<AcimSpec, f64>> = genomes
            .par_iter()
            .with_max_len(1)
            .map(|genes| {
                self.encoding
                    .decode(genes)
                    .into_spec(self.encoding.array_size())
            })
            .collect();
        let mut batch = SpecBatch::with_capacity(genomes.len());
        for spec in decoded.iter().flatten() {
            batch.push_spec(spec);
        }
        let mut metrics = Vec::with_capacity(batch.len());
        self.invariants.evaluate_batch(&batch, &mut metrics);
        let mut metrics = metrics.into_iter();
        decoded
            .into_iter()
            .map(|result| match result {
                Ok(_) => {
                    let m = metrics.next().expect("one metric per feasible spec");
                    Evaluation::unconstrained(m.objective_array())
                }
                Err(violation) => Evaluation::new([f64::MAX; 4], violation),
            })
            .collect()
    }

    fn name(&self) -> &str {
        "easyacim design-space exploration"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> AcimDesignProblem {
        AcimDesignProblem::new(16 * 1024, 16, 1024, ModelParams::s28_default()).unwrap()
    }

    #[test]
    fn problem_shape() {
        let p = problem();
        assert_eq!(p.num_variables(), 3);
        assert_eq!(p.num_objectives(), 4);
        assert!(p.name().contains("easyacim"));
    }

    #[test]
    fn feasible_genome_evaluates_to_finite_objectives() {
        let p = problem();
        let genes = p
            .encoding()
            .encode(&crate::encoding::Candidate {
                height: 128,
                width: 128,
                local_array: 8,
                adc_bits: 3,
            })
            .unwrap();
        let eval = p.evaluate(&genes);
        assert!(eval.is_feasible());
        assert!(eval.objectives.iter().all(|o| o.is_finite()));
        let point = p.decode_point(&genes).expect("feasible point decodes");
        assert_eq!(point.spec.local_array(), 8);
    }

    #[test]
    fn infeasible_genome_reports_violation() {
        let p = problem();
        // L = 32 with B = 8 violates the CDAC constraint for every height of
        // a 16 kb array except very tall ones; pick H = 32 explicitly.
        let genes = p
            .encoding()
            .encode(&crate::encoding::Candidate {
                height: 32,
                width: 512,
                local_array: 32,
                adc_bits: 8,
            })
            .unwrap();
        let eval = p.evaluate(&genes);
        assert!(!eval.is_feasible());
        assert!(p.decode_point(&genes).is_none());
    }

    #[test]
    fn parallel_batch_matches_serial_in_order() {
        let p = problem();
        let genomes: Vec<Vec<f64>> = (0..32)
            .map(|i| {
                let x = f64::from(i) / 31.0;
                vec![x, (x * 7.3) % 1.0, (x * 3.1) % 1.0]
            })
            .collect();
        let batch = p.evaluate_batch(&genomes);
        assert_eq!(batch.len(), genomes.len());
        for (genes, eval) in genomes.iter().zip(&batch) {
            assert_eq!(eval, &p.evaluate(genes));
        }
    }

    #[test]
    fn invalid_model_params_rejected_up_front() {
        let mut params = ModelParams::s28_default();
        params.snr.k3 = -1.0;
        assert!(AcimDesignProblem::new(16 * 1024, 16, 1024, params).is_err());
    }
}
