//! The four-objective evaluation used by the design-space explorer
//! (Equation 12).
//!
//! ```text
//! min F(H, W, L, B_ADC) = [ −f_SNR, −f_T, f_E, f_A ]
//! ```
//!
//! SNR and throughput are maximised (hence the sign flip); energy per MAC and
//! area per bit are minimised.

use acim_arch::AcimSpec;

use crate::area::area_f2_per_bit;
use crate::energy::{energy_per_mac_fj, tops_per_watt};
use crate::error::ModelError;
use crate::params::ModelParams;
use crate::snr::snr_simplified_db;
use crate::throughput::throughput_tops;

/// All estimated figures of merit for one design specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignMetrics {
    /// Estimated SNR in dB (simplified model, Equation 11).
    pub snr_db: f64,
    /// Estimated throughput in TOPS (Equation 7).
    pub throughput_tops: f64,
    /// Estimated energy per 1-bit MAC in fJ (Equation 8).
    pub energy_per_mac_fj: f64,
    /// Energy efficiency in TOPS/W.
    pub tops_per_watt: f64,
    /// Estimated area per bit in F² (Equation 10).
    pub area_f2_per_bit: f64,
}

impl DesignMetrics {
    /// Objective vector in the minimisation form of Equation 12:
    /// `[−SNR, −T, E, A]`.
    pub fn objective_vector(&self) -> Vec<f64> {
        vec![
            -self.snr_db,
            -self.throughput_tops,
            self.energy_per_mac_fj,
            self.area_f2_per_bit,
        ]
    }

    /// The (energy-efficiency, area) pair used by Figure 10, as a
    /// minimisation vector `[−TOPS/W, F²/bit]`.
    pub fn efficiency_area_vector(&self) -> Vec<f64> {
        vec![-self.tops_per_watt, self.area_f2_per_bit]
    }
}

/// Evaluates all four objectives for a specification.
///
/// # Errors
///
/// Returns [`ModelError`] when the parameter set is invalid.
pub fn evaluate(spec: &AcimSpec, params: &ModelParams) -> Result<DesignMetrics, ModelError> {
    Ok(DesignMetrics {
        snr_db: snr_simplified_db(spec, params)?,
        throughput_tops: throughput_tops(spec, params)?,
        energy_per_mac_fj: energy_per_mac_fj(spec, params)?,
        tops_per_watt: tops_per_watt(spec, params)?,
        area_f2_per_bit: area_f2_per_bit(spec, params)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(h: usize, w: usize, l: usize, b: u32) -> AcimSpec {
        AcimSpec::from_dimensions(h, w, l, b).unwrap()
    }

    #[test]
    fn evaluate_produces_consistent_metrics() {
        let params = ModelParams::s28_default();
        let m = evaluate(&spec(128, 128, 8, 3), &params).unwrap();
        assert!(m.snr_db > 0.0);
        assert!(m.throughput_tops > 0.0);
        assert!(m.energy_per_mac_fj > 0.0);
        assert!(m.area_f2_per_bit > 1500.0);
        assert!((m.tops_per_watt - 2000.0 / m.energy_per_mac_fj).abs() < 1e-9);
    }

    #[test]
    fn objective_vector_signs() {
        let params = ModelParams::s28_default();
        let m = evaluate(&spec(128, 128, 8, 3), &params).unwrap();
        let v = m.objective_vector();
        assert_eq!(v.len(), 4);
        assert!(v[0] < 0.0, "-SNR must be negative for positive SNR");
        assert!(v[1] < 0.0, "-T must be negative");
        assert!(v[2] > 0.0);
        assert!(v[3] > 0.0);
        let ea = m.efficiency_area_vector();
        assert_eq!(ea.len(), 2);
        assert!(ea[0] < 0.0);
    }

    #[test]
    fn known_tradeoff_l_small_vs_large() {
        // Reducing L raises throughput and SNR but costs area — the central
        // trade-off of Section 3.1.
        let params = ModelParams::s28_default();
        let l2 = evaluate(&spec(128, 128, 2, 3), &params).unwrap();
        let l8 = evaluate(&spec(128, 128, 8, 3), &params).unwrap();
        assert!(l2.throughput_tops > l8.throughput_tops);
        assert!(l2.area_f2_per_bit > l8.area_f2_per_bit);
        assert!(l2.snr_db < l8.snr_db, "larger N lowers SNR at fixed B");
    }

    #[test]
    fn neither_point_dominates_the_other() {
        // The L=2 and L=8 variants must be mutually non-dominated in the
        // 4-objective space — this is what makes the problem multi-objective.
        let params = ModelParams::s28_default();
        let a = evaluate(&spec(128, 128, 2, 3), &params)
            .unwrap()
            .objective_vector();
        let b = evaluate(&spec(128, 128, 8, 3), &params)
            .unwrap()
            .objective_vector();
        let a_dominates = a.iter().zip(&b).all(|(x, y)| x <= y);
        let b_dominates = b.iter().zip(&a).all(|(x, y)| x <= y);
        assert!(!a_dominates && !b_dominates);
    }
}
