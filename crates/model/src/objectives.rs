//! The four-objective evaluation used by the design-space explorer
//! (Equation 12).
//!
//! ```text
//! min F(H, W, L, B_ADC) = [ −f_SNR, −f_T, f_E, f_A ]
//! ```
//!
//! SNR and throughput are maximised (hence the sign flip); energy per MAC and
//! area per bit are minimised.

use acim_arch::AcimSpec;

use crate::error::ModelError;
use crate::math::log10_int;
use crate::params::ModelParams;

/// All estimated figures of merit for one design specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignMetrics {
    /// Estimated SNR in dB (simplified model, Equation 11).
    pub snr_db: f64,
    /// Estimated throughput in TOPS (Equation 7).
    pub throughput_tops: f64,
    /// Estimated energy per 1-bit MAC in fJ (Equation 8).
    pub energy_per_mac_fj: f64,
    /// Energy efficiency in TOPS/W.
    pub tops_per_watt: f64,
    /// Estimated area per bit in F² (Equation 10).
    pub area_f2_per_bit: f64,
}

impl DesignMetrics {
    /// Objective vector in the minimisation form of Equation 12 as a
    /// fixed-arity array: `[−SNR, −T, E, A]`.
    ///
    /// This is the allocation-free form the evaluation hot paths use —
    /// `acim_moga::Evaluation` stores up to four objectives inline, so an
    /// `Evaluation::new(metrics.objective_array(), …)` round-trip never
    /// touches the heap.
    pub fn objective_array(&self) -> [f64; 4] {
        [
            -self.snr_db,
            -self.throughput_tops,
            self.energy_per_mac_fj,
            self.area_f2_per_bit,
        ]
    }

    /// Objective vector in the minimisation form of Equation 12:
    /// `[−SNR, −T, E, A]`.  Allocating convenience over
    /// [`DesignMetrics::objective_array`].
    pub fn objective_vector(&self) -> Vec<f64> {
        self.objective_array().to_vec()
    }

    /// The (energy-efficiency, area) pair used by Figure 10, as a
    /// minimisation vector `[−TOPS/W, F²/bit]`.
    pub fn efficiency_area_vector(&self) -> Vec<f64> {
        vec![-self.tops_per_watt, self.area_f2_per_bit]
    }
}

/// Evaluates all four objectives for a specification.
///
/// Each metric is the exact expression of its dedicated module
/// ([`crate::snr::snr_simplified_db`], [`crate::throughput`],
/// [`crate::energy`], [`crate::area`]) — but validation runs **once** and
/// the Equation 8 energy is computed **once** (the facade functions would
/// re-validate the parameter set per metric and derive `energy_per_mac`
/// twice, for the energy and efficiency objectives).  The results are
/// bit-identical to calling the facades independently.
///
/// # Errors
///
/// Returns [`ModelError`] when the parameter set is invalid.
pub fn evaluate(spec: &AcimSpec, params: &ModelParams) -> Result<DesignMetrics, ModelError> {
    params.validate()?;

    // Equation 11 (snr_simplified_db minus the re-validation).
    let b = f64::from(spec.adc_bits());
    let snr_db = 6.0 * b
        - 10.0 * log10_int(spec.dot_product_length())
        - 10.0 * (params.snr.k3 / params.snr.c_o.value()).log10()
        + params.snr.k4;

    // Equation 7 (validates the timing parameters).
    let throughput_tops = params.timing.throughput_tops(spec)?;

    // Equations 8–9, computed once (validates vdd and B_ADC); the
    // efficiency is derived from the same value exactly as
    // `EnergyModelParams::tops_per_watt` does.
    let energy_per_mac_fj = params.energy.energy_per_mac(spec)?.value();
    let tops_per_watt = 2.0 / energy_per_mac_fj * 1000.0;

    // Equation 10 (area_f2_per_bit minus the re-validation).
    let a = &params.area;
    let l = spec.local_array() as f64;
    let h = spec.height() as f64;
    let area_f2_per_bit =
        a.a_sram.value() + a.a_lc.value() / l + a.a_comp.value() / h + b * a.a_dff.value() / h;

    Ok(DesignMetrics {
        snr_db,
        throughput_tops,
        energy_per_mac_fj,
        tops_per_watt,
        area_f2_per_bit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(h: usize, w: usize, l: usize, b: u32) -> AcimSpec {
        AcimSpec::from_dimensions(h, w, l, b).unwrap()
    }

    #[test]
    fn evaluate_produces_consistent_metrics() {
        let params = ModelParams::s28_default();
        let m = evaluate(&spec(128, 128, 8, 3), &params).unwrap();
        assert!(m.snr_db > 0.0);
        assert!(m.throughput_tops > 0.0);
        assert!(m.energy_per_mac_fj > 0.0);
        assert!(m.area_f2_per_bit > 1500.0);
        assert!((m.tops_per_watt - 2000.0 / m.energy_per_mac_fj).abs() < 1e-9);
    }

    #[test]
    fn objective_vector_signs() {
        let params = ModelParams::s28_default();
        let m = evaluate(&spec(128, 128, 8, 3), &params).unwrap();
        let v = m.objective_vector();
        assert_eq!(v.len(), 4);
        assert!(v[0] < 0.0, "-SNR must be negative for positive SNR");
        assert!(v[1] < 0.0, "-T must be negative");
        assert!(v[2] > 0.0);
        assert!(v[3] > 0.0);
        let ea = m.efficiency_area_vector();
        assert_eq!(ea.len(), 2);
        assert!(ea[0] < 0.0);
    }

    #[test]
    fn known_tradeoff_l_small_vs_large() {
        // Reducing L raises throughput and SNR but costs area — the central
        // trade-off of Section 3.1.
        let params = ModelParams::s28_default();
        let l2 = evaluate(&spec(128, 128, 2, 3), &params).unwrap();
        let l8 = evaluate(&spec(128, 128, 8, 3), &params).unwrap();
        assert!(l2.throughput_tops > l8.throughput_tops);
        assert!(l2.area_f2_per_bit > l8.area_f2_per_bit);
        assert!(l2.snr_db < l8.snr_db, "larger N lowers SNR at fixed B");
    }

    #[test]
    fn neither_point_dominates_the_other() {
        // The L=2 and L=8 variants must be mutually non-dominated in the
        // 4-objective space — this is what makes the problem multi-objective.
        let params = ModelParams::s28_default();
        let a = evaluate(&spec(128, 128, 2, 3), &params)
            .unwrap()
            .objective_vector();
        let b = evaluate(&spec(128, 128, 8, 3), &params)
            .unwrap()
            .objective_vector();
        let a_dominates = a.iter().zip(&b).all(|(x, y)| x <= y);
        let b_dominates = b.iter().zip(&a).all(|(x, y)| x <= y);
        assert!(!a_dominates && !b_dominates);
    }
}
