//! Energy estimation (Equations 8–9): the estimation-model facade over the
//! shared energy model in `acim-arch`.

use acim_arch::AcimSpec;

use crate::error::ModelError;
use crate::params::ModelParams;

/// Average energy per 1-bit MAC in femtojoules (Equation 8).
///
/// # Errors
///
/// Returns [`ModelError`] when the energy parameters are invalid.
pub fn energy_per_mac_fj(spec: &AcimSpec, params: &ModelParams) -> Result<f64, ModelError> {
    Ok(params.energy.energy_per_mac(spec)?.value())
}

/// Energy efficiency in TOPS/W (two operations per MAC).
///
/// # Errors
///
/// Returns [`ModelError`] when the energy parameters are invalid.
pub fn tops_per_watt(spec: &AcimSpec, params: &ModelParams) -> Result<f64, ModelError> {
    Ok(params.energy.tops_per_watt(spec)?)
}

/// ADC conversion energy in femtojoules (Equation 9).
///
/// # Errors
///
/// Returns [`ModelError`] when the energy parameters are invalid.
pub fn adc_energy_fj(adc_bits: u32, params: &ModelParams) -> Result<f64, ModelError> {
    Ok(params.energy.adc_energy(adc_bits)?.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(h: usize, w: usize, l: usize, b: u32) -> AcimSpec {
        AcimSpec::from_dimensions(h, w, l, b).unwrap()
    }

    #[test]
    fn efficiency_and_energy_are_reciprocal() {
        let params = ModelParams::s28_default();
        let s = spec(128, 128, 8, 3);
        let e = energy_per_mac_fj(&s, &params).unwrap();
        let eff = tops_per_watt(&s, &params).unwrap();
        assert!((eff - 2.0 / e * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn lower_precision_is_more_efficient() {
        let params = ModelParams::s28_default();
        let low = tops_per_watt(&spec(512, 32, 2, 2), &params).unwrap();
        let high = tops_per_watt(&spec(512, 32, 2, 8), &params).unwrap();
        assert!(low > high);
    }

    #[test]
    fn adc_energy_matches_equation9_shape() {
        let params = ModelParams::s28_default();
        let e4 = adc_energy_fj(4, &params).unwrap();
        let e6 = adc_energy_fj(6, &params).unwrap();
        // The 4^B term grows 16x between B=4 and B=6; with the linear term
        // the total should grow by at least 4x but less than 16x.
        let ratio = e6 / e4;
        assert!(ratio > 4.0 && ratio < 16.0, "ratio = {ratio}");
    }

    #[test]
    fn efficiency_span_covers_papers_range() {
        // Figure 10 reports 50–750 TOPS/W across the design space.
        let params = ModelParams::s28_default();
        let best = tops_per_watt(&spec(1024, 16, 2, 2), &params).unwrap();
        let worst = tops_per_watt(&spec(512, 32, 2, 8), &params).unwrap();
        assert!(best > 600.0, "best = {best:.0} TOPS/W");
        assert!(worst < 80.0, "worst = {worst:.0} TOPS/W");
    }
}
