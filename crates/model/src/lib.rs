//! # acim-model
//!
//! The analytic ACIM performance-estimation model of EasyACIM
//! (Section 3.2.1, Equations 2–11 of the paper).
//!
//! The design-space explorer needs to evaluate tens of thousands of
//! candidate (H, W, L, B_ADC) specifications, far too many for behavioural
//! simulation.  The paper therefore drives NSGA-II with closed-form
//! estimates of the four competing objectives:
//!
//! * **SNR** — Equations 2–6 in full, or the simplified Equation 11 used by
//!   the optimiser ([`snr`]),
//! * **throughput** — Equation 7 ([`throughput`]),
//! * **energy** — Equations 8–9 ([`energy`]),
//! * **area** — Equation 10 ([`area`]).
//!
//! [`objectives::evaluate`] bundles all four into a [`DesignMetrics`] value
//! and an objective vector in the `[−f_SNR, −f_T, f_E, f_A]` form of
//! Equation 12.  [`calibrate`] fits the model's empirical constants against
//! the behavioural simulator in `acim-arch`, which plays the role of the
//! paper's post-layout simulation.
//!
//! # Example
//!
//! ```
//! use acim_arch::AcimSpec;
//! use acim_model::{ModelParams, objectives};
//!
//! # fn main() -> Result<(), acim_model::ModelError> {
//! let spec = AcimSpec::from_dimensions(128, 128, 8, 3)?;
//! let params = ModelParams::s28_default();
//! let metrics = objectives::evaluate(&spec, &params)?;
//! assert!(metrics.area_f2_per_bit > 1000.0);
//! assert!(metrics.throughput_tops > 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod calibrate;
pub mod energy;
pub mod error;
pub mod kernel;
pub mod key;
pub mod math;
pub mod objectives;
pub mod params;
pub mod snr;
pub mod throughput;

pub use area::area_f2_per_bit;
pub use calibrate::{calibrate_adc_energy, calibrate_snr_offset, CalibrationReport};
pub use energy::{energy_per_mac_fj, tops_per_watt};
pub use error::ModelError;
pub use kernel::{evaluate_batch, ModelInvariants, SpecBatch};
pub use key::SpecKey;
pub use objectives::{evaluate, DesignMetrics};
pub use params::{AreaParams, DataDistribution, ModelParams, SnrParams};
pub use snr::{snr_detailed_db, snr_simplified_db, SnrBreakdown};
pub use throughput::throughput_tops;
