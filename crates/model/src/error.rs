//! Error type of the estimation-model crate.

use std::error::Error;
use std::fmt;

use acim_arch::ArchError;

/// Errors produced while evaluating or calibrating the estimation model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A model parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: String,
        /// Why it was rejected.
        reason: String,
    },
    /// Calibration was asked to fit against an empty or degenerate data set.
    InsufficientData(String),
    /// An error bubbled up from the architecture crate (spec validation or
    /// behavioural simulation).
    Arch(ArchError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter { name, reason } => {
                write!(f, "invalid model parameter `{name}`: {reason}")
            }
            ModelError::InsufficientData(what) => {
                write!(f, "insufficient calibration data: {what}")
            }
            ModelError::Arch(err) => write!(f, "architecture error: {err}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Arch(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ArchError> for ModelError {
    fn from(err: ArchError) -> Self {
        ModelError::Arch(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_errors_convert() {
        let arch = ArchError::invalid_spec("H-L>=0", "H=4 < L=8");
        let model: ModelError = arch.clone().into();
        assert!(model.to_string().contains("architecture error"));
        assert!(matches!(model, ModelError::Arch(inner) if inner == arch));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
