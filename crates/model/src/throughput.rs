//! Throughput estimation (Equation 7).
//!
//! ```text
//! T = (H / L) · W / (t_com + t_set + t_conv)
//! ```
//!
//! One MAC counts as two operations when reporting TOPS.  The timing model
//! itself lives in `acim-arch` (it is shared with the behavioural
//! simulator); this module is the thin estimation-model facade over it.

use acim_arch::AcimSpec;

use crate::error::ModelError;
use crate::params::ModelParams;

/// Estimated throughput in TOPS (Equation 7).
///
/// # Errors
///
/// Returns [`ModelError`] when the timing parameters are invalid.
pub fn throughput_tops(spec: &AcimSpec, params: &ModelParams) -> Result<f64, ModelError> {
    Ok(params.timing.throughput_tops(spec)?)
}

/// Estimated conversion-cycle time in nanoseconds.
pub fn cycle_time_ns(spec: &AcimSpec, params: &ModelParams) -> f64 {
    params.timing.cycle_time(spec.adc_bits()).value() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(h: usize, w: usize, l: usize, b: u32) -> AcimSpec {
        AcimSpec::from_dimensions(h, w, l, b).unwrap()
    }

    #[test]
    fn figure8_throughput_anchors() {
        let params = ModelParams::s28_default();
        let a = throughput_tops(&spec(128, 128, 2, 3), &params).unwrap();
        let b = throughput_tops(&spec(128, 128, 8, 3), &params).unwrap();
        let c = throughput_tops(&spec(64, 256, 8, 3), &params).unwrap();
        assert!((a - 3.277).abs() < 0.15, "fig 8(a): {a:.3} TOPS");
        assert!((b - 0.813).abs() < 0.05, "fig 8(b): {b:.3} TOPS");
        // Figure 8(c) has the same throughput as (b): same H/L·W product.
        assert!((c - b).abs() < 1e-9);
    }

    #[test]
    fn throughput_decreases_with_adc_precision() {
        let params = ModelParams::s28_default();
        let fast = throughput_tops(&spec(512, 32, 2, 2), &params).unwrap();
        let slow = throughput_tops(&spec(512, 32, 2, 8), &params).unwrap();
        assert!(fast > slow);
    }

    #[test]
    fn cycle_time_grows_with_precision() {
        let params = ModelParams::s28_default();
        assert!(
            cycle_time_ns(&spec(512, 32, 2, 8), &params)
                > cycle_time_ns(&spec(512, 32, 2, 2), &params)
        );
        // B = 3 cycle is about 5 ns with the default timing.
        let t = cycle_time_ns(&spec(128, 128, 8, 3), &params);
        assert!((t - 5.0).abs() < 0.3, "cycle time {t:.2} ns");
    }
}
