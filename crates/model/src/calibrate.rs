//! Calibration of the estimation model against the behavioural simulator.
//!
//! The paper obtains its empirical constants (`k1`, `k2` of Equation 9,
//! the data-dependent `k3`, `k4` of Equation 11) from post-layout
//! simulation.  The reproduction replaces that oracle with the behavioural
//! macro simulator of `acim-arch`:
//!
//! * [`calibrate_snr_offset`] measures Monte-Carlo SNR for a set of
//!   specifications and least-squares fits the constant offset of
//!   Equation 11 (the `−10·log10(k3/C_o) + k4` term), reporting the residual
//!   so the structural terms (`6·B_ADC`, `−10·log10(H/L)`) can be judged,
//! * [`calibrate_adc_energy`] fits `k1`, `k2` to a set of
//!   (B_ADC, E_ADC) samples using the two-basis linear model of Equation 9.

use acim_arch::{measure_snr, AcimSpec, NoiseConfig};
use acim_tech::Technology;

use crate::error::ModelError;
use crate::math::db;
use crate::params::ModelParams;

/// Outcome of a calibration fit.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// The fitted constants (meaning depends on the calibration routine).
    pub fitted: Vec<f64>,
    /// Root-mean-square residual of the fit, in the units of the fitted
    /// quantity (dB for SNR, fJ for energy).
    pub rms_residual: f64,
    /// Number of samples used.
    pub samples: usize,
    /// Per-sample (predicted, measured) pairs, for reporting.
    pub pairs: Vec<(f64, f64)>,
}

/// Calibrates the constant offset of the simplified SNR model
/// (Equation 11) against Monte-Carlo measurements.
///
/// For every specification the structural part `6·B − 10·log10(H/L)` is
/// computed analytically and the measured SNR provides one sample of the
/// offset `c = −10·log10(k3/C_o) + k4`.  The fit is the mean offset; the
/// report carries the RMS residual, which quantifies how well the
/// structural model explains the measured variation — the reproduction's
/// equivalent of the paper's model-validation step.
///
/// # Errors
///
/// Returns [`ModelError::InsufficientData`] when `specs` is empty, and
/// propagates simulation errors.
pub fn calibrate_snr_offset(
    specs: &[AcimSpec],
    tech: &Technology,
    cycles: usize,
    seed: u64,
) -> Result<CalibrationReport, ModelError> {
    if specs.is_empty() {
        return Err(ModelError::InsufficientData(
            "at least one specification is required for SNR calibration".into(),
        ));
    }
    let mut offsets = Vec::with_capacity(specs.len());
    let mut structurals = Vec::with_capacity(specs.len());
    let mut measured = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let m = measure_snr(
            spec,
            tech,
            NoiseConfig::realistic(),
            cycles,
            seed + i as u64,
        )?;
        let structural = 6.0 * f64::from(spec.adc_bits()) - db(spec.dot_product_length() as f64);
        offsets.push(m.snr_db - structural);
        structurals.push(structural);
        measured.push(m.snr_db);
    }
    let offset = offsets.iter().sum::<f64>() / offsets.len() as f64;
    let pairs: Vec<(f64, f64)> = structurals
        .iter()
        .zip(&measured)
        .map(|(s, m)| (s + offset, *m))
        .collect();
    let rms_residual =
        (pairs.iter().map(|(p, m)| (p - m) * (p - m)).sum::<f64>() / pairs.len() as f64).sqrt();
    Ok(CalibrationReport {
        fitted: vec![offset],
        rms_residual,
        samples: pairs.len(),
        pairs,
    })
}

/// Applies a fitted SNR offset to a parameter set: keeps `k3 = C_o` (so the
/// log term vanishes) and stores the offset in `k4`.
pub fn apply_snr_offset(params: &mut ModelParams, offset_db: f64) {
    params.snr.k3 = params.snr.c_o.value();
    params.snr.k4 = offset_db;
}

/// Fits `k1`, `k2` of the ADC energy formula (Equation 9) to measured
/// (B_ADC, E_ADC in fJ) samples by ordinary least squares on the two basis
/// functions `B + log2(V_DD)` and `4^B · V_DD²`.
///
/// # Errors
///
/// Returns [`ModelError::InsufficientData`] when fewer than two distinct
/// precisions are provided (the system would be singular).
pub fn calibrate_adc_energy(
    samples: &[(u32, f64)],
    vdd: f64,
) -> Result<CalibrationReport, ModelError> {
    let distinct: std::collections::BTreeSet<u32> = samples.iter().map(|(b, _)| *b).collect();
    if distinct.len() < 2 {
        return Err(ModelError::InsufficientData(
            "ADC-energy calibration needs samples at two or more precisions".into(),
        ));
    }
    // Normal equations for y = k1·u + k2·v.
    let (mut suu, mut svv, mut suv, mut suy, mut svy) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let mut bases = Vec::with_capacity(samples.len());
    for &(bits, energy) in samples {
        let u = f64::from(bits) + vdd.log2();
        let v = 4f64.powi(bits as i32) * vdd * vdd;
        suu += u * u;
        svv += v * v;
        suv += u * v;
        suy += u * energy;
        svy += v * energy;
        bases.push((u, v, energy));
    }
    let det = suu * svv - suv * suv;
    if det.abs() < 1e-12 {
        return Err(ModelError::InsufficientData(
            "ADC-energy calibration basis is singular".into(),
        ));
    }
    let k1 = (suy * svv - svy * suv) / det;
    let k2 = (svy * suu - suy * suv) / det;
    let pairs: Vec<(f64, f64)> = bases
        .iter()
        .map(|&(u, v, y)| (k1 * u + k2 * v, y))
        .collect();
    let rms_residual =
        (pairs.iter().map(|(p, m)| (p - m) * (p - m)).sum::<f64>() / pairs.len() as f64).sqrt();
    Ok(CalibrationReport {
        fitted: vec![k1, k2],
        rms_residual,
        samples: pairs.len(),
        pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_arch::EnergyModelParams;

    #[test]
    fn adc_energy_fit_recovers_known_constants() {
        // Generate samples from the default energy model and check the fit
        // recovers k1, k2 almost exactly.
        let truth = EnergyModelParams::s28_default();
        let samples: Vec<(u32, f64)> = (2..=8)
            .map(|b| (b, truth.adc_energy(b).unwrap().value()))
            .collect();
        let report = calibrate_adc_energy(&samples, truth.vdd).unwrap();
        assert_eq!(report.samples, samples.len());
        assert!(
            (report.fitted[0] - truth.k1.value()).abs() < 0.5,
            "k1 = {}",
            report.fitted[0]
        );
        assert!(
            (report.fitted[1] - truth.k2.value()).abs() < 0.01,
            "k2 = {}",
            report.fitted[1]
        );
        assert!(report.rms_residual < 1.0);
    }

    #[test]
    fn adc_energy_fit_needs_two_precisions() {
        let samples = vec![(4, 100.0), (4, 101.0)];
        assert!(calibrate_adc_energy(&samples, 0.9).is_err());
        assert!(calibrate_adc_energy(&[], 0.9).is_err());
    }

    #[test]
    fn snr_calibration_produces_finite_offset_and_small_residual() {
        let tech = Technology::s28();
        let specs = vec![
            AcimSpec::from_dimensions(64, 16, 4, 3).unwrap(),
            AcimSpec::from_dimensions(128, 16, 4, 4).unwrap(),
            AcimSpec::from_dimensions(128, 16, 8, 3).unwrap(),
        ];
        let report = calibrate_snr_offset(&specs, &tech, 48, 7).unwrap();
        assert_eq!(report.samples, 3);
        assert!(report.fitted[0].is_finite());
        // The structural model should explain most of the variation: the
        // residual after fitting one constant should be a few dB at most.
        assert!(
            report.rms_residual < 6.0,
            "rms residual {:.2} dB too large",
            report.rms_residual
        );
    }

    #[test]
    fn snr_calibration_rejects_empty_input() {
        let tech = Technology::s28();
        assert!(calibrate_snr_offset(&[], &tech, 16, 1).is_err());
    }

    #[test]
    fn apply_snr_offset_updates_params() {
        let mut params = ModelParams::s28_default();
        apply_snr_offset(&mut params, 9.5);
        assert_eq!(params.snr.k4, 9.5);
        assert_eq!(params.snr.k3, params.snr.c_o.value());
        // After applying, the simplified model's offset equals the fit.
        let spec = AcimSpec::from_dimensions(128, 128, 8, 3).unwrap();
        let snr = crate::snr::snr_simplified_db(&spec, &params).unwrap();
        let structural = 6.0 * 3.0 - 10.0 * 16f64.log10();
        assert!((snr - structural - 9.5).abs() < 1e-9);
    }
}
