//! Model parameters: the constants of Equations 2–11.
//!
//! The parameter set splits into
//!
//! * [`AreaParams`] — the per-block areas of Equation 10 (8T SRAM cell,
//!   local-array-shared computing cell, comparator/SA slice, SAR DFF),
//! * [`SnrParams`] — the simplified-SNR constants `k3`, `k4` of Equation 11
//!   together with the compute-capacitor value,
//! * [`DataDistribution`] — the statistics of inputs and weights used by the
//!   detailed SNR model (Equations 3–6),
//! * the timing and energy parameters reused from `acim-arch`
//!   ([`acim_arch::TimingModel`], [`acim_arch::EnergyModelParams`]),
//!
//! all bundled into [`ModelParams`].  The default values reproduce the
//! calibration anchors listed in `DESIGN.md` (Figure 8 throughput and
//! F²/bit numbers, the 50–750 TOPS/W efficiency span of Figure 10).

use acim_arch::{EnergyModelParams, TimingModel};
use acim_tech::{Femtofarad, SquareF};

use crate::error::ModelError;

/// Per-block layout areas of Equation 10, in F².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaParams {
    /// Area of one 8T SRAM cell, `A_SRAM`.
    pub a_sram: SquareF,
    /// Area of the local-array-shared computing cell (compute capacitor +
    /// group control), `A_LC`.
    pub a_lc: SquareF,
    /// Area of the per-column dynamic comparator / sense amplifier,
    /// `A_COMP`.
    pub a_comp: SquareF,
    /// Area of one dynamic D flip-flop of the SAR logic, `A_DFF`.
    pub a_dff: SquareF,
}

impl AreaParams {
    /// Default S28 areas, calibrated so the three Figure 8 design points
    /// land on 4504, 2610 and 2977 F²/bit.
    pub fn s28_default() -> Self {
        Self {
            a_sram: SquareF::new(1612.0),
            a_lc: SquareF::new(5050.0),
            a_comp: SquareF::new(40_000.0),
            a_dff: SquareF::new(2326.0),
        }
    }
}

impl Default for AreaParams {
    fn default() -> Self {
        Self::s28_default()
    }
}

/// Constants of the simplified SNR formula (Equation 11):
///
/// ```text
/// SNR(dB) = 6·B_ADC − 10·log10(H / L) − 10·log10(k3 / C_o) + k4
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnrParams {
    /// Data/technology dependent coefficient `k3` (fF).
    pub k3: f64,
    /// Data-distribution dependent offset `k4` (dB).
    pub k4: f64,
    /// Compute capacitor value `C_o` used by the SNR model.
    pub c_o: Femtofarad,
}

impl SnrParams {
    /// Default S28 constants, chosen so SNR lands in the 15–45 dB band
    /// across the explored design space.
    pub fn s28_default() -> Self {
        Self {
            k3: 1.2,
            k4: 11.0,
            c_o: Femtofarad::new(1.2),
        }
    }
}

impl Default for SnrParams {
    fn default() -> Self {
        Self::s28_default()
    }
}

/// Statistics of the input and weight distributions used by the detailed SNR
/// model (Equations 3–6 and Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataDistribution {
    /// Input precision `B_x` in bits.
    pub input_bits: u32,
    /// Weight precision `B_w` in bits.
    pub weight_bits: u32,
    /// Maximum input magnitude `x_m`.
    pub x_max: f64,
    /// Maximum weight magnitude `w_m`.
    pub w_max: f64,
    /// Input standard deviation `σ_x`.
    pub sigma_x: f64,
    /// Weight standard deviation `σ_w`.
    pub sigma_w: f64,
}

impl DataDistribution {
    /// The 1b×1b computation of the paper's evaluation: Bernoulli(0.5)
    /// inputs and weights in {0, 1}.
    pub fn binary() -> Self {
        Self {
            input_bits: 1,
            weight_bits: 1,
            x_max: 1.0,
            w_max: 1.0,
            sigma_x: 0.5,
            sigma_w: 0.5,
        }
    }

    /// A multi-bit quantised Gaussian profile (used by the detailed-SNR
    /// studies): `bits`-bit inputs and weights with peak-to-sigma ratio 3.
    pub fn gaussian(bits: u32) -> Self {
        Self {
            input_bits: bits,
            weight_bits: bits,
            x_max: 1.0,
            w_max: 1.0,
            sigma_x: 1.0 / 3.0,
            sigma_w: 1.0 / 3.0,
        }
    }

    /// Crest factor `ζ_x = x_m / σ_x` in dB (power ratio convention of
    /// Equation 6).
    pub fn zeta_x_db(&self) -> f64 {
        20.0 * (self.x_max / self.sigma_x).log10()
    }

    /// Crest factor `ζ_w = w_m / σ_w` in dB.
    pub fn zeta_w_db(&self) -> f64 {
        20.0 * (self.w_max / self.sigma_w).log10()
    }

    /// Input quantisation step `Δ_x = x_m · 2^(−B_x + 1)`.
    pub fn delta_x(&self) -> f64 {
        self.x_max * 2f64.powi(1 - self.input_bits as i32)
    }

    /// Weight quantisation step `Δ_w = w_m · 2^(−B_w + 1)`.
    pub fn delta_w(&self) -> f64 {
        self.w_max * 2f64.powi(1 - self.weight_bits as i32)
    }

    /// Second moment of the input, `E[x²] = σ_x² + mean²`; for the zero-mean
    /// profiles used here this is simply `σ_x²` (binary data is treated as
    /// ±x_m/2 around its mean).
    pub fn x_second_moment(&self) -> f64 {
        self.sigma_x * self.sigma_x
    }
}

impl Default for DataDistribution {
    fn default() -> Self {
        Self::binary()
    }
}

/// The complete parameter set of the estimation model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Timing parameters (Equation 7).
    pub timing: TimingModel,
    /// Energy parameters (Equations 8–9).
    pub energy: EnergyModelParams,
    /// Area parameters (Equation 10).
    pub area: AreaParams,
    /// Simplified-SNR parameters (Equation 11).
    pub snr: SnrParams,
    /// Data statistics for the detailed SNR model (Equations 3–6).
    pub data: DataDistribution,
    /// Capacitor mismatch coefficient κ (1/√fF), from the technology.
    pub kappa: f64,
    /// Operating temperature in Kelvin.
    pub temperature_k: f64,
}

impl ModelParams {
    /// Default parameters of the synthetic S28 technology.
    pub fn s28_default() -> Self {
        Self {
            timing: TimingModel::s28_default(),
            energy: EnergyModelParams::s28_default(),
            area: AreaParams::s28_default(),
            snr: SnrParams::s28_default(),
            data: DataDistribution::binary(),
            kappa: 0.01,
            temperature_k: 300.0,
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] when any physical parameter
    /// is non-positive.
    pub fn validate(&self) -> Result<(), ModelError> {
        // Fast path: one fused pass over the eight positivity/finiteness
        // checks.  Validation runs on every scalar evaluation, so the
        // common all-valid case must not pay for error attribution; the
        // named-diagnostic loop below only runs once something failed.
        fn ok(value: f64) -> bool {
            value > 0.0 && value.is_finite()
        }
        if ok(self.area.a_sram.value())
            && ok(self.area.a_lc.value())
            && ok(self.area.a_comp.value())
            && ok(self.area.a_dff.value())
            && ok(self.snr.k3)
            && ok(self.snr.c_o.value())
            && ok(self.kappa)
            && ok(self.temperature_k)
        {
            return Ok(());
        }
        let checks: [(&str, f64); 8] = [
            ("a_sram", self.area.a_sram.value()),
            ("a_lc", self.area.a_lc.value()),
            ("a_comp", self.area.a_comp.value()),
            ("a_dff", self.area.a_dff.value()),
            ("k3", self.snr.k3),
            ("c_o", self.snr.c_o.value()),
            ("kappa", self.kappa),
            ("temperature", self.temperature_k),
        ];
        for (name, value) in checks {
            if value <= 0.0 || !value.is_finite() {
                return Err(ModelError::InvalidParameter {
                    name: name.to_string(),
                    reason: format!("must be positive and finite, got {value}"),
                });
            }
        }
        Ok(())
    }
}

impl Default for ModelParams {
    fn default() -> Self {
        Self::s28_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ModelParams::s28_default().validate().is_ok());
        assert_eq!(ModelParams::default(), ModelParams::s28_default());
    }

    #[test]
    fn invalid_parameters_detected() {
        let mut p = ModelParams::s28_default();
        p.snr.k3 = 0.0;
        assert!(p.validate().is_err());
        let mut p = ModelParams::s28_default();
        p.area.a_sram = SquareF::new(-1.0);
        assert!(p.validate().is_err());
        let mut p = ModelParams::s28_default();
        p.kappa = f64::NAN;
        assert!(p.validate().is_err());
    }

    #[test]
    fn binary_distribution_properties() {
        let d = DataDistribution::binary();
        assert_eq!(d.delta_x(), 1.0);
        assert_eq!(d.delta_w(), 1.0);
        assert!((d.zeta_x_db() - 6.0206).abs() < 0.01);
        assert!((d.x_second_moment() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gaussian_distribution_quantisation_step_shrinks_with_bits() {
        let d4 = DataDistribution::gaussian(4);
        let d8 = DataDistribution::gaussian(8);
        assert!((d4.delta_x() / d8.delta_x() - 16.0).abs() < 1e-12);
        assert!(d8.zeta_x_db() > 9.0);
    }

    #[test]
    fn area_defaults_match_design_doc_anchors() {
        let a = AreaParams::s28_default();
        assert!((a.a_sram.value() - 1612.0).abs() < 1.0);
        assert!((a.a_lc.value() - 5050.0).abs() < 1.0);
        assert!((a.a_comp.value() - 40_000.0).abs() < 1.0);
    }
}
