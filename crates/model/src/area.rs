//! Area estimation (Equation 10).
//!
//! The average area per bit cell is the 8T cell itself plus the amortised
//! share of the local-array-shared computing cell (divided by `L`), the
//! per-column comparator (divided by `H`) and the `B_ADC` SAR flip-flops
//! (divided by `H`):
//!
//! ```text
//! A = A_SRAM + A_LC / L + A_COMP / H + B_ADC · A_DFF / H        [F²/bit]
//! ```

use acim_arch::AcimSpec;
use acim_tech::SquareF;

use crate::error::ModelError;
use crate::params::ModelParams;

/// Average area per bit in F² (Equation 10).
///
/// # Errors
///
/// Returns [`ModelError::InvalidParameter`] when the parameter set fails
/// validation.
pub fn area_f2_per_bit(spec: &AcimSpec, params: &ModelParams) -> Result<f64, ModelError> {
    params.validate()?;
    let a = &params.area;
    let l = spec.local_array() as f64;
    let h = spec.height() as f64;
    let b = f64::from(spec.adc_bits());
    Ok(a.a_sram.value() + a.a_lc.value() / l + a.a_comp.value() / h + b * a.a_dff.value() / h)
}

/// Total macro area in F² (per-bit area times the array size).
///
/// # Errors
///
/// See [`area_f2_per_bit`].
pub fn total_area_f2(spec: &AcimSpec, params: &ModelParams) -> Result<SquareF, ModelError> {
    Ok(SquareF::new(
        area_f2_per_bit(spec, params)? * spec.array_size() as f64,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(h: usize, w: usize, l: usize, b: u32) -> AcimSpec {
        AcimSpec::from_dimensions(h, w, l, b).unwrap()
    }

    #[test]
    fn figure8_area_anchors() {
        // Figure 8: (a) 128x128 L=2 → 4504 F²/bit, (b) 128x128 L=8 → 2610,
        // (c) 64x256 L=8 → 2977.  All at B_ADC = 3.
        let params = ModelParams::s28_default();
        let a = area_f2_per_bit(&spec(128, 128, 2, 3), &params).unwrap();
        let b = area_f2_per_bit(&spec(128, 128, 8, 3), &params).unwrap();
        let c = area_f2_per_bit(&spec(64, 256, 8, 3), &params).unwrap();
        assert!((a - 4504.0).abs() < 30.0, "fig 8(a): {a:.0} F²/bit");
        assert!((b - 2610.0).abs() < 30.0, "fig 8(b): {b:.0} F²/bit");
        assert!((c - 2977.0).abs() < 30.0, "fig 8(c): {c:.0} F²/bit");
    }

    #[test]
    fn smaller_l_costs_area() {
        let params = ModelParams::s28_default();
        let l2 = area_f2_per_bit(&spec(128, 128, 2, 3), &params).unwrap();
        let l32 = area_f2_per_bit(&spec(128, 128, 32, 2), &params).unwrap();
        assert!(l2 > l32);
    }

    #[test]
    fn smaller_h_costs_area() {
        let params = ModelParams::s28_default();
        let tall = area_f2_per_bit(&spec(256, 64, 8, 3), &params).unwrap();
        let short = area_f2_per_bit(&spec(32, 512, 8, 2), &params).unwrap();
        assert!(short > tall);
    }

    #[test]
    fn more_adc_bits_cost_area() {
        let params = ModelParams::s28_default();
        let b3 = area_f2_per_bit(&spec(128, 128, 4, 3), &params).unwrap();
        let b5 = area_f2_per_bit(&spec(128, 128, 4, 5), &params).unwrap();
        assert!(b5 > b3);
        assert!(
            (b5 - b3 - 2.0 * params.area.a_dff.value() / 128.0).abs() < 1e-9,
            "difference should be exactly 2·A_DFF/H"
        );
    }

    #[test]
    fn total_area_scales_with_array_size() {
        let params = ModelParams::s28_default();
        let small = total_area_f2(&spec(128, 32, 8, 3), &params).unwrap();
        let large = total_area_f2(&spec(128, 128, 8, 3), &params).unwrap();
        assert!((large.value() / small.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn area_is_in_papers_band() {
        // The paper reports the design space spanning 1500–7500 F²/bit.
        let params = ModelParams::s28_default();
        for (h, w, l, b) in [
            (128usize, 128usize, 2usize, 3u32),
            (128, 128, 32, 2),
            (32, 512, 16, 1),
            (512, 32, 2, 8),
            (1024, 16, 4, 8),
        ] {
            let area = area_f2_per_bit(&spec(h, w, l, b), &params).unwrap();
            assert!(
                (1500.0..9000.0).contains(&area),
                "area {area:.0} out of band for H={h} W={w} L={l} B={b}"
            );
        }
    }
}
