//! SNR estimation (Equations 2–6 and 11).
//!
//! The total SNR combines three noise mechanisms:
//!
//! * `SQNR_y` — quantisation noise of the output ADC (Equation 6),
//! * `SQNR_i` — output-referred quantisation noise of the inputs and weights
//!   (Equation 4),
//! * `SNR_a` — analog non-idealities: capacitor mismatch, thermal (kT/C)
//!   noise and charge injection (Equation 5; charge injection is eliminated
//!   by bottom-plate sampling and ignored).
//!
//! Noise powers add, so the reciprocal SNRs add (Equations 2–3).  The
//! optimiser uses the simplified closed form of Equation 11, whose constants
//! `k3`/`k4` are calibrated against the behavioural simulator.

use acim_arch::AcimSpec;
use acim_tech::BOLTZMANN_J_PER_K;

use crate::error::ModelError;
use crate::math::{db, from_db, log10_int};
use crate::params::ModelParams;

/// Intermediate quantities of the detailed SNR model, all in dB except the
/// raw variances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnrBreakdown {
    /// Output quantisation SNR, `SQNR_y` (Equation 6).
    pub sqnr_y_db: f64,
    /// Input/weight quantisation SNR, `SQNR_i`.
    pub sqnr_i_db: f64,
    /// Analog SNR, `SNR_a` (Equation 5).
    pub snr_a_db: f64,
    /// Pre-ADC SNR, `SNR_pre` (Equation 3).
    pub snr_pre_db: f64,
    /// Total SNR, `SNR_T` (Equation 2).
    pub snr_total_db: f64,
}

/// Detailed SNR model (Equations 2–6).
///
/// # Errors
///
/// Returns [`ModelError::InvalidParameter`] when the parameter set fails
/// validation.
pub fn snr_detailed_db(spec: &AcimSpec, params: &ModelParams) -> Result<SnrBreakdown, ModelError> {
    params.validate()?;
    let n = spec.dot_product_length() as f64;
    let data = &params.data;

    // Signal power at the output: σ²_yo = N·σ²_w·E[x²].
    let sigma2_w = data.sigma_w * data.sigma_w;
    let e_x2 = data.x_second_moment();
    let sigma2_yo = n * sigma2_w * e_x2;

    // Equation 4: input/weight quantisation noise.
    let delta_x = data.delta_x();
    let delta_w = data.delta_w();
    let sigma2_qi = (n / 12.0) * (delta_x * delta_x * sigma2_w + delta_w * delta_w * e_x2);
    let sqnr_i_db = db(sigma2_yo / sigma2_qi);

    // Equation 5: analog noise.  The three terms are capacitor mismatch,
    // comparator/thermal noise referred to the supply, and charge injection
    // (ignored: bottom-plate sampling).
    let c_o = params.snr.c_o.value();
    let sigma_c = params.kappa * c_o.sqrt();
    let mismatch_term = (sigma_c * sigma_c) / (c_o * c_o);
    let vdd = params.energy.vdd;
    let ktc_v = (BOLTZMANN_J_PER_K * params.temperature_k / (c_o * 1e-15)).sqrt();
    let thermal_term = 2.0 * (ktc_v * ktc_v) / (vdd * vdd);
    let injection_term = 0.0;
    let bw = data.weight_bits as i32;
    let prefactor = (2.0 / 3.0) * (1.0 - 4f64.powi(-bw)) * n;
    let sigma2_eta = prefactor * (e_x2 * mismatch_term + thermal_term + injection_term);
    let snr_a_db = db(sigma2_yo / sigma2_eta.max(1e-30));

    // Equation 3: pre-ADC SNR.
    let snr_pre = 1.0 / (1.0 / from_db(snr_a_db) + 1.0 / from_db(sqnr_i_db));
    let snr_pre_db = db(snr_pre);

    // Equation 6: output quantisation SNR.
    let b_y = f64::from(spec.adc_bits());
    let sqnr_y_db = 6.0 * b_y + 4.8 - (data.zeta_x_db() + data.zeta_w_db()) - 10.0 * n.log10();

    // Equation 2: total.
    let snr_total = 1.0 / (1.0 / from_db(snr_pre_db) + 1.0 / from_db(sqnr_y_db));
    let snr_total_db = db(snr_total);

    Ok(SnrBreakdown {
        sqnr_y_db,
        sqnr_i_db,
        snr_a_db,
        snr_pre_db,
        snr_total_db,
    })
}

/// Simplified SNR model used by the design-space explorer (Equation 11):
///
/// ```text
/// SNR(dB) = 6·B_ADC − 10·log10(H / L) − 10·log10(k3 / C_o) + k4
/// ```
///
/// # Errors
///
/// Returns [`ModelError::InvalidParameter`] when the parameter set fails
/// validation.
pub fn snr_simplified_db(spec: &AcimSpec, params: &ModelParams) -> Result<f64, ModelError> {
    params.validate()?;
    let log10_n = log10_int(spec.dot_product_length());
    let b = f64::from(spec.adc_bits());
    Ok(
        6.0 * b - 10.0 * log10_n - 10.0 * (params.snr.k3 / params.snr.c_o.value()).log10()
            + params.snr.k4,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(h: usize, l: usize, b: u32) -> AcimSpec {
        AcimSpec::from_dimensions(h, 16_384 / h, l, b).unwrap()
    }

    #[test]
    fn simplified_snr_structure() {
        let params = ModelParams::s28_default();
        // +1 ADC bit → +6 dB.
        let b3 = snr_simplified_db(&spec(128, 8, 3), &params).unwrap();
        let b4 = snr_simplified_db(&spec(128, 8, 4), &params).unwrap();
        assert!((b4 - b3 - 6.0).abs() < 1e-9);
        // Doubling N = H/L → −3 dB.
        let n16 = snr_simplified_db(&spec(128, 8, 3), &params).unwrap();
        let n32 = snr_simplified_db(&spec(256, 8, 3), &params).unwrap();
        assert!((n16 - n32 - 10.0 * 2f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn simplified_snr_lands_in_plausible_band() {
        let params = ModelParams::s28_default();
        for (h, l, b) in [
            (128, 2, 3),
            (128, 8, 3),
            (64, 8, 3),
            (512, 2, 8),
            (64, 32, 1),
        ] {
            let snr = snr_simplified_db(&spec(h, l, b), &params).unwrap();
            assert!(
                (0.0..60.0).contains(&snr),
                "SNR {snr:.1} dB out of band for H={h} L={l} B={b}"
            );
        }
    }

    #[test]
    fn detailed_snr_total_is_below_each_component() {
        let params = ModelParams::s28_default();
        let b = snr_detailed_db(&spec(128, 8, 4), &params).unwrap();
        assert!(b.snr_total_db <= b.sqnr_y_db + 1e-9);
        assert!(b.snr_total_db <= b.snr_pre_db + 1e-9);
        assert!(b.snr_pre_db <= b.snr_a_db + 1e-9);
        assert!(b.snr_pre_db <= b.sqnr_i_db + 1e-9);
    }

    #[test]
    fn detailed_snr_improves_with_adc_precision_until_analog_limit() {
        let params = ModelParams::s28_default();
        let low = snr_detailed_db(&spec(128, 8, 2), &params).unwrap();
        let mid = snr_detailed_db(&spec(128, 8, 4), &params).unwrap();
        assert!(mid.snr_total_db > low.snr_total_db);
        // At very high B the total saturates at the pre-ADC SNR.
        let high = snr_detailed_db(&spec(512, 2, 8), &params).unwrap();
        assert!(high.snr_total_db <= high.snr_pre_db + 1e-9);
    }

    #[test]
    fn larger_dot_product_reduces_output_sqnr() {
        let params = ModelParams::s28_default();
        let small_n = snr_detailed_db(&spec(128, 8, 4), &params).unwrap();
        let large_n = snr_detailed_db(&spec(1024, 8, 4), &params).unwrap();
        assert!(small_n.sqnr_y_db > large_n.sqnr_y_db);
    }

    #[test]
    fn invalid_params_propagate() {
        let mut params = ModelParams::s28_default();
        params.snr.k3 = -1.0;
        assert!(snr_simplified_db(&spec(128, 8, 3), &params).is_err());
        assert!(snr_detailed_db(&spec(128, 8, 3), &params).is_err());
    }
}
