//! Shared numeric helpers of the estimation model.
//!
//! One conversion surface for the dB arithmetic used across the SNR model
//! and the calibration fits, plus the table-accelerated `log10` the
//! batched kernel relies on.  Everything here is **bit-identical** to the
//! naive `f64` expression it replaces — the speed comes from memoizing
//! whole function results over the discrete design grid, never from
//! reassociating floating-point operations (see `ModelInvariants`).

use std::sync::LazyLock;

/// Converts a power ratio to decibels: `10·log10(ratio)`.
pub fn db(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Converts decibels back to a power ratio: `10^(dB/10)`.
pub fn from_db(value_db: f64) -> f64 {
    10f64.powf(value_db / 10.0)
}

/// `log10(2^k)` for every `k`, each entry computed by the very
/// `(n as f64).log10()` call it replaces — a table hit is bit-identical
/// by construction.
static LOG10_POW2: LazyLock<[f64; 64]> = LazyLock::new(|| {
    let mut table = [0.0; 64];
    for (k, entry) in table.iter_mut().enumerate() {
        *entry = ((1u64 << k) as f64).log10();
    }
    table
});

/// `log10(n)` for a positive integer, table-accelerated for powers of two.
///
/// The design grid makes `N = H/L` a power of two for every explorable
/// spec (heights are power-of-two divisors, `L ∈ {2, 4, 8, 16, 32}`), so
/// the hot path is a table load; any other `n` falls back to the exact
/// same `(n as f64).log10()` call the table entries were built from.
/// Either way the result is bit-identical to `(n as f64).log10()`.
pub fn log10_int(n: usize) -> f64 {
    if n.is_power_of_two() {
        LOG10_POW2[n.trailing_zeros() as usize]
    } else {
        (n as f64).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_helpers_roundtrip() {
        assert!((from_db(db(123.0)) - 123.0).abs() < 1e-9);
        assert_eq!(db(100.0), 20.0);
    }

    #[test]
    fn log10_table_is_bit_identical_to_libm() {
        for k in 0..64u32 {
            let n = 1usize << k.min(usize::BITS - 1);
            assert_eq!(
                log10_int(n).to_bits(),
                (n as f64).log10().to_bits(),
                "table diverged at 2^{k}"
            );
        }
        // Non-power-of-two fallback.
        for n in [3usize, 5, 7, 12, 100, 12_345] {
            assert_eq!(log10_int(n).to_bits(), (n as f64).log10().to_bits());
        }
    }
}
