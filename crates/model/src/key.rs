//! A compact, hashable identity key for macro specifications.
//!
//! The macro-metric reuse layer (`acim_chip::MacroMetricsCache`) caches
//! closed-form [`crate::DesignMetrics`] per macro.  Its key must capture
//! exactly the inputs the estimation model reads from the specification —
//! the four discrete dimensions (H, W, L, B_ADC) — and nothing more, so
//! that two `AcimSpec` values describing the same macro always share one
//! cache entry.  The model parameters are deliberately **not** part of
//! the key: one cache is paired with one `ModelParams` (the pairing the
//! cache's owner enforces), exactly as the genome-level `CacheStore` is
//! paired with one design space.

use acim_arch::AcimSpec;

/// The quantized identity of one macro specification.
///
/// `AcimSpec`'s dimensions are already discrete, so "quantization" here
/// is exact: the key is the `(H, W, L, B_ADC)` tuple packed into four
/// integers.  Derives `Hash`/`Eq`/`Ord`, making it directly usable as a
/// map key, and is four machine words — cheap to clone and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecKey {
    height: u32,
    width: u32,
    local_array: u32,
    adc_bits: u32,
}

impl SpecKey {
    /// The key of a specification.
    pub fn of(spec: &AcimSpec) -> Self {
        Self {
            height: spec.height() as u32,
            width: spec.width() as u32,
            local_array: spec.local_array() as u32,
            adc_bits: spec.adc_bits(),
        }
    }

    /// The key's four dimension words `[H, W, L, B_ADC]` — the
    /// persistence codec (`acim-persist` stores macro-cache keys as
    /// exactly these words).
    pub fn to_words(self) -> [u32; 4] {
        [self.height, self.width, self.local_array, self.adc_bits]
    }

    /// Rebuilds a key from [`SpecKey::to_words`] output.  Deliberately
    /// unvalidated: a key is an identity, not a specification — words
    /// that never came from a real `AcimSpec` simply name a macro no
    /// lookup will ever ask for, which is harmless (exactly as a stale
    /// cache entry would be).
    pub fn from_words(words: [u32; 4]) -> Self {
        let [height, width, local_array, adc_bits] = words;
        Self {
            height,
            width,
            local_array,
            adc_bits,
        }
    }
}

impl From<&AcimSpec> for SpecKey {
    fn from(spec: &AcimSpec) -> Self {
        Self::of(spec)
    }
}

impl std::fmt::Display for SpecKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{}L{}B{}",
            self.height, self.width, self.local_array, self.adc_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_specs_share_a_key_and_different_specs_do_not() {
        let a = AcimSpec::from_dimensions(128, 32, 4, 3).unwrap();
        let b = AcimSpec::from_dimensions(128, 32, 4, 3).unwrap();
        let c = AcimSpec::from_dimensions(128, 32, 4, 4).unwrap();
        let d = AcimSpec::from_dimensions(64, 64, 4, 3).unwrap();
        assert_eq!(SpecKey::of(&a), SpecKey::of(&b));
        assert_ne!(SpecKey::of(&a), SpecKey::of(&c));
        assert_ne!(SpecKey::of(&a), SpecKey::of(&d));
        assert_eq!(SpecKey::from(&a), SpecKey::of(&a));
    }

    #[test]
    fn words_round_trip_the_key_exactly() {
        let spec = AcimSpec::from_dimensions(128, 32, 4, 3).unwrap();
        let key = SpecKey::of(&spec);
        assert_eq!(key.to_words(), [128, 32, 4, 3]);
        assert_eq!(SpecKey::from_words(key.to_words()), key);
        // Words that never came from a spec still form a usable (if
        // never-matched) identity.
        let alien = SpecKey::from_words([7, 0, 9999, 42]);
        assert_ne!(alien, key);
        assert_eq!(alien.to_words(), [7, 0, 9999, 42]);
    }

    #[test]
    fn key_is_usable_as_a_map_key_and_displays_compactly() {
        let spec = AcimSpec::from_dimensions(256, 16, 8, 4).unwrap();
        let mut map = std::collections::HashMap::new();
        map.insert(SpecKey::of(&spec), 1);
        assert_eq!(map.get(&SpecKey::of(&spec)), Some(&1));
        assert_eq!(SpecKey::of(&spec).to_string(), "256x16L8B4");
    }
}
