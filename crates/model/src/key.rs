//! A compact, hashable identity key for macro specifications.
//!
//! The macro-metric reuse layer (`acim_chip::MacroMetricsCache`) caches
//! closed-form [`crate::DesignMetrics`] per macro.  Its key must capture
//! exactly the inputs the estimation model reads from the specification —
//! the four discrete dimensions (H, W, L, B_ADC) — and nothing more, so
//! that two `AcimSpec` values describing the same macro always share one
//! cache entry.  The model parameters are deliberately **not** part of
//! the key: one cache is paired with one `ModelParams` (the pairing the
//! cache's owner enforces), exactly as the genome-level `CacheStore` is
//! paired with one design space.

use acim_arch::AcimSpec;

/// The quantized identity of one macro specification.
///
/// `AcimSpec`'s dimensions are already discrete, so "quantization" here
/// is exact: the key is the `(H, W, L, B_ADC)` tuple packed into four
/// integers.  Derives `Hash`/`Eq`/`Ord`, making it directly usable as a
/// map key, and is four machine words — cheap to clone and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpecKey {
    height: u32,
    width: u32,
    local_array: u32,
    adc_bits: u32,
}

impl SpecKey {
    /// The key of a specification.
    pub fn of(spec: &AcimSpec) -> Self {
        Self {
            height: spec.height() as u32,
            width: spec.width() as u32,
            local_array: spec.local_array() as u32,
            adc_bits: spec.adc_bits(),
        }
    }
}

impl From<&AcimSpec> for SpecKey {
    fn from(spec: &AcimSpec) -> Self {
        Self::of(spec)
    }
}

impl std::fmt::Display for SpecKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}x{}L{}B{}",
            self.height, self.width, self.local_array, self.adc_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_specs_share_a_key_and_different_specs_do_not() {
        let a = AcimSpec::from_dimensions(128, 32, 4, 3).unwrap();
        let b = AcimSpec::from_dimensions(128, 32, 4, 3).unwrap();
        let c = AcimSpec::from_dimensions(128, 32, 4, 4).unwrap();
        let d = AcimSpec::from_dimensions(64, 64, 4, 3).unwrap();
        assert_eq!(SpecKey::of(&a), SpecKey::of(&b));
        assert_ne!(SpecKey::of(&a), SpecKey::of(&c));
        assert_ne!(SpecKey::of(&a), SpecKey::of(&d));
        assert_eq!(SpecKey::from(&a), SpecKey::of(&a));
    }

    #[test]
    fn key_is_usable_as_a_map_key_and_displays_compactly() {
        let spec = AcimSpec::from_dimensions(256, 16, 8, 4).unwrap();
        let mut map = std::collections::HashMap::new();
        map.insert(SpecKey::of(&spec), 1);
        assert_eq!(map.get(&SpecKey::of(&spec)), Some(&1));
        assert_eq!(SpecKey::of(&spec).to_string(), "256x16L8B4");
    }
}
