//! The batched, allocation-free evaluation kernel of the closed-form
//! model (Equations 2–11).
//!
//! The design-space explorers evaluate the same `ModelParams` against tens
//! of thousands of `(H, W, L, B_ADC)` points, yet the historical scalar
//! path re-derived every parameter-only quantity — validation, the
//! `10·log10(k3/C_o)` dB term, the per-precision ADC energy and cycle
//! time — on every call.  This module splits the work by what it depends
//! on:
//!
//! * [`ModelInvariants`] — everything that depends **only on the
//!   parameters**, computed once per problem: validation, hoisted
//!   constants, and per-`B_ADC` tables over the discrete `1..=8` precision
//!   grid (the full `adc_energy(B)` and `cycle_time(B)` results, `6·B`,
//!   `B·A_DFF`).  Memoizing a whole function result over its exact integer
//!   domain is bit-identical by construction — no floating-point operation
//!   is reordered.
//! * [`SpecBatch`] — a reusable struct-of-arrays scratch buffer the
//!   explorers decode whole cohorts into, so the per-genome path touches
//!   no allocator.
//! * [`ModelInvariants::evaluate_spec`] /
//!   [`ModelInvariants::evaluate_batch`] — the per-design remainder:
//!   a handful of flops per objective, guaranteed bit-identical to
//!   [`crate::objectives::evaluate`] (the equivalence proptests in
//!   `tests/properties.rs` pin this for the whole discrete grid).
//!
//! # Table-vs-`powf` policy
//!
//! A transcendental call is only replaced by a table when the table entry
//! is produced by *the same call on the same input* (`adc_energy(B)` for
//! the eight valid precisions, `log10(2^k)` via [`crate::math::log10_int`]).
//! Fast paths that change results — currently reciprocal multiplication
//! instead of division in the throughput term — are compiled in only with
//! the opt-in `fast-math` feature, which is **off by default** and
//! excluded from the frontier-reproduction tests.

use acim_arch::spec::MAX_ADC_BITS;
use acim_arch::AcimSpec;

use crate::error::ModelError;
use crate::math::log10_int;
use crate::objectives::DesignMetrics;
use crate::params::ModelParams;

/// Table length for per-`B_ADC` lookups: precisions `1..=MAX_ADC_BITS`,
/// index 0 unused.
const B_TABLE: usize = MAX_ADC_BITS as usize + 1;

/// Every parameter-only quantity of the closed-form model, hoisted out of
/// the per-design path.
///
/// Construction runs the full parameter validation (and costs more than a
/// single scalar evaluation — build one per problem or batch, never per
/// design); afterwards evaluation is infallible, because every input that
/// could fail has already been checked.
#[derive(Debug, Clone)]
pub struct ModelInvariants {
    /// Hoisted SNR constant `10·log10(k3/C_o)` (Equation 11).
    log_term_db: f64,
    /// SNR offset `k4` (Equation 11).
    k4: f64,
    /// `6·B` per ADC precision (Equation 11).
    six_b: [f64; B_TABLE],
    /// Conversion-cycle time in **picoseconds** per ADC precision
    /// (`cycle_time(B)`), for [`ModelInvariants::cycle_time_ns`].
    cycle_ps: [f64; B_TABLE],
    /// Conversion-cycle time in **seconds** per ADC precision
    /// (Equation 7): `cycle_time(B) · 1e-12`.
    #[cfg_attr(feature = "fast-math", allow(dead_code))]
    cycle_s: [f64; B_TABLE],
    /// Reciprocal throughput factor `1 / (cycle_s · 1e12)` per precision —
    /// only used by the opt-in `fast-math` path.
    #[cfg_attr(not(feature = "fast-math"), allow(dead_code))]
    tops_factor: [f64; B_TABLE],
    /// Full ADC conversion energy `adc_energy(B)` in fJ per precision
    /// (Equation 9).
    adc_fj: [f64; B_TABLE],
    /// `E_compute + E_control` in fJ (Equation 8).
    e_static_fj: f64,
    /// `A_SRAM` in F² (Equation 10).
    a_sram: f64,
    /// `A_LC` in F² (Equation 10).
    a_lc: f64,
    /// `A_COMP` in F² (Equation 10).
    a_comp: f64,
    /// `B · A_DFF` in F² per ADC precision (Equation 10).
    b_a_dff: [f64; B_TABLE],
}

impl ModelInvariants {
    /// Validates `params` and hoists every parameter-only quantity.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] when the parameter set fails validation —
    /// the same failures the scalar path reports per call.
    pub fn new(params: &ModelParams) -> Result<Self, ModelError> {
        params.validate()?;
        let timing = &params.timing;
        if timing.t_compute.value() <= 0.0
            || timing.tau.value() <= 0.0
            || timing.t_conv_per_bit.value() <= 0.0
        {
            return Err(ModelError::InvalidParameter {
                name: "timing".into(),
                reason: "all timing parameters must be positive".into(),
            });
        }
        let mut six_b = [0.0; B_TABLE];
        let mut cycle_ps = [0.0; B_TABLE];
        let mut cycle_s = [0.0; B_TABLE];
        let mut tops_factor = [0.0; B_TABLE];
        let mut adc_fj = [0.0; B_TABLE];
        let mut b_a_dff = [0.0; B_TABLE];
        for b in 1..=MAX_ADC_BITS {
            let i = b as usize;
            six_b[i] = 6.0 * f64::from(b);
            cycle_ps[i] = timing.cycle_time(b).value();
            cycle_s[i] = cycle_ps[i] * 1e-12;
            tops_factor[i] = 1.0 / (cycle_s[i] * 1e12);
            adc_fj[i] = params.energy.adc_energy(b)?.value();
            b_a_dff[i] = f64::from(b) * params.area.a_dff.value();
        }
        Ok(Self {
            log_term_db: 10.0 * (params.snr.k3 / params.snr.c_o.value()).log10(),
            k4: params.snr.k4,
            six_b,
            cycle_ps,
            cycle_s,
            tops_factor,
            adc_fj,
            e_static_fj: (params.energy.e_compute + params.energy.e_control).value(),
            a_sram: params.area.a_sram.value(),
            a_lc: params.area.a_lc.value(),
            a_comp: params.area.a_comp.value(),
            b_a_dff,
        })
    }

    /// Evaluates one design through the hoisted invariants — bit-identical
    /// to [`crate::objectives::evaluate`], but infallible and with no
    /// per-parameter work left on the path.
    pub fn evaluate_spec(&self, spec: &AcimSpec) -> DesignMetrics {
        self.evaluate_dims(
            spec.height(),
            spec.width(),
            spec.local_array(),
            spec.adc_bits(),
        )
    }

    /// Evaluates a whole struct-of-arrays batch into `out` (cleared
    /// first), one [`DesignMetrics`] per design **in input order**.
    ///
    /// The only allocation is `out`'s growth beyond its retained capacity;
    /// a reused output buffer makes the loop allocation-free.
    pub fn evaluate_batch(&self, batch: &SpecBatch, out: &mut Vec<DesignMetrics>) {
        out.clear();
        out.reserve(batch.len());
        for i in 0..batch.len() {
            out.push(self.evaluate_dims(
                batch.height[i] as usize,
                batch.width[i] as usize,
                batch.local[i] as usize,
                batch.adc_bits[i],
            ));
        }
    }

    /// The shared per-design kernel over raw, pre-validated dimensions.
    ///
    /// Every expression keeps the operand order and association of the
    /// scalar path (`snr.rs` / `acim-arch` timing + energy / `area.rs`) —
    /// hoisting moved work, it did not reassociate it.
    #[inline]
    fn evaluate_dims(
        &self,
        height: usize,
        width: usize,
        local: usize,
        adc_bits: u32,
    ) -> DesignMetrics {
        let b = adc_bits as usize;
        debug_assert!((1..B_TABLE).contains(&b), "B_ADC={adc_bits} out of range");
        let n = height / local;
        let n_f = n as f64;
        let h_f = height as f64;
        let l_f = local as f64;

        // Equation 11 (snr_simplified_db minus the per-call validation).
        let snr_db = self.six_b[b] - 10.0 * log10_int(n) - self.log_term_db + self.k4;

        // Equation 7 (TimingModel::throughput_ops / 1e12).
        let macs_f = (n * width) as f64;
        #[cfg(not(feature = "fast-math"))]
        let throughput_tops = 2.0 * macs_f / self.cycle_s[b] / 1e12;
        #[cfg(feature = "fast-math")]
        let throughput_tops = 2.0 * macs_f * self.tops_factor[b];

        // Equations 8–9 (EnergyModelParams::energy_per_mac / tops_per_watt).
        let energy_per_mac_fj = self.e_static_fj + self.adc_fj[b] / n_f;
        let tops_per_watt = 2.0 / energy_per_mac_fj * 1000.0;

        // Equation 10 (area_f2_per_bit minus the per-call validation).
        let area_f2_per_bit =
            self.a_sram + self.a_lc / l_f + self.a_comp / h_f + self.b_a_dff[b] / h_f;

        DesignMetrics {
            snr_db,
            throughput_tops,
            energy_per_mac_fj,
            tops_per_watt,
            area_f2_per_bit,
        }
    }

    /// Conversion-cycle time in nanoseconds for a precision (the hoisted
    /// [`crate::throughput::cycle_time_ns`]).
    pub fn cycle_time_ns(&self, adc_bits: u32) -> f64 {
        self.cycle_ps[adc_bits as usize] / 1000.0
    }
}

/// A reusable struct-of-arrays buffer of decoded `(H, W, L, B_ADC)`
/// design points.
///
/// The explorers decode a whole cohort into one `SpecBatch` (retaining
/// capacity across generations via [`SpecBatch::clear`]) and hand it to
/// [`ModelInvariants::evaluate_batch`], keeping the hot loop free of both
/// `AcimSpec` re-validation and allocator traffic.
#[derive(Debug, Clone, Default)]
pub struct SpecBatch {
    height: Vec<u32>,
    width: Vec<u32>,
    local: Vec<u32>,
    adc_bits: Vec<u32>,
}

impl SpecBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty batch with room for `capacity` designs.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            height: Vec::with_capacity(capacity),
            width: Vec::with_capacity(capacity),
            local: Vec::with_capacity(capacity),
            adc_bits: Vec::with_capacity(capacity),
        }
    }

    /// Appends one validated design point.
    pub fn push_spec(&mut self, spec: &AcimSpec) {
        self.height.push(spec.height() as u32);
        self.width.push(spec.width() as u32);
        self.local.push(spec.local_array() as u32);
        self.adc_bits.push(spec.adc_bits());
    }

    /// Number of buffered designs.
    pub fn len(&self) -> usize {
        self.height.len()
    }

    /// Returns `true` when no designs are buffered.
    pub fn is_empty(&self) -> bool {
        self.height.is_empty()
    }

    /// Empties the batch, retaining the allocated capacity for reuse.
    pub fn clear(&mut self) {
        self.height.clear();
        self.width.clear();
        self.local.clear();
        self.adc_bits.clear();
    }
}

/// Evaluates a whole struct-of-arrays batch with freshly hoisted
/// invariants — the one-shot convenience over
/// [`ModelInvariants::evaluate_batch`].  Long-lived problems should hoist
/// [`ModelInvariants`] once at construction instead.
///
/// # Errors
///
/// Returns [`ModelError`] when the parameter set fails validation.
pub fn evaluate_batch(
    params: &ModelParams,
    batch: &SpecBatch,
    out: &mut Vec<DesignMetrics>,
) -> Result<(), ModelError> {
    ModelInvariants::new(params)?.evaluate_batch(batch, out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objectives::evaluate;

    fn spec(h: usize, w: usize, l: usize, b: u32) -> AcimSpec {
        AcimSpec::from_dimensions(h, w, l, b).unwrap()
    }

    fn assert_bit_identical(a: &DesignMetrics, b: &DesignMetrics) {
        assert_eq!(a.snr_db.to_bits(), b.snr_db.to_bits());
        // The opt-in fast-math path replaces the throughput division with
        // a reciprocal multiply and is only ulp-close, not bit-identical.
        #[cfg(not(feature = "fast-math"))]
        assert_eq!(a.throughput_tops.to_bits(), b.throughput_tops.to_bits());
        #[cfg(feature = "fast-math")]
        assert!(
            (a.throughput_tops - b.throughput_tops).abs() <= b.throughput_tops.abs() * 1e-12,
            "fast-math throughput drifted: {} vs {}",
            a.throughput_tops,
            b.throughput_tops
        );
        assert_eq!(a.energy_per_mac_fj.to_bits(), b.energy_per_mac_fj.to_bits());
        assert_eq!(a.tops_per_watt.to_bits(), b.tops_per_watt.to_bits());
        assert_eq!(a.area_f2_per_bit.to_bits(), b.area_f2_per_bit.to_bits());
    }

    #[test]
    fn invariant_path_matches_scalar_path_bitwise() {
        let params = ModelParams::s28_default();
        let inv = ModelInvariants::new(&params).unwrap();
        for (h, w, l, b) in [
            (128usize, 128usize, 2usize, 3u32),
            (128, 128, 8, 3),
            (64, 256, 8, 3),
            (512, 32, 2, 8),
            (1024, 16, 4, 8),
            (64, 64, 32, 1),
        ] {
            let s = spec(h, w, l, b);
            let scalar = evaluate(&s, &params).unwrap();
            assert_bit_identical(&inv.evaluate_spec(&s), &scalar);
        }
    }

    #[test]
    fn batch_matches_scalar_in_order() {
        let params = ModelParams::s28_default();
        let specs = [
            spec(128, 128, 2, 3),
            spec(128, 128, 8, 3),
            spec(512, 32, 2, 8),
        ];
        let mut batch = SpecBatch::with_capacity(specs.len());
        for s in &specs {
            batch.push_spec(s);
        }
        assert_eq!(batch.len(), 3);
        let mut out = Vec::new();
        evaluate_batch(&params, &batch, &mut out).unwrap();
        assert_eq!(out.len(), 3);
        for (s, batched) in specs.iter().zip(&out) {
            assert_bit_identical(batched, &evaluate(s, &params).unwrap());
        }
        // Clearing retains capacity and empties the batch.
        batch.clear();
        assert!(batch.is_empty());
    }

    #[test]
    fn batch_output_buffer_is_reusable() {
        let params = ModelParams::s28_default();
        let inv = ModelInvariants::new(&params).unwrap();
        let mut batch = SpecBatch::new();
        batch.push_spec(&spec(128, 128, 8, 3));
        let mut out = Vec::new();
        inv.evaluate_batch(&batch, &mut out);
        let first = out[0];
        batch.clear();
        batch.push_spec(&spec(128, 128, 8, 3));
        batch.push_spec(&spec(64, 256, 8, 3));
        inv.evaluate_batch(&batch, &mut out);
        assert_eq!(out.len(), 2);
        assert_bit_identical(&out[0], &first);
    }

    #[test]
    fn cycle_time_matches_scalar_helper() {
        let params = ModelParams::s28_default();
        let inv = ModelInvariants::new(&params).unwrap();
        for b in 1..=MAX_ADC_BITS {
            let s = spec(1024, 16, 2, b);
            assert_eq!(
                inv.cycle_time_ns(b).to_bits(),
                crate::throughput::cycle_time_ns(&s, &params).to_bits()
            );
        }
    }

    #[test]
    fn invalid_params_fail_at_hoist_time() {
        let mut params = ModelParams::s28_default();
        params.snr.k3 = -1.0;
        assert!(ModelInvariants::new(&params).is_err());
        let mut params = ModelParams::s28_default();
        params.timing.t_compute = acim_tech::Picosecond::new(0.0);
        assert!(ModelInvariants::new(&params).is_err());
        let mut params = ModelParams::s28_default();
        params.energy.vdd = -0.5;
        assert!(ModelInvariants::new(&params).is_err());
    }
}
