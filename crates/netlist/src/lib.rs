//! # acim-netlist
//!
//! Hierarchical netlist data model, SPICE writer and the template-based ACIM
//! netlist generator of EasyACIM (the "Template-based ACIM Netlist
//! Generator" block of Figure 4).
//!
//! A [`design::Design`] is a set of [`module::Module`]s.  A module has
//! ports, nets and instances; an instance refers either to a leaf cell of
//! the customized cell library (`acim-cell`) or to another module, forming
//! the hierarchy the template-based placer and router walks bottom-up.
//!
//! [`generator::NetlistGenerator`] expands a validated
//! [`acim_arch::AcimSpec`] into the full macro netlist:
//!
//! ```text
//! ACIM_TOP
//! ├── COLUMN × W
//! │   ├── LOCAL_ARRAY × (H / L)      (L SRAM cells + 1 compute cell)
//! │   ├── CMOS switch (CDAC isolation)
//! │   ├── comparator / SA
//! │   ├── SAR_DFF × B_ADC + SAR_CTRL
//! └── input / output buffers
//! ```
//!
//! # Example
//!
//! ```
//! use acim_arch::AcimSpec;
//! use acim_cell::CellLibrary;
//! use acim_netlist::NetlistGenerator;
//! use acim_tech::Technology;
//!
//! # fn main() -> Result<(), acim_netlist::NetlistError> {
//! let tech = Technology::s28();
//! let library = CellLibrary::s28_default(&tech);
//! let spec = AcimSpec::from_dimensions(64, 16, 4, 3)?;
//! let design = NetlistGenerator::new(&library).generate(&spec)?;
//! assert!(design.module("ACIM_TOP").is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod design;
pub mod error;
pub mod generator;
pub mod module;
pub mod spice;
pub mod stats;

pub use design::Design;
pub use error::NetlistError;
pub use generator::NetlistGenerator;
pub use module::{Instance, InstanceRef, Module, PortDirection};
pub use spice::write_spice;
pub use stats::{design_stats, DesignStats};
