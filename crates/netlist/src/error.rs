//! Error types of the netlist crate.

use std::error::Error;
use std::fmt;

use acim_arch::ArchError;
use acim_cell::CellError;

/// Errors produced while building or generating netlists.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A module with the same name already exists in the design.
    DuplicateModule(String),
    /// A referenced module or leaf cell does not exist.
    UnknownReference {
        /// Name of the missing module/cell.
        name: String,
        /// Where it was referenced from.
        referenced_from: String,
    },
    /// An instance connection does not match the target's port list.
    PortMismatch {
        /// Instance name.
        instance: String,
        /// Target module/cell name.
        target: String,
        /// Details of the mismatch.
        details: String,
    },
    /// An error bubbled up from the cell library.
    Cell(CellError),
    /// An error bubbled up from the architecture crate (spec validation).
    Arch(ArchError),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateModule(name) => write!(f, "duplicate module `{name}`"),
            NetlistError::UnknownReference {
                name,
                referenced_from,
            } => write!(
                f,
                "unknown module or cell `{name}` referenced from `{referenced_from}`"
            ),
            NetlistError::PortMismatch {
                instance,
                target,
                details,
            } => write!(
                f,
                "instance `{instance}` of `{target}` has mismatched connections: {details}"
            ),
            NetlistError::Cell(err) => write!(f, "cell library error: {err}"),
            NetlistError::Arch(err) => write!(f, "architecture error: {err}"),
        }
    }
}

impl Error for NetlistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetlistError::Cell(err) => Some(err),
            NetlistError::Arch(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CellError> for NetlistError {
    fn from(err: CellError) -> Self {
        NetlistError::Cell(err)
    }
}

impl From<ArchError> for NetlistError {
    fn from(err: ArchError) -> Self {
        NetlistError::Arch(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: NetlistError = CellError::UnknownCell("X".into()).into();
        assert!(e.to_string().contains("cell library error"));
        let e: NetlistError = ArchError::invalid_spec("c", "d").into();
        assert!(e.to_string().contains("architecture error"));
        let e = NetlistError::UnknownReference {
            name: "FOO".into(),
            referenced_from: "TOP".into(),
        };
        assert!(e.to_string().contains("FOO") && e.to_string().contains("TOP"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
