//! The hierarchical design: a set of modules plus a reference to the leaf
//! cells of the customized cell library.

use std::collections::BTreeMap;

use acim_cell::CellLibrary;

use crate::error::NetlistError;
use crate::module::{InstanceRef, Module};

/// A complete hierarchical netlist.
#[derive(Debug, Clone, Default)]
pub struct Design {
    name: String,
    modules: BTreeMap<String, Module>,
    top: Option<String>,
}

impl Design {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            modules: BTreeMap::new(),
            top: None,
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a module.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateModule`] when a module with the same
    /// name already exists.
    pub fn add_module(&mut self, module: Module) -> Result<(), NetlistError> {
        if self.modules.contains_key(module.name()) {
            return Err(NetlistError::DuplicateModule(module.name().to_string()));
        }
        self.modules.insert(module.name().to_string(), module);
        Ok(())
    }

    /// Marks a module as the top of the hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownReference`] when the module does not
    /// exist.
    pub fn set_top(&mut self, name: &str) -> Result<(), NetlistError> {
        if !self.modules.contains_key(name) {
            return Err(NetlistError::UnknownReference {
                name: name.to_string(),
                referenced_from: "set_top".to_string(),
            });
        }
        self.top = Some(name.to_string());
        Ok(())
    }

    /// The top module, if one has been set.
    pub fn top(&self) -> Option<&Module> {
        self.top.as_deref().and_then(|name| self.modules.get(name))
    }

    /// Looks a module up by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.get(name)
    }

    /// Number of modules.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Iterates over the modules in name order.
    pub fn modules(&self) -> impl Iterator<Item = &Module> {
        self.modules.values()
    }

    /// Validates the design against a cell library: every instance must
    /// reference an existing module or leaf cell, and every connection must
    /// name an existing port of the target.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found.
    pub fn validate(&self, library: &CellLibrary) -> Result<(), NetlistError> {
        for module in self.modules.values() {
            for instance in module.instances() {
                match &instance.reference {
                    InstanceRef::Module(name) => {
                        let target = self.modules.get(name).ok_or_else(|| {
                            NetlistError::UnknownReference {
                                name: name.clone(),
                                referenced_from: module.name().to_string(),
                            }
                        })?;
                        for port in instance.connections.keys() {
                            if !target.port_names().contains(&port.as_str()) {
                                return Err(NetlistError::PortMismatch {
                                    instance: instance.name.clone(),
                                    target: name.clone(),
                                    details: format!("no port `{port}` on module"),
                                });
                            }
                        }
                    }
                    InstanceRef::LeafCell(name) => {
                        let cell = library.cell_by_name(name).ok_or_else(|| {
                            NetlistError::UnknownReference {
                                name: name.clone(),
                                referenced_from: module.name().to_string(),
                            }
                        })?;
                        for port in instance.connections.keys() {
                            if !cell.netlist().ports.iter().any(|p| p == port) {
                                return Err(NetlistError::PortMismatch {
                                    instance: instance.name.clone(),
                                    target: name.clone(),
                                    details: format!("no port `{port}` on leaf cell"),
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Counts the total number of leaf-cell instances of `cell_name` in the
    /// fully elaborated hierarchy under the top module.
    pub fn count_leaf_instances(&self, cell_name: &str) -> usize {
        let Some(top) = self.top() else {
            return 0;
        };
        self.count_in_module(top, cell_name)
    }

    fn count_in_module(&self, module: &Module, cell_name: &str) -> usize {
        let mut total = 0;
        for instance in module.instances() {
            match &instance.reference {
                InstanceRef::LeafCell(name) => {
                    if name == cell_name {
                        total += 1;
                    }
                }
                InstanceRef::Module(name) => {
                    if let Some(child) = self.modules.get(name) {
                        total += self.count_in_module(child, cell_name);
                    }
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Instance;
    use acim_tech::Technology;

    fn library() -> CellLibrary {
        CellLibrary::s28_default(&Technology::s28())
    }

    fn leaf_instance(name: &str, cell: &str, port: &str, net: &str) -> Instance {
        Instance::new(
            name,
            InstanceRef::LeafCell(cell.into()),
            [(port.to_string(), net.to_string())],
        )
    }

    #[test]
    fn duplicate_modules_rejected() {
        let mut design = Design::new("test");
        design.add_module(Module::new("A")).unwrap();
        assert!(matches!(
            design.add_module(Module::new("A")),
            Err(NetlistError::DuplicateModule(_))
        ));
    }

    #[test]
    fn set_top_requires_existing_module() {
        let mut design = Design::new("test");
        assert!(design.set_top("TOP").is_err());
        design.add_module(Module::new("TOP")).unwrap();
        design.set_top("TOP").unwrap();
        assert_eq!(design.top().unwrap().name(), "TOP");
    }

    #[test]
    fn validation_accepts_good_references() {
        let mut design = Design::new("test");
        let mut leaf_user = Module::new("LEAF_USER");
        leaf_user.add_instance(leaf_instance("X0", "SRAM8T", "RWL", "rwl0"));
        design.add_module(leaf_user).unwrap();
        let mut top = Module::new("TOP");
        top.add_instance(Instance::new(
            "XU",
            InstanceRef::Module("LEAF_USER".into()),
            [],
        ));
        design.add_module(top).unwrap();
        design.set_top("TOP").unwrap();
        design.validate(&library()).unwrap();
    }

    #[test]
    fn validation_catches_unknown_cell_and_bad_port() {
        let mut design = Design::new("test");
        let mut m = Module::new("M");
        m.add_instance(leaf_instance("X0", "NOT_A_CELL", "A", "n"));
        design.add_module(m).unwrap();
        assert!(matches!(
            design.validate(&library()),
            Err(NetlistError::UnknownReference { .. })
        ));

        let mut design = Design::new("test2");
        let mut m = Module::new("M");
        m.add_instance(leaf_instance("X0", "SRAM8T", "NOT_A_PORT", "n"));
        design.add_module(m).unwrap();
        assert!(matches!(
            design.validate(&library()),
            Err(NetlistError::PortMismatch { .. })
        ));
    }

    #[test]
    fn hierarchical_leaf_counting() {
        let mut design = Design::new("test");
        let mut inner = Module::new("INNER");
        inner.add_instance(leaf_instance("X0", "SRAM8T", "RWL", "a"));
        inner.add_instance(leaf_instance("X1", "SRAM8T", "RWL", "b"));
        design.add_module(inner).unwrap();
        let mut top = Module::new("TOP");
        for i in 0..3 {
            top.add_instance(Instance::new(
                format!("XI{i}"),
                InstanceRef::Module("INNER".into()),
                [],
            ));
        }
        top.add_instance(leaf_instance("XB", "BUF", "A", "x"));
        design.add_module(top).unwrap();
        design.set_top("TOP").unwrap();
        assert_eq!(design.count_leaf_instances("SRAM8T"), 6);
        assert_eq!(design.count_leaf_instances("BUF"), 1);
        assert_eq!(design.count_leaf_instances("COMP_SA"), 0);
    }
}
