//! Modules, ports, nets and instances.

use std::collections::BTreeMap;
use std::fmt;

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDirection {
    /// Signal input.
    Input,
    /// Signal output.
    Output,
    /// Bidirectional or analog signal.
    Inout,
}

impl fmt::Display for PortDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            PortDirection::Input => "input",
            PortDirection::Output => "output",
            PortDirection::Inout => "inout",
        };
        f.write_str(text)
    }
}

/// What an instance refers to: a leaf cell from the customized cell library
/// or another module of the design.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum InstanceRef {
    /// A leaf cell, by its canonical cell name (e.g. `"SRAM8T"`).
    LeafCell(String),
    /// Another module of the same design.
    Module(String),
}

impl InstanceRef {
    /// The referenced name.
    pub fn name(&self) -> &str {
        match self {
            InstanceRef::LeafCell(name) | InstanceRef::Module(name) => name,
        }
    }
}

/// A placed-in-hierarchy instance: a name, what it instantiates and its
/// port→net connections.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Instance name, unique within its parent module.
    pub name: String,
    /// What the instance refers to.
    pub reference: InstanceRef,
    /// Port-to-net map (port name of the target → net name in the parent).
    pub connections: BTreeMap<String, String>,
}

impl Instance {
    /// Creates an instance.
    pub fn new(
        name: impl Into<String>,
        reference: InstanceRef,
        connections: impl IntoIterator<Item = (String, String)>,
    ) -> Self {
        Self {
            name: name.into(),
            reference,
            connections: connections.into_iter().collect(),
        }
    }

    /// The net connected to `port`, if any.
    pub fn net_for(&self, port: &str) -> Option<&str> {
        self.connections.get(port).map(String::as_str)
    }
}

/// A hierarchical module: ports, nets and instances.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    name: String,
    ports: Vec<(String, PortDirection)>,
    nets: Vec<String>,
    instances: Vec<Instance>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ports: Vec::new(),
            nets: Vec::new(),
            instances: Vec::new(),
        }
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a port (also declares the corresponding net).
    pub fn add_port(&mut self, name: impl Into<String>, direction: PortDirection) {
        let name = name.into();
        self.add_net(name.clone());
        self.ports.push((name, direction));
    }

    /// Declares an internal net (idempotent).
    pub fn add_net(&mut self, name: impl Into<String>) {
        let name = name.into();
        if !self.nets.contains(&name) {
            self.nets.push(name);
        }
    }

    /// Adds an instance.
    pub fn add_instance(&mut self, instance: Instance) {
        // Any net referenced by a connection becomes a net of this module.
        for net in instance.connections.values() {
            self.add_net(net.clone());
        }
        self.instances.push(instance);
    }

    /// Ports in declaration order.
    pub fn ports(&self) -> &[(String, PortDirection)] {
        &self.ports
    }

    /// Port names in declaration order.
    pub fn port_names(&self) -> Vec<&str> {
        self.ports.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// All nets (ports first, then internal nets, in declaration order).
    pub fn nets(&self) -> &[String] {
        &self.nets
    }

    /// Instances in declaration order.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Looks an instance up by name.
    pub fn instance(&self, name: &str) -> Option<&Instance> {
        self.instances.iter().find(|i| i.name == name)
    }

    /// Returns the nets that are not ports.
    pub fn internal_nets(&self) -> Vec<&str> {
        self.nets
            .iter()
            .filter(|n| !self.ports.iter().any(|(p, _)| p == *n))
            .map(String::as_str)
            .collect()
    }

    /// Counts instances whose reference matches `name`.
    pub fn count_instances_of(&self, name: &str) -> usize {
        self.instances
            .iter()
            .filter(|i| i.reference.name() == name)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_module() -> Module {
        let mut m = Module::new("COLUMN");
        m.add_port("RBL", PortDirection::Inout);
        m.add_port("CLK", PortDirection::Input);
        m.add_port("DOUT", PortDirection::Output);
        m.add_net("COM");
        m.add_instance(Instance::new(
            "XCOMP",
            InstanceRef::LeafCell("COMP_SA".into()),
            [
                ("INP".to_string(), "RBL".to_string()),
                ("CLK".to_string(), "CLK".to_string()),
                ("COM".to_string(), "COM".to_string()),
            ],
        ));
        m
    }

    #[test]
    fn ports_are_also_nets() {
        let m = sample_module();
        assert_eq!(m.ports().len(), 3);
        assert!(m.nets().contains(&"RBL".to_string()));
        assert!(m.nets().contains(&"COM".to_string()));
        assert_eq!(m.internal_nets(), vec!["COM"]);
        assert_eq!(m.port_names(), vec!["RBL", "CLK", "DOUT"]);
    }

    #[test]
    fn add_net_is_idempotent() {
        let mut m = Module::new("X");
        m.add_net("A");
        m.add_net("A");
        assert_eq!(m.nets().len(), 1);
    }

    #[test]
    fn instance_lookup_and_counting() {
        let m = sample_module();
        assert!(m.instance("XCOMP").is_some());
        assert!(m.instance("MISSING").is_none());
        assert_eq!(m.count_instances_of("COMP_SA"), 1);
        assert_eq!(m.count_instances_of("SRAM8T"), 0);
        assert_eq!(m.instance("XCOMP").unwrap().net_for("INP"), Some("RBL"));
        assert_eq!(m.instance("XCOMP").unwrap().net_for("NOPE"), None);
    }

    #[test]
    fn instance_connections_create_nets() {
        // A net referenced only by an instance connection is still declared
        // in the parent module.
        let mut m2 = Module::new("Y");
        m2.add_instance(Instance::new(
            "XB",
            InstanceRef::Module("BUF".into()),
            [("A".to_string(), "NEWNET".to_string())],
        ));
        assert!(m2.nets().contains(&"NEWNET".to_string()));
    }

    #[test]
    fn reference_kinds() {
        assert_eq!(InstanceRef::LeafCell("SRAM8T".into()).name(), "SRAM8T");
        assert_eq!(InstanceRef::Module("COLUMN".into()).name(), "COLUMN");
        assert_eq!(PortDirection::Inout.to_string(), "inout");
    }
}
