//! Template-based ACIM netlist generator (Section 3.3).
//!
//! The generator expands a validated [`AcimSpec`] into a three-level
//! hierarchy built from the leaf cells of the customized cell library:
//!
//! * `LOCAL_ARRAY` — `L` 8T SRAM cells sharing one compute cell,
//! * `COLUMN` — `H / L` local arrays, the CMOS isolation switch, the
//!   comparator / sense amplifier, the SAR control logic and `B_ADC`
//!   flip-flops; local arrays are wired to the SAR group-control signals
//!   `P_k` / `N_k` according to the binary CDAC grouping,
//! * `ACIM_TOP` — `W` columns plus the CIM input buffers (one per read
//!   word-line) and the output buffers (one per column output bit).

use acim_arch::AcimSpec;
use acim_cell::{CellKind, CellLibrary};

use crate::design::Design;
use crate::error::NetlistError;
use crate::module::{Instance, InstanceRef, Module, PortDirection};

/// Module names produced by the generator.
pub mod names {
    /// The local-array module.
    pub const LOCAL_ARRAY: &str = "LOCAL_ARRAY";
    /// The column module.
    pub const COLUMN: &str = "COLUMN";
    /// The top-level macro module.
    pub const TOP: &str = "ACIM_TOP";
}

/// Template-based netlist generator bound to a cell library.
#[derive(Debug, Clone)]
pub struct NetlistGenerator<'a> {
    library: &'a CellLibrary,
}

impl<'a> NetlistGenerator<'a> {
    /// Creates a generator using `library` for leaf cells.
    pub fn new(library: &'a CellLibrary) -> Self {
        Self { library }
    }

    /// Generates the full hierarchical netlist for a specification.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError`] when a required leaf cell is missing from
    /// the library or the generated design fails validation.
    pub fn generate(&self, spec: &AcimSpec) -> Result<Design, NetlistError> {
        // Fail early if any required cell is missing.
        for kind in CellKind::all() {
            self.library.require(kind)?;
        }

        let mut design = Design::new(format!(
            "acim_{}x{}_l{}_b{}",
            spec.height(),
            spec.width(),
            spec.local_array(),
            spec.adc_bits()
        ));
        design.add_module(self.local_array_module(spec))?;
        design.add_module(self.column_module(spec))?;
        design.add_module(self.top_module(spec))?;
        design.set_top(names::TOP)?;
        design.validate(self.library)?;
        Ok(design)
    }

    /// `LOCAL_ARRAY`: `L` SRAM cells plus the shared compute cell.
    fn local_array_module(&self, spec: &AcimSpec) -> Module {
        let l = spec.local_array();
        let mut m = Module::new(names::LOCAL_ARRAY);
        for i in 0..l {
            m.add_port(format!("RWL_{i}"), PortDirection::Input);
            m.add_port(format!("WL_{i}"), PortDirection::Input);
        }
        for port in [
            "BL", "BLB", "RBL", "PCH", "RST", "P", "N", "VCM", "VDD", "VSS",
        ] {
            let direction = match port {
                "PCH" | "RST" | "P" | "N" => PortDirection::Input,
                _ => PortDirection::Inout,
            };
            m.add_port(port, direction);
        }
        // The local compute node shared by the read ports of the L cells and
        // the top plate of the compute capacitor.
        m.add_net("LBL");
        for i in 0..l {
            m.add_instance(Instance::new(
                format!("XSRAM_{i}"),
                InstanceRef::LeafCell(CellKind::Sram8T.cell_name().into()),
                [
                    ("WL".to_string(), format!("WL_{i}")),
                    ("RWL".to_string(), format!("RWL_{i}")),
                    ("BL".to_string(), "BL".to_string()),
                    ("BLB".to_string(), "BLB".to_string()),
                    ("RBL".to_string(), "LBL".to_string()),
                    ("VDD".to_string(), "VDD".to_string()),
                    ("VSS".to_string(), "VSS".to_string()),
                ],
            ));
        }
        m.add_instance(Instance::new(
            "XLC",
            InstanceRef::LeafCell(CellKind::ComputeCell.cell_name().into()),
            [
                ("MOUT".to_string(), "LBL".to_string()),
                ("RBL".to_string(), "RBL".to_string()),
                ("PCH".to_string(), "PCH".to_string()),
                ("RST".to_string(), "RST".to_string()),
                ("P".to_string(), "P".to_string()),
                ("N".to_string(), "N".to_string()),
                ("VCM".to_string(), "VCM".to_string()),
                ("VDD".to_string(), "VDD".to_string()),
                ("VSS".to_string(), "VSS".to_string()),
            ],
        ));
        m
    }

    /// `COLUMN`: `H / L` local arrays, CDAC isolation switch, comparator,
    /// SAR logic and `B_ADC` flip-flops.
    fn column_module(&self, spec: &AcimSpec) -> Module {
        let l = spec.local_array();
        let n_local = spec.capacitors_per_column();
        let bits = spec.adc_bits() as usize;
        let mut m = Module::new(names::COLUMN);

        for row in 0..spec.height() {
            m.add_port(format!("RWL_{row}"), PortDirection::Input);
            m.add_port(format!("WL_{row}"), PortDirection::Input);
        }
        for bit in 0..bits {
            m.add_port(format!("DOUT_{bit}"), PortDirection::Output);
        }
        for port in [
            "BL", "BLB", "PCH", "RST", "CLK", "START", "VCM", "VDD", "VSS",
        ] {
            let direction = match port {
                "BL" | "BLB" | "VCM" | "VDD" | "VSS" => PortDirection::Inout,
                _ => PortDirection::Input,
            };
            m.add_port(port, direction);
        }
        // The column read bit-line every compute cell redistributes onto.
        m.add_net("RBL");

        // Assign local arrays to SAR groups: group k gets
        // `sar_group_sizes()[k]` consecutive local arrays; any spare local
        // arrays beyond 2^B reuse the last group's controls (they are
        // isolated by the CMOS switch during conversion).
        let group_sizes = spec.sar_group_sizes();
        let mut group_of_local = Vec::with_capacity(n_local);
        for (group, &size) in group_sizes.iter().enumerate() {
            for _ in 0..size {
                group_of_local.push(group);
            }
        }
        while group_of_local.len() < n_local {
            group_of_local.push(group_sizes.len() - 1);
        }

        for (j, &group) in group_of_local.iter().enumerate().take(n_local) {
            let mut connections = vec![
                ("BL".to_string(), "BL".to_string()),
                ("BLB".to_string(), "BLB".to_string()),
                ("RBL".to_string(), "RBL".to_string()),
                ("PCH".to_string(), "PCH".to_string()),
                ("RST".to_string(), "RST".to_string()),
                ("P".to_string(), format!("P_{group}")),
                ("N".to_string(), format!("N_{group}")),
                ("VCM".to_string(), "VCM".to_string()),
                ("VDD".to_string(), "VDD".to_string()),
                ("VSS".to_string(), "VSS".to_string()),
            ];
            for i in 0..l {
                let row = j * l + i;
                connections.push((format!("RWL_{i}"), format!("RWL_{row}")));
                connections.push((format!("WL_{i}"), format!("WL_{row}")));
            }
            m.add_instance(Instance::new(
                format!("XLA_{j}"),
                InstanceRef::Module(names::LOCAL_ARRAY.into()),
                connections,
            ));
        }

        // CMOS switch separating the spare (non-CDAC) capacitance from the
        // RBL during conversion (Section 3.1).
        m.add_instance(Instance::new(
            "XSW",
            InstanceRef::LeafCell(CellKind::CmosSwitch.cell_name().into()),
            [
                ("A".to_string(), "RBL".to_string()),
                ("B".to_string(), "RBL_SPARE".to_string()),
                ("EN".to_string(), "RST".to_string()),
                ("ENB".to_string(), "PCH".to_string()),
                ("VDD".to_string(), "VDD".to_string()),
                ("VSS".to_string(), "VSS".to_string()),
            ],
        ));

        // Comparator / sense amplifier.
        m.add_instance(Instance::new(
            "XCOMP",
            InstanceRef::LeafCell(CellKind::Comparator.cell_name().into()),
            [
                ("INP".to_string(), "RBL".to_string()),
                ("INN".to_string(), "VCM".to_string()),
                ("CLK".to_string(), "CLK".to_string()),
                ("COM".to_string(), "COM".to_string()),
                ("COMB".to_string(), "COMB".to_string()),
                ("VDD".to_string(), "VDD".to_string()),
                ("VSS".to_string(), "VSS".to_string()),
            ],
        ));

        // SAR sequencing logic.
        m.add_instance(Instance::new(
            "XSARCTRL",
            InstanceRef::LeafCell(CellKind::SarLogic.cell_name().into()),
            [
                ("CLK".to_string(), "CLK".to_string()),
                ("COM".to_string(), "COM".to_string()),
                ("COMB".to_string(), "COMB".to_string()),
                ("START".to_string(), "START".to_string()),
                ("DONE".to_string(), "SAR_DONE".to_string()),
                ("VDD".to_string(), "VDD".to_string()),
                ("VSS".to_string(), "VSS".to_string()),
            ],
        ));

        // One DFF per output bit; Q drives the data output and the P/N
        // group-control signal of the matching SAR group.
        for bit in 0..bits {
            m.add_instance(Instance::new(
                format!("XDFF_{bit}"),
                InstanceRef::LeafCell(CellKind::SarDff.cell_name().into()),
                [
                    ("D".to_string(), "COM".to_string()),
                    ("CLK".to_string(), "CLK".to_string()),
                    ("Q".to_string(), format!("DOUT_{bit}")),
                    ("QB".to_string(), format!("N_{}", bit + 1)),
                    ("VDD".to_string(), "VDD".to_string()),
                    ("VSS".to_string(), "VSS".to_string()),
                ],
            ));
            // The positive group control is the DFF output itself.
            m.add_net(format!("P_{}", bit + 1));
        }
        // Group 0 (the LSB dummy group) is tied to the reset phase controls.
        m.add_net("P_0");
        m.add_net("N_0");
        m
    }

    /// `ACIM_TOP`: `W` columns plus input and output buffers.
    fn top_module(&self, spec: &AcimSpec) -> Module {
        let bits = spec.adc_bits() as usize;
        let mut m = Module::new(names::TOP);
        for row in 0..spec.height() {
            m.add_port(format!("IN_{row}"), PortDirection::Input);
            m.add_port(format!("WL_{row}"), PortDirection::Input);
        }
        for col in 0..spec.width() {
            for bit in 0..bits {
                m.add_port(format!("OUT_{col}_{bit}"), PortDirection::Output);
            }
            m.add_port(format!("BL_{col}"), PortDirection::Inout);
            m.add_port(format!("BLB_{col}"), PortDirection::Inout);
        }
        for port in ["PCH", "RST", "CLK", "START", "VCM", "VDD", "VSS"] {
            let direction = match port {
                "VCM" | "VDD" | "VSS" => PortDirection::Inout,
                _ => PortDirection::Input,
            };
            m.add_port(port, direction);
        }

        // CIM input buffers: one per read word-line, driving the buffered
        // RWL distributed to every column.
        for row in 0..spec.height() {
            m.add_instance(Instance::new(
                format!("XIBUF_{row}"),
                InstanceRef::LeafCell(CellKind::Buffer.cell_name().into()),
                [
                    ("A".to_string(), format!("IN_{row}")),
                    ("Y".to_string(), format!("RWL_{row}")),
                    ("VDD".to_string(), "VDD".to_string()),
                    ("VSS".to_string(), "VSS".to_string()),
                ],
            ));
        }

        // Columns.
        for col in 0..spec.width() {
            let mut connections = vec![
                ("BL".to_string(), format!("BL_{col}")),
                ("BLB".to_string(), format!("BLB_{col}")),
                ("PCH".to_string(), "PCH".to_string()),
                ("RST".to_string(), "RST".to_string()),
                ("CLK".to_string(), "CLK".to_string()),
                ("START".to_string(), "START".to_string()),
                ("VCM".to_string(), "VCM".to_string()),
                ("VDD".to_string(), "VDD".to_string()),
                ("VSS".to_string(), "VSS".to_string()),
            ];
            for row in 0..spec.height() {
                connections.push((format!("RWL_{row}"), format!("RWL_{row}")));
                connections.push((format!("WL_{row}"), format!("WL_{row}")));
            }
            for bit in 0..bits {
                connections.push((format!("DOUT_{bit}"), format!("D_{col}_{bit}")));
            }
            m.add_instance(Instance::new(
                format!("XCOL_{col}"),
                InstanceRef::Module(names::COLUMN.into()),
                connections,
            ));
        }

        // CIM output buffers: one per column output bit.
        for col in 0..spec.width() {
            for bit in 0..bits {
                m.add_instance(Instance::new(
                    format!("XOBUF_{col}_{bit}"),
                    InstanceRef::LeafCell(CellKind::Buffer.cell_name().into()),
                    [
                        ("A".to_string(), format!("D_{col}_{bit}")),
                        ("Y".to_string(), format!("OUT_{col}_{bit}")),
                        ("VDD".to_string(), "VDD".to_string()),
                        ("VSS".to_string(), "VSS".to_string()),
                    ],
                ));
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acim_tech::Technology;

    fn generate(h: usize, w: usize, l: usize, b: u32) -> Design {
        let tech = Technology::s28();
        let library = CellLibrary::s28_default(&tech);
        let spec = AcimSpec::from_dimensions(h, w, l, b).unwrap();
        NetlistGenerator::new(&library).generate(&spec).unwrap()
    }

    #[test]
    fn generated_design_validates_and_has_three_levels() {
        let design = generate(64, 16, 4, 3);
        assert_eq!(design.module_count(), 3);
        assert!(design.module(names::LOCAL_ARRAY).is_some());
        assert!(design.module(names::COLUMN).is_some());
        assert_eq!(design.top().unwrap().name(), names::TOP);
    }

    #[test]
    fn leaf_instance_counts_match_the_architecture() {
        let (h, w, l, b) = (64usize, 16usize, 4usize, 3u32);
        let design = generate(h, w, l, b);
        // One SRAM cell per bit.
        assert_eq!(design.count_leaf_instances("SRAM8T"), h * w);
        // One compute cell per local array.
        assert_eq!(design.count_leaf_instances("LC_CELL"), (h / l) * w);
        // One comparator, switch and SAR controller per column.
        assert_eq!(design.count_leaf_instances("COMP_SA"), w);
        assert_eq!(design.count_leaf_instances("CSW"), w);
        assert_eq!(design.count_leaf_instances("SAR_CTRL"), w);
        // B_ADC flip-flops per column.
        assert_eq!(design.count_leaf_instances("SAR_DFF"), w * b as usize);
        // H input buffers + W·B output buffers.
        assert_eq!(design.count_leaf_instances("BUF"), h + w * b as usize);
    }

    #[test]
    fn column_module_wires_sar_groups_binary() {
        let design = generate(128, 16, 8, 3);
        let column = design.module(names::COLUMN).unwrap();
        // 16 local arrays; group sizes 1,1,2,4 fill 8, the remaining 8 spare
        // local arrays reuse the last group.
        let p_of = |j: usize| {
            column
                .instance(&format!("XLA_{j}"))
                .unwrap()
                .net_for("P")
                .unwrap()
                .to_string()
        };
        assert_eq!(p_of(0), "P_0");
        assert_eq!(p_of(1), "P_1");
        assert_eq!(p_of(2), "P_2");
        assert_eq!(p_of(3), "P_2");
        assert_eq!(p_of(4), "P_3");
        assert_eq!(p_of(7), "P_3");
        assert_eq!(p_of(8), "P_3", "spare local arrays reuse the last group");
        assert_eq!(p_of(15), "P_3");
    }

    #[test]
    fn local_array_has_l_sram_cells_and_one_compute_cell() {
        let design = generate(64, 16, 4, 3);
        let la = design.module(names::LOCAL_ARRAY).unwrap();
        assert_eq!(la.count_instances_of("SRAM8T"), 4);
        assert_eq!(la.count_instances_of("LC_CELL"), 1);
        // All SRAM read ports share the local bit-line.
        for i in 0..4 {
            assert_eq!(
                la.instance(&format!("XSRAM_{i}")).unwrap().net_for("RBL"),
                Some("LBL")
            );
        }
        assert_eq!(la.instance("XLC").unwrap().net_for("MOUT"), Some("LBL"));
    }

    #[test]
    fn top_module_exposes_the_expected_interface() {
        let design = generate(64, 16, 4, 3);
        let top = design.top().unwrap();
        let ports = top.port_names();
        assert!(ports.contains(&"IN_0"));
        assert!(ports.contains(&"IN_63"));
        assert!(ports.contains(&"OUT_15_2"));
        assert!(ports.contains(&"CLK"));
        assert_eq!(top.count_instances_of(names::COLUMN), 16);
    }

    #[test]
    fn design_name_encodes_the_spec() {
        let design = generate(128, 128, 8, 3);
        assert_eq!(design.name(), "acim_128x128_l8_b3");
    }
}
