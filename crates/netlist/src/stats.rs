//! Netlist statistics.
//!
//! Device and instance counts for a generated design — used by reports, by
//! the Table 2 reproduction (design-complexity context) and by tests that
//! check the generator scales correctly with (H, W, L, B_ADC).

use acim_cell::CellLibrary;

use crate::design::Design;
use crate::error::NetlistError;

/// Aggregate statistics of a hierarchical design, fully elaborated from the
/// top module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DesignStats {
    /// Number of 8T SRAM bit cells.
    pub sram_cells: usize,
    /// Number of local-array compute cells.
    pub compute_cells: usize,
    /// Number of comparators / sense amplifiers.
    pub comparators: usize,
    /// Number of SAR flip-flops.
    pub sar_dffs: usize,
    /// Number of buffers.
    pub buffers: usize,
    /// Total leaf-cell instances (all kinds).
    pub total_leaf_instances: usize,
    /// Total transistor count (elaborated).
    pub transistors: usize,
    /// Total compute/CDAC capacitor count (elaborated).
    pub capacitors: usize,
}

/// Computes the statistics of a design against a cell library.
///
/// # Errors
///
/// Returns [`NetlistError::UnknownReference`] when the design references a
/// leaf cell missing from the library.
pub fn design_stats(design: &Design, library: &CellLibrary) -> Result<DesignStats, NetlistError> {
    let mut stats = DesignStats::default();
    let count = |cell_name: &str| -> Result<usize, NetlistError> {
        let instances = design.count_leaf_instances(cell_name);
        if instances > 0 && library.cell_by_name(cell_name).is_none() {
            return Err(NetlistError::UnknownReference {
                name: cell_name.to_string(),
                referenced_from: "design_stats".to_string(),
            });
        }
        Ok(instances)
    };
    stats.sram_cells = count("SRAM8T")?;
    stats.compute_cells = count("LC_CELL")?;
    stats.comparators = count("COMP_SA")?;
    stats.sar_dffs = count("SAR_DFF")?;
    stats.buffers = count("BUF")?;
    let switches = count("CSW")?;
    let sar_ctrl = count("SAR_CTRL")?;
    stats.total_leaf_instances = stats.sram_cells
        + stats.compute_cells
        + stats.comparators
        + stats.sar_dffs
        + stats.buffers
        + switches
        + sar_ctrl;

    // Elaborated transistor/capacitor counts from the leaf netlists.
    for (name, instances) in [
        ("SRAM8T", stats.sram_cells),
        ("LC_CELL", stats.compute_cells),
        ("COMP_SA", stats.comparators),
        ("SAR_DFF", stats.sar_dffs),
        ("BUF", stats.buffers),
        ("CSW", switches),
        ("SAR_CTRL", sar_ctrl),
    ] {
        if instances == 0 {
            continue;
        }
        let cell = library
            .cell_by_name(name)
            .ok_or_else(|| NetlistError::UnknownReference {
                name: name.to_string(),
                referenced_from: "design_stats".to_string(),
            })?;
        stats.transistors += instances * cell.netlist().transistor_count();
        stats.capacitors += instances * cell.netlist().capacitor_count();
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::NetlistGenerator;
    use acim_arch::AcimSpec;
    use acim_tech::Technology;

    fn stats_for(h: usize, w: usize, l: usize, b: u32) -> DesignStats {
        let tech = Technology::s28();
        let library = CellLibrary::s28_default(&tech);
        let spec = AcimSpec::from_dimensions(h, w, l, b).unwrap();
        let design = NetlistGenerator::new(&library).generate(&spec).unwrap();
        design_stats(&design, &library).unwrap()
    }

    #[test]
    fn counts_scale_with_the_spec() {
        let s = stats_for(64, 16, 4, 3);
        assert_eq!(s.sram_cells, 64 * 16);
        assert_eq!(s.compute_cells, 16 * 16);
        assert_eq!(s.comparators, 16);
        assert_eq!(s.sar_dffs, 16 * 3);
        assert_eq!(s.capacitors, s.compute_cells, "one C_F per compute cell");
        assert!(s.transistors > 8 * s.sram_cells);
        assert!(s.total_leaf_instances > s.sram_cells);
    }

    #[test]
    fn larger_array_has_proportionally_more_cells() {
        let small = stats_for(64, 16, 4, 3);
        let large = stats_for(64, 64, 4, 3);
        assert_eq!(large.sram_cells, 4 * small.sram_cells);
        assert_eq!(large.comparators, 4 * small.comparators);
    }

    #[test]
    fn higher_precision_adds_dffs_only_per_column() {
        let b3 = stats_for(64, 16, 4, 3);
        let b4 = stats_for(64, 16, 4, 4);
        assert_eq!(b4.sar_dffs - b3.sar_dffs, 16);
        assert_eq!(b4.sram_cells, b3.sram_cells);
    }
}
