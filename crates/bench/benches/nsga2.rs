//! Criterion bench of the NSGA-II engine in isolation (Section 3.2.2) and
//! of its building blocks (fast non-dominated sort), plus the random-search
//! baseline with the same evaluation budget — the runtime side of the
//! optimiser-quality ablation reported in `tests/ablation_nsga2.rs`.

use acim_moga::{
    fast_non_dominated_sort, random_search, Evaluation, Individual, Nsga2, Nsga2Config, Problem,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// ZDT1 benchmark problem used widely in the MOGA literature.
struct Zdt1 {
    variables: usize,
}

impl Problem for Zdt1 {
    fn num_variables(&self) -> usize {
        self.variables
    }
    fn num_objectives(&self) -> usize {
        2
    }
    fn evaluate(&self, genes: &[f64]) -> Evaluation {
        let f1 = genes[0];
        let g = 1.0 + 9.0 * genes[1..].iter().sum::<f64>() / (genes.len() - 1) as f64;
        Evaluation::unconstrained(vec![f1, g * (1.0 - (f1 / g).sqrt())])
    }
}

fn nsga2_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("nsga2");
    group.sample_size(10);

    for &(population, generations) in &[(40usize, 20usize), (80, 40)] {
        group.bench_with_input(
            BenchmarkId::new("zdt1", format!("{population}x{generations}")),
            &(population, generations),
            |b, &(population, generations)| {
                let config = Nsga2Config {
                    population_size: population,
                    generations,
                    ..Default::default()
                };
                b.iter(|| {
                    let result = Nsga2::new(Zdt1 { variables: 8 }, config.clone())
                        .with_seed(7)
                        .run();
                    black_box(result.pareto_front().len())
                });
            },
        );
    }

    group.bench_function("random_search_same_budget", |b| {
        b.iter(|| black_box(random_search(&Zdt1 { variables: 8 }, 40 * 21, 7).len()))
    });

    group.bench_function("fast_non_dominated_sort_500", |b| {
        let population: Vec<Individual> = (0..500)
            .map(|i| {
                let x = f64::from(i) / 499.0;
                Individual::new(
                    vec![x],
                    Evaluation::unconstrained(vec![x, 1.0 - x + f64::from(i % 7) * 0.01]),
                )
            })
            .collect();
        b.iter(|| {
            let mut pop = population.clone();
            black_box(fast_non_dominated_sort(&mut pop).len())
        });
    });
    group.finish();
}

criterion_group!(benches, nsga2_bench);
criterion_main!(benches);
